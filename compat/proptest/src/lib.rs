//! Minimal stand-in for the subset of the proptest API used by this
//! workspace, with no dependencies outside the workspace itself (see
//! `compat/README.md` for the rationale; `halo_core` supplies the shared
//! `HALO_*` env-override policy).
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case panics with the deterministic seed
//!   and case index so it can be re-run, but the input is not minimised.
//! * **Deterministic generation.** Each test's random stream is seeded
//!   from a hash of the test name (override with `PROPTEST_COMPAT_SEED`),
//!   so runs are reproducible byte-for-byte.
//! * Only the strategy combinators this repository uses are provided:
//!   integer ranges, tuples, `prop_map`, `prop_oneof!`, `Just`,
//!   `any::<T>()`, and `proptest::collection::vec`.

pub mod test_runner {
    use std::fmt;

    /// Mirrors `proptest::test_runner::Config` (aliased to
    /// `ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a test case failed; carried by `prop_assert!` and friends.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }

        /// Real proptest distinguishes rejection from failure; the
        /// stand-in treats both as failure.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// SplitMix64: tiny, fast, and good enough for test-input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Modulo bias is irrelevant at test-generation quality.
            self.next_u64() % bound
        }
    }

    /// Executes a property closure over `config.cases` deterministic
    /// random streams.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        pub fn new(config: Config) -> Self {
            TestRunner { config }
        }

        /// The case count actually executed: the configured count, unless
        /// `HALO_PROPTEST_CASES` overrides it (CI lowers the counts to
        /// trim the suite's long pole; set it higher locally for soak
        /// runs). An invalid value warns once on stderr and falls back to
        /// the configured count — the workspace-wide env-override policy
        /// of [`halo_core::parse_env_or_warn`].
        pub fn effective_cases(&self) -> u32 {
            halo_core::parse_env_or_warn(
                "HALO_PROPTEST_CASES",
                "using the configured case count",
                Self::parse_cases,
            )
            .unwrap_or(self.config.cases)
        }

        /// [`TestRunner::effective_cases`]'s pure core, split out so the
        /// override logic is testable without mutating process-global
        /// environment from concurrently running tests.
        pub fn parse_cases(value: &str) -> Result<u32, String> {
            value.trim().parse::<u32>().ok().filter(|&n| n > 0).ok_or_else(|| {
                format!(
                    "HALO_PROPTEST_CASES={value} is invalid: \
                     expected a positive integer case count"
                )
            })
        }

        pub fn run<F>(&mut self, name: &str, mut f: F)
        where
            F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
        {
            let base = match std::env::var("PROPTEST_COMPAT_SEED") {
                Ok(s) => s
                    .parse::<u64>()
                    .unwrap_or_else(|_| panic!("PROPTEST_COMPAT_SEED must be a u64, got {s:?}")),
                Err(_) => fnv1a(name.as_bytes()),
            };
            let cases = self.effective_cases();
            for case in 0..cases {
                let seed = fnv1a(&base.wrapping_add(case as u64).to_le_bytes());
                let mut rng = TestRng::new(seed);
                if let Err(e) = f(&mut rng) {
                    panic!(
                        "proptest-compat: {name} failed at case {case}/{cases} \
                         (re-run with PROPTEST_COMPAT_SEED={base}): {e}"
                    );
                }
            }
        }
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// Mirrors `proptest::strategy::Strategy`: a recipe for generating a
    /// value. (Real proptest generates *value trees* for shrinking; the
    /// stand-in generates plain values.)
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives; built by `prop_oneof!`.
    pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(!self.0.is_empty(), "prop_oneof! needs at least one alternative");
            let idx = rng.below(self.0.len() as u64) as usize;
            self.0[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty => $u:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Span computed in the unsigned counterpart so signed
                    // ranges (e.g. -100i64..100) stay correct.
                    let span = self.end.wrapping_sub(self.start) as $u;
                    assert!(span > 0, "empty or inverted range strategy");
                    let off = rng.below(span as u64) as $u;
                    self.start.wrapping_add(off as $t)
                }
            }
        )*};
    }

    impl_range_strategy! {
        u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
        i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Mirrors `proptest::collection::SizeRange`: `vec(s, 3)` means
    /// exactly 3 elements, `vec(s, 1..800)` means 1..=799.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        start: usize,
        end: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { start: n, end: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { start: r.start, end: r.end }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)+)
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l != r,
                    "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut runner = $crate::test_runner::TestRunner::new(config);
            runner.run(stringify!($name), |rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(42);
        for _ in 0..1000 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let s = (-100i64..100).generate(&mut rng);
            assert!((-100..100).contains(&s));
        }
    }

    #[test]
    fn vec_respects_size_and_exact_len() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let v = crate::collection::vec(0u32..5, 1..4).generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            let exact = crate::collection::vec(any::<bool>(), 64).generate(&mut rng);
            assert_eq!(exact.len(), 64);
        }
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![(0u8..10).prop_map(|x| x as u32), (100u32..110).prop_map(|x| x),];
        let mut rng = TestRng::new(3);
        let mut low = false;
        let mut high = false;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v < 10 || (100..110).contains(&v));
            low |= v < 10;
            high |= v >= 100;
        }
        assert!(low && high, "both alternatives must be exercised");
    }

    #[test]
    fn case_count_override_parses_or_warns() {
        use crate::test_runner::TestRunner;
        assert_eq!(TestRunner::parse_cases("16"), Ok(16));
        assert_eq!(TestRunner::parse_cases(" 8 "), Ok(8), "whitespace tolerated");
        for bad in ["0", "", "lots", "-4"] {
            let reason = TestRunner::parse_cases(bad)
                .expect_err("HALO_PROPTEST_CASES={bad:?} must be rejected");
            assert_eq!(
                reason,
                format!(
                    "HALO_PROPTEST_CASES={bad} is invalid: expected a positive integer case count"
                ),
                "the warning must name the variable and the offending value"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(
            xs in crate::collection::vec((any::<u8>(), 1u64..5), 1..20),
            flag in any::<bool>(),
        ) {
            prop_assert!(!xs.is_empty());
            for &(_, b) in &xs {
                prop_assert!((1..5).contains(&b), "b out of range: {}", b);
            }
            prop_assert_ne!(flag, !flag);
        }
    }
}
