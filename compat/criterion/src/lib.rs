//! Minimal, dependency-free stand-in for the subset of the Criterion.rs
//! API used by this workspace (see `compat/README.md` for the rationale).
//!
//! Semantics: `bench_function` runs the routine for a fixed number of
//! samples, times each sample with [`std::time::Instant`], and prints the
//! mean time per iteration. There is no statistical analysis, no warm-up
//! calibration, and no report output — this exists so the benchmark
//! targets compile and produce comparable wall-clock numbers offline.

use std::time::{Duration, Instant};

/// How per-iteration setup output is batched before timing, mirroring
/// `criterion::BatchSize`. The stand-in times every batch individually, so
/// the variants only influence the chosen batch length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

impl BatchSize {
    fn iterations_per_batch(self) -> u64 {
        match self {
            BatchSize::SmallInput => 16,
            BatchSize::LargeInput => 4,
            BatchSize::PerIteration => 1,
            BatchSize::NumBatches(_) => 1,
            BatchSize::NumIterations(n) => n.max(1),
        }
    }
}

/// Per-benchmark timing state handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: u64,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `routine`, called repeatedly. One clock read brackets the
    /// whole loop so nanosecond-scale routines aren't swamped by timer
    /// overhead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            drop(std::hint::black_box(routine()));
        }
        self.total += start.elapsed();
        self.iterations += self.samples;
    }

    /// Time `routine` over inputs produced by `setup`; only the routine is
    /// on the clock.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let per_batch = size.iterations_per_batch();
        let mut remaining = self.samples;
        while remaining > 0 {
            let n = per_batch.min(remaining);
            let inputs: Vec<I> = (0..n).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                drop(routine(input));
            }
            self.total += start.elapsed();
            self.iterations += n;
            remaining -= n;
        }
    }

    /// `iter_batched` variant that hands the routine `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        self.iter_batched(&mut setup, |mut input| routine(&mut input), size);
    }
}

/// The top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Like real Criterion, the first non-flag CLI argument filters
        // benchmarks by substring (`cargo bench --bench foo -- my_bench`);
        // cargo's own `--bench` flag is ignored.
        let filter =
            std::env::args().skip(1).find(|a| !a.starts_with('-')).filter(|a| !a.is_empty());
        Criterion { sample_size: 20, filter }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = (n as u64).max(1);
        self
    }

    /// Run benchmarks whose id contains `filter` and skip the rest,
    /// mirroring Criterion's CLI filtering (normally set from the command
    /// line by [`Criterion::default`]).
    pub fn with_filter(mut self, filter: impl Into<String>) -> Self {
        self.filter = Some(filter.into());
        self
    }

    /// Run one named benchmark and print its mean time per iteration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.filter.as_deref().is_some_and(|needle| !id.contains(needle)) {
            return self;
        }
        let mut b = Bencher { samples: self.sample_size, total: Duration::ZERO, iterations: 0 };
        f(&mut b);
        let mean = if b.iterations == 0 {
            Duration::ZERO
        } else {
            b.total / u32::try_from(b.iterations).unwrap_or(u32::MAX)
        };
        println!("{id:<48} {:>12} / iter ({} iterations)", format_duration(mean), b.iterations);
        self
    }

    /// Criterion's final-summary hook; nothing to summarise here.
    pub fn final_summary(&mut self) {}
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3}µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

/// Re-timing black box; routes to `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Mirrors `criterion_group!`: bundles benchmark functions under one name,
/// optionally with a custom `Criterion` configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Mirrors `criterion_main!`: emits `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        // Constructed directly so a `cargo test <name>` filter in argv
        // can't leak into the benchmark filter.
        let mut c = Criterion { sample_size: 5, filter: None };
        let mut runs = 0u64;
        c.bench_function("compat/iter", |b| b.iter(|| runs += 1));
        assert_eq!(runs, 5);
    }

    #[test]
    fn iter_batched_feeds_setup_output() {
        let mut c = Criterion { sample_size: 10, filter: None };
        let mut total = 0u64;
        c.bench_function("compat/batched", |b| {
            b.iter_batched(|| 3u64, |x| total += x, BatchSize::SmallInput)
        });
        assert_eq!(total, 30);
    }

    #[test]
    fn filters_skip_non_matching_benchmarks() {
        let mut c = Criterion { sample_size: 5, filter: None }.with_filter("queue");
        let (mut hits, mut skips) = (0u64, 0u64);
        c.bench_function("profile/affinity_queue", |b| b.iter(|| hits += 1));
        c.bench_function("mem/allocator", |b| b.iter(|| skips += 1));
        assert_eq!(hits, 5);
        assert_eq!(skips, 0);
    }

    #[test]
    fn durations_format_with_sensible_units() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(format_duration(Duration::from_micros(12)), "12.000µs");
        assert_eq!(format_duration(Duration::from_millis(12)), "12.000ms");
    }
}
