//! Proves the affinity-queue hot path is allocation-free in steady state
//! (DESIGN.md §7): after warm-up, neither `record_with` nor `record` may
//! touch the global allocator.
//!
//! Counting is gated on a thread-local flag so that only allocations made
//! by the measuring thread itself are charged — libtest's supervisor
//! thread may allocate concurrently (channel waits, slow-test timers) and
//! must not pollute the count.

use halo_graph::NodeId;
use halo_profile::{AffinityQueue, QueueEntry};
use halo_vm::SplitMix64;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// True only on the measuring thread, only inside the timed window.
    static COUNTING: Cell<bool> = const { Cell::new(false) };
}

fn counting() -> bool {
    // `try_with`: TLS may already be torn down when late allocations
    // happen on exiting threads.
    COUNTING.try_with(Cell::get).unwrap_or(false)
}

/// Counts every allocator entry point that can hand out memory; frees are
/// deliberately uncounted (a pop-only path is still allocation-free).
struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if counting() {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn entry(rng: &mut SplitMix64, seq: u64) -> QueueEntry {
    let obj = rng.next_below(64);
    QueueEntry { obj, ctx: NodeId((obj % 8) as u32), alloc_seq: seq, size: 1 + rng.next_below(8) }
}

#[test]
fn record_is_allocation_free_in_steady_state() {
    let mut q = AffinityQueue::new(128);
    let mut rng = SplitMix64::new(7);

    // Adversarial warm-up: distinct objects with 1-byte accesses drive the
    // window to its hard bound (A entries), taking the ring, dedup table,
    // and partner scratch buffer to the high-water marks no later stream
    // can exceed.
    for i in 0..256u64 {
        q.record(QueueEntry { obj: 1 << 32 | i, ctx: NodeId(0), alloc_seq: i, size: 1 });
    }
    // Then settle into the measured distribution.
    for i in 0..10_000u64 {
        q.record(entry(&mut rng, i));
    }

    let before = ALLOCATIONS.load(Ordering::Relaxed);
    COUNTING.with(|c| c.set(true));
    let mut streamed = 0u64;
    for i in 0..100_000u64 {
        q.record_with(entry(&mut rng, i), |p| streamed += p.size);
    }
    for i in 0..100_000u64 {
        streamed += q.record(entry(&mut rng, i)).len() as u64;
    }
    COUNTING.with(|c| c.set(false));
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert!(streamed > 0, "the workload must actually produce partners");
    assert_eq!(after - before, 0, "steady-state record/record_with allocated");
}
