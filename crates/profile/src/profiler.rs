//! The profiler monitor: turns one execution into a [`Profile`].

use crate::objects::ObjectTracker;
use crate::queue::{AffinityQueue, QueueEntry};
use crate::shadow::{RawContext, ShadowStack};
use halo_graph::{AffinityGraph, Granularity, NodeId, SubGraph};
use halo_vm::{AllocKind, CallSite, FuncId, Monitor, Program};
use std::collections::HashMap;

/// Base-2 log of the page size used for page-granularity identities
/// (4 KiB, matching the simulated machine and the object tracker's index).
pub const PAGE_GRANULARITY_SHIFT: u64 = 12;

/// Profiling-stage parameters (§4.1 and §5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// The affinity distance `A` in bytes. §5.1 selects 128 from the
    /// Fig. 12 sweep.
    pub affinity_distance: u64,
    /// Objects larger than this are not tracked ("profiled with a maximum
    /// grouped-object size of 4 KiB"). Applies to the *object*-granularity
    /// trace only: page-granularity tracking has no size cap — that is its
    /// point (§6).
    pub max_tracked_size: u64,
    /// Fraction of accesses the retained contexts must cover; the rest are
    /// discarded (90% in the paper).
    pub keep_fraction: f64,
    /// Enforce the co-allocatability constraint on affinity edges (§4.1).
    /// Always on in the paper; exposed for the ablation bench.
    pub enforce_coallocatability: bool,
    /// Which identities macro-accesses are keyed by. `Object` records only
    /// the paper's object-level graph; `Page` and `Auto` additionally
    /// record the page-level graph ([`Profile::page_graph`]), keying queue
    /// identities by `addr >> 12` attributed to the allocation context
    /// owning the address.
    pub granularity: Granularity,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            affinity_distance: 128,
            max_tracked_size: 4096,
            keep_fraction: 0.9,
            enforce_coallocatability: true,
            granularity: Granularity::Object,
        }
    }
}

/// Everything recorded about one allocation context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextInfo {
    /// Graph node / context id.
    pub id: NodeId,
    /// Reduced shadow frames, outermost first.
    pub frames: Vec<(FuncId, CallSite)>,
    /// Call-site chain (frames' sites plus the allocation site) — the
    /// "member" fed to identification.
    pub chain: Vec<CallSite>,
    /// Human-readable name for reports (Fig. 9 labels).
    pub name: String,
    /// Allocations made from this context.
    pub allocs: u64,
    /// Macro-accesses to this context's objects.
    pub accesses: u64,
    /// Page-granularity macro-accesses attributed to this context (0 when
    /// page tracking is off).
    pub page_accesses: u64,
    /// Whether the 90% filter discarded this context.
    pub discarded: bool,
}

/// The output of a profiling run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// The affinity graph over retained contexts.
    pub graph: AffinityGraph,
    /// The page-granularity affinity graph over the *same* context ids
    /// (§6's fallback). Empty (no nodes) when the configured granularity
    /// was [`Granularity::Object`]; its own 90% filter applies otherwise,
    /// so a context can be alive in one graph and discarded in the other.
    pub page_graph: AffinityGraph,
    /// All contexts ever observed, indexed by [`NodeId`]; discarded ones
    /// keep their data but are marked.
    pub contexts: Vec<ContextInfo>,
    /// Total macro-accesses to tracked heap objects.
    pub total_accesses: u64,
    /// Total page-granularity macro-accesses (0 when page tracking is off).
    pub total_page_accesses: u64,
    /// Total allocations observed (any size).
    pub total_allocs: u64,
    /// Affinity-queue entries inspected during profiling (object and page
    /// queues combined) — the overhead that grows with the affinity
    /// distance (§5.1, Fig. 12 trade-off).
    pub queue_work: u64,
    /// Number of per-thread [`SubGraph`] shards the object graph was
    /// merged from (1 for a single-threaded run).
    pub shard_count: usize,
}

impl Profile {
    /// Contexts that survived filtering.
    pub fn alive_contexts(&self) -> impl Iterator<Item = &ContextInfo> {
        self.contexts.iter().filter(|c| !c.discarded)
    }

    /// Look up a context by id.
    pub fn context(&self, id: NodeId) -> &ContextInfo {
        &self.contexts[id.index()]
    }
}

struct ContextData {
    info: ContextInfo,
    alloc_seqs: Vec<u64>,
}

/// Co-allocatability (§4.1): "no allocations made between u and v
/// chronologically can originate from either x or y". Were that violated,
/// u and v could not end up adjacent in a shared bump pool. A free
/// function (not a method) so the access hot path can borrow the context
/// table alongside the queue and graph.
fn coallocatable(contexts: &[ContextData], x: NodeId, sx: u64, y: NodeId, sy: u64) -> bool {
    let (lo, hi) = (sx.min(sy), sx.max(sy));
    let violates = |ctx: NodeId| {
        let seqs = &contexts[ctx.index()].alloc_seqs;
        let from = seqs.partition_point(|&s| s <= lo);
        let to = seqs.partition_point(|&s| s < hi);
        to > from
    };
    if violates(x) {
        return false;
    }
    x == y || !violates(y)
}

/// A [`Monitor`] implementing the paper's profiling stage. Drive a program
/// through it with [`halo_vm::Engine::run`], then call
/// [`Profiler::finish`].
pub struct Profiler<'p> {
    program: &'p Program,
    config: ProfileConfig,
    /// Whether the page-granularity trace is recorded alongside the
    /// object-level one (derived from `config.granularity`).
    track_pages: bool,
    shadow: ShadowStack<'p>,
    objects: ObjectTracker,
    queue: AffinityQueue,
    /// Page-identity affinity queue (unused in object-only mode).
    page_queue: AffinityQueue,
    graph: AffinityGraph,
    /// Page-granularity graph over the same node ids as `graph`.
    page_graph: AffinityGraph,
    /// Per-logical-thread object-graph deltas (DESIGN.md §13): every edge
    /// increment is attributed to the thread that caused it, and
    /// [`Profiler::finish_with`] unions the shards — by summed weights, so
    /// the result is identical to single-graph recording for *any*
    /// thread-switch pattern. Indexed by thread id; single-threaded runs
    /// only ever touch shard 0.
    shards: Vec<SubGraph>,
    /// Index into `shards` for the currently executing logical thread.
    current_shard: usize,
    intern: HashMap<RawContext, NodeId>,
    contexts: Vec<ContextData>,
    next_seq: u64,
    total_accesses: u64,
    total_page_accesses: u64,
    total_allocs: u64,
}

impl<'p> Profiler<'p> {
    /// Create a profiler for one run of `program`.
    pub fn new(program: &'p Program, config: ProfileConfig) -> Self {
        Profiler {
            program,
            config,
            track_pages: config.granularity.tracks_pages(),
            shadow: ShadowStack::new(program),
            objects: ObjectTracker::new(),
            queue: AffinityQueue::new(config.affinity_distance),
            page_queue: AffinityQueue::new(config.affinity_distance),
            graph: AffinityGraph::new(),
            page_graph: AffinityGraph::new(),
            shards: vec![SubGraph::new()],
            current_shard: 0,
            intern: HashMap::new(),
            contexts: Vec::new(),
            next_seq: 0,
            total_accesses: 0,
            total_page_accesses: 0,
            total_allocs: 0,
        }
    }

    fn intern_context(&mut self, raw: RawContext) -> NodeId {
        if let Some(&id) = self.intern.get(&raw) {
            return id;
        }
        let id = self.graph.add_node(0);
        if self.track_pages {
            // The page graph shares `graph`'s id space so groups from
            // either granularity index the same context table.
            let page_id = self.page_graph.add_node(0);
            debug_assert_eq!(page_id, id);
        }
        debug_assert_eq!(id.index(), self.contexts.len());
        let name = self.context_name(&raw);
        self.contexts.push(ContextData {
            info: ContextInfo {
                id,
                frames: raw.frames.clone(),
                chain: raw.chain(),
                name,
                allocs: 0,
                accesses: 0,
                page_accesses: 0,
                discarded: false,
            },
            alloc_seqs: Vec::new(),
        });
        self.intern.insert(raw, id);
        id
    }

    fn context_name(&self, raw: &RawContext) -> String {
        let mut parts: Vec<String> =
            raw.frames.iter().map(|&(f, _)| self.program.function(f).name.clone()).collect();
        let site_fn = &self.program.function(raw.alloc_site.func).name;
        parts.push(format!("{}+{}", site_fn, raw.alloc_site.pc));
        parts.join("→")
    }

    /// Finish profiling: union the per-thread edge shards (serially), fix
    /// node access counts, apply the 90% filter (to each granularity's
    /// graph independently), and emit the [`Profile`].
    pub fn finish(self) -> Profile {
        self.finish_with(|shards| shards.into_iter().fold(SubGraph::new(), SubGraph::merge))
    }

    /// Like [`Profiler::finish`], but the caller supplies the shard-union
    /// strategy — `halo_core` injects its `par_map`-based tree merge here.
    /// Because [`SubGraph::merge`] is commutative and associative, every
    /// strategy yields the same profile byte for byte.
    pub fn finish_with(mut self, merge: impl FnOnce(Vec<SubGraph>) -> SubGraph) -> Profile {
        let shard_count = self.shards.len();
        let merged = merge(std::mem::take(&mut self.shards));
        merged.apply_to(&mut self.graph);
        for c in &self.contexts {
            self.graph.add_accesses(c.info.id, c.info.accesses);
            if self.track_pages {
                self.page_graph.add_accesses(c.info.id, c.info.page_accesses);
            }
        }
        self.graph.discard_cold_nodes(self.config.keep_fraction);
        if self.track_pages {
            self.page_graph.discard_cold_nodes(self.config.keep_fraction);
        }
        let graph = self.graph;
        let contexts: Vec<ContextInfo> = self
            .contexts
            .into_iter()
            .map(|mut c| {
                c.info.discarded = !graph.is_alive(c.info.id);
                c.info
            })
            .collect();
        Profile {
            graph,
            page_graph: self.page_graph,
            contexts,
            total_accesses: self.total_accesses,
            total_page_accesses: self.total_page_accesses,
            total_allocs: self.total_allocs,
            queue_work: self.queue.traversal_work() + self.page_queue.traversal_work(),
            shard_count,
        }
    }
}

impl Monitor for Profiler<'_> {
    fn on_call(&mut self, site: CallSite, callee: FuncId) {
        self.shadow.on_call(site, callee);
    }

    fn on_return(&mut self, callee: FuncId) {
        self.shadow.on_return(callee);
    }

    fn on_alloc(&mut self, kind: AllocKind, site: CallSite, size: u64, ptr: u64, old_ptr: u64) {
        if kind == AllocKind::Realloc && old_ptr != 0 {
            self.objects.remove(old_ptr);
        }
        let raw = self.shadow.capture(site).reduced();
        let ctx = self.intern_context(raw);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.total_allocs += 1;
        let data = &mut self.contexts[ctx.index()];
        data.info.allocs += 1;
        data.alloc_seqs.push(seq);
        // Page tracking has no size cap — large arrays are exactly what the
        // §6 fallback exists for. The object-granularity path re-applies the
        // cap per access (`on_access`), so object-mode behaviour is
        // unchanged by the wider tracking.
        if size <= self.config.max_tracked_size || self.track_pages {
            self.objects.insert(seq, ptr, size, ctx);
        }
    }

    fn on_free(&mut self, _site: CallSite, ptr: u64) {
        self.objects.remove(ptr);
    }

    fn on_thread_switch(&mut self, thread: u16) {
        // Each logical thread records its affinity-edge increments into
        // its own SubGraph shard; finish() unions them, so the totals are
        // independent of the switch pattern.
        let t = thread as usize;
        if self.shards.len() <= t {
            self.shards.resize_with(t + 1, SubGraph::new);
        }
        self.current_shard = t;
    }

    fn on_access(&mut self, addr: u64, width: u8, _store: bool) {
        let Some(obj) = self.objects.find(addr) else { return };
        let Profiler {
            queue,
            page_queue,
            page_graph,
            shards,
            current_shard,
            contexts,
            config,
            track_pages,
            total_accesses,
            total_page_accesses,
            ..
        } = self;
        let shard = &mut shards[*current_shard];
        // Object-granularity path: the tracked-size cap applies here (large
        // objects may be in the tracker for the page path's benefit). The
        // queue applies the consecutiveness (macro-access) check once;
        // partners stream straight into edge updates, nothing materializes.
        if obj.size() <= config.max_tracked_size {
            let entry =
                QueueEntry { obj: obj.id, ctx: obj.ctx, alloc_seq: obj.id, size: width as u64 };
            let recorded = queue.record_with(entry, |partner| {
                if !config.enforce_coallocatability
                    || coallocatable(contexts, obj.ctx, obj.id, partner.ctx, partner.alloc_seq)
                {
                    shard.add_edge_weight(obj.ctx, partner.ctx, 1);
                }
            });
            if recorded {
                *total_accesses += 1;
                contexts[obj.ctx.index()].info.accesses += 1;
            }
        }
        // Page-granularity path: identity is the 4 KiB page, attributed to
        // the allocation context owning the address; co-allocatability uses
        // the owning objects' allocation order, as at object granularity.
        if *track_pages {
            let entry = QueueEntry {
                obj: addr >> PAGE_GRANULARITY_SHIFT,
                ctx: obj.ctx,
                alloc_seq: obj.id,
                size: width as u64,
            };
            let recorded = page_queue.record_with(entry, |partner| {
                if !config.enforce_coallocatability
                    || coallocatable(contexts, obj.ctx, obj.id, partner.ctx, partner.alloc_seq)
                {
                    page_graph.add_edge_weight(obj.ctx, partner.ctx, 1);
                }
            });
            if recorded {
                *total_page_accesses += 1;
                contexts[obj.ctx.index()].info.page_accesses += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, EngineLimits, MallocOnlyAllocator, ProgramBuilder, Reg, Width};

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    /// Figure 2's shape: create_a/create_b allocate hot objects, create_c
    /// cold ones; the access loop touches only a/b objects, interleaved.
    fn fig2_program(rounds: i64) -> halo_vm::Program {
        let mut pb = ProgramBuilder::new();
        let create_a = pb.declare("create_a");
        let create_b = pb.declare("create_b");
        let create_c = pb.declare("create_c");
        for f in [create_a, create_b, create_c] {
            let mut fb = pb.define(f);
            fb.imm(r(0), 32);
            fb.malloc(r(0), r(1));
            fb.ret(Some(r(1)));
            fb.finish();
        }

        let mut m = pb.function("main");
        // r10 = count, r1/r2 heads of 8-object arrays stored to heap slots.
        // Allocate `rounds` rounds of (a, b, c); link a's and b's through
        // slot 0; then traverse touching a and b alternately.
        let list = r(9); // current list head (a/b chained)
        m.imm(list, 0);
        m.imm(r(10), 0);
        m.imm(r(11), rounds);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(halo_vm::Cond::Ge, r(10), r(11), done);
        m.call(create_a, &[], Some(r(3)));
        m.store(list, r(3), 0, Width::W8); // a->next = list
        m.mov(list, r(3));
        m.call(create_b, &[], Some(r(4)));
        m.store(list, r(4), 0, Width::W8); // b->next = list
        m.mov(list, r(4));
        m.call(create_c, &[], Some(r(5)));
        m.store(r(10), r(5), 8, Width::W8); // touch c once
        m.add_imm(r(10), r(10), 1);
        m.jump(top);
        m.bind(done);
        // Traverse the a/b list several times.
        m.imm(r(12), 0);
        let sweep = m.label();
        let sweep_done = m.label();
        m.bind(sweep);
        m.branch(halo_vm::Cond::Ge, r(12), r(11), sweep_done);
        m.mov(r(6), list);
        let walk = m.label();
        let walk_done = m.label();
        m.bind(walk);
        m.branch(halo_vm::Cond::Eq, r(6), r(13), walk_done); // r13 == 0
        m.load(r(7), r(6), 8, Width::W8); // touch payload
        m.load(r(6), r(6), 0, Width::W8); // next
        m.jump(walk);
        m.bind(walk_done);
        m.add_imm(r(12), r(12), 1);
        m.jump(sweep);
        m.bind(sweep_done);
        m.ret(None);
        let main = m.finish();
        pb.finish(main)
    }

    fn profile(p: &halo_vm::Program, cfg: ProfileConfig) -> Profile {
        let mut prof = Profiler::new(p, cfg);
        let mut alloc = MallocOnlyAllocator::new();
        Engine::new(p)
            .with_limits(EngineLimits { max_instructions: 50_000_000, max_call_depth: 128 })
            .run(&mut alloc, &mut prof)
            .expect("program runs");
        prof.finish()
    }

    #[test]
    fn contexts_distinguish_allocation_call_paths() {
        let p = fig2_program(16);
        let profile = profile(&p, ProfileConfig { keep_fraction: 1.0, ..Default::default() });
        // Three contexts: main→create_a, main→create_b, main→create_c.
        assert_eq!(profile.contexts.len(), 3);
        let names: Vec<&str> = profile.contexts.iter().map(|c| c.name.as_str()).collect();
        assert!(names.iter().any(|n| n.contains("create_a")));
        assert!(names.iter().any(|n| n.contains("create_b")));
        assert!(names.iter().any(|n| n.contains("create_c")));
        for c in &profile.contexts {
            assert_eq!(c.allocs, 16);
            assert_eq!(c.chain.len(), 2, "main-site then alloc-site");
        }
    }

    #[test]
    fn hot_pair_gets_the_strong_edge() {
        let p = fig2_program(16);
        let profile = profile(&p, ProfileConfig { keep_fraction: 1.0, ..Default::default() });
        let by_name = |pat: &str| {
            profile
                .contexts
                .iter()
                .find(|c| c.name.contains(pat))
                .map(|c| c.id)
                .expect("context exists")
        };
        let (a, b, c) = (by_name("create_a"), by_name("create_b"), by_name("create_c"));
        let w_ab = profile.graph.weight(a, b);
        let w_ac = profile.graph.weight(a, c).max(profile.graph.weight(b, c));
        assert!(w_ab > 0, "traversal makes a and b affinitive");
        assert!(w_ab > 4 * w_ac, "a–b dominates any c edge (w_ab={w_ab}, w_c={w_ac})");
        // a and b are far hotter than c.
        assert!(profile.context(a).accesses > 4 * profile.context(c).accesses);
    }

    #[test]
    fn cold_contexts_are_filtered_at_90_percent() {
        let p = fig2_program(16);
        let profile = profile(&p, ProfileConfig::default());
        let c = profile.contexts.iter().find(|c| c.name.contains("create_c")).unwrap();
        assert!(c.discarded, "create_c covers <10% of accesses");
        assert!(!profile.graph.is_alive(c.id));
        assert_eq!(profile.alive_contexts().count(), 2);
    }

    #[test]
    fn coallocatability_blocks_interleaved_contexts() {
        // Two contexts allocated strictly alternately, accessed together:
        // every pair (u from x, v from y) has an interleaved allocation
        // from x or y between them *except* adjacent pairs. With each round
        // allocating x then y then accessing both, the (x_i, y_i) pair has
        // nothing between it, but (y_{i-1}, x_i) pairs do not violate
        // either… exercise the filter through a third noisy context.
        let mut pb = ProgramBuilder::new();
        let mk = pb.declare("mk");
        let mut m = pb.function("main");
        m.imm(r(10), 0);
        m.imm(r(11), 8);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(halo_vm::Cond::Ge, r(10), r(11), done);
        m.call(mk, &[], Some(r(1))); // context P (via site 1)
        m.call(mk, &[], Some(r(2))); // context Q (via site 2)
        m.store(r(10), r(1), 0, Width::W8);
        m.store(r(10), r(2), 0, Width::W8);
        m.add_imm(r(10), r(10), 1);
        m.jump(top);
        m.bind(done);
        m.ret(None);
        let main = m.finish();
        let mut f = pb.define(mk);
        f.imm(r(0), 16);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
        let p = pb.finish(main);

        let profile = profile(&p, ProfileConfig { keep_fraction: 1.0, ..Default::default() });
        assert_eq!(profile.contexts.len(), 2);
        let (x, y) = (profile.contexts[0].id, profile.contexts[1].id);
        // P_i and Q_i are adjacent allocations (co-allocatable) and accessed
        // together → edge exists.
        assert!(profile.graph.weight(x, y) > 0);
        // But the access in round i also sees round i-1's objects within the
        // queue; those pairs are separated by intervening P/Q allocations
        // and must have been rejected. The observed weight therefore stays
        // at exactly one increment per round boundary pair.
        assert!(profile.graph.weight(x, y) <= 16);
    }

    #[test]
    fn realloc_moves_object_identity() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(0), 16);
        m.malloc(r(0), r(1));
        m.store(r(0), r(1), 0, Width::W8);
        m.imm(r(2), 64);
        m.realloc(r(1), r(2), r(3));
        m.store(r(0), r(3), 0, Width::W8);
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let profile = profile(&p, ProfileConfig { keep_fraction: 1.0, ..Default::default() });
        // Two contexts (malloc site, realloc site), each with one access.
        assert_eq!(profile.contexts.len(), 2);
        assert_eq!(profile.total_allocs, 2);
        assert_eq!(profile.total_accesses, 2);
    }

    #[test]
    fn oversized_objects_are_not_tracked() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(0), 100_000);
        m.malloc(r(0), r(1));
        m.store(r(0), r(1), 0, Width::W8);
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let profile = profile(&p, ProfileConfig { keep_fraction: 1.0, ..Default::default() });
        assert_eq!(profile.total_allocs, 1);
        assert_eq!(profile.total_accesses, 0, "accesses to untracked objects ignored");
        assert_eq!(profile.contexts[0].accesses, 0);
    }

    /// One huge array touched at page-crossing strides: invisible at
    /// object granularity, but the page graph sees a context whose pages
    /// are mutually affinitive (the roms shape, §6).
    fn huge_array_program() -> halo_vm::Program {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(0), 100_000);
        m.malloc(r(0), r(1));
        // Walk the array at a 4 KiB + 8 stride so consecutive accesses
        // land on different pages (same-page accesses would collapse into
        // one macro-access).
        m.imm(r(2), 0);
        m.imm(r(3), 20);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(halo_vm::Cond::Ge, r(2), r(3), done);
        m.mul_imm(r(4), r(2), 4104);
        m.add(r(4), r(1), r(4));
        m.load(r(5), r(4), 0, Width::W8);
        m.add_imm(r(2), r(2), 1);
        m.jump(top);
        m.bind(done);
        m.ret(None);
        let main = m.finish();
        pb.finish(main)
    }

    #[test]
    fn object_mode_records_no_page_graph() {
        let p = huge_array_program();
        let profile = profile(&p, ProfileConfig { keep_fraction: 1.0, ..Default::default() });
        assert!(profile.page_graph.is_empty(), "object mode must not pay for page tracking");
        assert_eq!(profile.total_page_accesses, 0);
        assert!(profile.contexts.iter().all(|c| c.page_accesses == 0));
    }

    #[test]
    fn page_mode_sees_objects_above_the_tracked_cap() {
        let p = huge_array_program();
        let cfg = ProfileConfig {
            keep_fraction: 1.0,
            granularity: halo_graph::Granularity::Page,
            ..Default::default()
        };
        let profile = profile(&p, cfg);
        // Object granularity still ignores the 100 KB array entirely…
        assert_eq!(profile.total_accesses, 0);
        assert_eq!(profile.contexts[0].accesses, 0);
        // …while the page path attributes every page-stride access to the
        // allocating context and links its pages into a self-loop.
        let ctx = profile.contexts[0].id;
        assert_eq!(profile.total_page_accesses, 20);
        assert_eq!(profile.contexts[0].page_accesses, 20);
        assert!(
            profile.page_graph.weight(ctx, ctx) > 0,
            "page-affinitive context must carry a loop edge"
        );
        // The page graph shares the object graph's id space.
        assert_eq!(profile.page_graph.len(), profile.graph.len());
    }

    #[test]
    fn consecutive_same_page_accesses_are_one_macro_access() {
        // Two small objects in the same page, accessed alternately: at
        // object granularity that is two macro-accesses per round, at page
        // granularity the whole run collapses into a single macro-access.
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(0), 64);
        m.malloc(r(0), r(1));
        m.malloc(r(0), r(2));
        m.imm(r(3), 0);
        m.imm(r(4), 8);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(halo_vm::Cond::Ge, r(3), r(4), done);
        m.load(r(5), r(1), 0, Width::W8);
        m.load(r(5), r(2), 0, Width::W8);
        m.add_imm(r(3), r(3), 1);
        m.jump(top);
        m.bind(done);
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let cfg = ProfileConfig {
            keep_fraction: 1.0,
            granularity: halo_graph::Granularity::Page,
            ..Default::default()
        };
        let profile = profile(&p, cfg);
        assert_eq!(profile.total_accesses, 16, "object level: every alternation counts");
        assert_eq!(
            profile.total_page_accesses, 1,
            "page level: one page, one macro-access, however many touches"
        );
    }
}
