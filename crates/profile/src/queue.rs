//! The affinity queue (§4.1, Fig. 5).
//!
//! Holds the most recently accessed heap objects; a new access is
//! *affinitive* to a previous one when the access bytes between them sum to
//! less than the affinity distance `A` (by which the queue is implicitly
//! sized). Candidate enumeration applies three of the paper's four
//! constraints — deduplication, no self-affinity, no double counting; the
//! fourth (co-allocatability) needs allocation history, so the profiler
//! applies it to the returned candidates.
//!
//! # Implementation notes
//!
//! This is the innermost loop of the whole pipeline (one traversal per
//! macro-access), so `record`/`record_with` are engineered to perform **no
//! heap allocation in steady state**:
//!
//! * entries live in a power-of-two **ring buffer** (the paper's §4.1 queue
//!   is a ring); it doubles only while the window is still growing toward
//!   its high-water mark, then never again;
//! * the *no double counting* constraint uses an **epoch-stamped open-
//!   addressing table** instead of a fresh `HashSet` per call — bumping the
//!   epoch invalidates every stale slot in O(1);
//! * partners are streamed to a caller-supplied closure ([`record_with`])
//!   or into a reusable scratch buffer ([`record`]), never into a fresh
//!   `Vec`.
//!
//! `tests/no_alloc_steady_state.rs` (in this crate) verifies the
//! steady-state claim with a counting global allocator.
//!
//! [`record_with`]: AffinityQueue::record_with
//! [`record`]: AffinityQueue::record

use crate::hash::mix64;
use halo_graph::NodeId;

/// One recorded macro-access in the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueEntry {
    /// Accessed object.
    pub obj: u64,
    /// The object's allocation context.
    pub ctx: NodeId,
    /// The object's allocation sequence number.
    pub alloc_seq: u64,
    /// Access width in bytes.
    pub size: u64,
}

const EMPTY: QueueEntry = QueueEntry { obj: 0, ctx: NodeId(0), alloc_seq: 0, size: 0 };

/// Initial ring capacity; doubles on demand until the access window's
/// high-water mark fits, then stays fixed.
const INITIAL_RING: usize = 64;

/// Epoch-stamped dedup table: a slot is live only while its stamp equals
/// the current epoch, so "clearing" between traversals is one increment.
/// Capacity is kept at ≥ 2× the queue length, bounding the load factor at
/// one half.
#[derive(Debug)]
struct DedupTable {
    keys: Vec<u64>,
    stamps: Vec<u64>,
    epoch: u64,
}

impl DedupTable {
    fn with_capacity_for(n: usize) -> Self {
        let cap = (n * 2).next_power_of_two().max(16);
        DedupTable { keys: vec![0; cap], stamps: vec![0; cap], epoch: 0 }
    }

    /// Start a traversal that inserts at most `n` distinct keys.
    #[inline]
    fn begin(&mut self, n: usize) {
        if n * 2 > self.keys.len() {
            *self = DedupTable::with_capacity_for(n);
        }
        self.epoch += 1;
    }

    /// First sighting of `key` this traversal?
    #[inline]
    fn insert(&mut self, key: u64) -> bool {
        let mask = self.keys.len() - 1;
        let mut i = mix64(key) as usize & mask;
        loop {
            if self.stamps[i] != self.epoch {
                self.stamps[i] = self.epoch;
                self.keys[i] = key;
                return true;
            }
            if self.keys[i] == key {
                return false;
            }
            i = (i + 1) & mask;
        }
    }
}

/// The affinity queue. See module docs.
#[derive(Debug)]
pub struct AffinityQueue {
    distance: u64,
    /// Power-of-two ring; `head` indexes the oldest live entry and `len`
    /// counts live entries.
    ring: Vec<QueueEntry>,
    head: usize,
    len: usize,
    total_bytes: u64,
    work: u64,
    dedup: DedupTable,
    /// Reused by [`AffinityQueue::record`] so steady-state calls stay
    /// allocation-free.
    scratch: Vec<QueueEntry>,
}

impl AffinityQueue {
    /// Create a queue with affinity distance `A` bytes.
    pub fn new(distance: u64) -> Self {
        AffinityQueue {
            distance,
            ring: vec![EMPTY; INITIAL_RING],
            head: 0,
            len: 0,
            total_bytes: 0,
            work: 0,
            dedup: DedupTable::with_capacity_for(INITIAL_RING),
            scratch: Vec::new(),
        }
    }

    /// Total queue entries inspected across all traversals — the profiling
    /// cost that grows with the affinity distance (the overhead axis of
    /// the paper's Fig. 12 trade-off).
    pub fn traversal_work(&self) -> u64 {
        self.work
    }

    /// The affinity distance `A`.
    pub fn distance(&self) -> u64 {
        self.distance
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The live entries, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &QueueEntry> {
        let mask = self.ring.len() - 1;
        (0..self.len).map(move |i| &self.ring[(self.head + i) & mask])
    }

    /// Whether an access to `obj` continues the current macro-access
    /// (deduplication: "consecutive machine-level accesses to a single
    /// object are considered to be part of the same macro-level access").
    #[inline]
    pub fn is_consecutive(&self, obj: u64) -> bool {
        self.len > 0 && self.ring[(self.head + self.len - 1) & (self.ring.len() - 1)].obj == obj
    }

    /// Enumerate the affinitive partners of a new access to `entry.obj`
    /// through `visit` (newest partner first), then push the entry.
    ///
    /// Walking back from the newest entry, byte sizes accumulate; an entry
    /// is within range while the accumulated size (including its own) stays
    /// below `A`. Applies dedup, no self-affinity, and no double counting;
    /// the caller must still apply co-allocatability before counting an
    /// edge.
    ///
    /// Returns `false` (visiting nothing, pushing nothing) when the access
    /// is consecutive with the previous one — i.e. part of the same
    /// macro-access — and `true` otherwise. This is the single
    /// consecutiveness check on the hot path; callers must not pre-check
    /// [`AffinityQueue::is_consecutive`] themselves.
    pub fn record_with<F: FnMut(&QueueEntry)>(&mut self, entry: QueueEntry, mut visit: F) -> bool {
        if self.is_consecutive(entry.obj) {
            return false;
        }
        self.dedup.begin(self.len);
        let mask = self.ring.len() - 1;
        let mut accumulated = 0u64;
        for i in (0..self.len).rev() {
            let e = self.ring[(self.head + i) & mask];
            self.work += 1;
            accumulated += e.size;
            if accumulated >= self.distance {
                break;
            }
            // No self-affinity: "objects cannot be affinitive to
            // themselves (u ≠ v)".
            if e.obj == entry.obj {
                continue;
            }
            // No double counting: "each unique object v can be affinitive
            // with u at most once within a single queue traversal".
            if self.dedup.insert(e.obj) {
                visit(&e);
            }
        }
        self.push(entry);
        true
    }

    /// [`AffinityQueue::record_with`], materialized: returns the partners
    /// (newest first) in a scratch buffer reused across calls.
    pub fn record(&mut self, entry: QueueEntry) -> &[QueueEntry] {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.record_with(entry, |e| scratch.push(*e));
        self.scratch = scratch;
        &self.scratch
    }

    fn push(&mut self, entry: QueueEntry) {
        if self.len == self.ring.len() {
            self.grow();
        }
        let mask = self.ring.len() - 1;
        self.ring[(self.head + self.len) & mask] = entry;
        self.len += 1;
        self.total_bytes += entry.size;
        // Implicit sizing: keep only the last A bytes worth of accesses.
        while self.total_bytes > self.distance && self.len > 0 {
            let old = self.ring[self.head];
            self.head = (self.head + 1) & mask;
            self.len -= 1;
            self.total_bytes -= old.size;
        }
    }

    #[cold]
    fn grow(&mut self) {
        let old_mask = self.ring.len() - 1;
        let mut ring = vec![EMPTY; self.ring.len() * 2];
        for (i, slot) in ring.iter_mut().take(self.len).enumerate() {
            *slot = self.ring[(self.head + i) & old_mask];
        }
        self.ring = ring;
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(obj: u64, ctx: u32, size: u64) -> QueueEntry {
        QueueEntry { obj, ctx: NodeId(ctx), alloc_seq: obj, size }
    }

    #[test]
    fn figure5_example_seven_partners() {
        // "a program iterates over 10 objects making 4-byte accesses …
        // with A = 32, the newest element would be considered affinitive to
        // the seven others to its left."
        let mut q = AffinityQueue::new(32);
        for i in 0..9 {
            q.record(e(i, i as u32, 4));
        }
        let partners = q.record(e(9, 9, 4));
        assert_eq!(partners.len(), 7);
        // The partners are the immediately preceding seven objects.
        let ids: Vec<u64> = partners.iter().map(|p| p.obj).collect();
        assert_eq!(ids, vec![8, 7, 6, 5, 4, 3, 2]);
    }

    #[test]
    fn dedup_consecutive_same_object() {
        let mut q = AffinityQueue::new(64);
        q.record(e(1, 0, 8));
        q.record(e(2, 1, 8));
        // Second consecutive access to object 2: same macro access.
        let partners = q.record(e(2, 1, 8));
        assert!(partners.is_empty());
        assert_eq!(q.len(), 2, "no duplicate entry enqueued");
    }

    #[test]
    fn no_self_affinity_through_interleaving() {
        let mut q = AffinityQueue::new(64);
        q.record(e(1, 0, 8));
        q.record(e(2, 1, 8));
        // Object 1 again (not consecutive → traversed): object 1 deeper in
        // the queue must not appear as its own partner.
        let partners = q.record(e(1, 0, 8));
        assert_eq!(partners.len(), 1);
        assert_eq!(partners[0].obj, 2);
    }

    #[test]
    fn no_double_counting_of_one_partner() {
        let mut q = AffinityQueue::new(128);
        q.record(e(2, 1, 8));
        q.record(e(1, 0, 8));
        q.record(e(2, 1, 8));
        // Object 2 appears twice within range; counted once.
        let partners = q.record(e(3, 2, 8));
        let twos = partners.iter().filter(|p| p.obj == 2).count();
        assert_eq!(twos, 1);
        assert_eq!(partners.len(), 2);
    }

    #[test]
    fn distance_bounds_partners_by_bytes_not_count() {
        let mut q = AffinityQueue::new(32);
        q.record(e(1, 0, 16));
        q.record(e(2, 1, 16));
        // 16 + 16 = 32 ≥ A: only the nearest previous entry qualifies.
        let partners = q.record(e(3, 2, 4));
        assert_eq!(partners.len(), 1);
        assert_eq!(partners[0].obj, 2);
    }

    #[test]
    fn queue_is_implicitly_sized_by_a() {
        let mut q = AffinityQueue::new(32);
        for i in 0..100 {
            q.record(e(i, 0, 8));
        }
        // At 8 bytes per entry and A = 32, at most 4 entries survive.
        assert!(q.len() <= 4);
    }

    #[test]
    fn empty_queue_has_no_partners() {
        let mut q = AffinityQueue::new(32);
        assert!(q.record(e(1, 0, 8)).is_empty());
    }

    #[test]
    fn record_with_streams_the_same_partners_as_record() {
        let mut with = AffinityQueue::new(64);
        let mut materialized = AffinityQueue::new(64);
        let mut last = None;
        for i in 0..200u64 {
            // (i·i) mod 5 repeats consecutively, exercising the dedup path.
            let obj = (i * i) % 5;
            let entry = e(obj, obj as u32, 1 + i % 7);
            let mut streamed = Vec::new();
            let recorded = with.record_with(entry, |p| streamed.push(*p));
            let partners = materialized.record(entry);
            assert_eq!(streamed, partners);
            assert_eq!(recorded, last != Some(entry.obj));
            last = Some(entry.obj);
        }
    }

    #[test]
    fn record_with_reports_consecutiveness() {
        let mut q = AffinityQueue::new(64);
        assert!(q.record_with(e(1, 0, 8), |_| {}));
        assert!(!q.record_with(e(1, 0, 8), |_| {}), "same macro-access");
        assert!(q.record_with(e(2, 1, 8), |_| {}));
    }

    #[test]
    fn ring_grows_past_initial_capacity() {
        // 1-byte accesses with a large A force a window far beyond
        // INITIAL_RING; the ring must grow without losing order.
        let mut q = AffinityQueue::new(4096);
        for i in 0..3000u64 {
            q.record(e(i, 0, 1));
        }
        assert!(q.len() > INITIAL_RING);
        let entries: Vec<u64> = q.iter().map(|p| p.obj).collect();
        let expected: Vec<u64> = (3000 - entries.len() as u64..3000).collect();
        assert_eq!(entries, expected, "oldest-first iteration, contiguous tail");
    }

    #[test]
    fn oversized_single_access_empties_the_queue() {
        let mut q = AffinityQueue::new(32);
        q.record(e(1, 0, 8));
        q.record(e(2, 1, 64)); // alone exceeds A: evicts everything, itself included
        assert!(q.is_empty());
        assert_eq!(q.record(e(3, 2, 8)).len(), 0);
    }

    #[test]
    fn dedup_table_survives_epoch_reuse_across_many_traversals() {
        // Hammer a small object set so the same table slots are reused
        // thousands of times; any stale-epoch bug shows up as a missing or
        // duplicated partner.
        let mut q = AffinityQueue::new(128);
        for i in 0..10_000u64 {
            let obj = i % 5;
            let partners: Vec<u64> =
                q.record(e(obj, obj as u32, 8)).iter().map(|p| p.obj).collect();
            let mut sorted = partners.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), partners.len(), "duplicate partner at step {i}");
            assert!(!partners.contains(&obj), "self-affinity at step {i}");
        }
    }
}
