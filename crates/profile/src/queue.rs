//! The affinity queue (§4.1, Fig. 5).
//!
//! Holds the most recently accessed heap objects; a new access is
//! *affinitive* to a previous one when the access bytes between them sum to
//! less than the affinity distance `A` (by which the queue is implicitly
//! sized). Candidate enumeration applies three of the paper's four
//! constraints — deduplication, no self-affinity, no double counting; the
//! fourth (co-allocatability) needs allocation history, so the profiler
//! applies it to the returned candidates.

use halo_graph::NodeId;
use std::collections::{HashSet, VecDeque};

/// One recorded macro-access in the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueEntry {
    /// Accessed object.
    pub obj: u64,
    /// The object's allocation context.
    pub ctx: NodeId,
    /// The object's allocation sequence number.
    pub alloc_seq: u64,
    /// Access width in bytes.
    pub size: u64,
}

/// The affinity queue. See module docs.
#[derive(Debug)]
pub struct AffinityQueue {
    distance: u64,
    entries: VecDeque<QueueEntry>,
    total_bytes: u64,
    work: u64,
}

impl AffinityQueue {
    /// Create a queue with affinity distance `A` bytes.
    pub fn new(distance: u64) -> Self {
        AffinityQueue { distance, entries: VecDeque::new(), total_bytes: 0, work: 0 }
    }

    /// Total queue entries inspected across all traversals — the profiling
    /// cost that grows with the affinity distance (the overhead axis of
    /// the paper's Fig. 12 trade-off).
    pub fn traversal_work(&self) -> u64 {
        self.work
    }

    /// The affinity distance `A`.
    pub fn distance(&self) -> u64 {
        self.distance
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether an access to `obj` continues the current macro-access
    /// (deduplication: "consecutive machine-level accesses to a single
    /// object are considered to be part of the same macro-level access").
    pub fn is_consecutive(&self, obj: u64) -> bool {
        self.entries.back().is_some_and(|e| e.obj == obj)
    }

    /// Enumerate the affinitive partners of a new access to `entry.obj`,
    /// then push the entry.
    ///
    /// Walking back from the newest entry, byte sizes accumulate; an entry
    /// is within range while the accumulated size (including its own) stays
    /// below `A`. Applies dedup (returns empty without pushing when the
    /// access is consecutive), no self-affinity, and no double counting.
    /// The caller must still apply co-allocatability before counting an
    /// edge.
    pub fn record(&mut self, entry: QueueEntry) -> Vec<QueueEntry> {
        if self.is_consecutive(entry.obj) {
            return Vec::new();
        }
        let mut partners = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut accumulated = 0u64;
        for e in self.entries.iter().rev() {
            self.work += 1;
            accumulated += e.size;
            if accumulated >= self.distance {
                break;
            }
            // No self-affinity: "objects cannot be affinitive to
            // themselves (u ≠ v)".
            if e.obj == entry.obj {
                continue;
            }
            // No double counting: "each unique object v can be affinitive
            // with u at most once within a single queue traversal".
            if seen.insert(e.obj) {
                partners.push(*e);
            }
        }
        self.push(entry);
        partners
    }

    fn push(&mut self, entry: QueueEntry) {
        self.total_bytes += entry.size;
        self.entries.push_back(entry);
        // Implicit sizing: keep only the last A bytes worth of accesses.
        while self.total_bytes > self.distance {
            match self.entries.pop_front() {
                Some(old) => self.total_bytes -= old.size,
                None => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(obj: u64, ctx: u32, size: u64) -> QueueEntry {
        QueueEntry { obj, ctx: NodeId(ctx), alloc_seq: obj, size }
    }

    #[test]
    fn figure5_example_seven_partners() {
        // "a program iterates over 10 objects making 4-byte accesses …
        // with A = 32, the newest element would be considered affinitive to
        // the seven others to its left."
        let mut q = AffinityQueue::new(32);
        for i in 0..9 {
            q.record(e(i, i as u32, 4));
        }
        let partners = q.record(e(9, 9, 4));
        assert_eq!(partners.len(), 7);
        // The partners are the immediately preceding seven objects.
        let ids: Vec<u64> = partners.iter().map(|p| p.obj).collect();
        assert_eq!(ids, vec![8, 7, 6, 5, 4, 3, 2]);
    }

    #[test]
    fn dedup_consecutive_same_object() {
        let mut q = AffinityQueue::new(64);
        q.record(e(1, 0, 8));
        q.record(e(2, 1, 8));
        // Second consecutive access to object 2: same macro access.
        let partners = q.record(e(2, 1, 8));
        assert!(partners.is_empty());
        assert_eq!(q.len(), 2, "no duplicate entry enqueued");
    }

    #[test]
    fn no_self_affinity_through_interleaving() {
        let mut q = AffinityQueue::new(64);
        q.record(e(1, 0, 8));
        q.record(e(2, 1, 8));
        // Object 1 again (not consecutive → traversed): object 1 deeper in
        // the queue must not appear as its own partner.
        let partners = q.record(e(1, 0, 8));
        assert_eq!(partners.len(), 1);
        assert_eq!(partners[0].obj, 2);
    }

    #[test]
    fn no_double_counting_of_one_partner() {
        let mut q = AffinityQueue::new(128);
        q.record(e(2, 1, 8));
        q.record(e(1, 0, 8));
        q.record(e(2, 1, 8));
        // Object 2 appears twice within range; counted once.
        let partners = q.record(e(3, 2, 8));
        let twos = partners.iter().filter(|p| p.obj == 2).count();
        assert_eq!(twos, 1);
        assert_eq!(partners.len(), 2);
    }

    #[test]
    fn distance_bounds_partners_by_bytes_not_count() {
        let mut q = AffinityQueue::new(32);
        q.record(e(1, 0, 16));
        q.record(e(2, 1, 16));
        // 16 + 16 = 32 ≥ A: only the nearest previous entry qualifies.
        let partners = q.record(e(3, 2, 4));
        assert_eq!(partners.len(), 1);
        assert_eq!(partners[0].obj, 2);
    }

    #[test]
    fn queue_is_implicitly_sized_by_a() {
        let mut q = AffinityQueue::new(32);
        for i in 0..100 {
            q.record(e(i, 0, 8));
        }
        // At 8 bytes per entry and A = 32, at most 4 entries survive.
        assert!(q.len() <= 4);
    }

    #[test]
    fn empty_queue_has_no_partners() {
        let mut q = AffinityQueue::new(32);
        assert!(q.record(e(1, 0, 8)).is_empty());
    }
}
