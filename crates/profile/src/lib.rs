//! The profiling stage of HALO (§4.1) — the role Intel Pin plays in the
//! paper.
//!
//! A [`Profiler`] is a [`halo_vm::Monitor`]: run the target program once
//! under it and call [`Profiler::finish`] to obtain a [`Profile`] holding
//! the affinity graph over *reduced allocation contexts* plus everything the
//! later stages need (context chains for identification, allocation counts,
//! access counts).
//!
//! Faithfully implemented details:
//!
//! * **shadow stack** — frames are recorded only for functions statically
//!   linked into the main binary; call sites inside library code are traced
//!   back to their nearest point of origin in the main executable;
//! * **reduced contexts** — recursion is canonicalised by keeping only the
//!   most recent of any `(function, call-site)` pair;
//! * **affinity queue** — sized implicitly by the affinity distance `A`;
//!   a new access is affinitive with the previous accesses reachable within
//!   `A` bytes, subject to *deduplication*, *no self-affinity*, *no double
//!   counting*, and *co-allocatability*;
//! * **node filtering** — after the run, contexts beyond 90% cumulative
//!   access coverage are discarded.
//!
//! The per-access hot path (ring-buffer affinity queue with epoch-stamped
//! dedup, page-indexed object lookup with a last-hit cache) performs no
//! heap allocation in steady state; DESIGN.md §7 documents the design and
//! `tests/no_alloc_steady_state.rs` enforces it.
//!
//! The [`TraceCollector`] monitor gathers the object-granularity reference
//! trace consumed by the hot-data-streams comparison technique (`halo-hds`).
//!
//! # Example
//!
//! ```
//! use halo_profile::{ProfileConfig, Profiler};
//! use halo_vm::{Engine, MallocOnlyAllocator, ProgramBuilder, Reg, Width};
//!
//! // A loop allocating two objects and touching them together.
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! let (size, a, b, tmp) = (Reg(0), Reg(1), Reg(2), Reg(3));
//! f.imm(size, 16);
//! f.malloc(size, a);
//! f.malloc(size, b);
//! let top = f.label();
//! f.bind(top);
//! f.load(tmp, a, 0, Width::W8);
//! f.load(tmp, b, 0, Width::W8);
//! f.jump(top);
//! let main = f.finish();
//! let program = pb.finish(main);
//!
//! let mut profiler = Profiler::new(&program, ProfileConfig::default());
//! let mut alloc = MallocOnlyAllocator::new();
//! let limits = halo_vm::EngineLimits { max_instructions: 10_000, max_call_depth: 64 };
//! // The loop is infinite; fuel exhaustion ends the profiling run.
//! let _ = Engine::new(&program).with_limits(limits).run(&mut alloc, &mut profiler);
//! let profile = profiler.finish();
//! assert_eq!(profile.contexts.len(), 2); // two allocation contexts
//! assert!(profile.graph.edge_count() >= 1); // and they are affinitive
//! ```

mod hash;
mod objects;
mod profiler;
mod queue;
mod shadow;
mod stream;
mod trace;

pub use objects::{ObjectInfo, ObjectTracker};
pub use profiler::{ContextInfo, Profile, ProfileConfig, Profiler, PAGE_GRANULARITY_SHIFT};
pub use queue::{AffinityQueue, QueueEntry};
pub use shadow::{RawContext, ShadowStack};
pub use stream::ProfileStream;
pub use trace::{HeapTrace, TraceCollector, TraceObject};
