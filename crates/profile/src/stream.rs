//! Continuous profiling for serve mode (DESIGN.md §15): successive
//! profiling *windows* are absorbed into one streaming affinity graph
//! with exponential decay, so the graph tracks the workload's current
//! phase instead of averaging over its whole history.
//!
//! Each window is an ordinary [`Profile`] from a bounded profiling run.
//! Absorbing it first decays every edge weight and node access count
//! already in the stream by the configured factor, then adds the
//! window's edges and accesses on top. After `k` windows, a window that
//! is `j` windows old contributes with weight `decay^j` — recent
//! behaviour dominates, and a dead phase's affinities melt away
//! geometrically instead of pinning the grouping to history.
//!
//! **Node identity:** windows must intern contexts in the same order
//! (serve mode replays each profiling window from the same train seed),
//! so a [`halo_graph::NodeId`] means the same allocation context in
//! every window. The stream unions the id spaces and trusts the caller
//! on this; mixing profiles of different programs aliases nodes.

use crate::Profile;
use halo_graph::AffinityGraph;

/// A streaming affinity graph over successive profiling windows.
#[derive(Debug)]
pub struct ProfileStream {
    graph: AffinityGraph,
    decay: f64,
    windows: u64,
}

impl ProfileStream {
    /// Create an empty stream. `decay` is the per-window retention
    /// factor in `[0, 1]`: `0.0` forgets everything each window (the
    /// stream is just the latest profile), `1.0` never forgets (plain
    /// accumulation).
    ///
    /// # Panics
    ///
    /// Panics if `decay` is outside `[0, 1]` (via
    /// [`AffinityGraph::decay`] on the first absorb).
    pub fn new(decay: f64) -> Self {
        ProfileStream { graph: AffinityGraph::new(), decay, windows: 0 }
    }

    /// Decay the stream by one window and fold `window`'s object-level
    /// graph on top. Every context alive or dead in the window keeps its
    /// node id; the stream grows its node table as new contexts appear.
    pub fn absorb(&mut self, window: &Profile) {
        self.graph.decay(self.decay);
        while self.graph.len() < window.graph.len() {
            self.graph.add_node(0);
        }
        for n in window.graph.nodes() {
            let acc = window.graph.accesses(n);
            if acc > 0 {
                self.graph.add_accesses(n, acc);
            }
        }
        self.graph.reserve_edges(window.graph.edge_count());
        for (u, v, w) in window.graph.edges() {
            self.graph.add_edge_weight(u, v, w);
        }
        self.windows += 1;
    }

    /// The current streaming graph (decayed history plus the most recent
    /// window).
    pub fn graph(&self) -> &AffinityGraph {
        &self.graph
    }

    /// The streaming graph by value, for handing to grouping without a
    /// clone; the stream is left empty as if freshly created.
    pub fn take_graph(&mut self) -> AffinityGraph {
        std::mem::replace(&mut self.graph, AffinityGraph::new())
    }

    /// Number of windows absorbed so far.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// The configured per-window retention factor.
    pub fn decay(&self) -> f64 {
        self.decay
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_graph::NodeId;

    fn window(nodes: usize, edges: &[(u32, u32, u64)]) -> Profile {
        let mut graph = AffinityGraph::new();
        for _ in 0..nodes {
            graph.add_node(0);
        }
        for &(u, v, w) in edges {
            graph.add_edge_weight(NodeId(u), NodeId(v), w);
            graph.add_accesses(NodeId(u), w);
            graph.add_accesses(NodeId(v), w);
        }
        Profile {
            page_graph: AffinityGraph::new(),
            contexts: Vec::new(),
            total_accesses: graph.total_accesses(),
            total_page_accesses: 0,
            total_allocs: 0,
            queue_work: 0,
            shard_count: 1,
            graph,
        }
    }

    #[test]
    fn absorbing_decays_history_geometrically() {
        let mut s = ProfileStream::new(0.5);
        s.absorb(&window(2, &[(0, 1, 100)]));
        assert_eq!(s.graph().weight(NodeId(0), NodeId(1)), 100);
        // Second window: history halves, fresh weight lands whole.
        s.absorb(&window(2, &[(0, 1, 100)]));
        assert_eq!(s.graph().weight(NodeId(0), NodeId(1)), 150);
        // An empty window still decays what is there.
        s.absorb(&window(2, &[]));
        assert_eq!(s.graph().weight(NodeId(0), NodeId(1)), 75);
        assert_eq!(s.windows(), 3);
    }

    #[test]
    fn phase_shift_melts_the_old_structure() {
        let mut s = ProfileStream::new(0.5);
        s.absorb(&window(2, &[(0, 1, 8)]));
        // The workload moves on: contexts 2 and 3 dominate from now on.
        for _ in 0..4 {
            s.absorb(&window(4, &[(2, 3, 100)]));
        }
        // 8 × 0.5⁴ = 0.5 → floor 0 → edge dropped entirely.
        assert_eq!(s.graph().weight(NodeId(0), NodeId(1)), 0, "dead phase fully melted");
        assert!(s.graph().weight(NodeId(2), NodeId(3)) > 100, "live phase accumulates");
        assert_eq!(s.graph().len(), 4, "node table grew with the new contexts");
    }

    #[test]
    fn zero_decay_keeps_only_the_latest_window() {
        let mut s = ProfileStream::new(0.0);
        s.absorb(&window(2, &[(0, 1, 40)]));
        s.absorb(&window(2, &[(0, 1, 7)]));
        assert_eq!(s.graph().weight(NodeId(0), NodeId(1)), 7);
    }

    #[test]
    fn take_graph_resets_the_stream() {
        let mut s = ProfileStream::new(1.0);
        s.absorb(&window(2, &[(0, 1, 3)]));
        let g = s.take_graph();
        assert_eq!(g.weight(NodeId(0), NodeId(1)), 3);
        assert!(s.graph().is_empty());
    }
}
