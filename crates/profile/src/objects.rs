//! Live heap-object tracking at object granularity.

use halo_graph::NodeId;
use std::collections::BTreeMap;

/// A live heap object as seen by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Dense object id (also the allocation sequence number).
    pub id: u64,
    /// Base address.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
    /// Allocation context (graph node).
    pub ctx: NodeId,
}

impl ObjectInfo {
    /// Object size in bytes.
    pub fn size(&self) -> u64 {
        self.end - self.start
    }
}

/// Interval map from addresses to live heap objects.
///
/// The paper's instrumentation tracks "live data at an object-level
/// granularity"; every load/store is attributed to the containing object,
/// if any.
#[derive(Debug, Default)]
pub struct ObjectTracker {
    by_start: BTreeMap<u64, ObjectInfo>,
}

impl ObjectTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.by_start.len()
    }

    /// Whether no objects are live.
    pub fn is_empty(&self) -> bool {
        self.by_start.is_empty()
    }

    /// Begin tracking an object. Overlapping live objects indicate an
    /// allocator bug; debug builds assert against it.
    pub fn insert(&mut self, id: u64, start: u64, size: u64, ctx: NodeId) {
        let end = start + size.max(1);
        debug_assert!(
            self.find(start).is_none() && self.find(end - 1).is_none(),
            "allocator returned overlapping region [{start:#x}, {end:#x})"
        );
        self.by_start.insert(start, ObjectInfo { id, start, end, ctx });
    }

    /// Stop tracking the object based at exactly `start`; returns it.
    pub fn remove(&mut self, start: u64) -> Option<ObjectInfo> {
        self.by_start.remove(&start)
    }

    /// The live object containing `addr`, if any.
    pub fn find(&self, addr: u64) -> Option<ObjectInfo> {
        let (_, obj) = self.by_start.range(..=addr).next_back()?;
        (addr < obj.end).then_some(*obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: u32) -> NodeId {
        NodeId(n)
    }

    #[test]
    fn find_hits_interior_and_misses_gaps() {
        let mut t = ObjectTracker::new();
        t.insert(1, 100, 16, ctx(0));
        t.insert(2, 200, 8, ctx(1));
        assert_eq!(t.find(100).unwrap().id, 1);
        assert_eq!(t.find(115).unwrap().id, 1);
        assert!(t.find(116).is_none());
        assert!(t.find(99).is_none());
        assert_eq!(t.find(207).unwrap().id, 2);
        assert!(t.find(208).is_none());
    }

    #[test]
    fn remove_frees_the_interval() {
        let mut t = ObjectTracker::new();
        t.insert(1, 100, 16, ctx(0));
        assert_eq!(t.remove(100).map(|o| o.id), Some(1));
        assert!(t.find(100).is_none());
        assert!(t.remove(100).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn zero_size_objects_occupy_one_byte() {
        let mut t = ObjectTracker::new();
        t.insert(1, 64, 0, ctx(0));
        assert_eq!(t.find(64).unwrap().size(), 1);
    }

    #[test]
    fn adjacent_objects_do_not_bleed() {
        let mut t = ObjectTracker::new();
        t.insert(1, 0, 8, ctx(0));
        t.insert(2, 8, 8, ctx(1));
        assert_eq!(t.find(7).unwrap().id, 1);
        assert_eq!(t.find(8).unwrap().id, 2);
    }
}
