//! Live heap-object tracking at object granularity.
//!
//! # Implementation notes
//!
//! [`ObjectTracker::find`] runs once per memory access, making it the
//! second-hottest call in the profiler after the affinity queue. Three
//! layers answer it, cheapest first:
//!
//! 1. a **last-hit cache** — real traces touch the same object in bursts
//!    (that is what macro-accesses *are*), so the previous answer usually
//!    still contains the address;
//! 2. a **page-granular index** mapping `addr >> 12` to the (few) objects
//!    overlapping that 4 KiB page — objects spanning at most
//!    [`MAX_INDEXED_PAGES`] pages are registered under every page they
//!    touch, so one hash probe plus a short scan resolves them;
//! 3. the authoritative **`BTreeMap` interval map**, consulted only for
//!    objects too large for the page index (the trace collector tracks
//!    unbounded sizes; the profiler caps at 4 KiB, so its finds never reach
//!    this layer).
//!
//! A page-index miss with no live large objects proves no object contains
//! the address: any small object containing it would be registered under
//! its page.

use crate::hash::FastIntState;
use halo_graph::NodeId;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap};

/// Base-2 log of the index's page size (4 KiB, the paper's page size).
const PAGE_SHIFT: u64 = 12;

/// Objects spanning more than this many 4 KiB pages bypass the page index
/// and are found through the `BTreeMap` fallback instead; this bounds the
/// per-insert indexing work for huge allocations.
const MAX_INDEXED_PAGES: u64 = 8;

/// A live heap object as seen by the profiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectInfo {
    /// Dense object id (also the allocation sequence number).
    pub id: u64,
    /// Base address.
    pub start: u64,
    /// One past the last byte.
    pub end: u64,
    /// Allocation context (graph node).
    pub ctx: NodeId,
}

impl ObjectInfo {
    /// Object size in bytes.
    pub fn size(&self) -> u64 {
        self.end - self.start
    }

    #[inline]
    fn contains(&self, addr: u64) -> bool {
        self.start <= addr && addr < self.end
    }

    fn pages(&self) -> std::ops::RangeInclusive<u64> {
        (self.start >> PAGE_SHIFT)..=((self.end - 1) >> PAGE_SHIFT)
    }

    fn is_indexed(&self) -> bool {
        ((self.end - 1) >> PAGE_SHIFT) - (self.start >> PAGE_SHIFT) < MAX_INDEXED_PAGES
    }
}

/// Interval map from addresses to live heap objects.
///
/// The paper's instrumentation tracks "live data at an object-level
/// granularity"; every load/store is attributed to the containing object,
/// if any. See the module docs for the lookup structure.
#[derive(Debug, Default)]
pub struct ObjectTracker {
    by_start: BTreeMap<u64, ObjectInfo>,
    /// Page number → objects overlapping that page (small objects only).
    pages: HashMap<u64, Vec<ObjectInfo>, FastIntState>,
    /// Live objects too large for the page index.
    large: usize,
    /// The object returned by the previous successful `find`.
    last_hit: Cell<Option<ObjectInfo>>,
}

impl ObjectTracker {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.by_start.len()
    }

    /// Whether no objects are live.
    pub fn is_empty(&self) -> bool {
        self.by_start.is_empty()
    }

    /// Begin tracking an object. Overlapping live objects indicate an
    /// allocator bug; debug builds assert against it.
    pub fn insert(&mut self, id: u64, start: u64, size: u64, ctx: NodeId) {
        let end = start + size.max(1);
        debug_assert!(
            self.find(start).is_none() && self.find(end - 1).is_none(),
            "allocator returned overlapping region [{start:#x}, {end:#x})"
        );
        let info = ObjectInfo { id, start, end, ctx };
        self.by_start.insert(start, info);
        if info.is_indexed() {
            for page in info.pages() {
                self.pages.entry(page).or_default().push(info);
            }
        } else {
            self.large += 1;
        }
    }

    /// Stop tracking the object based at exactly `start`; returns it.
    pub fn remove(&mut self, start: u64) -> Option<ObjectInfo> {
        let info = self.by_start.remove(&start)?;
        if self.last_hit.get().is_some_and(|hit| hit.start == start) {
            self.last_hit.set(None);
        }
        if info.is_indexed() {
            for page in info.pages() {
                if let std::collections::hash_map::Entry::Occupied(mut bucket) =
                    self.pages.entry(page)
                {
                    bucket.get_mut().retain(|o| o.start != start);
                    if bucket.get().is_empty() {
                        bucket.remove();
                    }
                }
            }
        } else {
            self.large -= 1;
        }
        Some(info)
    }

    /// The live object containing `addr`, if any.
    #[inline]
    pub fn find(&self, addr: u64) -> Option<ObjectInfo> {
        if let Some(hit) = self.last_hit.get() {
            if hit.contains(addr) {
                return Some(hit);
            }
        }
        self.find_slow(addr)
    }

    fn find_slow(&self, addr: u64) -> Option<ObjectInfo> {
        if let Some(bucket) = self.pages.get(&(addr >> PAGE_SHIFT)) {
            for o in bucket {
                if o.contains(addr) {
                    self.last_hit.set(Some(*o));
                    return Some(*o);
                }
            }
        }
        if self.large > 0 {
            // Only an unindexed object can still contain the address: a
            // small one would have been registered under this page.
            let (_, obj) = self.by_start.range(..=addr).next_back()?;
            if obj.contains(addr) && !obj.is_indexed() {
                self.last_hit.set(Some(*obj));
                return Some(*obj);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: u32) -> NodeId {
        NodeId(n)
    }

    #[test]
    fn find_hits_interior_and_misses_gaps() {
        let mut t = ObjectTracker::new();
        t.insert(1, 100, 16, ctx(0));
        t.insert(2, 200, 8, ctx(1));
        assert_eq!(t.find(100).unwrap().id, 1);
        assert_eq!(t.find(115).unwrap().id, 1);
        assert!(t.find(116).is_none());
        assert!(t.find(99).is_none());
        assert_eq!(t.find(207).unwrap().id, 2);
        assert!(t.find(208).is_none());
    }

    #[test]
    fn remove_frees_the_interval() {
        let mut t = ObjectTracker::new();
        t.insert(1, 100, 16, ctx(0));
        assert_eq!(t.remove(100).map(|o| o.id), Some(1));
        assert!(t.find(100).is_none());
        assert!(t.remove(100).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn zero_size_objects_occupy_one_byte() {
        let mut t = ObjectTracker::new();
        t.insert(1, 64, 0, ctx(0));
        assert_eq!(t.find(64).unwrap().size(), 1);
    }

    #[test]
    fn adjacent_objects_do_not_bleed() {
        let mut t = ObjectTracker::new();
        t.insert(1, 0, 8, ctx(0));
        t.insert(2, 8, 8, ctx(1));
        assert_eq!(t.find(7).unwrap().id, 1);
        assert_eq!(t.find(8).unwrap().id, 2);
    }

    #[test]
    fn objects_spanning_page_boundaries_are_found_from_every_page() {
        let mut t = ObjectTracker::new();
        // 256 bytes straddling the 4 KiB boundary at 0x1000.
        t.insert(1, 0x1000 - 128, 256, ctx(0));
        assert_eq!(t.find(0x1000 - 128).unwrap().id, 1, "first page");
        assert_eq!(t.find(0x1000 - 1).unwrap().id, 1, "last byte before boundary");
        assert_eq!(t.find(0x1000).unwrap().id, 1, "first byte after boundary");
        assert_eq!(t.find(0x1000 + 127).unwrap().id, 1, "last byte, second page");
        assert!(t.find(0x1000 + 128).is_none());
    }

    #[test]
    fn large_objects_fall_back_to_the_interval_map() {
        let mut t = ObjectTracker::new();
        let size = (MAX_INDEXED_PAGES + 4) << PAGE_SHIFT; // too big to index
        t.insert(1, 0x10_000, size, ctx(0));
        t.insert(2, 0x10_000 + size, 16, ctx(1)); // small neighbour
        assert_eq!(t.find(0x10_000).unwrap().id, 1);
        assert_eq!(t.find(0x10_000 + size / 2).unwrap().id, 1, "interior of large object");
        assert_eq!(t.find(0x10_000 + size - 1).unwrap().id, 1);
        assert_eq!(t.find(0x10_000 + size).unwrap().id, 2);
        assert!(t.find(0xf_fff).is_none());
        assert_eq!(t.remove(0x10_000).map(|o| o.id), Some(1));
        assert!(t.find(0x10_000 + size / 2).is_none());
    }

    #[test]
    fn last_hit_cache_is_invalidated_by_remove() {
        let mut t = ObjectTracker::new();
        t.insert(1, 100, 16, ctx(0));
        assert_eq!(t.find(108).unwrap().id, 1); // warm the cache
        t.remove(100);
        assert!(t.find(108).is_none(), "stale cache entry served after free");
        // A new object at the same address is found afresh.
        t.insert(2, 100, 16, ctx(1));
        assert_eq!(t.find(108).unwrap().id, 2);
    }

    #[test]
    fn repeated_finds_answer_from_the_cache() {
        let mut t = ObjectTracker::new();
        t.insert(1, 4096, 64, ctx(0));
        for off in 0..64 {
            assert_eq!(t.find(4096 + off).unwrap().id, 1);
        }
    }
}
