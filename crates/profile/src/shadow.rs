//! The shadow call stack (§4.1).
//!
//! "For each call instruction (or other cross-function control transfer),
//! we add an entry to this stack only if the target of the call is
//! statically linked into the main binary, or is one of a handful of
//! externally traceable routines like malloc or free. … call sites may be
//! indirect, and are traced back to their nearest points of origin in the
//! main executable. In addition, stacks containing recursive calls are
//! transformed into a canonical 'reduced' form in which only the most
//! recent of any (function, call site) pair is retained."

use halo_vm::{CallSite, FuncId, Program};
use std::collections::HashSet;

#[derive(Debug, Clone, Copy)]
struct RealFrame {
    func: FuncId,
    external: bool,
    /// Nearest main-executable call site that led into this frame
    /// (`None` only for the entry function).
    origin: Option<CallSite>,
    /// Whether this frame contributed a shadow-stack entry.
    shadowed: bool,
}

/// A raw (unreduced) allocation context captured from the shadow stack.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RawContext {
    /// Shadow frames outermost-first: `(function entered, from call site)`.
    /// The entry function contributes no frame (it was not called from
    /// anywhere).
    pub frames: Vec<(FuncId, CallSite)>,
    /// The allocation-routine call site, origin-traced like any other.
    pub alloc_site: CallSite,
}

impl RawContext {
    /// Canonical reduced form: only the most recent occurrence of each
    /// `(function, call site)` pair survives, preserving relative order.
    pub fn reduced(&self) -> RawContext {
        let mut seen: HashSet<(FuncId, CallSite)> = HashSet::new();
        let mut kept: Vec<(FuncId, CallSite)> = Vec::with_capacity(self.frames.len());
        for &frame in self.frames.iter().rev() {
            if seen.insert(frame) {
                kept.push(frame);
            }
        }
        kept.reverse();
        RawContext { frames: kept, alloc_site: self.alloc_site }
    }

    /// The call-site chain used by identification (Fig. 10): every frame's
    /// call site plus the allocation site, outermost first.
    pub fn chain(&self) -> Vec<CallSite> {
        let mut chain: Vec<CallSite> = self.frames.iter().map(|&(_, s)| s).collect();
        chain.push(self.alloc_site);
        chain
    }
}

/// Maintains the real and shadow stacks from engine call/return events.
#[derive(Debug)]
pub struct ShadowStack<'p> {
    program: &'p Program,
    real: Vec<RealFrame>,
}

impl<'p> ShadowStack<'p> {
    /// Create a shadow stack for a program about to start at its entry.
    pub fn new(program: &'p Program) -> Self {
        let entry_external = program.function(program.entry).external;
        ShadowStack {
            program,
            real: vec![RealFrame {
                func: program.entry,
                external: entry_external,
                origin: None,
                shadowed: false,
            }],
        }
    }

    /// Record a call from `site` into `callee`.
    pub fn on_call(&mut self, site: CallSite, callee: FuncId) {
        let caller = self.real.last().copied();
        // A call made from library code inherits the origin that led into
        // the library; a call from the main binary *is* an origin.
        let origin = match caller {
            Some(c) if c.external => c.origin,
            _ => Some(site),
        };
        let external = self.program.function(callee).external;
        self.real.push(RealFrame { func: callee, external, origin, shadowed: !external });
    }

    /// Record a return from `callee`.
    pub fn on_return(&mut self, callee: FuncId) {
        let popped = self.real.pop();
        debug_assert_eq!(popped.map(|f| f.func), Some(callee), "unbalanced return");
    }

    /// Current stack depth (real frames).
    pub fn depth(&self) -> usize {
        self.real.len()
    }

    /// Capture the raw context of an allocation happening now at
    /// `alloc_site` (the location of the allocation instruction).
    pub fn capture(&self, alloc_site: CallSite) -> RawContext {
        let frames = self
            .real
            .iter()
            .filter(|f| f.shadowed)
            .map(|f| (f.func, f.origin.expect("shadowed frames always have an origin")))
            .collect();
        // An allocation made inside library code is attributed to the call
        // site in the main executable that entered the library.
        let alloc_site = match self.real.last() {
            Some(f) if f.external => f.origin.unwrap_or(alloc_site),
            _ => alloc_site,
        };
        RawContext { frames, alloc_site }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::ProgramBuilder;

    fn site(f: u32, pc: u32) -> CallSite {
        CallSite::new(FuncId(f), pc)
    }

    /// main(0) → wrapper(1) → libfn(2, external) → helper(3)
    fn program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut main = pb.function("main");
        main.ret(None);
        let main = main.finish();
        let mut w = pb.function("wrapper");
        w.ret(None);
        w.finish();
        let mut l = pb.function("libfn");
        l.external().ret(None);
        l.finish();
        let mut h = pb.function("helper");
        h.ret(None);
        h.finish();
        pb.finish(main)
    }

    #[test]
    fn main_binary_frames_are_shadowed() {
        let p = program();
        let mut s = ShadowStack::new(&p);
        s.on_call(site(0, 5), FuncId(1)); // main calls wrapper
        let ctx = s.capture(site(1, 2));
        assert_eq!(ctx.frames, vec![(FuncId(1), site(0, 5))]);
        assert_eq!(ctx.alloc_site, site(1, 2));
    }

    #[test]
    fn library_frames_are_skipped_and_origin_traced() {
        let p = program();
        let mut s = ShadowStack::new(&p);
        s.on_call(site(0, 5), FuncId(2)); // main calls libfn (external)

        // Allocation inside the library: attributed to the main-binary site.
        let ctx = s.capture(site(2, 1));
        assert!(ctx.frames.is_empty(), "library frame not shadowed");
        assert_eq!(ctx.alloc_site, site(0, 5), "traced to origin");
        // Library calls back into the main binary (e.g. a callback): the
        // callback frame is shadowed with the origin site.
        s.on_call(site(2, 3), FuncId(3));
        let ctx2 = s.capture(site(3, 0));
        assert_eq!(ctx2.frames, vec![(FuncId(3), site(0, 5))]);
        assert_eq!(ctx2.alloc_site, site(3, 0));
    }

    #[test]
    fn returns_unwind_both_stacks() {
        let p = program();
        let mut s = ShadowStack::new(&p);
        s.on_call(site(0, 1), FuncId(1));
        s.on_call(site(1, 1), FuncId(3));
        assert_eq!(s.depth(), 3);
        s.on_return(FuncId(3));
        s.on_return(FuncId(1));
        assert_eq!(s.depth(), 1);
        let ctx = s.capture(site(0, 9));
        assert!(ctx.frames.is_empty());
        assert_eq!(ctx.alloc_site, site(0, 9));
    }

    #[test]
    fn reduction_keeps_most_recent_of_each_pair() {
        // Stack: A (from s1), B (from s2), A (from s1) — recursion.
        let a = (FuncId(1), site(0, 1));
        let b = (FuncId(2), site(1, 2));
        let raw = RawContext { frames: vec![a, b, a], alloc_site: site(1, 7) };
        let red = raw.reduced();
        assert_eq!(red.frames, vec![b, a], "most recent A retained, order preserved");
        // Same function from a *different* site is a different pair.
        let a2 = (FuncId(1), site(2, 3));
        let raw2 = RawContext { frames: vec![a, b, a2], alloc_site: site(1, 7) };
        assert_eq!(raw2.reduced().frames, vec![a, b, a2]);
    }

    #[test]
    fn reduction_is_idempotent() {
        let a = (FuncId(1), site(0, 1));
        let b = (FuncId(2), site(1, 2));
        let raw = RawContext { frames: vec![a, b, a, b, a], alloc_site: site(9, 9) };
        let once = raw.reduced();
        assert_eq!(once.reduced(), once);
    }

    #[test]
    fn chain_appends_alloc_site() {
        let a = (FuncId(1), site(0, 1));
        let raw = RawContext { frames: vec![a], alloc_site: site(1, 4) };
        assert_eq!(raw.chain(), vec![site(0, 1), site(1, 4)]);
    }
}
