//! Object-granularity data-reference trace collection.
//!
//! The hot-data-streams comparison technique (Chilimbi & Shaham, PLDI'06)
//! consumes "a global data reference trace … constructed from heap
//! allocations during a profiling run". This monitor records that trace:
//! one symbol per heap object per macro-access (consecutive repeats
//! collapsed), plus each object's *immediate* allocation call site — the
//! fixed-size context by which that technique identifies groups at runtime.

use crate::objects::ObjectTracker;
use halo_graph::NodeId;
use halo_vm::{AllocKind, CallSite, Monitor};

/// Per-object record in a [`HeapTrace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceObject {
    /// The *immediate* call site of the allocation routine — deliberately
    /// not origin-traced: for a wrapper like `pov_malloc` every object
    /// shares the wrapper-internal site, which is exactly the limitation
    /// §3 describes.
    pub site: CallSite,
    /// Requested size in bytes.
    pub size: u64,
    /// Macro-accesses observed to this object.
    pub accesses: u64,
}

/// The collected reference trace.
#[derive(Debug, Clone, Default)]
pub struct HeapTrace {
    /// Object ids in access order, consecutive duplicates collapsed.
    pub symbols: Vec<u32>,
    /// Object table indexed by symbol.
    pub objects: Vec<TraceObject>,
}

impl HeapTrace {
    /// Total macro-accesses across all objects.
    pub fn total_accesses(&self) -> u64 {
        self.objects.iter().map(|o| o.accesses).sum()
    }
}

/// A [`Monitor`] collecting a [`HeapTrace`]. Unlike the HALO profiler it
/// tracks objects of *any* size — the hot-data-streams analysis has no
/// size cap, which is what lets large, widely accessed objects poison its
/// stream formation (§5.2, roms).
#[derive(Debug, Default)]
pub struct TraceCollector {
    objects: ObjectTracker,
    table: Vec<TraceObject>,
    symbols: Vec<u32>,
    last_symbol: Option<u32>,
    max_len: usize,
}

impl TraceCollector {
    /// Create a collector with a default 4M-symbol cap.
    pub fn new() -> Self {
        Self::with_capacity(4_000_000)
    }

    /// Create a collector that stops recording symbols past `max_len`
    /// (object accounting continues).
    pub fn with_capacity(max_len: usize) -> Self {
        TraceCollector {
            objects: ObjectTracker::new(),
            table: Vec::new(),
            symbols: Vec::new(),
            last_symbol: None,
            max_len,
        }
    }

    /// Finish and return the trace.
    pub fn finish(self) -> HeapTrace {
        HeapTrace { symbols: self.symbols, objects: self.table }
    }
}

impl Monitor for TraceCollector {
    fn on_alloc(&mut self, kind: AllocKind, site: CallSite, size: u64, ptr: u64, old_ptr: u64) {
        if kind == AllocKind::Realloc && old_ptr != 0 {
            self.objects.remove(old_ptr);
        }
        let id = self.table.len() as u64;
        self.table.push(TraceObject { site, size, accesses: 0 });
        self.objects.insert(id, ptr, size, NodeId(0));
    }

    fn on_free(&mut self, _site: CallSite, ptr: u64) {
        self.objects.remove(ptr);
    }

    fn on_access(&mut self, addr: u64, _width: u8, _store: bool) {
        let Some(obj) = self.objects.find(addr) else { return };
        let sym = obj.id as u32;
        if self.last_symbol == Some(sym) {
            return; // same macro-access
        }
        self.last_symbol = Some(sym);
        self.table[obj.id as usize].accesses += 1;
        if self.symbols.len() < self.max_len {
            self.symbols.push(sym);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Engine, MallocOnlyAllocator, ProgramBuilder, Reg, Width};

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    fn collect(p: &halo_vm::Program) -> HeapTrace {
        let mut tc = TraceCollector::new();
        let mut alloc = MallocOnlyAllocator::new();
        Engine::new(p).run(&mut alloc, &mut tc).expect("program runs");
        tc.finish()
    }

    #[test]
    fn trace_records_access_order_with_dedup() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(0), 16);
        m.malloc(r(0), r(1)); // obj 0
        m.malloc(r(0), r(2)); // obj 1

        // Pattern: 0 0 1 0 → dedup → 0 1 0.
        m.store(r(0), r(1), 0, Width::W8);
        m.store(r(0), r(1), 8, Width::W8);
        m.store(r(0), r(2), 0, Width::W8);
        m.store(r(0), r(1), 0, Width::W8);
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let trace = collect(&p);
        assert_eq!(trace.symbols, vec![0, 1, 0]);
        assert_eq!(trace.objects[0].accesses, 2);
        assert_eq!(trace.objects[1].accesses, 1);
        assert_eq!(trace.total_accesses(), 3);
    }

    #[test]
    fn immediate_sites_distinguish_objects_by_raw_location() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(0), 16);
        let s1 = m.malloc(r(0), r(1));
        let s2 = m.malloc(r(0), r(2));
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let trace = collect(&p);
        assert_eq!(trace.objects[0].site, s1);
        assert_eq!(trace.objects[1].site, s2);
        assert_ne!(s1, s2);
    }

    #[test]
    fn large_objects_are_traced_too() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(0), 1_000_000);
        m.malloc(r(0), r(1));
        m.store(r(0), r(1), 0, Width::W8);
        m.store(r(0), r(1), 500_000, Width::W8);
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let trace = collect(&p);
        // Both stores hit the same object: one symbol after dedup.
        assert_eq!(trace.symbols, vec![0]);
        assert_eq!(trace.objects[0].size, 1_000_000);
    }

    #[test]
    fn capacity_caps_symbols_not_accounting() {
        let mut tc = TraceCollector::with_capacity(2);
        let site = CallSite::new(halo_vm::FuncId(0), 0);
        tc.on_alloc(AllocKind::Malloc, site, 8, 0x1000, 0);
        tc.on_alloc(AllocKind::Malloc, site, 8, 0x2000, 0);
        for _ in 0..3 {
            tc.on_access(0x1000, 8, false);
            tc.on_access(0x2000, 8, false);
        }
        let trace = tc.finish();
        assert_eq!(trace.symbols.len(), 2);
        assert_eq!(trace.total_accesses(), 6);
    }
}
