//! Small hashing utilities shared by the profiling hot path.
//!
//! The per-access path hashes two kinds of keys — object ids in the
//! affinity queue's dedup table and page numbers in the object tracker's
//! page index — millions of times per run. SipHash (std's default) is
//! overkill for trusted integer keys, so both use the SplitMix64 finalizer,
//! which is a cheap bijective mixer with full avalanche.

use std::hash::{BuildHasher, Hasher};

/// The SplitMix64 finalizer: bijective, full-avalanche integer mixing.
#[inline]
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A `BuildHasher` for `HashMap`s keyed by trusted integers (page numbers,
/// object ids). Not DoS-resistant — do not use for attacker-chosen keys.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct FastIntState;

impl BuildHasher for FastIntState {
    type Hasher = FastIntHasher;

    fn build_hasher(&self) -> FastIntHasher {
        FastIntHasher(0)
    }
}

/// Hasher produced by [`FastIntState`]; mixes each written word into the
/// running state with [`mix64`].
#[derive(Debug, Default)]
pub(crate) struct FastIntHasher(u64);

impl Hasher for FastIntHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.0 = mix64(self.0 ^ u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = mix64(self.0 ^ n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_injective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn hasher_distinguishes_nearby_keys() {
        let s = FastIntState;
        let h = |n: u64| {
            let mut h = s.build_hasher();
            h.write_u64(n);
            h.finish()
        };
        assert_ne!(h(0), h(1));
        assert_ne!(h(1) & 0xff, h(2) & 0xff, "low bits avalanche");
    }

    #[test]
    fn byte_writes_match_word_writes_for_whole_words() {
        let s = FastIntState;
        let mut a = s.build_hasher();
        a.write_u64(0xdead_beef);
        let mut b = s.build_hasher();
        b.write(&0xdead_beefu64.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }
}
