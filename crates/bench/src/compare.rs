//! Parsing and diffing of `halo bench` baseline files.
//!
//! `halo bench` writes `BENCH_profile.json` (schema `halo-bench/v1`) so
//! the perf trajectory is tracked across PRs; `halo bench --compare
//! <old.json>` reads a previous baseline back and renders a per-row delta
//! table against freshly measured rows. The workspace takes no JSON
//! dependency, so this module carries a minimal recursive-descent parser
//! for the subset the schema uses (objects, arrays, strings, unsigned
//! integers) — anything outside that subset is a parse error, which is
//! fine: the only accepted input is a file this tool itself wrote.

use std::fmt::Write as _;

/// One measured row of a baseline file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineRow {
    /// Bench name, e.g. `cache/coherent_access_100k`.
    pub name: String,
    /// Samples taken (best/mean are over these).
    pub samples: u64,
    /// Best wall-clock nanoseconds over the samples.
    pub best_ns: u128,
    /// Mean wall-clock nanoseconds over the samples.
    pub mean_ns: u128,
}

/// The schema tag this crate reads and `halo bench` writes.
pub const BENCH_SCHEMA: &str = "halo-bench/v1";

// --- A minimal JSON value model, just enough for the baseline schema. ---

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    String(String),
    Number(u128),
}

impl Json {
    fn get<'a>(&'a self, key: &str) -> Option<&'a Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser { bytes: text.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        match self.peek() {
            Some(b) if b == byte => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!(
                "expected '{}' at byte {}, found {}",
                byte as char,
                self.pos,
                other.map_or("end of input".to_string(), |b| format!("'{}'", b as char))
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::String),
            Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unsupported JSON at byte {} ({:?}); the halo-bench schema uses only \
                 objects, arrays, strings, and unsigned integers",
                self.pos,
                other.map(|b| b as char)
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                _ => break,
            }
        }
        self.expect(b'}')?;
        Ok(Json::Object(fields))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                _ => break,
            }
        }
        self.expect(b']')?;
        Ok(Json::Array(items))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'\\' {
                return Err(format!(
                    "escape sequence at byte {} (bench names never contain them)",
                    self.pos
                ));
            }
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<u128>().map(Json::Number).map_err(|e| format!("number '{text}': {e}"))
    }
}

fn field_u128(row: &Json, key: &str, index: usize) -> Result<u128, String> {
    match row.get(key) {
        Some(Json::Number(n)) => Ok(*n),
        Some(_) => Err(format!("bench row {index}: field '{key}' is not an unsigned integer")),
        None => Err(format!("bench row {index}: missing field '{key}'")),
    }
}

/// Parse a baseline document previously written by `halo bench`.
///
/// # Errors
///
/// Returns a description of the first problem: malformed JSON, a missing
/// or unexpected `schema` tag, or a bench row without the required
/// `name`/`samples`/`best_ns`/`mean_ns` fields.
pub fn parse_baseline(text: &str) -> Result<Vec<BaselineRow>, String> {
    let mut parser = Parser::new(text);
    let root = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing data after the JSON document at byte {}", parser.pos));
    }
    match root.get("schema") {
        Some(Json::String(s)) if s == BENCH_SCHEMA => {}
        Some(Json::String(s)) => {
            return Err(format!(
                "schema mismatch: file says '{s}', this build reads '{BENCH_SCHEMA}' \
                 (regenerate the baseline with this build's `halo bench`)"
            ));
        }
        _ => {
            return Err(format!(
                "not a halo bench baseline: missing '\"schema\": \"{BENCH_SCHEMA}\"'"
            ))
        }
    }
    let Some(Json::Array(rows)) = root.get("benches") else {
        return Err("missing 'benches' array".to_string());
    };
    let mut parsed = Vec::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        let name = match row.get("name") {
            Some(Json::String(s)) => s.clone(),
            _ => return Err(format!("bench row {i}: missing string field 'name'")),
        };
        parsed.push(BaselineRow {
            name,
            samples: field_u128(row, "samples", i)? as u64,
            best_ns: field_u128(row, "best_ns", i)?,
            mean_ns: field_u128(row, "mean_ns", i)?,
        });
    }
    Ok(parsed)
}

/// One line of a baseline comparison: a row matched by name across the
/// two files, or a row present on only one side.
#[derive(Debug, Clone, PartialEq)]
pub enum CompareLine {
    /// The row exists in both baselines.
    Matched {
        /// Bench name.
        name: String,
        /// The previous (old) measurement.
        old: BaselineRow,
        /// The fresh (new) measurement.
        new: BaselineRow,
        /// `new.best_ns / old.best_ns` — below 1.0 is faster.
        best_ratio: f64,
        /// `new.mean_ns / old.mean_ns`.
        mean_ratio: f64,
    },
    /// The row exists only in the old baseline (a bench was removed).
    OnlyOld(BaselineRow),
    /// The row exists only in the new baseline (a bench was added).
    OnlyNew(BaselineRow),
}

/// Match `new` rows against `old` rows by name. Output order: new rows in
/// their own order (matched or added), then removed old rows in theirs.
pub fn compare(old: &[BaselineRow], new: &[BaselineRow]) -> Vec<CompareLine> {
    let mut lines = Vec::with_capacity(new.len());
    for row in new {
        match old.iter().find(|o| o.name == row.name) {
            Some(o) => lines.push(CompareLine::Matched {
                name: row.name.clone(),
                old: o.clone(),
                new: row.clone(),
                best_ratio: row.best_ns as f64 / o.best_ns.max(1) as f64,
                mean_ratio: row.mean_ns as f64 / o.mean_ns.max(1) as f64,
            }),
            None => lines.push(CompareLine::OnlyNew(row.clone())),
        }
    }
    for row in old {
        if !new.iter().any(|n| n.name == row.name) {
            lines.push(CompareLine::OnlyOld(row.clone()));
        }
    }
    lines
}

fn ms(ns: u128) -> String {
    format!("{:.3}ms", ns as f64 / 1e6)
}

/// Render a comparison as the table `halo bench --compare` prints.
/// `old_path` labels the header (where the old rows came from).
pub fn render_comparison(old_path: &str, lines: &[CompareLine]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "comparison vs {old_path} (ratio = new/old; <1.000x is faster)");
    let _ = writeln!(
        out,
        "{:<32} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8}",
        "name", "old best", "new best", "ratio", "old mean", "new mean", "ratio"
    );
    for line in lines {
        match line {
            CompareLine::Matched { name, old, new, best_ratio, mean_ratio } => {
                let _ = writeln!(
                    out,
                    "{:<32} {:>12} {:>12} {:>7.3}x {:>12} {:>12} {:>7.3}x",
                    name,
                    ms(old.best_ns),
                    ms(new.best_ns),
                    best_ratio,
                    ms(old.mean_ns),
                    ms(new.mean_ns),
                    mean_ratio
                );
            }
            CompareLine::OnlyNew(row) => {
                let _ = writeln!(
                    out,
                    "{:<32} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8}",
                    row.name,
                    "-",
                    ms(row.best_ns),
                    "new",
                    "-",
                    ms(row.mean_ns),
                    "new"
                );
            }
            CompareLine::OnlyOld(row) => {
                let _ = writeln!(
                    out,
                    "{:<32} {:>12} {:>12} {:>8} {:>12} {:>12} {:>8}",
                    row.name,
                    ms(row.best_ns),
                    "-",
                    "removed",
                    ms(row.mean_ns),
                    "-",
                    "removed"
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(rows: &str) -> String {
        format!("{{\n  \"schema\": \"halo-bench/v1\",\n  \"benches\": [\n{rows}  ]\n}}\n")
    }

    #[test]
    fn parses_a_real_baseline_document() {
        let text = doc("    {\"name\": \"profile/affinity_queue_100k\", \"samples\": 10, \
             \"best_ns\": 1486052, \"mean_ns\": 1566855},\n    \
             {\"name\": \"cache/coherent_access_100k\", \"samples\": 10, \
             \"best_ns\": 9656758, \"mean_ns\": 9998096}\n");
        let rows = parse_baseline(&text).expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].name, "cache/coherent_access_100k");
        assert_eq!(rows[1].samples, 10);
        assert_eq!(rows[1].best_ns, 9_656_758);
        assert_eq!(rows[1].mean_ns, 9_998_096);
    }

    #[test]
    fn parses_an_empty_bench_list() {
        let rows = parse_baseline(&doc("")).expect("parses");
        assert!(rows.is_empty());
    }

    #[test]
    fn schema_mismatch_is_a_clear_error() {
        let text = "{\"schema\": \"halo-bench/v2\", \"benches\": []}";
        let err = parse_baseline(text).expect_err("rejected");
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(err.contains("halo-bench/v2") && err.contains(BENCH_SCHEMA), "{err}");
    }

    #[test]
    fn missing_schema_and_fields_are_clear_errors() {
        let err = parse_baseline("{\"benches\": []}").expect_err("no schema");
        assert!(err.contains("missing"), "{err}");
        let text = "{\"schema\": \"halo-bench/v1\", \"benches\": [{\"name\": \"x\"}]}";
        let err = parse_baseline(text).expect_err("no fields");
        assert!(err.contains("samples"), "{err}");
        let err = parse_baseline("not json").expect_err("garbage");
        assert!(err.contains("unsupported JSON"), "{err}");
        let err = parse_baseline("{\"schema\": \"halo-bench/v1\"}").expect_err("no rows");
        assert!(err.contains("benches"), "{err}");
    }

    #[test]
    fn compare_matches_by_name_and_flags_one_sided_rows() {
        let row = |name: &str, best: u128| BaselineRow {
            name: name.to_string(),
            samples: 10,
            best_ns: best,
            mean_ns: best + 1000,
        };
        let old = vec![row("a", 1000), row("gone", 5000)];
        let new = vec![row("a", 500), row("fresh", 700)];
        let lines = compare(&old, &new);
        assert_eq!(lines.len(), 3);
        match &lines[0] {
            CompareLine::Matched { name, best_ratio, .. } => {
                assert_eq!(name, "a");
                assert!((best_ratio - 0.5).abs() < 1e-9);
            }
            other => panic!("expected a match, got {other:?}"),
        }
        assert!(matches!(&lines[1], CompareLine::OnlyNew(r) if r.name == "fresh"));
        assert!(matches!(&lines[2], CompareLine::OnlyOld(r) if r.name == "gone"));
    }

    #[test]
    fn rendered_table_contains_every_row_and_the_ratios() {
        let old = vec![BaselineRow {
            name: "cache/coherent_access_100k".to_string(),
            samples: 10,
            best_ns: 9_656_758,
            mean_ns: 9_998_096,
        }];
        let new = vec![BaselineRow {
            name: "cache/coherent_access_100k".to_string(),
            samples: 10,
            best_ns: 4_587_000,
            mean_ns: 4_895_000,
        }];
        let table = render_comparison("BENCH_profile.json", &compare(&old, &new));
        assert!(table.contains("BENCH_profile.json"), "{table}");
        assert!(table.contains("cache/coherent_access_100k"), "{table}");
        assert!(table.contains("9.657ms") && table.contains("4.587ms"), "{table}");
        assert!(table.contains("0.475x"), "{table}");
    }

    #[test]
    fn roundtrips_the_writer_format() {
        // The exact string `halo bench` emits (writer in src/main.rs) must
        // stay parseable; this pins the contract from the reader's side.
        let text = doc("    {\"name\": \"pipeline/evaluate_toy\", \"samples\": 3, \
             \"best_ns\": 42, \"mean_ns\": 43}\n");
        let rows = parse_baseline(&text).expect("parses");
        assert_eq!(
            rows,
            vec![BaselineRow {
                name: "pipeline/evaluate_toy".to_string(),
                samples: 3,
                best_ns: 42,
                mean_ns: 43,
            }]
        );
    }
}
