//! Shared machinery for the benchmark harnesses that regenerate every
//! table and figure of the paper's evaluation (see DESIGN.md §5 for the
//! index).
//!
//! Each figure/table lives in `benches/` as a `harness = false` target, so
//! `cargo bench --workspace` reproduces the full evaluation; the Criterion
//! micro-benchmarks of pipeline components live in `benches/micro_*`.

pub mod compare;

use halo_core::{evaluate_with_arg, EvalConfig, EvalResult, HaloConfig, MeasureConfig};
use halo_graph::{Granularity, GroupingParams, ReusePolicyChoice};
use halo_hds::HdsConfig;
use halo_mem::GroupAllocConfig;
use halo_profile::ProfileConfig;
use halo_vm::EngineLimits;
use halo_workloads::Workload;

/// Engine limits generous enough for every ref-scale run.
pub fn bench_limits() -> EngineLimits {
    EngineLimits { max_instructions: 2_000_000_000, max_call_depth: 256 }
}

/// The per-workload configuration used throughout the evaluation,
/// reproducing §5.1 plus the artefact appendix's per-benchmark flags
/// (§A.8): omnetpp runs with `--chunk-size 131072 --max-spare-chunks 0`,
/// xalanc with `--max-spare-chunks 0`, and roms with `--max-groups 4`.
/// omnetpp and xalanc "have group chunks always reused due to a limitation
/// of [the] current implementation", which `max_spare_chunks = usize::MAX`
/// models.
///
/// On top of the artefact flags, roms and omnetpp run under
/// `--granularity auto` (our §6 extension): roms's regularities live at
/// page granularity (the fallback finds them), and omnetpp's grouping
/// splits each event wave across per-module chunks — a measured *train*
/// regression at both granularities, so auto declines to group. A
/// chunk-size × spare-chunk sweep (`ablation_chunk_policy` run on
/// omnetpp) leaves the regression untouched at every setting, which is
/// why the fix is the policy, not the chunk knobs.
///
/// The fragmentation-extreme benchmarks of Table 1 (leela, health — plus
/// roms, §6's other named offender) additionally run under
/// `--reuse-policy auto`: the `ablation_reuse_policy` winner (mimalloc-
/// style sharded free lists) promoted as a per-group, train-validated
/// default rather than a blanket switch, so groups whose bump contiguity
/// is winning misses keep bump.
pub fn paper_config(workload: &Workload) -> EvalConfig {
    let mut grouping = GroupingParams {
        min_weight: 32,
        merge_tolerance: 0.05,
        group_threshold: 0.0005,
        ..GroupingParams::default()
    };
    let mut alloc = GroupAllocConfig {
        chunk_size: 1 << 20,
        max_spare_chunks: 1,
        max_grouped_size: 4096,
        ..GroupAllocConfig::default()
    };
    let mut granularity = Granularity::Object;
    let mut reuse = ReusePolicyChoice::Bump;
    match workload.name {
        "omnetpp" => {
            alloc.chunk_size = 131_072;
            alloc.slab_size = 131_072 * 64;
            alloc.max_spare_chunks = usize::MAX;
            granularity = Granularity::Auto;
        }
        "xalanc" => {
            alloc.max_spare_chunks = usize::MAX;
        }
        "roms" => {
            grouping.max_groups = Some(4);
            granularity = Granularity::Auto;
            reuse = ReusePolicyChoice::Auto;
        }
        "leela" | "health" => {
            reuse = ReusePolicyChoice::Auto;
        }
        _ => {}
    }
    EvalConfig {
        halo: HaloConfig {
            profile: ProfileConfig {
                affinity_distance: 128,
                max_tracked_size: 4096,
                keep_fraction: 0.9,
                enforce_coallocatability: true,
                granularity,
            },
            grouping,
            alloc,
            limits: bench_limits(),
            reuse,
            ..HaloConfig::default()
        },
        hds: HdsConfig::default(),
        measure: MeasureConfig {
            limits: bench_limits(),
            seed: workload.reference.seed,
            entry_arg: workload.reference.arg,
            ..MeasureConfig::default()
        },
        extras: Vec::new(),
        ..EvalConfig::default()
    }
}

/// Evaluate one workload with the paper configuration (plus the named
/// optional registry backends), following the §5.1 methodology.
pub fn run_workload(workload: &Workload, extras: &[&'static str]) -> EvalResult {
    let mut config = paper_config(workload);
    config.extras = extras.to_vec();
    evaluate_with_arg(
        &workload.program,
        workload.name,
        workload.train.seed,
        workload.train.arg,
        &config,
    )
    .unwrap_or_else(|e| panic!("workload {} failed: {e}", workload.name))
}

/// Measure only the jemalloc-style baseline and the HALO configuration for
/// a workload under `config` — the light-weight path used by sweeps
/// (Fig. 12 and the ablations), which do not need the comparison technique.
pub fn run_halo_only(
    workload: &Workload,
    config: &EvalConfig,
) -> (halo_core::Measurement, halo_core::Measurement, halo_core::Optimised) {
    // Mirror evaluate_with_arg: the auto-granularity policy validates by
    // measurement and must see the same memory-subsystem geometry.
    let mut halo_config = config.halo;
    halo_config.hierarchy = config.measure.hierarchy;
    halo_config.timing = config.measure.timing;
    let halo = halo_core::Halo::new(halo_config);
    let optimised = halo
        .optimise_with_arg(&workload.program, workload.train.seed, workload.train.arg)
        .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", workload.name));
    let mut base_alloc = halo_mem::SizeClassAllocator::new();
    let base = halo_core::measure(&workload.program, &mut base_alloc, &config.measure)
        .unwrap_or_else(|e| panic!("{}: baseline run failed: {e}", workload.name));
    let mut halo_alloc = halo.make_allocator(&optimised);
    let opt = halo_core::measure(&optimised.program, &mut halo_alloc, &config.measure)
        .unwrap_or_else(|e| panic!("{}: HALO run failed: {e}", workload.name));
    (base, opt, optimised)
}

/// Measure the baseline against one registry backend on the unmodified
/// binary (Fig. 15 and the §5.1 allocator comparison) — the light-weight
/// path that skips the pipeline, so only backends that measure the
/// original binary without pipeline artefacts qualify.
///
/// # Panics
///
/// Panics if `id` is not a registry backend, or names one that needs the
/// rewritten binary or the pipeline artefacts.
pub fn run_backend_pair(
    workload: &Workload,
    id: &str,
) -> (halo_core::Measurement, halo_core::Measurement) {
    let spec = halo_core::backend_spec(id)
        .unwrap_or_else(|| panic!("unknown backend '{id}' (see halo_core::BACKENDS)"));
    assert!(
        !spec.rewritten && !spec.needs_pipeline,
        "backend '{id}' needs the full evaluate() path"
    );
    let config = paper_config(workload);
    let mut base_alloc = halo_mem::SizeClassAllocator::new();
    let base = halo_core::measure(&workload.program, &mut base_alloc, &config.measure)
        .unwrap_or_else(|e| panic!("{}: baseline run failed: {e}", workload.name));
    let ctx = halo_core::BackendCtx { config: &config, halo: None, optimised: None, hds: None };
    let mut other = spec.make_allocator(&ctx);
    let m = halo_core::measure(&workload.program, &mut other, &config.measure)
        .unwrap_or_else(|e| panic!("{}: comparison run failed: {e}", workload.name));
    (base, m)
}

/// The `profile/affinity_queue_100k` micro-workload: A = 128, 64 hot
/// objects, 8-byte accesses, 100k records. One body shared by the
/// Criterion micro-bench and `halo bench` so their same-named rows stay
/// comparable PR-over-PR.
pub fn affinity_queue_100k() -> usize {
    let mut q = halo_profile::AffinityQueue::new(128);
    let mut rng = halo_vm::SplitMix64::new(7);
    for i in 0..100_000u64 {
        let obj = rng.next_below(64);
        q.record(halo_profile::QueueEntry {
            obj,
            ctx: halo_graph::NodeId((obj % 8) as u32),
            alloc_seq: i,
            size: 8,
        });
    }
    q.len()
}

/// The `profile/object_find_100k` micro-workload: 1k live 40-byte objects,
/// 100k uniformly random lookups (the last-hit cache misses almost always,
/// exercising the page index). Shared like [`affinity_queue_100k`].
pub fn object_find_100k() -> u64 {
    let mut t = halo_profile::ObjectTracker::new();
    for i in 0..1000u64 {
        t.insert(i, 0x1000 + i * 48, 40, halo_graph::NodeId((i % 16) as u32));
    }
    let mut rng = halo_vm::SplitMix64::new(11);
    let mut hits = 0u64;
    for _ in 0..100_000u64 {
        let obj = rng.next_below(1000);
        let addr = 0x1000 + obj * 48 + rng.next_below(48);
        if t.find(addr).is_some() {
            hits += 1;
        }
    }
    hits
}

/// The `mem/group_alloc_malloc_free_100k` micro-workload: 100k
/// malloc/free pairs through [`halo_mem::HaloGroupAllocator`]'s grouped
/// hot path — two groups with different per-group plans (bump and sharded
/// free lists) plus interleaved fallback traffic, mixed sizes, and
/// periodic burst frees so chunk reuse, the sharded shards, and the spare
/// pool all stay exercised. One body shared by the Criterion micro-bench
/// and `halo bench` so allocator-layer regressions land in
/// `BENCH_profile.json` like the profiler ones do.
pub fn group_alloc_malloc_free_100k() -> u64 {
    use halo_mem::{GroupSelector, HaloGroupAllocator, ReusePolicy, SelectorTable};
    use halo_vm::VmAllocator as _;
    let config = GroupAllocConfig {
        chunk_size: 65_536,
        slab_size: 65_536 * 64,
        ..GroupAllocConfig::default()
    };
    let table = SelectorTable::new(
        vec![
            GroupSelector { group: 0, conjunctions: vec![vec![0]] },
            GroupSelector { group: 1, conjunctions: vec![vec![1]] },
        ],
        2,
    );
    let overrides =
        vec![config, GroupAllocConfig { reuse_policy: ReusePolicy::ShardedFreeLists, ..config }];
    let mut a = HaloGroupAllocator::with_group_configs(config, table, overrides);
    let site = halo_vm::CallSite::new(halo_vm::FuncId(0), 0);
    let mut gs = halo_vm::GroupState::new(2);
    let mut mem = halo_vm::Memory::new();
    let mut rng = halo_vm::SplitMix64::new(23);
    let mut live: Vec<u64> = Vec::with_capacity(1024);
    for i in 0..100_000u64 {
        gs.reset();
        match i % 3 {
            0 => gs.set(0),
            1 => gs.set(1),
            _ => {} // fallback traffic
        }
        let size = 16 + rng.next_below(12) * 16;
        live.push(a.malloc(size, site, &gs, &mut mem));
        // Burst-free most of the backlog so chunks empty and recycle.
        if live.len() == 1024 {
            for p in live.drain(64..) {
                a.free(p, &mut mem);
            }
        }
    }
    for p in live.drain(..) {
        a.free(p, &mut mem);
    }
    let stats = a.stats();
    stats.grouped_allocs + stats.fallback_allocs + stats.chunks_reused
}

/// The `mem/sharded_alloc_mt` micro-workload: four OS threads (two
/// producers, two consumers) hammer one 4-shard
/// [`halo_mem::ShardedHaloAllocator`] through the [`halo_vm::SyncVmAllocator`]
/// face — 50k mallocs, every pointer freed on a *different* thread so the
/// whole stream rides the owner-shard remote-free queues. One body shared
/// by the Criterion micro-bench and `halo bench` so the concurrent hot
/// path's regressions land in `BENCH_profile.json` like the rest.
pub fn sharded_alloc_mt() -> u64 {
    use halo_mem::{GroupSelector, SelectorTable, ShardedHaloAllocator};
    use halo_vm::SyncVmAllocator as _;
    const PRODUCERS: usize = 2;
    const MALLOCS_PER_PRODUCER: u64 = 25_000;
    let config = GroupAllocConfig {
        chunk_size: 65_536,
        slab_size: 65_536 * 64,
        ..GroupAllocConfig::default()
    };
    let table = SelectorTable::new(
        vec![
            GroupSelector { group: 0, conjunctions: vec![vec![0]] },
            GroupSelector { group: 1, conjunctions: vec![vec![1]] },
        ],
        2,
    );
    let site = halo_vm::CallSite::new(halo_vm::FuncId(0), 0);
    let alloc = ShardedHaloAllocator::new(4, config, table, Vec::new());
    std::thread::scope(|scope| {
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..PRODUCERS).map(|_| std::sync::mpsc::channel::<u64>()).unzip();
        for (p, tx) in senders.into_iter().enumerate() {
            let alloc = &alloc;
            scope.spawn(move || {
                let mut mem = halo_vm::Memory::new();
                let mut gs = halo_vm::GroupState::new(2);
                gs.set((p % 2) as u16);
                let mut rng = halo_vm::SplitMix64::new(p as u64 + 29);
                for _ in 0..MALLOCS_PER_PRODUCER {
                    let size = 16 + rng.next_below(12) * 16;
                    tx.send(alloc.malloc(size, site, &gs, &mut mem)).expect("consumer alive");
                }
            });
        }
        for rx in receivers {
            let alloc = &alloc;
            scope.spawn(move || {
                let mut mem = halo_vm::Memory::new();
                for ptr in rx {
                    alloc.free(ptr, &mut mem);
                }
            });
        }
    });
    let mut mem = halo_vm::Memory::new();
    alloc.drain_remote(&mut mem);
    let stats = alloc.sharded_stats();
    assert_eq!(
        stats.alloc.grouped_allocs + stats.alloc.fallback_allocs,
        PRODUCERS as u64 * MALLOCS_PER_PRODUCER
    );
    stats.alloc.grouped_allocs + stats.remote_frees + stats.remote_drained
}

/// The `serve/plan_swap` micro-workload: 50k malloc/free pairs through a
/// 4-shard [`halo_mem::ShardedHaloAllocator`] with a
/// [`halo_mem::ShardedHaloAllocator::swap_plans`] hot-swap every 2k
/// operations, alternating between two per-group plans — the `halo serve`
/// epoch transition (DESIGN.md §15) under steady allocation traffic, so
/// both the swap latency (all shard locks held) and the post-swap
/// fresh-chunk carving land in `BENCH_profile.json`. One body shared by
/// the Criterion micro-bench and `halo bench` like the rest.
pub fn serve_plan_swap() -> u64 {
    use halo_mem::{GroupSelector, SelectorTable, ShardedHaloAllocator};
    use halo_vm::SyncVmAllocator as _;
    let config = GroupAllocConfig {
        chunk_size: 65_536,
        slab_size: 65_536 * 64,
        ..GroupAllocConfig::default()
    };
    let table = SelectorTable::new(
        vec![
            GroupSelector { group: 0, conjunctions: vec![vec![0]] },
            GroupSelector { group: 1, conjunctions: vec![vec![1]] },
        ],
        2,
    );
    let plans = [
        vec![GroupAllocConfig { chunk_size: 16_384, ..config }, config],
        vec![config, GroupAllocConfig { chunk_size: 131_072, ..config }],
    ];
    let alloc = ShardedHaloAllocator::new(4, config, table.clone(), plans[0].clone());
    let site = halo_vm::CallSite::new(halo_vm::FuncId(0), 0);
    let mut mem = halo_vm::Memory::new();
    let mut gs = halo_vm::GroupState::new(2);
    let mut rng = halo_vm::SplitMix64::new(41);
    let mut live: Vec<u64> = Vec::with_capacity(1024);
    for i in 0..50_000u64 {
        if i % 2_000 == 1_000 {
            let next = &plans[((i / 2_000) % 2) as usize];
            alloc.swap_plans(table.clone(), next.clone());
        }
        gs.reset();
        match i % 3 {
            0 => gs.set(0),
            1 => gs.set(1),
            _ => {} // fallback traffic
        }
        let size = 16 + rng.next_below(12) * 16;
        live.push(alloc.malloc(size, site, &gs, &mut mem));
        if live.len() == 1024 {
            for p in live.drain(64..) {
                alloc.free(p, &mut mem);
            }
        }
    }
    for p in live.drain(..) {
        alloc.free(p, &mut mem);
    }
    alloc.drain_remote(&mut mem);
    let stats = alloc.sharded_stats();
    assert_eq!(alloc.plan_epoch(), 25, "one swap per 2k operations");
    stats.alloc.grouped_allocs + stats.alloc.fallback_allocs + alloc.plan_epoch()
}

/// The `cache/coherent_access_100k` micro-workload: four logical threads
/// round-robin over a [`halo_cache::CoherentHierarchy`] (Xeon W-2195
/// geometry), each mostly walking a private 16 KiB region but with every
/// eighth access landing in one shared 4 KiB region and every fourth
/// access a store — so the MESI-lite probe, invalidation, and upgrade
/// paths all stay hot. One body shared by the Criterion micro-bench and
/// `halo bench` so coherence-model regressions land in
/// `BENCH_profile.json` like the rest.
pub fn coherent_access_100k() -> u64 {
    use halo_cache::{CoherentHierarchy, HierarchyConfig};
    const THREADS: u16 = 4;
    let mut h = CoherentHierarchy::new(HierarchyConfig::xeon_w2195());
    let mut rng = halo_vm::SplitMix64::new(37);
    for i in 0..100_000u64 {
        let t = (i % THREADS as u64) as u16;
        h.set_thread(t);
        let store = rng.next_below(4) == 0;
        let addr = if rng.next_below(8) == 0 {
            // Shared 4 KiB region all threads contend on.
            0x10_0000 + rng.next_below(4096)
        } else {
            // Per-thread private 16 KiB region.
            0x20_0000 + t as u64 * 0x1_0000 + rng.next_below(16_384)
        };
        h.access(addr, 8, store);
    }
    let s = h.stats();
    let c = h.coherence();
    assert!(c.invalidations > 0, "shared stores must ping-pong lines: {c:?}");
    s.l1_hits + s.l1_misses + c.invalidations + c.upgrades + c.remote_fills
}

/// Shape of a synthetic affinity graph for the million-node scale
/// benchmarks (`graph/build_csr_1m`, `graph/group_1m_nodes`).
///
/// Endpoints are drawn heavy-tailed — `idx = floor(n · u^skew)` for
/// uniform `u` — so a few contexts are hubs with enormous degree and the
/// long tail is nearly isolated, the degree profile a profiler produces
/// on allocation-site graphs (most sites touch little; arenas and string
/// pools touch everything).
#[derive(Debug, Clone, Copy)]
pub struct GraphSpec {
    /// Number of nodes (allocation contexts).
    pub nodes: u32,
    /// Number of edge *increments* drawn (distinct edges come out lower
    /// as hub pairs repeat and accumulate weight).
    pub edges: u64,
    /// Heavy-tail exponent; larger skews harder toward low node ids.
    pub skew: f64,
    /// Generator seed.
    pub seed: u64,
}

impl GraphSpec {
    /// The committed baseline scale: a million nodes, four million edge
    /// increments.
    pub fn million() -> GraphSpec {
        GraphSpec { nodes: 1_000_000, edges: 4_000_000, skew: 3.0, seed: 42 }
    }

    /// [`GraphSpec::million`], with the node count overridable via
    /// `HALO_GRAPH_BENCH_NODES` (edge increments scale with it at 4×) so
    /// CI smoke runs can shrink the workload without touching the
    /// committed baseline rows. An invalid value warns once on stderr and
    /// falls back to the committed scale (the workspace env-override
    /// policy of [`halo_core::parse_env_or_warn`]).
    pub fn from_env() -> GraphSpec {
        let mut spec = GraphSpec::million();
        if let Some(nodes) = halo_core::parse_env_or_warn(
            "HALO_GRAPH_BENCH_NODES",
            "benching the committed million-node scale",
            Self::parse_nodes,
        ) {
            spec.nodes = nodes;
            spec.edges = nodes as u64 * 4;
        }
        spec
    }

    /// [`GraphSpec::from_env`]'s pure core, split out so the override
    /// logic is testable without mutating the process environment.
    pub fn parse_nodes(value: &str) -> Result<u32, String> {
        value.trim().parse::<u32>().ok().filter(|&n| n > 0).ok_or_else(|| {
            format!("HALO_GRAPH_BENCH_NODES={value} is invalid: expected a positive node count")
        })
    }
}

/// Generate `spec`'s edge stream split across `shards` per-worker
/// [`SubGraph`]s, the shape the sharded profiler hands to
/// `par_merge_subgraphs`. Deterministic for a given spec (each shard's
/// stream is seeded `seed + shard`); node access counts accumulate the
/// incident edge weights, every ~97th increment is a loop.
pub fn synthetic_subgraphs(spec: &GraphSpec, shards: usize) -> Vec<halo_graph::SubGraph> {
    use halo_graph::NodeId;
    let shards = shards.max(1) as u64;
    let per_shard = spec.edges / shards;
    (0..shards)
        .map(|s| {
            let mut sub = halo_graph::SubGraph::new();
            let mut rng = halo_vm::SplitMix64::new(spec.seed.wrapping_add(s));
            // Heavy-tailed endpoint draw: u in [0, 1), idx = floor(n·u^skew).
            let endpoint = |rng: &mut halo_vm::SplitMix64| {
                let u = rng.next_below(1 << 30) as f64 / (1u64 << 30) as f64;
                ((spec.nodes as f64 * u.powf(spec.skew)) as u32).min(spec.nodes - 1)
            };
            let count =
                if s == shards - 1 { spec.edges - per_shard * (shards - 1) } else { per_shard };
            for i in 0..count {
                let u = endpoint(&mut rng);
                let v = if i % 97 == 0 { u } else { endpoint(&mut rng) };
                let w = 1 + rng.next_below(16);
                sub.add_edge_weight(NodeId(u), NodeId(v), w);
                sub.add_accesses(NodeId(u), w);
                if u != v {
                    sub.add_accesses(NodeId(v), w);
                }
            }
            sub
        })
        .collect()
}

/// The `graph/build_csr_1m` bench body: generate the spec's edge stream
/// on 8 shards, union them in a parallel tree, and finalise into CSR.
/// Returns the finalised graph so `group_graph_nodes` can reuse it.
pub fn build_graph(spec: &GraphSpec) -> halo_graph::AffinityGraph {
    let shards = synthetic_subgraphs(spec, 8);
    let merged = halo_core::par_merge_subgraphs(shards);
    let graph = merged.into_graph();
    assert!(graph.is_finalised());
    graph
}

/// The `graph/group_1m_nodes` bench body: one Fig. 6 grouping pass over a
/// pre-built graph at bulk-scale parameters (`min_weight` prunes the
/// heavy-tail noise floor; `group_threshold` 0 keeps every positive-
/// benefit group). Returns the group count as the black-box value.
pub fn group_graph_nodes(graph: &halo_graph::AffinityGraph) -> usize {
    let params =
        GroupingParams { min_weight: 8, group_threshold: 0.0, ..GroupingParams::default() };
    halo_graph::group(graph, &params).len()
}

/// Straightforward reference implementation of the §4.1 affinity queue —
/// the seed code's shape (`VecDeque` scan, fresh `HashSet` + `Vec` per
/// `record`). It exists in exactly one place so its two consumers cannot
/// drift: the `micro_components` old-vs-new shape benchmark
/// (`profile/affinity_queue_100k_legacy_shape`) and the ring-buffer
/// equivalence property test in `tests/property_invariants.rs`
/// (DESIGN.md §8).
pub struct ReferenceAffinityQueue {
    distance: u64,
    /// Live entries, oldest first; public so the equivalence test can
    /// compare eviction behaviour entry-for-entry.
    pub entries: std::collections::VecDeque<halo_profile::QueueEntry>,
    total_bytes: u64,
}

impl ReferenceAffinityQueue {
    /// Create a reference queue with affinity distance `A` bytes.
    pub fn new(distance: u64) -> Self {
        ReferenceAffinityQueue { distance, entries: Default::default(), total_bytes: 0 }
    }

    /// Enumerate affinitive partners (newest first) and push the entry —
    /// the seed algorithm, allocation-per-call and all.
    pub fn record(&mut self, entry: halo_profile::QueueEntry) -> Vec<halo_profile::QueueEntry> {
        if self.entries.back().is_some_and(|e| e.obj == entry.obj) {
            return Vec::new();
        }
        let mut partners = Vec::new();
        let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut accumulated = 0u64;
        for e in self.entries.iter().rev() {
            accumulated += e.size;
            if accumulated >= self.distance {
                break;
            }
            if e.obj == entry.obj {
                continue;
            }
            if seen.insert(e.obj) {
                partners.push(*e);
            }
        }
        self.total_bytes += entry.size;
        self.entries.push_back(entry);
        while self.total_bytes > self.distance {
            match self.entries.pop_front() {
                Some(old) => self.total_bytes -= old.size,
                None => break,
            }
        }
        partners
    }
}

/// Format a fraction as a signed percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:+.1}%", fraction * 100.0)
}

/// Format a byte count like the paper's Table 1 (KiB/MiB with two
/// decimals).
pub fn human_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.2}MiB", bytes as f64 / (1 << 20) as f64)
    } else {
        format!("{:.2}KiB", bytes as f64 / 1024.0)
    }
}

/// Print a header for a figure/table harness.
pub fn banner(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_bench_node_override_parses_or_warns() {
        assert_eq!(GraphSpec::parse_nodes("5000"), Ok(5000));
        assert_eq!(GraphSpec::parse_nodes(" 64 "), Ok(64), "whitespace tolerated");
        for bad in ["0", "", "big", "-1"] {
            assert_eq!(
                GraphSpec::parse_nodes(bad),
                Err(format!(
                    "HALO_GRAPH_BENCH_NODES={bad} is invalid: expected a positive node count"
                )),
                "the warning must name the variable and the offending value"
            );
        }
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.2815), "+28.1%");
        assert_eq!(pct(-0.03), "-3.0%");
        assert_eq!(human_bytes(31980), "31.23KiB");
        assert_eq!(human_bytes(2 << 20), "2.00MiB");
    }

    #[test]
    fn plan_swap_body_is_deterministic_and_swaps() {
        // The checksum folds in the final plan epoch, so the body fails
        // loudly if the swap cadence ever drifts; equal reruns keep the
        // bench row comparable PR-over-PR.
        let a = serve_plan_swap();
        let b = serve_plan_swap();
        assert_eq!(a, b);
        assert!(a > 50_000, "every malloc lands in the grouped or fallback counters");
    }

    #[test]
    fn coherent_access_body_is_deterministic_and_contended() {
        // The checksum folds in the coherence counters, so any drift in
        // the MESI-lite model shows up as a bench-row value change too.
        let a = coherent_access_100k();
        let b = coherent_access_100k();
        assert_eq!(a, b);
        assert!(a > 100_000, "hits + misses alone already exceed the access count");
    }

    #[test]
    fn synthetic_graph_is_deterministic_and_heavy_tailed() {
        let spec = GraphSpec { nodes: 5_000, edges: 20_000, skew: 3.0, seed: 42 };
        let a = build_graph(&spec);
        let b = build_graph(&spec);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        // Heavy tail: the hottest node outweighs the median node's
        // accesses by orders of magnitude.
        let mut accesses: Vec<u64> = a.nodes().map(|n| a.accesses(n)).collect();
        accesses.sort_unstable();
        let max = *accesses.last().unwrap();
        let median = accesses[accesses.len() / 2];
        assert!(max > median.max(1) * 100, "max {max} vs median {median}");
        // And grouping it terminates with a plausible structure.
        assert!(group_graph_nodes(&a) > 0);
    }

    #[test]
    fn shard_count_does_not_change_the_merged_graph() {
        let spec = GraphSpec { nodes: 2_000, edges: 8_000, skew: 2.0, seed: 7 };
        // Different shard counts draw different streams (seeds differ per
        // shard), so instead check one stream merged 1-way vs tree-merged
        // 8-way after re-sharding the same subgraphs.
        let subs = synthetic_subgraphs(&spec, 8);
        let serial =
            subs.iter().cloned().fold(halo_graph::SubGraph::new(), halo_graph::SubGraph::merge);
        let tree = halo_core::par_merge_subgraphs(subs);
        assert_eq!(serial.edges(), tree.edges());
        assert_eq!(serial.len(), tree.len());
    }

    #[test]
    fn per_benchmark_flags_follow_the_artefact() {
        let ws = halo_workloads::all();
        let omnetpp = ws.iter().find(|w| w.name == "omnetpp").unwrap();
        assert_eq!(paper_config(omnetpp).halo.alloc.chunk_size, 131_072);
        let roms = ws.iter().find(|w| w.name == "roms").unwrap();
        assert_eq!(paper_config(roms).halo.grouping.max_groups, Some(4));
        let health = ws.iter().find(|w| w.name == "health").unwrap();
        assert_eq!(paper_config(health).halo.alloc.chunk_size, 1 << 20);
    }
}
