//! Grouping-algorithm ablation (§4.2): the paper claims its greedy
//! density-based algorithm "generates clusters we find to be more amenable
//! to region-based co-allocation than standard modularity, HCS, or
//! cut-based clustering techniques". This harness swaps the clusterer while
//! keeping every other stage fixed and measures the end-to-end result.

use halo_core::{measure, Halo};
use halo_graph::{group, hcs_clusters, modularity_clusters, AffinityGraph, Group, NodeId};
use halo_ident::{contexts_from_profile, identify};
use halo_rewrite::instrument;

fn clusters_to_groups(graph: &AffinityGraph, clusters: Vec<Vec<NodeId>>) -> Vec<Group> {
    clusters
        .into_iter()
        .map(|members| {
            let mut weight = 0;
            for i in 0..members.len() {
                for j in i..members.len() {
                    weight += graph.weight(members[i], members[j]);
                }
            }
            let accesses = members.iter().map(|&m| graph.accesses(m)).sum();
            Group { members, weight, accesses, plan: Default::default() }
        })
        .collect()
}

fn main() {
    halo_bench::banner("Ablation: grouping algorithm (density-greedy vs modularity vs HCS)");
    println!(
        "{:<10} {:<12} {:>8} {:>14} {:>10}",
        "benchmark", "algorithm", "groups", "L1D misses", "vs base"
    );
    let workloads = halo_workloads::all();
    for name in ["health", "ft", "povray", "xalanc"] {
        let w = workloads.iter().find(|w| w.name == name).expect("known");
        let config = halo_bench::paper_config(w);
        let halo = Halo::new(config.halo);
        let profile =
            halo.profile_with_arg(&w.program, w.train.seed, w.train.arg).expect("profiling runs");
        let mut base_alloc = halo_mem::SizeClassAllocator::new();
        let base = measure(&w.program, &mut base_alloc, &config.measure).expect("base runs");

        let candidates: Vec<(&str, Vec<Group>)> = vec![
            ("density", group(&profile.graph, &config.halo.grouping)),
            ("modularity", clusters_to_groups(&profile.graph, modularity_clusters(&profile.graph))),
            (
                "hcs",
                clusters_to_groups(
                    &profile.graph,
                    hcs_clusters(&profile.graph, config.halo.grouping.min_weight),
                ),
            ),
        ];
        for (alg, groups) in candidates {
            let contexts = contexts_from_profile(&profile);
            let ident = identify(&groups, &contexts);
            let (rewritten, _) = instrument(&w.program, &ident.site_bits);
            let mut alloc =
                halo_mem::HaloGroupAllocator::new(config.halo.alloc, ident.table.clone());
            let m = measure(&rewritten, &mut alloc, &config.measure).expect("run ok");
            println!(
                "{:<10} {:<12} {:>8} {:>14} {:>10}",
                name,
                alg,
                groups.len(),
                m.stats.l1_misses,
                halo_bench::pct(m.miss_reduction_vs(&base)),
            );
        }
    }
}
