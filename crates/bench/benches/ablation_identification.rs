//! Identification ablation (§3, §5.2): HALO's full-context selectors vs
//! identifying the *same groups* by the immediate call site of the
//! allocation. Wrapper-heavy benchmarks collapse under immediate-site
//! identification because unrelated contexts share their final site.

use halo_core::{measure, Halo};
use std::collections::HashMap;

fn main() {
    halo_bench::banner("Ablation: full-context selectors vs immediate call sites");
    println!("{:<10} {:<14} {:>14} {:>10}", "benchmark", "identification", "L1D misses", "vs base");
    let workloads = halo_workloads::all();
    for name in ["health", "povray", "xalanc", "leela"] {
        let w = workloads.iter().find(|w| w.name == name).expect("known");
        let config = halo_bench::paper_config(w);
        let halo = Halo::new(config.halo);
        let opt =
            halo.optimise_with_arg(&w.program, w.train.seed, w.train.arg).expect("pipeline runs");
        let mut base_alloc = halo_mem::SizeClassAllocator::new();
        let base = measure(&w.program, &mut base_alloc, &config.measure).expect("base runs");

        // Full context: the real HALO configuration.
        let mut alloc = halo.make_allocator(&opt);
        let full = measure(&opt.program, &mut alloc, &config.measure).expect("runs");
        println!(
            "{:<10} {:<14} {:>14} {:>10}",
            name,
            "full-context",
            full.stats.l1_misses,
            halo_bench::pct(full.miss_reduction_vs(&base)),
        );

        // Immediate site: same groups, identified by each member's final
        // call site (no rewriting needed — runs the original binary).
        let mut site_map: HashMap<halo_vm::CallSite, usize> = HashMap::new();
        for (gi, g) in opt.groups.iter().enumerate() {
            for &m in &g.members {
                let chain = &opt.profile.context(m).chain;
                if let Some(&site) = chain.last() {
                    site_map.entry(site).or_insert(gi);
                }
            }
        }
        let mut site_alloc =
            halo_mem::HaloGroupAllocator::with_site_groups(config.halo.alloc, site_map);
        let site = measure(&w.program, &mut site_alloc, &config.measure).expect("runs");
        println!(
            "{:<10} {:<14} {:>14} {:>10}",
            name,
            "immediate-site",
            site.stats.l1_misses,
            halo_bench::pct(site.miss_reduction_vs(&base)),
        );
    }
}
