//! Granularity ablation (§6's page-granularity suggestion, which the paper
//! sketches for roms but never builds): run each benchmark under object,
//! page, and auto grouping granularity and report the L1D miss reduction,
//! the granularity auto resolved to, and whether it declined to group.
//!
//! The headline rows:
//!
//! * **roms** — object granularity cannot see the persistent grids (they
//!   exceed the 4 KiB tracked cap) and reports ~0%; page granularity
//!   groups the grid context, bump co-location staggers the page-aligned
//!   arrays across cache sets, and the same-index stencil stops
//!   thrashing. `auto` finds this on the train input and picks page.
//! * **omnetpp** — grouping per-module contexts splits each event wave
//!   across chunks at *both* granularities; `auto` measures the train
//!   regression and declines to group (0%, instead of the object mode's
//!   regression).
//! * The six direct-malloc benchmarks — object granularity already wins;
//!   `auto` keeps it.

use halo_graph::Granularity;

fn main() {
    halo_bench::banner("Ablation: grouping granularity (object | page | auto)");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>9}   auto resolved",
        "benchmark", "object", "page", "auto", "obj-cov"
    );
    let workloads = halo_workloads::all();
    for row in halo_core::par_map(&workloads, |w| {
        let run = |granularity: Granularity| {
            let mut config = halo_bench::paper_config(w);
            config.halo.profile.granularity = granularity;
            let (base, opt, optimised) = halo_bench::run_halo_only(w, &config);
            (opt.miss_reduction_vs(&base), optimised)
        };
        let (object, _) = run(Granularity::Object);
        let (page, _) = run(Granularity::Page);
        let (auto, resolved) = run(Granularity::Auto);
        // How much of the page-level (salient, uncapped) access stream do
        // the object-granularity groups cover? The auto run's profile has
        // both graphs; regroup its object graph to ask. roms's near-zero
        // row is the §6 diagnosis in one number.
        let object_groups =
            halo_graph::group(&resolved.profile.graph, &halo_bench::paper_config(w).halo.grouping);
        let coverage = resolved
            .profile
            .page_graph
            .coverage_of(object_groups.iter().flat_map(|g| g.members.iter().copied()));
        format!(
            "{:<10} {:>10} {:>10} {:>10} {:>8.1}%   {}{}",
            w.name,
            halo_bench::pct(object),
            halo_bench::pct(page),
            halo_bench::pct(auto),
            coverage * 100.0,
            resolved.granularity,
            if resolved.auto_declined { " (declined to group)" } else { "" },
        )
    }) {
        println!("{row}");
    }
}
