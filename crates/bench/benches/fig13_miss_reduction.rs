//! Figure 13: L1 data-cache miss reduction of hot-data-streams co-allocation
//! and HALO over the jemalloc-style baseline, across the 11 benchmarks.

fn main() {
    halo_bench::banner("Figure 13: L1D cache miss reduction vs jemalloc baseline");
    println!(
        "{:<10} {:>14} {:>14}   {:>14} {:>12}",
        "benchmark", "Chilimbi et al.", "HALO", "base misses", "halo misses"
    );
    for w in halo_workloads::all() {
        let r = halo_bench::run_workload(&w, false, false);
        let (hds, halo) = r.miss_reduction_row();
        println!(
            "{:<10} {:>14} {:>14}   {:>14} {:>12}",
            r.name,
            halo_bench::pct(hds),
            halo_bench::pct(halo),
            r.baseline.measurement.stats.l1_misses,
            r.halo.measurement.stats.l1_misses,
        );
    }
}
