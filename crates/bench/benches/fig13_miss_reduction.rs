//! Figure 13: L1 data-cache miss reduction of hot-data-streams co-allocation
//! and HALO over the jemalloc-style baseline, across the 11 benchmarks.
//!
//! The benchmarks are independent, so they fan out across cores
//! (`halo_core::par_map`); rows print in the figure's order regardless of
//! completion order. `HALO_THREADS=1` forces the serial path.

fn main() {
    halo_bench::banner("Figure 13: L1D cache miss reduction vs jemalloc baseline");
    println!(
        "{:<10} {:>14} {:>14}   {:>14} {:>12}",
        "benchmark", "Chilimbi et al.", "HALO", "base misses", "halo misses"
    );
    let workloads = halo_workloads::all();
    for row in halo_core::par_map(&workloads, |w| {
        let r = halo_bench::run_workload(w, &[]);
        let (hds, halo) = r.miss_reduction_row();
        format!(
            "{:<10} {:>14} {:>14}   {:>14} {:>12}",
            r.name,
            halo_bench::pct(hds),
            halo_bench::pct(halo),
            r.baseline().measurement.stats.l1_misses,
            r.halo().measurement.stats.l1_misses,
        )
    }) {
        println!("{row}");
    }
}
