//! Co-allocatability ablation (§4.1): the fourth affinity-queue constraint
//! drops edges between contexts whose objects could never actually be
//! adjacent in a shared bump pool. Without it, groups form around
//! unrealisable affinities and the allocator's layout no longer matches
//! the graph's promises.

use halo_core::Halo;

fn main() {
    halo_bench::banner("Ablation: co-allocatability constraint on/off");
    println!(
        "{:<10} {:<6} {:>8} {:>12} {:>14} {:>10}",
        "benchmark", "constr", "groups", "graph edges", "L1D misses", "vs base"
    );
    let workloads = halo_workloads::all();
    for name in ["health", "ft", "omnetpp"] {
        let w = workloads.iter().find(|w| w.name == name).expect("known");
        for enforce in [true, false] {
            let mut config = halo_bench::paper_config(w);
            config.halo.profile.enforce_coallocatability = enforce;
            let halo = Halo::new(config.halo);
            let opt = halo
                .optimise_with_arg(&w.program, w.train.seed, w.train.arg)
                .expect("pipeline runs");
            let (base, m, _) = halo_bench::run_halo_only(w, &config);
            println!(
                "{:<10} {:<6} {:>8} {:>12} {:>14} {:>10}",
                name,
                if enforce { "on" } else { "off" },
                opt.groups.len(),
                opt.profile.graph.edge_count(),
                m.stats.l1_misses,
                halo_bench::pct(m.miss_reduction_vs(&base)),
            );
        }
    }
}
