//! Chunk-size and spare-chunk-policy ablation (§5.1 configuration, §A.8
//! flags): the paper runs most benchmarks with 1 MiB chunks and one spare
//! chunk, omnetpp with 128 KiB chunks, and omnetpp/xalanc with chunks
//! always reused. This harness sweeps both knobs on health and reports
//! misses and fragmentation.

fn main() {
    halo_bench::banner("Ablation: chunk size × spare-chunk policy (health)");
    println!(
        "{:>10} {:>8} {:>14} {:>10} {:>10} {:>12}",
        "chunk", "spare", "L1D misses", "vs base", "frag %", "wasted"
    );
    let workloads = halo_workloads::all();
    let w = workloads.iter().find(|w| w.name == "health").expect("health exists");
    for chunk_size in [64 << 10, 256 << 10, 1 << 20, 4 << 20] {
        for (label, spare) in [("0", 0usize), ("1", 1), ("inf", usize::MAX)] {
            let mut config = halo_bench::paper_config(w);
            config.halo.alloc.chunk_size = chunk_size;
            config.halo.alloc.slab_size = (chunk_size * 64).max(1 << 22);
            config.halo.alloc.max_spare_chunks = spare;
            let halo = halo_core::Halo::new(config.halo);
            let opt = halo
                .optimise_with_arg(&w.program, w.train.seed, w.train.arg)
                .expect("pipeline runs");
            let mut base_alloc = halo_mem::SizeClassAllocator::new();
            let base = halo_core::measure(&w.program, &mut base_alloc, &config.measure)
                .expect("base runs");
            let mut alloc = halo.make_allocator(&opt);
            let m =
                halo_core::measure(&opt.program, &mut alloc, &config.measure).expect("halo runs");
            let frag = alloc.frag_report();
            println!(
                "{:>10} {:>8} {:>14} {:>10} {:>9.2}% {:>12}",
                halo_bench::human_bytes(chunk_size),
                label,
                m.stats.l1_misses,
                halo_bench::pct(m.miss_reduction_vs(&base)),
                frag.frag_fraction() * 100.0,
                halo_bench::human_bytes(frag.wasted_bytes()),
            );
        }
    }
}
