//! Coherence ablation: does per-thread sharding actually cut invalidation
//! traffic? The paper's §5.4 motivates thread-sharded arenas by contention
//! on shared allocator state; the MESI-lite model makes the claim
//! measurable in simulation. For each multi-threaded workload this harness
//! measures the jemalloc-style baseline, plain HALO (one arena — producer
//! and consumer objects share lines), and `halo-sharded` (per-thread
//! shards), printing misses, simulated cycles, the coherence counters, and
//! the per-thread miss breakdown, then states the sharded-vs-plain
//! invalidation verdict the acceptance gate checks.
//!
//! Like the Criterion micro-benches, the first non-flag CLI argument
//! filters the benchmark list (`cargo bench --bench ablation_coherence
//! -- server` runs just the server rows) — CI's bench-smoke step relies
//! on this to stay cheap.

use halo_core::ConfigResult;

fn thread_misses(r: &ConfigResult) -> String {
    let parts: Vec<String> =
        r.thread_stats.iter().map(|t| format!("t{}:{}", t.thread, t.stats.l1_misses)).collect();
    format!("[{}]", parts.join(" "))
}

fn row(name: &str, id: &str, r: &ConfigResult) {
    let c = r.measurement.coherence;
    println!(
        "{:<10} {:<13} {:>12} {:>14.0} {:>8} {:>8} {:>8}   {}",
        name,
        id,
        r.measurement.stats.l1_misses,
        r.measurement.cycles,
        c.invalidations,
        c.upgrades,
        c.remote_fills,
        thread_misses(r),
    );
}

fn main() {
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    halo_bench::banner("Ablation: coherence traffic, sharded vs plain HALO");
    println!(
        "{:<10} {:<13} {:>12} {:>14} {:>8} {:>8} {:>8}   per-thread L1D misses",
        "benchmark", "backend", "L1D misses", "cycles", "inval", "upgrade", "rfill"
    );
    for w in halo_workloads::multithreaded() {
        if filter.as_deref().is_some_and(|needle| !w.name.contains(needle)) {
            continue;
        }
        let result = halo_bench::run_workload(&w, &["halo-sharded"]);
        let plain = result.halo();
        let sharded = result.get("halo-sharded").expect("extra backend measured");
        row(w.name, "baseline", result.baseline());
        row(w.name, "halo", plain);
        row(w.name, "halo-sharded", sharded);
        let pc = plain.measurement.coherence;
        let sc = sharded.measurement.coherence;
        let verdict = if sc.invalidations < pc.invalidations { "FEWER" } else { "NOT FEWER" };
        println!(
            "{:<10} sharded invalidations vs plain: {} ({} vs {})",
            w.name, verdict, sc.invalidations, pc.invalidations
        );
    }
}
