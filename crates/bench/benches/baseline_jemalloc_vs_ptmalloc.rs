//! §5.1 baseline comparison: "Initial experiments show that [jemalloc]
//! universally outperforms ptmalloc2 from glibc 2.27, reducing L1
//! data-cache misses by as much as 32%, and thus provides a more
//! aggressive baseline against which to measure."

fn main() {
    let spec = halo_core::backend_spec("ptmalloc").expect("registered backend");
    halo_bench::banner("§5.1: jemalloc-style vs ptmalloc2-style baseline");
    println!(
        "{:<10} {:>16} {:>16} {:>22}",
        "benchmark", "jemalloc misses", "ptmalloc misses", "jemalloc advantage"
    );
    for w in halo_workloads::all() {
        let (je, pt) = halo_bench::run_backend_pair(&w, spec.id);
        let advantage = 1.0 - je.stats.l1_misses as f64 / pt.stats.l1_misses.max(1) as f64;
        println!(
            "{:<10} {:>16} {:>16} {:>22}",
            w.name,
            je.stats.l1_misses,
            pt.stats.l1_misses,
            halo_bench::pct(advantage),
        );
    }
}
