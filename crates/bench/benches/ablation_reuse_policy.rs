//! Future-work ablation (§6): bump allocation vs. mimalloc-style free-list
//! sharding inside group chunks. The paper names fragmentation as its
//! prototype's main weakness and suggests exactly this replacement; the
//! interesting trade-off is fragmentation (Table 1's metric) against the
//! contiguity that bump allocation guarantees (misses).

use halo_core::{measure, Halo};
use halo_mem::ReusePolicy;

fn main() {
    halo_bench::banner("Ablation: in-chunk reuse policy (bump vs sharded free lists)");
    println!(
        "{:<10} {:<10} {:>14} {:>10} {:>10} {:>12}",
        "benchmark", "policy", "L1D misses", "vs base", "frag %", "wasted"
    );
    let workloads = halo_workloads::all();
    for name in ["leela", "health", "omnetpp", "povray"] {
        let w = workloads.iter().find(|w| w.name == name).expect("known");
        for (label, policy) in
            [("bump", ReusePolicy::Bump), ("sharded", ReusePolicy::ShardedFreeLists)]
        {
            let mut config = halo_bench::paper_config(w);
            config.halo.alloc.reuse_policy = policy;
            let halo = Halo::new(config.halo);
            let opt = halo
                .optimise_with_arg(&w.program, w.train.seed, w.train.arg)
                .expect("pipeline runs");
            let mut base_alloc = halo_mem::SizeClassAllocator::new();
            let base = measure(&w.program, &mut base_alloc, &config.measure).expect("base runs");
            let mut alloc = halo.make_allocator(&opt);
            let m = measure(&opt.program, &mut alloc, &config.measure).expect("halo runs");
            let frag = alloc.frag_report();
            println!(
                "{:<10} {:<10} {:>14} {:>10} {:>9.2}% {:>12}",
                name,
                label,
                m.stats.l1_misses,
                halo_bench::pct(m.miss_reduction_vs(&base)),
                frag.frag_fraction() * 100.0,
                halo_bench::human_bytes(frag.wasted_bytes()),
            );
        }
    }
}
