//! Future-work ablation (§6): bump allocation vs. mimalloc-style free-list
//! sharding inside group chunks, plus the per-group `auto` policy that
//! promotes the winner. The paper names fragmentation as its prototype's
//! main weakness and suggests exactly this replacement; the interesting
//! trade-off is fragmentation (Table 1's metric) against the contiguity
//! that bump allocation guarantees (misses). `auto` resolves the tension
//! per group: flips are validated on the train input and kept only where
//! they cut fragmentation without costing misses.
//!
//! Like the Criterion micro-benches, the first non-flag CLI argument
//! filters the benchmark list (`cargo bench --bench ablation_reuse_policy
//! -- leela` runs just the leela rows) — CI's bench-smoke step relies on
//! this to stay cheap.

use halo_core::{measure, Halo};
use halo_graph::ReusePolicyChoice;

fn main() {
    let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
    halo_bench::banner("Ablation: in-chunk reuse policy (bump | sharded | per-group auto)");
    println!(
        "{:<10} {:<10} {:>14} {:>10} {:>10} {:>12}   resolved plans",
        "benchmark", "policy", "L1D misses", "vs base", "frag %", "wasted"
    );
    let workloads = halo_workloads::all();
    for name in ["leela", "health", "omnetpp", "povray"] {
        if filter.as_deref().is_some_and(|needle| !name.contains(needle)) {
            continue;
        }
        let w = workloads.iter().find(|w| w.name == name).expect("known");
        for choice in ReusePolicyChoice::ALL {
            let mut config = halo_bench::paper_config(w);
            config.halo.reuse = choice;
            let halo = Halo::new(config.halo);
            let opt = halo
                .optimise_with_arg(&w.program, w.train.seed, w.train.arg)
                .expect("pipeline runs");
            let mut base_alloc = halo_mem::SizeClassAllocator::new();
            let base = measure(&w.program, &mut base_alloc, &config.measure).expect("base runs");
            let mut alloc = halo.make_allocator(&opt);
            let m = measure(&opt.program, &mut alloc, &config.measure).expect("halo runs");
            let frag = alloc.frag_report();
            let plans: Vec<String> =
                opt.groups.iter().enumerate().map(|(i, g)| format!("g{i} {}", g.plan)).collect();
            println!(
                "{:<10} {:<10} {:>14} {:>10} {:>9.2}% {:>12}   [{}]",
                name,
                choice.to_string(),
                m.stats.l1_misses,
                halo_bench::pct(m.miss_reduction_vs(&base)),
                frag.frag_fraction() * 100.0,
                halo_bench::human_bytes(frag.wasted_bytes()),
                plans.join(", "),
            );
        }
    }
}
