//! Criterion micro-benchmarks of the pipeline's algorithmic components:
//! affinity-queue throughput, grouping, SEQUITUR, selector evaluation, and
//! allocator hot paths. These are performance regressions guards for the
//! library itself (the figures/tables live in the `harness = false`
//! targets).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use halo_graph::{group, AffinityGraph, GroupingParams};
use halo_hds::Grammar;
use halo_mem::{
    GroupAllocConfig, GroupSelector, HaloGroupAllocator, SelectorTable, SizeClassAllocator,
};
use halo_profile::{AffinityQueue, QueueEntry};
use halo_vm::{CallSite, FuncId, GroupState, Memory, SplitMix64, VmAllocator};

fn synthetic_graph(nodes: u32, seed: u64) -> AffinityGraph {
    let mut g = AffinityGraph::new();
    let mut rng = SplitMix64::new(seed);
    let ids: Vec<_> = (0..nodes).map(|_| g.add_node(rng.next_below(10_000) + 1)).collect();
    // Clustered edges: dense within blocks of 8, sparse across.
    for (i, &u) in ids.iter().enumerate() {
        for (j, &v) in ids.iter().enumerate().skip(i + 1) {
            let same_block = i / 8 == j / 8;
            let p = if same_block { 2 } else { 64 };
            if rng.next_below(p) == 0 {
                g.add_edge_weight(u, v, rng.next_below(1000) + 1);
            }
        }
    }
    g
}

fn bench_grouping(c: &mut Criterion) {
    let graph = synthetic_graph(160, 42);
    let params = GroupingParams { min_weight: 1, ..Default::default() };
    c.bench_function("grouping/density_160_nodes", |b| {
        b.iter(|| group(std::hint::black_box(&graph), &params))
    });
}

fn bench_affinity_queue(c: &mut Criterion) {
    // Body shared with `halo bench` (halo_bench::affinity_queue_100k) so
    // the committed BENCH_profile.json rows stay comparable to this one.
    c.bench_function("profile/affinity_queue_100k", |b| b.iter(halo_bench::affinity_queue_100k));
    // Streaming variant: partners visit a closure instead of the reusable
    // scratch buffer — the shape the profiler itself uses.
    c.bench_function("profile/affinity_queue_100k_streaming", |b| {
        b.iter_batched(
            || AffinityQueue::new(128),
            |mut q| {
                let mut rng = SplitMix64::new(7);
                let mut partner_bytes = 0u64;
                for i in 0..100_000u64 {
                    let obj = rng.next_below(64);
                    let entry = QueueEntry {
                        obj,
                        ctx: halo_graph::NodeId((obj % 8) as u32),
                        alloc_seq: i,
                        size: 8,
                    };
                    q.record_with(entry, |p| partner_bytes += p.size);
                }
                partner_bytes
            },
            BatchSize::SmallInput,
        )
    });
    // The pre-ring shape (VecDeque scan + fresh HashSet/Vec per record),
    // kept as a reference point for the old-vs-new comparison; the same
    // implementation is the property tests' behavioural oracle.
    c.bench_function("profile/affinity_queue_100k_legacy_shape", |b| {
        b.iter_batched(
            || halo_bench::ReferenceAffinityQueue::new(128),
            |mut q| {
                let mut rng = SplitMix64::new(7);
                for i in 0..100_000u64 {
                    let obj = rng.next_below(64);
                    q.record(QueueEntry {
                        obj,
                        ctx: halo_graph::NodeId((obj % 8) as u32),
                        alloc_seq: i,
                        size: 8,
                    });
                }
                q.entries.len()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_object_tracker(c: &mut Criterion) {
    // 1k live 40-byte objects, uniformly random lookups: the page index's
    // worst-friendly case (the last-hit cache misses ~100% of the time).
    // Body shared with `halo bench` (halo_bench::object_find_100k).
    c.bench_function("profile/object_find_100k", |b| b.iter(halo_bench::object_find_100k));
    // The pre-index shape: a plain BTreeMap range query per find.
    c.bench_function("profile/object_find_100k_btree_shape", |b| {
        let mut t: std::collections::BTreeMap<u64, (u64, u64)> = Default::default();
        for i in 0..1000u64 {
            let start = 0x1000 + i * 48;
            t.insert(start, (start + 40, i));
        }
        b.iter(|| {
            let mut rng = SplitMix64::new(11);
            let mut hits = 0u64;
            for _ in 0..100_000 {
                let obj = rng.next_below(1000);
                let addr = 0x1000 + obj * 48 + rng.next_below(48);
                if let Some((_, &(end, _))) = t.range(..=std::hint::black_box(addr)).next_back() {
                    if addr < end {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
}

fn bench_coherent_cache(c: &mut Criterion) {
    // Shared body with `halo bench` (same name ⇒ comparable rows in
    // BENCH_profile.json): four logical threads through the MESI-lite
    // coherent hierarchy, mixing private and contended shared lines.
    c.bench_function("cache/coherent_access_100k", |b| b.iter(halo_bench::coherent_access_100k));
}

fn bench_sequitur(c: &mut Criterion) {
    let mut rng = SplitMix64::new(3);
    let input: Vec<u32> = (0..50_000).map(|_| rng.next_below(32) as u32).collect();
    c.bench_function("hds/sequitur_50k_symbols", |b| {
        b.iter(|| Grammar::build(std::hint::black_box(&input)).num_rules())
    });
}

fn bench_selector_classify(c: &mut Criterion) {
    let selectors = (0..16)
        .map(|g| GroupSelector {
            group: g,
            conjunctions: vec![vec![g as u16 * 2, g as u16 * 2 + 1]],
        })
        .collect();
    let table = SelectorTable::new(selectors, 32);
    let mut gs = GroupState::new(32);
    gs.set(30);
    gs.set(31);
    c.bench_function("mem/selector_classify_miss_16_groups", |b| {
        b.iter(|| table.classify(std::hint::black_box(&gs)))
    });
}

fn bench_allocators(c: &mut Criterion) {
    let site = CallSite::new(FuncId(0), 0);
    c.bench_function("mem/size_class_malloc_free_1k", |b| {
        b.iter_batched(
            || (SizeClassAllocator::new(), GroupState::default(), Memory::new()),
            |(mut a, gs, mut mem)| {
                let mut ptrs = Vec::with_capacity(1000);
                for i in 0..1000u64 {
                    ptrs.push(a.malloc(8 + (i % 8) * 16, site, &gs, &mut mem));
                }
                for p in ptrs {
                    a.free(p, &mut mem);
                }
            },
            BatchSize::SmallInput,
        )
    });
    // Shared body with `halo bench` (same name ⇒ comparable rows in
    // BENCH_profile.json): grouped hot path under per-group plans.
    c.bench_function("mem/group_alloc_malloc_free_100k", |b| {
        b.iter(halo_bench::group_alloc_malloc_free_100k)
    });
    // Shared with `halo bench` likewise: the thread-safe sharded runtime
    // under real producer/consumer threads and remote frees.
    c.bench_function("mem/sharded_alloc_mt", |b| b.iter(halo_bench::sharded_alloc_mt));
    // Shared with `halo bench` likewise: epoch-based plan hot-swaps under
    // steady allocation traffic (the `halo serve` transition, §15).
    c.bench_function("serve/plan_swap", |b| b.iter(halo_bench::serve_plan_swap));
    c.bench_function("mem/group_alloc_malloc_free_1k", |b| {
        let table =
            SelectorTable::new(vec![GroupSelector { group: 0, conjunctions: vec![vec![0]] }], 1);
        b.iter_batched(
            || {
                let a = HaloGroupAllocator::new(GroupAllocConfig::default(), table.clone());
                let mut gs = GroupState::new(1);
                gs.set(0);
                (a, gs, Memory::new())
            },
            |(mut a, gs, mut mem)| {
                let mut ptrs = Vec::with_capacity(1000);
                for i in 0..1000u64 {
                    ptrs.push(a.malloc(8 + (i % 8) * 16, site, &gs, &mut mem));
                }
                for p in ptrs {
                    a.free(p, &mut mem);
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_grouping, bench_affinity_queue, bench_object_tracker,
              bench_coherent_cache, bench_sequitur, bench_selector_classify,
              bench_allocators
}
criterion_main!(benches);
