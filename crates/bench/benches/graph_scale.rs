//! Criterion benchmarks of the million-node graph pipeline (DESIGN.md
//! §13): sharded generation → parallel subgraph union → CSR finalise
//! (`graph/build_csr_1m`) and one Fig. 6 grouping pass over the finalised
//! graph (`graph/group_1m_nodes`).
//!
//! Bodies are shared with `halo bench` (halo_bench::build_graph /
//! group_graph_nodes), so the committed BENCH_profile.json rows stay
//! comparable to these. `HALO_GRAPH_BENCH_NODES` shrinks the scale for CI
//! smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use halo_bench::{build_graph, group_graph_nodes, GraphSpec};

fn bench_graph_scale(c: &mut Criterion) {
    let spec = GraphSpec::from_env();
    c.bench_function("graph/build_csr_1m", |b| {
        b.iter(|| std::hint::black_box(build_graph(&spec)).len())
    });
    let graph = build_graph(&spec);
    c.bench_function("graph/group_1m_nodes", |b| {
        b.iter(|| std::hint::black_box(group_graph_nodes(&graph)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_graph_scale
}
criterion_main!(benches);
