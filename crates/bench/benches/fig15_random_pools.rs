//! Figure 15: execution-time change under an allocator that randomly
//! assigns small objects to one of four bump-allocated pools — "much in the
//! same way that a variant of HALO with an extremely poor grouping
//! algorithm might". Benchmarks sensitive to this extreme policy are the
//! ones where small-object placement matters at all.

fn main() {
    let spec = halo_core::backend_spec("random").expect("registered backend");
    halo_bench::banner(&format!("Figure 15: speedup under the {} allocator", spec.label));
    println!(
        "{:<10} {:>10}   {:>16} {:>16}",
        "benchmark", "speedup", "base Mcycles", "random Mcycles"
    );
    for w in halo_workloads::all() {
        let (base, rnd) = halo_bench::run_backend_pair(&w, spec.id);
        println!(
            "{:<10} {:>10}   {:>16.2} {:>16.2}",
            w.name,
            halo_bench::pct(rnd.speedup_vs(&base)),
            base.cycles / 1e6,
            rnd.cycles / 1e6,
        );
    }
    println!(
        "\n(benchmarks with large swings are exactly those where HALO's layout\n\
         decisions matter; unaffected ones are insensitive to small-object placement)"
    );
}
