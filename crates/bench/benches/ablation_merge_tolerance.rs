//! Merge-tolerance ablation (§4.2): "This slack in the merge-benefit
//! calculation can be controlled through the tolerance parameter T, which
//! we find performs well at around 5%. … Without this proviso, merging
//! behaviour would be too strict, and the majority of groups would consist
//! only of one or two nodes around the strongest edges."

use halo_core::Halo;

fn main() {
    halo_bench::banner("Ablation: merge tolerance T (grouping slack)");
    println!(
        "{:<10} {:>6} {:>8} {:>12} {:>14} {:>10}",
        "benchmark", "T", "groups", "max members", "L1D misses", "vs base"
    );
    let workloads = halo_workloads::all();
    for name in ["povray", "health", "xalanc"] {
        let w = workloads.iter().find(|w| w.name == name).expect("known");
        for t in [0.0, 0.01, 0.05, 0.15, 0.40] {
            let mut config = halo_bench::paper_config(w);
            config.halo.grouping.merge_tolerance = t;
            let halo = Halo::new(config.halo);
            let opt = halo
                .optimise_with_arg(&w.program, w.train.seed, w.train.arg)
                .expect("pipeline runs");
            let (base, m, _) = halo_bench::run_halo_only(w, &config);
            let max_members = opt.groups.iter().map(|g| g.members.len()).max().unwrap_or(0);
            println!(
                "{:<10} {:>6.2} {:>8} {:>12} {:>14} {:>10}",
                name,
                t,
                opt.groups.len(),
                max_members,
                m.stats.l1_misses,
                halo_bench::pct(m.miss_reduction_vs(&base)),
            );
        }
    }
}
