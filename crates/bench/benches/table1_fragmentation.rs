//! Table 1: fragmentation behaviour of grouped objects at peak memory
//! usage — percentage of resident grouped memory that is not live, and the
//! absolute wasted bytes.

fn main() {
    halo_bench::banner("Table 1: fragmentation of grouped data at peak usage");
    println!(
        "{:<10} {:>10} {:>14} {:>16} {:>14}",
        "benchmark", "Frag. (%)", "Frag. (bytes)", "peak resident", "grouped allocs"
    );
    // The paper lists the nine benchmarks where this could be measured.
    let order = ["health", "equake", "analyzer", "ammp", "art", "ft", "povray", "roms", "leela"];
    let workloads = halo_workloads::all();
    for name in order {
        let w = workloads.iter().find(|w| w.name == name).expect("known benchmark");
        let r = halo_bench::run_workload(w, &[]);
        let frag = r.halo().frag.expect("HALO config reports fragmentation");
        let stats = r.halo().alloc_stats.expect("HALO config reports allocator stats");
        println!(
            "{:<10} {:>9.2}% {:>14} {:>16} {:>14}",
            name,
            frag.frag_fraction() * 100.0,
            halo_bench::human_bytes(frag.wasted_bytes()),
            halo_bench::human_bytes(frag.peak_resident_bytes),
            stats.grouped_allocs,
        );
    }
}
