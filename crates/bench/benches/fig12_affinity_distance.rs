//! Figure 12: time taken by omnetpp at various affinity distances
//! (A ∈ {2³ … 2¹⁷}), against the median baseline time as a reference line.
//!
//! The paper uses this sweep to select A = 128 for the evaluation. Our
//! omnetpp model responds only weakly to layout optimisation (see
//! EXPERIMENTS.md), so the harness also prints the same sweep for health,
//! where the characteristic shape — good at moderate distances, degrading
//! at the extremes — is clearly visible.
//!
//! The fifteen distance points are independent pipeline runs, so each
//! benchmark's sweep fans out across cores (`halo_core::par_map`) with
//! rows printed in ascending-A order. `HALO_THREADS=1` forces the serial
//! path.

fn main() {
    halo_bench::banner("Figure 12: simulated time vs affinity distance");
    let workloads = halo_workloads::all();
    for name in ["omnetpp", "health"] {
        let w = workloads.iter().find(|w| w.name == name).expect("known benchmark");
        let config = halo_bench::paper_config(w);
        // Baseline reference (the dashed line in the paper's figure).
        let mut base_alloc = halo_mem::SizeClassAllocator::new();
        let base = halo_core::measure(&w.program, &mut base_alloc, &config.measure)
            .expect("baseline runs");
        println!("\n--- {name}: baseline {:.2} Mcycles ---", base.cycles / 1e6);
        println!(
            "{:>10} {:>14} {:>10} {:>8} {:>16}",
            "A (bytes)", "halo Mcycles", "vs base", "groups", "profile Mqueue-ops"
        );
        let distances: Vec<u64> = (3..=17u32).map(|exp| 1u64 << exp).collect();
        for row in halo_core::par_map(&distances, |&a| {
            let mut cfg = config.clone();
            cfg.halo.profile.affinity_distance = a;
            let (_, halo, optimised) = halo_bench::run_halo_only(w, &cfg);
            format!(
                "{:>10} {:>14.2} {:>10} {:>8} {:>16.2}",
                a,
                halo.cycles / 1e6,
                halo_bench::pct(halo.speedup_vs(&base)),
                optimised.groups.len(),
                optimised.profile.queue_work as f64 / 1e6,
            )
        }) {
            println!("{row}");
        }
    }
}
