//! Figure 14: execution-time improvement of hot-data-streams co-allocation
//! and HALO over the jemalloc-style baseline, across the 11 benchmarks.

fn main() {
    halo_bench::banner("Figure 14: speedup vs jemalloc baseline (simulated cycles)");
    println!(
        "{:<10} {:>14} {:>14}   {:>16} {:>14}",
        "benchmark", "Chilimbi et al.", "HALO", "base Mcycles", "halo Mcycles"
    );
    for w in halo_workloads::all() {
        let r = halo_bench::run_workload(&w, false, false);
        let (hds, halo) = r.speedup_row();
        println!(
            "{:<10} {:>14} {:>14}   {:>16.2} {:>14.2}",
            r.name,
            halo_bench::pct(hds),
            halo_bench::pct(halo),
            r.baseline.measurement.cycles / 1e6,
            r.halo.measurement.cycles / 1e6,
        );
    }
}
