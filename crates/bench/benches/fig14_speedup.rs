//! Figure 14: execution-time improvement of hot-data-streams co-allocation
//! and HALO over the jemalloc-style baseline, across the 11 benchmarks.
//!
//! The benchmarks are independent, so they fan out across cores
//! (`halo_core::par_map`); rows print in the figure's order regardless of
//! completion order. `HALO_THREADS=1` forces the serial path.

fn main() {
    halo_bench::banner("Figure 14: speedup vs jemalloc baseline (simulated cycles)");
    println!(
        "{:<10} {:>14} {:>14}   {:>16} {:>14}",
        "benchmark", "Chilimbi et al.", "HALO", "base Mcycles", "halo Mcycles"
    );
    let workloads = halo_workloads::all();
    for row in halo_core::par_map(&workloads, |w| {
        let r = halo_bench::run_workload(w, &[]);
        let (hds, halo) = r.speedup_row();
        format!(
            "{:<10} {:>14} {:>14}   {:>16.2} {:>14.2}",
            r.name,
            halo_bench::pct(hds),
            halo_bench::pct(halo),
            r.baseline().measurement.cycles / 1e6,
            r.halo().measurement.cycles / 1e6,
        )
    }) {
        println!("{row}");
    }
}
