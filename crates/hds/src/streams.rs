//! Hot data stream extraction (Chilimbi, PLDI'01).
//!
//! A *data stream* is a repeated subsequence of the reference trace; its
//! *heat* is `length × frequency`. The analysis extracts **minimal hot
//! streams** — grammar-rule expansions within a length window whose
//! accumulated heat covers a target fraction of the trace — mirroring the
//! configuration HALO replicates: "minimal hot data streams that contain
//! between 2 and 20 elements, with the stream threshold set to account for
//! 90% of all heap accesses" (§5.1).

use crate::sequitur::Grammar;

/// Stream-extraction parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Minimum stream length in elements (paper: 2).
    pub min_len: usize,
    /// Maximum stream length in elements (paper: 20).
    pub max_len: usize,
    /// Fraction of total trace heat the selected streams must cover
    /// (paper: 0.9).
    pub coverage: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig { min_len: 2, max_len: 20, coverage: 0.9 }
    }
}

/// A hot data stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stream {
    /// The repeated object-id sequence.
    pub symbols: Vec<u32>,
    /// Occurrences in the trace.
    pub frequency: u64,
    /// `symbols.len() × frequency`.
    pub heat: u64,
}

/// Result of stream extraction.
#[derive(Debug, Clone, Default)]
pub struct StreamAnalysis {
    /// The selected minimal hot streams, hottest first.
    pub streams: Vec<Stream>,
    /// Grammar rules considered (the paper's roms discussion counts the
    /// streams a program *needs*; this is the candidate pool size).
    pub candidates: usize,
    /// Fraction of the trace the selected streams cover.
    pub achieved_coverage: f64,
}

/// Extract minimal hot data streams from `trace`.
pub fn extract_streams(trace: &[u32], config: &StreamConfig) -> StreamAnalysis {
    if trace.is_empty() {
        return StreamAnalysis::default();
    }
    let mut grammar = Grammar::build(trace);

    // Candidates: rule expansions within the length window. Expansions
    // longer than the window are truncated to their first `max_len`
    // elements — the stream-formation-threshold behaviour §5.2 describes
    // (long regularities are cut short rather than represented whole).
    struct Candidate {
        symbols: Vec<u32>,
        frequency: u64,
        heat: u64,
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for r in grammar.rule_ids() {
        let full = grammar.expansion(r);
        if full.len() < config.min_len {
            continue;
        }
        let freq = grammar.frequency(r);
        let symbols: Vec<u32> = full.iter().copied().take(config.max_len).collect();
        let heat = symbols.len() as u64 * freq;
        candidates.push(Candidate { symbols, frequency: freq, heat });
    }
    let pool = candidates.len();

    // Hottest first; accumulate until the coverage target.
    candidates.sort_by(|a, b| b.heat.cmp(&a.heat).then(a.symbols.cmp(&b.symbols)));
    let total_heat = trace.len() as u64;
    let target = (total_heat as f64 * config.coverage).ceil() as u64;
    let mut covered = 0u64;
    let mut streams: Vec<Stream> = Vec::new();
    for c in candidates {
        if covered >= target {
            break;
        }
        // Minimality: skip candidates that overlap an already-selected
        // stream — either containing one as a contiguous subsequence
        // (covered by it) or being contained in one (its heat was already
        // accounted for by the enclosing selection).
        let overlaps_selected = streams.iter().any(|s| {
            let (short, long) = if s.symbols.len() <= c.symbols.len() {
                (&s.symbols, &c.symbols)
            } else {
                (&c.symbols, &s.symbols)
            };
            long.windows(short.len()).any(|w| w == short.as_slice())
        });
        if overlaps_selected {
            continue;
        }
        covered = covered.saturating_add(c.heat);
        streams.push(Stream { symbols: c.symbols, frequency: c.frequency, heat: c.heat });
    }

    StreamAnalysis {
        streams,
        candidates: pool,
        achieved_coverage: (covered.min(total_heat)) as f64 / total_heat as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StreamConfig {
        StreamConfig { min_len: 2, max_len: 20, coverage: 0.9 }
    }

    #[test]
    fn repeated_pattern_is_one_hot_stream() {
        let mut trace = Vec::new();
        for _ in 0..50 {
            trace.extend_from_slice(&[1, 2, 3]);
        }
        let a = extract_streams(&trace, &cfg());
        assert!(!a.streams.is_empty());
        // The hottest stream expands (directly or hierarchically) from the
        // (1,2,3) repetition.
        let hot = &a.streams[0];
        assert!(hot.heat >= trace.len() as u64 / 2);
        assert!(a.achieved_coverage >= 0.9);
    }

    #[test]
    fn empty_trace_yields_nothing() {
        let a = extract_streams(&[], &cfg());
        assert!(a.streams.is_empty());
        assert_eq!(a.candidates, 0);
    }

    #[test]
    fn incompressible_trace_yields_no_streams() {
        let trace: Vec<u32> = (0..100).collect();
        let a = extract_streams(&trace, &cfg());
        assert!(a.streams.is_empty());
        assert_eq!(a.achieved_coverage, 0.0);
    }

    #[test]
    fn max_len_truncates_long_regularities() {
        // One long repeated block of 60 symbols.
        let block: Vec<u32> = (0..60).collect();
        let mut trace = Vec::new();
        for _ in 0..10 {
            trace.extend_from_slice(&block);
        }
        let a = extract_streams(&trace, &cfg());
        for s in &a.streams {
            assert!(s.symbols.len() <= 20);
        }
    }

    #[test]
    fn object_scatter_inflates_stream_count() {
        // The roms pathology (§5.2): the same *context-level* pattern over
        // many distinct objects scatters into many distinct streams. Pattern
        // P(k) = [k, k+1] for 60 different k's, each repeated a few times,
        // vs. the same heat concentrated in one pattern.
        let mut scattered = Vec::new();
        for k in 0..60u32 {
            for _ in 0..4 {
                scattered.extend_from_slice(&[1000 + 2 * k, 1001 + 2 * k]);
            }
        }
        let mut concentrated = Vec::new();
        for _ in 0..240 {
            concentrated.extend_from_slice(&[1, 2]);
        }
        let a = extract_streams(&scattered, &cfg());
        let b = extract_streams(&concentrated, &cfg());
        assert!(
            a.streams.len() >= 10 * b.streams.len().max(1),
            "scatter: {} vs concentrated: {}",
            a.streams.len(),
            b.streams.len()
        );
    }

    #[test]
    fn streams_are_sorted_by_heat() {
        let mut trace = Vec::new();
        for _ in 0..100 {
            trace.extend_from_slice(&[1, 2]);
        }
        for _ in 0..10 {
            trace.extend_from_slice(&[7, 8, 9]);
        }
        let a = extract_streams(&trace, &cfg());
        for w in a.streams.windows(2) {
            assert!(w[0].heat >= w[1].heat);
        }
    }
}
