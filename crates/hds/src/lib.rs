//! The hot-data-streams co-allocation technique (Chilimbi & Shaham,
//! PLDI'06) — the state-of-the-art comparison point of the paper's
//! evaluation (§5.1 "Comparison Technique").
//!
//! Pipeline, replicated as the HALO authors describe their replication:
//!
//! 1. collect an object-granularity data-reference trace
//!    ([`halo_profile::TraceCollector`]);
//! 2. compress it with **SEQUITUR** ([`Grammar`]);
//! 3. extract **minimal hot data streams** of 2–20 elements covering 90% of
//!    accesses ([`extract_streams`]);
//! 4. turn each stream into a **co-allocation set** with a projected
//!    miss-reduction benefit, and select a disjoint family by greedy
//!    **weighted set packing** ([`coallocation_sets`], [`pack_sets`]);
//! 5. identify groups at runtime by the **immediate call site** of the
//!    allocation ([`analyze`] produces the site map consumed by
//!    [`halo_mem::HaloGroupAllocator::with_site_groups`]).
//!
//! The deliberate weaknesses the paper demonstrates — wrapper functions
//! collapsing every context onto one call site (povray, leela), and
//! object-granularity traces scattering context-level regularities across
//! hundreds of thousands of streams (roms) — emerge from this
//! implementation naturally; see the `fig13`/`fig14` benches.

mod packing;
mod sequitur;
mod streams;

pub use packing::{coallocation_sets, pack_sets, CoallocationSet};
pub use sequitur::{Grammar, Sequitur, Sym};
pub use streams::{extract_streams, Stream, StreamAnalysis, StreamConfig};

use halo_profile::HeapTrace;
use halo_vm::CallSite;
use std::collections::HashMap;

/// End-to-end configuration of the comparison technique.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HdsConfig {
    /// Stream extraction parameters (§5.1 defaults).
    pub stream: StreamConfig,
    /// Optional cap on the number of groups.
    pub max_groups: Option<usize>,
}

/// Statistics from an analysis, for the evaluation discussion (§5.2).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HdsStats {
    /// Grammar rules considered as stream candidates.
    pub candidates: usize,
    /// Hot streams selected to reach the coverage target — the quantity
    /// that explodes to "over 150,000 streams" on roms.
    pub hot_streams: usize,
    /// Co-allocation sets surviving the benefit model.
    pub beneficial_sets: usize,
    /// Sets chosen by packing (= groups before site merging).
    pub packed_sets: usize,
    /// Trace coverage achieved by the hot streams.
    pub coverage: f64,
}

/// The analysis output: allocation-site groups plus statistics.
#[derive(Debug, Clone, Default)]
pub struct HdsResult {
    /// Per group: the immediate allocation call sites it claims.
    pub site_groups: Vec<Vec<CallSite>>,
    /// Flattened site → group map for the runtime allocator.
    pub site_map: HashMap<CallSite, usize>,
    /// Analysis statistics.
    pub stats: HdsStats,
}

/// Run the full hot-data-streams analysis over a collected trace.
pub fn analyze(trace: &HeapTrace, config: &HdsConfig) -> HdsResult {
    let analysis = extract_streams(&trace.symbols, &config.stream);
    let sets = coallocation_sets(&analysis.streams, trace);
    let chosen = pack_sets(&sets);

    let mut site_map: HashMap<CallSite, usize> = HashMap::new();
    let mut site_groups: Vec<Vec<CallSite>> = Vec::new();
    for &set_idx in &chosen {
        if site_groups.len() >= config.max_groups.unwrap_or(usize::MAX) {
            break;
        }
        let group = site_groups.len();
        let mut sites = Vec::new();
        for &obj in &sets[set_idx].objects {
            let site = trace.objects[obj as usize].site;
            // A call site can only feed one pool; first (highest-benefit)
            // group claims it.
            if let std::collections::hash_map::Entry::Vacant(e) = site_map.entry(site) {
                e.insert(group);
                sites.push(site);
            }
        }
        if sites.is_empty() {
            // All of this set's sites were claimed by hotter groups: the
            // group cannot be identified at runtime and is dropped.
            continue;
        }
        site_groups.push(sites);
    }
    // Compact the map in case trailing groups were dropped.
    site_map.retain(|_, g| *g < site_groups.len());

    HdsResult {
        site_groups,
        site_map,
        stats: HdsStats {
            candidates: analysis.candidates,
            hot_streams: analysis.streams.len(),
            beneficial_sets: sets.len(),
            packed_sets: chosen.len(),
            coverage: analysis.achieved_coverage,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_profile::TraceObject;
    use halo_vm::FuncId;

    fn site(f: u32, pc: u32) -> CallSite {
        CallSite::new(FuncId(f), pc)
    }

    /// Objects 2k from site A, 2k+1 from site B, accessed pairwise:
    /// the classic co-allocation opportunity at distinct call sites.
    fn pairwise_trace(pairs: u32, reps: usize) -> HeapTrace {
        let mut objects = Vec::new();
        for _ in 0..pairs {
            objects.push(TraceObject { site: site(0, 1), size: 16, accesses: reps as u64 });
            objects.push(TraceObject { site: site(0, 2), size: 16, accesses: reps as u64 });
        }
        let mut symbols = Vec::new();
        for _ in 0..reps {
            for k in 0..pairs {
                symbols.push(2 * k);
                symbols.push(2 * k + 1);
            }
        }
        HeapTrace { symbols, objects }
    }

    #[test]
    fn distinct_sites_form_a_group() {
        let trace = pairwise_trace(4, 32);
        let result = analyze(&trace, &HdsConfig::default());
        assert!(!result.site_groups.is_empty());
        let all_sites: Vec<CallSite> = result.site_groups.iter().flatten().copied().collect();
        assert!(all_sites.contains(&site(0, 1)));
        assert!(all_sites.contains(&site(0, 2)));
        assert!(result.stats.coverage > 0.5);
    }

    #[test]
    fn wrapper_collapses_identification() {
        // Everything allocated through one wrapper-internal site: whatever
        // the streams say, at most one site-group can exist — the §3
        // povray failure.
        let wrapper = site(9, 0);
        let mut trace = pairwise_trace(4, 32);
        for o in &mut trace.objects {
            o.site = wrapper;
        }
        let result = analyze(&trace, &HdsConfig::default());
        let distinct_sites: std::collections::HashSet<_> =
            result.site_map.keys().copied().collect();
        assert!(distinct_sites.len() <= 1);
    }

    #[test]
    fn max_groups_caps_output() {
        // Several independent hot pairs → several groups; cap to 1.
        let mut objects = Vec::new();
        let mut symbols = Vec::new();
        for g in 0..6u32 {
            objects.push(TraceObject { site: site(g, 0), size: 16, accesses: 64 });
            objects.push(TraceObject { site: site(g, 1), size: 16, accesses: 64 });
        }
        for _ in 0..64 {
            for g in 0..6u32 {
                symbols.push(2 * g);
                symbols.push(2 * g + 1);
            }
        }
        let trace = HeapTrace { symbols, objects };
        let capped = analyze(&trace, &HdsConfig { max_groups: Some(1), ..Default::default() });
        assert_eq!(capped.site_groups.len(), 1);
        assert!(capped.site_map.values().all(|&g| g == 0));
    }

    #[test]
    fn empty_trace_analyzes_to_nothing() {
        let trace = HeapTrace::default();
        let result = analyze(&trace, &HdsConfig::default());
        assert!(result.site_groups.is_empty());
        assert_eq!(result.stats.hot_streams, 0);
    }

    #[test]
    fn site_map_is_consistent_with_groups() {
        let trace = pairwise_trace(8, 16);
        let result = analyze(&trace, &HdsConfig::default());
        for (s, &g) in &result.site_map {
            assert!(result.site_groups[g].contains(s));
        }
        for (g, sites) in result.site_groups.iter().enumerate() {
            for s in sites {
                assert_eq!(result.site_map[s], g);
            }
        }
    }
}
