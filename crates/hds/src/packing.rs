//! Co-allocation sets and weighted set packing (Chilimbi & Shaham, §3;
//! Halldórsson, 1999).
//!
//! Each hot data stream suggests co-locating its objects. Because an object
//! can only live in one place, the suggested sets must be *packed*: choose
//! a disjoint subfamily maximising total projected benefit. The paper uses
//! "an approximation algorithm to the weighted set packing problem"; the
//! classic greedy from Halldórsson picks sets by benefit scaled by
//! `1/√|S|`, which is what we implement.

use crate::streams::Stream;
use halo_profile::HeapTrace;
use std::collections::HashSet;

/// A candidate co-allocation set derived from one hot stream.
#[derive(Debug, Clone, PartialEq)]
pub struct CoallocationSet {
    /// Distinct object ids from the stream.
    pub objects: Vec<u32>,
    /// Projected cache-miss reduction from co-locating them.
    pub benefit: f64,
}

/// Build a co-allocation set per stream, evaluating "the projected cache
/// miss reduction from the various object groupings suggested by each
/// stream" (§2.2.3):
///
/// * scattered, each object occupies `⌈size/64⌉` lines of its own;
/// * co-located, the stream's objects share `⌈Σ size/64⌉` lines — but the
///   runtime policy pools *every* allocation from the objects' immediate
///   call sites, so the packed extent is inflated by the sites' **dilution**
///   (total bytes the sites allocate ÷ bytes of their hot-stream objects).
///
/// The dilution term is what rejects wrapper-site groupings: when one
/// `pov_malloc`-style site allocates the whole heap, pooling it reproduces
/// the original allocation-order layout and projects no gain (§3).
pub fn coallocation_sets(streams: &[Stream], trace: &HeapTrace) -> Vec<CoallocationSet> {
    // Per-site totals and per-site hot-object totals. An object is *hot*
    // when it was accessed more than once: write-once records, labels and
    // log strings (the §3 pollution) fail this bar, so a site whose
    // allocation volume is dominated by such objects shows high dilution.
    let mut site_bytes: std::collections::HashMap<halo_vm::CallSite, u64> =
        std::collections::HashMap::new();
    let mut hot_site_bytes: std::collections::HashMap<halo_vm::CallSite, u64> =
        std::collections::HashMap::new();
    for o in &trace.objects {
        *site_bytes.entry(o.site).or_insert(0) += o.size.max(1);
        if o.accesses >= 2 {
            *hot_site_bytes.entry(o.site).or_insert(0) += o.size.max(1);
        }
    }

    streams
        .iter()
        .filter_map(|s| {
            let mut objects: Vec<u32> = Vec::new();
            let mut seen = HashSet::new();
            for &o in &s.symbols {
                if seen.insert(o) {
                    objects.push(o);
                }
            }
            if objects.len() < 2 {
                return None;
            }
            let total_size: u64 =
                objects.iter().map(|&o| trace.objects[o as usize].size.max(1)).sum();
            let lines_scattered: u64 =
                objects.iter().map(|&o| trace.objects[o as usize].size.max(1).div_ceil(64)).sum();
            // Dilution over the set's sites.
            let sites: HashSet<halo_vm::CallSite> =
                objects.iter().map(|&o| trace.objects[o as usize].site).collect();
            let alloc_total: u64 = sites.iter().map(|s| site_bytes[s]).sum();
            let hot_total: u64 =
                sites.iter().map(|s| hot_site_bytes.get(s).copied().unwrap_or(0)).sum();
            if hot_total == 0 {
                return None;
            }
            let dilution = (alloc_total as f64 / hot_total as f64).max(1.0);
            let lines_packed = ((total_size as f64 * dilution) / 64.0).ceil().max(1.0);
            let saved = lines_scattered as f64 - lines_packed;
            (saved > 0.0)
                .then_some(CoallocationSet { objects, benefit: saved * s.frequency as f64 })
        })
        .collect()
}

/// Greedy weighted set packing: repeatedly take the set maximising
/// `benefit / √|S|` among those disjoint from everything already chosen.
/// Returns indices into `sets`.
pub fn pack_sets(sets: &[CoallocationSet]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..sets.len()).collect();
    let score = |i: usize| sets[i].benefit / (sets[i].objects.len() as f64).sqrt();
    order.sort_by(|&a, &b| {
        score(b).partial_cmp(&score(a)).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let mut used: HashSet<u32> = HashSet::new();
    let mut chosen = Vec::new();
    for i in order {
        if sets[i].objects.iter().any(|o| used.contains(o)) {
            continue;
        }
        used.extend(sets[i].objects.iter().copied());
        chosen.push(i);
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_profile::TraceObject;
    use halo_vm::{CallSite, FuncId};

    fn trace_with_sizes(sizes: &[u64]) -> HeapTrace {
        HeapTrace {
            symbols: Vec::new(),
            objects: sizes
                .iter()
                .map(|&size| TraceObject {
                    site: CallSite::new(FuncId(0), 0),
                    size,
                    accesses: 5, // hot by default; tests override for cold
                })
                .collect(),
        }
    }

    fn stream(symbols: &[u32], frequency: u64) -> Stream {
        Stream { symbols: symbols.to_vec(), frequency, heat: symbols.len() as u64 * frequency }
    }

    #[test]
    fn benefit_scales_with_frequency_and_packing_gain() {
        let trace = trace_with_sizes(&[16, 16, 16, 16]);
        let sets = coallocation_sets(&[stream(&[0, 1, 2, 3], 10), stream(&[0, 1], 10)], &trace);
        // 4 objects × 16 B pack into one line: saves 3 lines × 10 = 30.
        assert_eq!(sets[0].benefit, 30.0);
        // 2 objects save 1 line × 10 = 10.
        assert_eq!(sets[1].benefit, 10.0);
    }

    #[test]
    fn streams_without_packing_gain_are_dropped() {
        // Two 4 KiB objects cannot share lines: no benefit, no set.
        let trace = trace_with_sizes(&[4096, 4096]);
        let sets = coallocation_sets(&[stream(&[0, 1], 100)], &trace);
        assert!(sets.is_empty());
    }

    #[test]
    fn repeated_objects_in_stream_dedupe() {
        let trace = trace_with_sizes(&[8, 8]);
        let sets = coallocation_sets(&[stream(&[0, 1, 0, 1], 5)], &trace);
        assert_eq!(sets[0].objects, vec![0, 1]);
    }

    #[test]
    fn wrapper_site_dilution_rejects_whole_heap_groupings() {
        // Ten objects from ONE wrapper site, only two of them hot
        // (accessed more than once): pooling the site drags all ten
        // objects' bytes into the pool, so the projected packed extent
        // exceeds the scattered one.
        let mut trace = trace_with_sizes(&[16; 10]);
        for o in trace.objects.iter_mut().skip(2) {
            o.accesses = 1; // write-once pollution
        }
        let sets = coallocation_sets(&[stream(&[0, 1], 50)], &trace);
        assert!(sets.is_empty(), "diluted wrapper grouping must project no gain");
        // Same stream, but the cold objects come from a *different* site:
        // full benefit for the hot pair's dedicated sites.
        let mut trace2 = trace_with_sizes(&[16; 10]);
        for o in trace2.objects.iter_mut().skip(2) {
            o.accesses = 1;
            o.site = CallSite::new(FuncId(9), 9);
        }
        let sets2 = coallocation_sets(&[stream(&[0, 1], 50)], &trace2);
        assert_eq!(sets2.len(), 1);
        assert_eq!(sets2[0].benefit, 50.0);
    }

    #[test]
    fn scattered_lines_count_per_object_spans() {
        // A 96-byte object spans two lines scattered; packing five of them
        // with four 16-byte cells saves real lines (the ammp shape).
        let trace = trace_with_sizes(&[96, 16, 96, 16, 96]);
        let sets = coallocation_sets(&[stream(&[0, 1, 2, 3, 4], 8)], &trace);
        assert_eq!(sets.len(), 1);
        // scattered = 2+1+2+1+2 = 8; packed = ceil(320/64) = 5 → saved 3.
        assert_eq!(sets[0].benefit, 24.0);
    }

    #[test]
    fn packing_chooses_disjoint_sets_by_scaled_benefit() {
        let sets = vec![
            CoallocationSet { objects: vec![1, 2], benefit: 10.0 },
            CoallocationSet { objects: vec![2, 3], benefit: 9.0 },
            CoallocationSet { objects: vec![4, 5], benefit: 1.0 },
        ];
        let chosen = pack_sets(&sets);
        // Set 0 wins over overlapping set 1; set 2 is disjoint.
        assert_eq!(chosen, vec![0, 2]);
    }

    #[test]
    fn sqrt_scaling_prefers_dense_benefit() {
        // A big set with benefit 10 (score 10/√100 = 1) loses to a pair
        // with benefit 2 (score 2/√2 ≈ 1.41) that overlaps it.
        let big: Vec<u32> = (0..100).collect();
        let sets = vec![
            CoallocationSet { objects: big, benefit: 10.0 },
            CoallocationSet { objects: vec![0, 1], benefit: 2.0 },
        ];
        let chosen = pack_sets(&sets);
        assert_eq!(chosen, vec![1]);
    }

    #[test]
    fn empty_input_packs_to_nothing() {
        assert!(pack_sets(&[]).is_empty());
    }
}
