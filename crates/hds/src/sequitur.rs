//! SEQUITUR grammar inference (Nevill-Manning & Witten, 1997).
//!
//! Builds a context-free grammar from a symbol sequence online, maintaining
//! two invariants after every appended symbol:
//!
//! * **digram uniqueness** — no pair of adjacent symbols appears more than
//!   once across all rule bodies (a repeated digram becomes a rule);
//! * **rule utility** — every rule is used at least twice (a rule reduced
//!   to one use is inlined).
//!
//! Chilimbi & Shaham compress their data-reference traces with SEQUITUR and
//! extract hot data streams from the resulting grammar; this implementation
//! follows the classic pointer-based formulation, translated to an
//! index-based arena.

use std::collections::HashMap;

const NIL: u32 = u32::MAX;

/// A grammar symbol: terminal or rule reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sym {
    /// A terminal (trace symbol).
    T(u32),
    /// A reference to rule `r`.
    R(u32),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodeSym {
    Guard(u32),
    Sym(Sym),
}

#[derive(Debug, Clone, Copy)]
struct Node {
    sym: NodeSym,
    prev: u32,
    next: u32,
}

/// The SEQUITUR builder. Use [`Grammar::build`] unless streaming symbols.
#[derive(Debug, Default)]
pub struct Sequitur {
    nodes: Vec<Node>,
    freed: Vec<u32>,
    /// Guard node per rule; `NIL` marks a dead (inlined) rule.
    guards: Vec<u32>,
    uses: Vec<u32>,
    digrams: HashMap<(Sym, Sym), u32>,
}

impl Sequitur {
    /// Create a builder with an empty start rule (rule 0).
    pub fn new() -> Self {
        let mut s = Sequitur::default();
        s.new_rule();
        s
    }

    fn new_rule(&mut self) -> u32 {
        let r = self.guards.len() as u32;
        let g = self.alloc(NodeSym::Guard(r));
        self.nodes[g as usize].prev = g;
        self.nodes[g as usize].next = g;
        self.guards.push(g);
        self.uses.push(0);
        r
    }

    fn alloc(&mut self, sym: NodeSym) -> u32 {
        if let NodeSym::Sym(Sym::R(r)) = sym {
            self.uses[r as usize] += 1;
        }
        if let Some(i) = self.freed.pop() {
            self.nodes[i as usize] = Node { sym, prev: NIL, next: NIL };
            i
        } else {
            self.nodes.push(Node { sym, prev: NIL, next: NIL });
            (self.nodes.len() - 1) as u32
        }
    }

    fn dispose(&mut self, n: u32) {
        if let NodeSym::Sym(Sym::R(r)) = self.nodes[n as usize].sym {
            self.uses[r as usize] -= 1;
        }
        self.freed.push(n);
    }

    #[inline]
    fn next(&self, n: u32) -> u32 {
        self.nodes[n as usize].next
    }

    #[inline]
    fn prev(&self, n: u32) -> u32 {
        self.nodes[n as usize].prev
    }

    #[inline]
    fn is_guard(&self, n: u32) -> bool {
        matches!(self.nodes[n as usize].sym, NodeSym::Guard(_))
    }

    fn sym(&self, n: u32) -> Option<Sym> {
        match self.nodes[n as usize].sym {
            NodeSym::Guard(_) => None,
            NodeSym::Sym(s) => Some(s),
        }
    }

    fn digram_key(&self, n: u32) -> Option<(Sym, Sym)> {
        let a = self.sym(n)?;
        let b = self.sym(self.next(n))?;
        Some((a, b))
    }

    fn delete_digram(&mut self, n: u32) {
        if let Some(key) = self.digram_key(n) {
            if self.digrams.get(&key) == Some(&n) {
                self.digrams.remove(&key);
            }
        }
    }

    /// Link `l → r`, un-indexing whatever digram `l` previously headed.
    fn join(&mut self, l: u32, r: u32) {
        if self.next(l) != NIL {
            self.delete_digram(l);
        }
        self.nodes[l as usize].next = r;
        self.nodes[r as usize].prev = l;
    }

    fn insert_after(&mut self, pos: u32, node: u32) {
        let nx = self.next(pos);
        self.join(node, nx);
        self.join(pos, node);
    }

    /// Unlink and dispose a body node.
    fn remove_node(&mut self, n: u32) {
        let p = self.prev(n);
        let nx = self.next(n);
        self.delete_digram(n);
        self.join(p, nx);
        self.dispose(n);
    }

    /// Append a terminal to the start rule, restoring both invariants.
    pub fn push(&mut self, t: u32) {
        let g = self.guards[0];
        let last = self.prev(g);
        let n = self.alloc(NodeSym::Sym(Sym::T(t)));
        self.insert_after(last, n);
        if !self.is_guard(last) {
            self.check(last);
        }
    }

    /// Check the digram headed by `n`; enforce uniqueness.
    fn check(&mut self, n: u32) -> bool {
        let Some(key) = self.digram_key(n) else { return false };
        match self.digrams.get(&key).copied() {
            None => {
                self.digrams.insert(key, n);
                false
            }
            Some(m) if m == n => false,
            Some(m) => {
                // Overlapping occurrences (e.g. "aaa") are left alone.
                if self.next(m) != n && self.next(n) != m {
                    self.do_match(n, m);
                }
                true
            }
        }
    }

    /// The digrams at `ss` and `m` are equal: rewrite both as a rule.
    fn do_match(&mut self, ss: u32, m: u32) {
        let m_prev = self.prev(m);
        let m_next_next = self.next(self.next(m));
        let r;
        if self.is_guard(m_prev) && m_prev == m_next_next {
            // m's digram is the complete body of an existing rule.
            let NodeSym::Guard(rule) = self.nodes[m_prev as usize].sym else { unreachable!() };
            r = rule;
            self.substitute(ss, r);
        } else {
            // Make a new rule from the digram.
            let s1 = self.sym(ss).expect("digram head");
            let s2 = self.sym(self.next(ss)).expect("digram tail");
            r = self.new_rule();
            let g = self.guards[r as usize];
            let n1 = self.alloc(NodeSym::Sym(s1));
            self.insert_after(g, n1);
            let n2 = self.alloc(NodeSym::Sym(s2));
            self.insert_after(n1, n2);
            self.substitute(m, r);
            self.substitute(ss, r);
            // Index the rule body's digram.
            let key = self.digram_key(n1).expect("rule body digram");
            self.digrams.insert(key, n1);
        }
        // Rule utility: if the new rule's first symbol is a rule now used
        // only once, inline it.
        let first = self.next(self.guards[r as usize]);
        if let Some(Sym::R(r2)) = self.sym(first) {
            if self.uses[r2 as usize] == 1 {
                self.expand(first);
            }
        }
    }

    /// Replace the digram starting at `first` with a use of rule `r`.
    fn substitute(&mut self, first: u32, r: u32) {
        let q = self.prev(first);
        let second = self.next(first);
        self.remove_node(second);
        self.remove_node(first);
        let nn = self.alloc(NodeSym::Sym(Sym::R(r)));
        self.insert_after(q, nn);
        if !self.is_guard(q) && self.check(q) {
            return;
        }
        self.check(nn);
    }

    /// Inline the sole remaining use of a rule (`use_node` refers to it).
    fn expand(&mut self, use_node: u32) {
        let Some(Sym::R(r2)) = self.sym(use_node) else { unreachable!("expand on rule use") };
        let q = self.prev(use_node);
        let nx = self.next(use_node);
        let g = self.guards[r2 as usize];
        let f = self.next(g);
        let l = self.prev(g);
        self.delete_digram(use_node);
        self.join(q, f);
        self.join(l, nx);
        if let Some(key) = self.digram_key(l) {
            self.digrams.insert(key, l);
        }
        self.dispose(use_node);
        self.freed.push(g);
        self.guards[r2 as usize] = NIL;
    }

    /// Ids of live rules (0 is the start rule).
    pub fn live_rules(&self) -> impl Iterator<Item = u32> + '_ {
        self.guards.iter().enumerate().filter(|(_, &g)| g != NIL).map(|(i, _)| i as u32)
    }

    /// The body of rule `r` as symbols.
    ///
    /// # Panics
    ///
    /// Panics if `r` is dead or out of range.
    pub fn body(&self, r: u32) -> Vec<Sym> {
        let g = self.guards[r as usize];
        assert_ne!(g, NIL, "rule {r} was inlined");
        let mut out = Vec::new();
        let mut n = self.next(g);
        while n != g {
            out.push(self.sym(n).expect("body symbol"));
            n = self.next(n);
        }
        out
    }

    /// Number of uses of rule `r` across all bodies.
    pub fn rule_uses(&self, r: u32) -> u32 {
        self.uses[r as usize]
    }

    /// Verify both SEQUITUR invariants plus index consistency; test oracle.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut seen: HashMap<(Sym, Sym), (u32, usize)> = HashMap::new();
        for r in self.live_rules() {
            let body = self.body(r);
            if r != 0 {
                if body.len() < 2 {
                    return Err(format!("rule {r} has a body of {} symbols", body.len()));
                }
                if self.uses[r as usize] < 2 {
                    return Err(format!("rule {r} used {} < 2 times", self.uses[r as usize]));
                }
            }
            for (i, w) in body.windows(2).enumerate() {
                let key = (w[0], w[1]);
                if w[0] == w[1] {
                    continue; // overlapping digrams like "aaa" are exempt
                }
                if let Some(&(or, oi)) = seen.get(&key) {
                    return Err(format!(
                        "digram {key:?} appears in rule {or}@{oi} and rule {r}@{i}"
                    ));
                }
                seen.insert(key, (r, i));
            }
        }
        Ok(())
    }
}

/// A finished grammar with memoised expansions and rule frequencies.
#[derive(Debug)]
pub struct Grammar {
    seq: Sequitur,
    expansions: Vec<Option<Vec<u32>>>,
    frequencies: Vec<u64>,
}

impl Grammar {
    /// Run SEQUITUR over `input` and prepare the analysis tables.
    pub fn build(input: &[u32]) -> Self {
        let mut seq = Sequitur::new();
        for &t in input {
            seq.push(t);
        }
        Self::from_sequitur(seq)
    }

    /// Wrap an already-built [`Sequitur`].
    pub fn from_sequitur(seq: Sequitur) -> Self {
        let n = seq.guards.len();
        let mut g = Grammar { seq, expansions: vec![None; n], frequencies: vec![0; n] };
        g.compute_frequencies();
        g
    }

    fn compute_frequencies(&mut self) {
        // Topological order: DFS from the start rule, children after
        // parents once all parent contributions are known. The grammar is a
        // DAG, so iterate in reverse-postorder.
        let n = self.seq.guards.len();
        let mut order: Vec<u32> = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in-stack, 2 done
        let mut stack: Vec<(u32, usize)> = vec![(0, 0)];
        let mut bodies: Vec<Option<Vec<Sym>>> = vec![None; n];
        let body_of = |seq: &Sequitur, r: u32| seq.body(r);
        state[0] = 1;
        bodies[0] = Some(body_of(&self.seq, 0));
        while let Some(&mut (r, ref mut i)) = stack.last_mut() {
            let body = bodies[r as usize].as_ref().expect("pushed with body");
            let mut advanced = false;
            while *i < body.len() {
                let s = body[*i];
                *i += 1;
                if let Sym::R(c) = s {
                    if state[c as usize] == 0 {
                        state[c as usize] = 1;
                        bodies[c as usize] = Some(body_of(&self.seq, c));
                        stack.push((c, 0));
                        advanced = true;
                        break;
                    }
                }
            }
            if !advanced && stack.last().map(|&(rr, _)| rr) == Some(r) {
                // All children visited.
                let body_len = bodies[r as usize].as_ref().expect("body").len();
                let _ = body_len;
                state[r as usize] = 2;
                order.push(r);
                stack.pop();
            }
        }
        order.reverse(); // parents before children
        self.frequencies[0] = 1;
        for &r in &order {
            let freq = self.frequencies[r as usize];
            let body = bodies[r as usize].take().expect("visited");
            for s in body {
                if let Sym::R(c) = s {
                    self.frequencies[c as usize] += freq;
                }
            }
        }
    }

    /// The underlying builder.
    pub fn sequitur(&self) -> &Sequitur {
        &self.seq
    }

    /// Live rule ids excluding the start rule.
    pub fn rule_ids(&self) -> Vec<u32> {
        self.seq.live_rules().filter(|&r| r != 0).collect()
    }

    /// Number of live rules excluding the start rule.
    pub fn num_rules(&self) -> usize {
        self.rule_ids().len()
    }

    /// How many times rule `r`'s expansion occurs in the full input
    /// derivation.
    pub fn frequency(&self, r: u32) -> u64 {
        self.frequencies[r as usize]
    }

    /// Terminal expansion of rule `r`, memoised.
    pub fn expansion(&mut self, r: u32) -> Vec<u32> {
        if let Some(e) = &self.expansions[r as usize] {
            return e.clone();
        }
        let body = self.seq.body(r);
        let mut out = Vec::new();
        for s in body {
            match s {
                Sym::T(t) => out.push(t),
                Sym::R(c) => out.extend(self.expansion(c)),
            }
        }
        self.expansions[r as usize] = Some(out.clone());
        out
    }

    /// Expand the start rule — must reproduce the input exactly.
    pub fn expand_input(&mut self) -> Vec<u32> {
        self.expansion(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_checked(input: &[u32]) -> Grammar {
        let mut seq = Sequitur::new();
        for (i, &t) in input.iter().enumerate() {
            seq.push(t);
            seq.check_invariants()
                .unwrap_or_else(|e| panic!("invariant broken after symbol {i}: {e}"));
        }
        let mut g = Grammar::from_sequitur(seq);
        assert_eq!(g.expand_input(), input, "grammar must reproduce the input");
        g
    }

    #[test]
    fn abab_forms_one_rule() {
        let g = build_checked(&[1, 2, 1, 2]);
        assert_eq!(g.num_rules(), 1);
        let r = g.rule_ids()[0];
        assert_eq!(g.seq.body(r), vec![Sym::T(1), Sym::T(2)]);
        assert_eq!(g.frequency(r), 2);
    }

    #[test]
    fn classic_nested_example() {
        // "abcdbcabcd": S → A d? … the well-known result is
        // S → B B? Let the invariants and expansion speak instead, and
        // assert the hierarchy: some rule expands to "abcd" with freq 2 and
        // some to "bc" with freq ≥ 2.
        let a = 1;
        let b = 2;
        let c = 3;
        let d = 4;
        let mut g = build_checked(&[a, b, c, d, b, c, a, b, c, d]);
        let mut found_abcd = false;
        let mut found_bc = false;
        for r in g.rule_ids() {
            let e = g.expansion(r);
            if e == [a, b, c, d] {
                found_abcd = true;
                assert_eq!(g.frequency(r), 2);
            }
            if e == [b, c] {
                found_bc = true;
                assert!(g.frequency(r) >= 2);
            }
        }
        assert!(found_abcd, "abcd should become a rule");
        assert!(found_bc, "bc should become a rule");
    }

    #[test]
    fn overlapping_digrams_do_not_loop() {
        let _ = build_checked(&[7, 7, 7, 7, 7, 7, 7]);
    }

    #[test]
    fn all_distinct_symbols_make_no_rules() {
        let g = build_checked(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(g.num_rules(), 0);
    }

    #[test]
    fn long_repetition_compresses_hierarchically() {
        // (abc)^64: expect deep nesting and very few total symbols.
        let mut input = Vec::new();
        for _ in 0..64 {
            input.extend_from_slice(&[1, 2, 3]);
        }
        let g = build_checked(&input);
        assert!(g.num_rules() >= 2);
        // Total symbols across bodies must be far below the input length.
        let total: usize = g.seq.live_rules().map(|r| g.seq.body(r).len()).sum();
        assert!(total < input.len() / 4, "poor compression: {total} symbols");
    }

    #[test]
    fn frequencies_multiply_through_nesting() {
        // (ab ab)^4 → inner rule ab occurs 8 times.
        let mut input = Vec::new();
        for _ in 0..4 {
            input.extend_from_slice(&[1, 2, 1, 2]);
        }
        let mut g = build_checked(&input);
        let ab = g
            .rule_ids()
            .into_iter()
            .find(|&r| g.expansion(r) == vec![1, 2])
            .expect("ab rule exists");
        assert_eq!(g.frequency(ab), 8);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let mut g = Grammar::build(&[]);
        assert_eq!(g.expand_input(), Vec::<u32>::new());
        let mut g1 = Grammar::build(&[42]);
        assert_eq!(g1.expand_input(), vec![42]);
        assert_eq!(g1.num_rules(), 0);
    }

    #[test]
    fn randomish_inputs_roundtrip() {
        // Deterministic pseudo-random smoke over several alphabet sizes.
        let mut x = 12345u64;
        for alphabet in [2u32, 3, 5, 16] {
            let input: Vec<u32> = (0..800)
                .map(|_| {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((x >> 33) as u32) % alphabet
                })
                .collect();
            build_checked(&input);
        }
    }
}
