//! Group identification (§4.3, Fig. 10): distilling full-context groups
//! down to "a small handful of call sites" monitorable at runtime.
//!
//! For each group, in descending popularity order, the algorithm builds a
//! **selector** in disjunctive normal form: one conjunctive expression per
//! member context, greedily accumulating the member's call sites that most
//! reduce *conflicts* — other (not-yet-ignored) contexts whose chains also
//! satisfy the expression. Sites lower in the stack are preferred on ties.
//! The union of chosen sites becomes the monitored-site set, each assigned
//! a bit in the shared group-state vector; the rewriter instruments exactly
//! those sites and the allocator evaluates the resulting
//! [`halo_mem::SelectorTable`] on every request.
//!
//! # Example
//!
//! ```
//! use halo_graph::{AffinityGraph, GroupingParams, group};
//! use halo_ident::identify;
//!
//! # use halo_vm::{CallSite, FuncId};
//! # use halo_ident::ContextSummary;
//! # let site = |f, pc| CallSite::new(FuncId(f), pc);
//! // Two contexts in one group, one outside it.
//! let contexts = vec![
//!     ContextSummary { chain: vec![site(0, 1), site(1, 0)], accesses: 100 },
//!     ContextSummary { chain: vec![site(0, 2), site(1, 0)], accesses: 90 },
//!     ContextSummary { chain: vec![site(0, 3), site(1, 0)], accesses: 5 },
//! ];
//! let mut g = AffinityGraph::new();
//! let a = g.add_node(100);
//! let b = g.add_node(90);
//! let _c = g.add_node(5);
//! g.add_edge_weight(a, b, 50);
//! let groups = group(&g, &GroupingParams { min_weight: 1, ..Default::default() });
//! let ident = identify(&groups, &contexts);
//! // The shared site fn#1+0 cannot distinguish; the outer sites can.
//! assert_eq!(ident.monitored_sites().count(), 2);
//! ```

use halo_graph::{Group, NodeId};
use halo_mem::{GroupSelector, SelectorTable};
use halo_vm::CallSite;
use std::collections::{HashMap, HashSet};

/// The identification-relevant slice of a profiled context: its call-site
/// chain (outermost first) and how hot it is.
///
/// Usually obtained from [`halo_profile::ContextInfo`] via
/// [`contexts_from_profile`], but constructible directly for tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextSummary {
    /// Call-site chain, outermost first, allocation site last.
    pub chain: Vec<CallSite>,
    /// Access count (popularity).
    pub accesses: u64,
}

/// Convert profiler output into identification input. Context order (and
/// thus [`NodeId`] indexing) is preserved; discarded contexts participate
/// as conflict candidates but are never group members.
pub fn contexts_from_profile(profile: &halo_profile::Profile) -> Vec<ContextSummary> {
    profile
        .contexts
        .iter()
        .map(|c| ContextSummary { chain: c.chain.clone(), accesses: c.accesses })
        .collect()
}

/// A selector in symbolic (call-site) form, for reports and tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteSelector {
    /// Index of the group in the *input* group slice.
    pub group: usize,
    /// One conjunction of call sites per group member.
    pub conjunctions: Vec<Vec<CallSite>>,
}

impl SiteSelector {
    /// Whether a context with `chain` satisfies this selector (some
    /// conjunction is a subset of the chain).
    pub fn matches_chain(&self, chain: &[CallSite]) -> bool {
        let set: HashSet<CallSite> = chain.iter().copied().collect();
        self.conjunctions.iter().any(|c| c.iter().all(|s| set.contains(s)))
    }
}

/// The output of identification.
#[derive(Debug, Clone)]
pub struct Identification {
    /// Monitored call sites and their assigned group-state bits.
    pub site_bits: HashMap<CallSite, u16>,
    /// Symbolic selectors in evaluation (popularity) order.
    pub selectors: Vec<SiteSelector>,
    /// The runtime selector table for the specialised allocator.
    pub table: SelectorTable,
}

impl Identification {
    /// The monitored call sites (the rewriter instruments exactly these).
    pub fn monitored_sites(&self) -> impl Iterator<Item = CallSite> + '_ {
        self.site_bits.keys().copied()
    }

    /// An identification with no groups (used when grouping found nothing).
    pub fn empty() -> Self {
        Identification {
            site_bits: HashMap::new(),
            selectors: Vec::new(),
            table: SelectorTable::empty(),
        }
    }
}

/// Run the Fig. 10 algorithm.
///
/// `groups` come from [`halo_graph::group`]; their member [`NodeId`]s index
/// into `contexts`. Every context — grouped or not, filtered or not — acts
/// as a conflict candidate, because every context allocates at runtime.
pub fn identify(groups: &[Group], contexts: &[ContextSummary]) -> Identification {
    // Group membership per context.
    let mut member_of: HashMap<NodeId, usize> = HashMap::new();
    for (gi, g) in groups.iter().enumerate() {
        for &m in &g.members {
            member_of.insert(m, gi);
        }
    }
    let chain_sets: Vec<HashSet<CallSite>> =
        contexts.iter().map(|c| c.chain.iter().copied().collect()).collect();

    // Process groups most popular first; runtime evaluation uses the same
    // order, so a context matching several selectors goes to the hottest.
    let mut order: Vec<usize> = (0..groups.len()).collect();
    order.sort_by_key(|&gi| std::cmp::Reverse((groups[gi].accesses, std::cmp::Reverse(gi))));

    let mut ignore: HashSet<usize> = HashSet::new();
    let mut selectors: Vec<SiteSelector> = Vec::new();

    for &gi in &order {
        ignore.insert(gi);
        let mut conjunctions: Vec<Vec<CallSite>> = Vec::new();
        for &member in &groups[gi].members {
            let member_chain = &contexts[member.index()].chain;
            let mut expr: Vec<CallSite> = Vec::new();
            let mut conflicts = usize::MAX;
            loop {
                // Contexts that still satisfy the expression and belong to
                // no already-identified group.
                let candidates: Vec<usize> = (0..contexts.len())
                    .filter(|&ci| {
                        member_of.get(&NodeId(ci as u32)).is_none_or(|g| !ignore.contains(g))
                    })
                    .filter(|&ci| expr.iter().all(|s| chain_sets[ci].contains(s)))
                    .collect();
                // For each site of the member chain, how many candidates
                // would remain; prefer fewest, then lowest in the stack.
                let mut best: Option<(usize, usize, CallSite)> = None; // (m, idx, site)
                for (idx, &site) in member_chain.iter().enumerate() {
                    if expr.contains(&site) {
                        continue;
                    }
                    let m = candidates.iter().filter(|&&ci| chain_sets[ci].contains(&site)).count();
                    if best.is_none_or(|(bm, bi, _)| m < bm || (m == bm && idx < bi)) {
                        best = Some((m, idx, site));
                    }
                }
                let Some((m, _, site)) = best else { break };
                // "Add the new constraint only if it reduces conflicts."
                if m >= conflicts {
                    break;
                }
                expr.push(site);
                conflicts = m;
                if conflicts == 0 {
                    break;
                }
            }
            conjunctions.push(expr);
        }
        selectors.push(SiteSelector { group: gi, conjunctions });
    }

    // Assign bits to the union of chosen sites, in first-use order.
    let mut site_bits: HashMap<CallSite, u16> = HashMap::new();
    for sel in &selectors {
        for conj in &sel.conjunctions {
            for &site in conj {
                let next = site_bits.len() as u16;
                site_bits.entry(site).or_insert(next);
            }
        }
    }

    let runtime = selectors
        .iter()
        .map(|s| GroupSelector {
            group: s.group,
            conjunctions: s
                .conjunctions
                .iter()
                .map(|c| c.iter().map(|site| site_bits[site]).collect())
                .collect(),
        })
        .collect();
    let num_bits = site_bits.len() as u16;
    Identification { site_bits, selectors, table: SelectorTable::new(runtime, num_bits) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_graph::{AffinityGraph, GroupingParams};
    use halo_vm::FuncId;

    fn site(f: u32, pc: u32) -> CallSite {
        CallSite::new(FuncId(f), pc)
    }

    fn ctx(chain: Vec<CallSite>, accesses: u64) -> ContextSummary {
        ContextSummary { chain, accesses }
    }

    /// Build groups straight from member lists (bypassing the clusterer).
    fn mk_groups(members: &[&[u32]], contexts: &[ContextSummary]) -> Vec<Group> {
        members
            .iter()
            .map(|ms| Group {
                members: ms.iter().map(|&m| NodeId(m)).collect(),
                weight: 1,
                accesses: ms.iter().map(|&m| contexts[m as usize].accesses).sum(),
                plan: Default::default(),
            })
            .collect()
    }

    #[test]
    fn unique_site_needs_single_conjunct() {
        let contexts =
            vec![ctx(vec![site(0, 1), site(1, 5)], 100), ctx(vec![site(0, 2), site(2, 5)], 50)];
        let groups = mk_groups(&[&[0]], &contexts);
        let ident = identify(&groups, &contexts);
        // Site fn#0+1 alone distinguishes member 0 from context 1.
        assert_eq!(ident.selectors[0].conjunctions, vec![vec![site(0, 1)]]);
        assert_eq!(ident.site_bits.len(), 1);
    }

    #[test]
    fn wrapper_site_is_useless_outer_site_chosen() {
        // The povray situation: both contexts end at the same wrapper-
        // internal malloc site; only the outer call sites differ.
        let wrapper_malloc = site(9, 3);
        let contexts = vec![
            ctx(vec![site(0, 1), wrapper_malloc], 100), // grouped
            ctx(vec![site(0, 2), wrapper_malloc], 80),  // conflict
        ];
        let groups = mk_groups(&[&[0]], &contexts);
        let ident = identify(&groups, &contexts);
        let conj = &ident.selectors[0].conjunctions[0];
        assert!(conj.contains(&site(0, 1)), "outer site distinguishes");
        assert!(!conj.contains(&wrapper_malloc), "wrapper site adds nothing");
    }

    #[test]
    fn tie_break_prefers_lower_stack_sites() {
        // Both of the member's sites are unique to it (0 conflicts each);
        // the first (lowest/outermost) one must be chosen.
        let contexts =
            vec![ctx(vec![site(0, 1), site(1, 1)], 100), ctx(vec![site(0, 9), site(9, 9)], 10)];
        let groups = mk_groups(&[&[0]], &contexts);
        let ident = identify(&groups, &contexts);
        assert_eq!(ident.selectors[0].conjunctions[0], vec![site(0, 1)]);
    }

    #[test]
    fn multi_site_conjunction_when_no_single_site_suffices() {
        // Member shares each individual site with some conflict context;
        // only the pair is unique.
        let contexts = vec![
            ctx(vec![site(0, 1), site(0, 2)], 100), // member
            ctx(vec![site(0, 1), site(0, 3)], 50),
            ctx(vec![site(0, 4), site(0, 2)], 50),
        ];
        let groups = mk_groups(&[&[0]], &contexts);
        let ident = identify(&groups, &contexts);
        let conj = &ident.selectors[0].conjunctions[0];
        assert_eq!(conj.len(), 2);
        assert!(conj.contains(&site(0, 1)) && conj.contains(&site(0, 2)));
    }

    #[test]
    fn stops_when_conflicts_stop_improving() {
        // Two identical chains in different "groups" can never be fully
        // separated; the loop must terminate with residual conflicts.
        let contexts =
            vec![ctx(vec![site(0, 1), site(1, 1)], 100), ctx(vec![site(0, 1), site(1, 1)], 50)];
        let groups = mk_groups(&[&[0]], &contexts);
        let ident = identify(&groups, &contexts);
        // Selector exists and contains at most the whole chain.
        assert!(ident.selectors[0].conjunctions[0].len() <= 2);
        // The conflicting identical context will (unavoidably) match too.
        assert!(ident.selectors[0].matches_chain(&contexts[1].chain));
    }

    #[test]
    fn popular_groups_are_identified_first_and_win_at_runtime() {
        let shared = site(5, 5);
        let contexts = vec![
            ctx(vec![site(0, 1), shared], 10),   // member of cold group
            ctx(vec![site(0, 1), shared], 1000), // member of hot group (same chain!)
        ];
        let groups = mk_groups(&[&[0], &[1]], &contexts);
        let ident = identify(&groups, &contexts);
        // Hot group (index 1) is processed and evaluated first.
        assert_eq!(ident.selectors[0].group, 1);
        assert_eq!(ident.table.selectors()[0].group, 1);
        // A runtime state matching both chains classifies as the hot group.
        let mut gs = halo_vm::GroupState::new(ident.site_bits.len().max(1));
        for (&_site, &bit) in &ident.site_bits {
            gs.set(bit);
        }
        assert_eq!(ident.table.classify(&gs), Some(1));
    }

    #[test]
    fn own_group_members_do_not_count_as_conflicts() {
        // Two members of the same group share their whole chain except the
        // allocation site; conflicts only count *other* groups' contexts.
        let contexts =
            vec![ctx(vec![site(0, 1), site(1, 1)], 100), ctx(vec![site(0, 1), site(1, 2)], 90)];
        let groups = mk_groups(&[&[0, 1]], &contexts);
        let ident = identify(&groups, &contexts);
        // With no outside contexts at all, a single site reaches 0
        // conflicts immediately for each member.
        for conj in &ident.selectors[0].conjunctions {
            assert_eq!(conj.len(), 1);
        }
    }

    #[test]
    fn members_of_earlier_groups_are_ignored_for_later_ones() {
        let contexts = vec![
            ctx(vec![site(0, 1), site(2, 2)], 1000), // hot group member
            ctx(vec![site(0, 1), site(3, 3)], 10),   // cold group member
        ];
        let groups = mk_groups(&[&[1], &[0]], &contexts);
        let ident = identify(&groups, &contexts);
        // Hot group first; when the cold group (index 0) is processed, the
        // hot member is ignored, so site(0,1) alone reaches zero conflicts.
        assert_eq!(ident.selectors[1].group, 0);
        assert_eq!(ident.selectors[1].conjunctions[0], vec![site(0, 1)]);
    }

    #[test]
    fn selector_accepts_every_member_chain() {
        let contexts = vec![
            ctx(vec![site(0, 1), site(1, 1), site(2, 9)], 100),
            ctx(vec![site(0, 2), site(1, 1), site(2, 9)], 90),
            ctx(vec![site(0, 3), site(2, 9)], 50),
            ctx(vec![site(0, 4), site(2, 9)], 5),
        ];
        let groups = mk_groups(&[&[0, 1], &[2]], &contexts);
        let ident = identify(&groups, &contexts);
        for sel in &ident.selectors {
            for &m in &groups[sel.group].members {
                assert!(
                    sel.matches_chain(&contexts[m.index()].chain),
                    "selector for group {} must accept member {m}",
                    sel.group
                );
            }
        }
    }

    #[test]
    fn empty_groups_produce_empty_identification() {
        let contexts = vec![ctx(vec![site(0, 1)], 10)];
        let ident = identify(&[], &contexts);
        assert!(ident.selectors.is_empty());
        assert_eq!(ident.site_bits.len(), 0);
        let gs = halo_vm::GroupState::new(1);
        assert_eq!(ident.table.classify(&gs), None);
    }

    #[test]
    fn end_to_end_with_real_grouping() {
        // Graph: contexts 0,1 tight; 2 loose.
        let mut g = AffinityGraph::new();
        let a = g.add_node(100);
        let b = g.add_node(90);
        let c = g.add_node(10);
        g.add_edge_weight(a, b, 40);
        g.add_edge_weight(b, c, 1);
        let groups = halo_graph::group(
            &g,
            &GroupingParams { min_weight: 1, group_threshold: 0.0, ..Default::default() },
        );
        let contexts = vec![
            ctx(vec![site(0, 1), site(7, 0)], 100),
            ctx(vec![site(0, 2), site(7, 0)], 90),
            ctx(vec![site(0, 3), site(7, 0)], 10),
        ];
        let ident = identify(&groups, &contexts);
        assert!(!ident.selectors.is_empty());
        // Group 0 = {a, b}: both member chains accepted, context c rejected.
        let sel = ident.selectors.iter().find(|s| s.group == 0).unwrap();
        assert!(sel.matches_chain(&contexts[0].chain));
        assert!(sel.matches_chain(&contexts[1].chain));
        assert!(!sel.matches_chain(&contexts[2].chain));
    }
}
