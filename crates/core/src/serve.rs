//! Online re-optimisation (`halo serve`, DESIGN.md §15): keep profiling
//! while the optimised program serves traffic, detect workload phase
//! changes, and hot-swap the allocator's per-group plans without moving
//! a live pointer.
//!
//! The loop models a long-running deployment as a sequence of *windows*.
//! Each window:
//!
//! 1. **streams** one bounded profiling run into a [`ProfileStream`]
//!    (exponential decay, so the graph tracks the current phase instead
//!    of averaging over history);
//! 2. **detects**: every `regroup_every` windows the decayed graph is
//!    re-grouped and compared against the grouping the active plan was
//!    built on ([`halo_graph::grouping_drift`]); drift beyond the
//!    threshold — or an L1D miss-reduction regression beyond the
//!    tolerance — triggers re-optimisation;
//! 3. **swaps**: re-optimisation assembles a fresh plan from the
//!    streamed graph and applies it via
//!    [`ShardedHaloAllocator::swap_plans`] — prospective, epoch-stamped,
//!    old chunks drain through the ordinary free machinery;
//! 4. **measures** the window under three regimes: the jemalloc-style
//!    baseline, the *static* plan (phase-0 optimisation, never swapped),
//!    and the serve allocator — so the report shows static decaying
//!    while serve recovers.
//!
//! Determinism: profiling windows replay the phase's *train* seed (the
//! [`ProfileStream`] needs a stable context-interning order), while
//! measurement windows vary the *ref* seed per window. Everything in the
//! report is deterministic except the swap wall-clock latencies.

use crate::measure::{measure, MeasureConfig, Measurement};
use crate::pipeline::{Halo, HaloConfig, Optimised, PipelineError};
use halo_graph::{group, grouping_drift, Granularity, Group};
use halo_mem::{ShardedHaloAllocator, SizeClassAllocator};
use halo_profile::ProfileStream;
use halo_vm::Program;

/// One phase of the scripted workload mix: a binary plus its train/ref
/// inputs, served for `windows` windows.
#[derive(Debug, Clone)]
pub struct ServePhase {
    /// Phase name for the report (usually the workload name).
    pub name: String,
    /// The binary serving traffic during this phase.
    pub program: Program,
    /// Profiling-window seed. Every window of the phase replays this
    /// seed so contexts intern in the same order (see module docs).
    pub train_seed: u64,
    /// Profiling-window entry argument.
    pub train_arg: i64,
    /// Base measurement seed; window `w` (globally numbered) measures
    /// with `ref_seed + w`.
    pub ref_seed: u64,
    /// Measurement entry argument.
    pub ref_arg: i64,
    /// Number of serve windows this phase lasts.
    pub windows: u64,
}

/// Tunables of the serve loop, on top of the pipeline configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Pipeline configuration (shared by the initial optimisation and
    /// every re-optimisation).
    pub halo: HaloConfig,
    /// Measurement geometry and limits; `seed`/`entry_arg` are
    /// overridden per window from the phase script.
    pub measure: MeasureConfig,
    /// Shard count for the serve and static allocators.
    pub shards: usize,
    /// Per-window retention factor of the streaming graph, in `[0, 1]`.
    pub decay: f64,
    /// Re-group the streamed graph every this many windows (≥ 1).
    pub regroup_every: u64,
    /// Re-optimise when grouping drift exceeds this (in `[0, 1]`).
    pub drift_threshold: f64,
    /// Re-optimise when the window's miss reduction falls this far below
    /// the best seen since the last swap.
    pub regression_tolerance: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            halo: HaloConfig::default(),
            measure: MeasureConfig::default(),
            shards: 4,
            decay: 0.5,
            regroup_every: 1,
            drift_threshold: 0.3,
            regression_tolerance: 0.1,
        }
    }
}

/// One serve window's row in the report.
#[derive(Debug, Clone)]
pub struct EpochRow {
    /// Global window index (across phases).
    pub window: u64,
    /// Phase name.
    pub phase: String,
    /// Allocator plan epoch in force during this window's measurement.
    pub plan_epoch: u64,
    /// Grouping drift measured this window (`None` when the window was
    /// not a re-grouping window).
    pub drift: Option<f64>,
    /// Whether a plan swap happened this window.
    pub swapped: bool,
    /// Wall-clock latency of this window's swap, in microseconds (`0.0`
    /// when no swap happened). The only non-deterministic report field.
    pub swap_latency_us: f64,
    /// Serve allocator's L1D miss reduction vs the baseline.
    pub miss_reduction: f64,
    /// The static (phase-0, never-swapped) plan's miss reduction.
    pub static_miss_reduction: f64,
}

/// The outcome of a serve run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-window rows, in order.
    pub rows: Vec<EpochRow>,
    /// Total plan swaps applied.
    pub swaps: u64,
    /// Final window's serve miss reduction.
    pub final_miss_reduction: f64,
    /// Final window's static-plan miss reduction.
    pub final_static_miss_reduction: f64,
    /// Whether serve ended ahead of the static plan — the tentpole
    /// claim: after a phase shift the static plan's miss reduction
    /// decays and online re-optimisation recovers it.
    pub recovered: bool,
}

/// State the serve loop carries for the currently active plan.
struct ActivePlan {
    optimised: Optimised,
    /// Index into the phase script of the binary this plan was built
    /// for. Measurement runs the rewritten binary only while the serving
    /// phase still executes that binary; after a phase shift the new
    /// binary runs unmodified (its call sites carry no instrumentation)
    /// until re-optimisation catches up.
    source_phase: usize,
    /// Grouping the plan was built on, for drift comparison.
    groups: Vec<Group>,
    /// Best miss reduction observed since this plan was installed.
    best_miss_reduction: f64,
}

/// Run the serve loop over a phase script. See the module docs for the
/// window structure.
///
/// # Errors
///
/// Returns [`PipelineError::Vm`] if any profiling, re-optimisation, or
/// measurement execution traps.
///
/// # Panics
///
/// Panics if the script is empty, a phase has zero windows, or the
/// configuration is out of range (`decay` outside `[0, 1]`,
/// `regroup_every` of zero).
pub fn serve(phases: &[ServePhase], config: &ServeConfig) -> Result<ServeReport, PipelineError> {
    assert!(!phases.is_empty(), "serve needs at least one phase");
    assert!(phases.iter().all(|p| p.windows > 0), "every phase needs at least one window");
    assert!(config.regroup_every > 0, "regroup_every must be at least 1");

    // The auto policies validate against the measurement geometry, as in
    // `evaluate_with_arg`.
    let mut halo_config = config.halo;
    halo_config.hierarchy = config.measure.hierarchy;
    halo_config.timing = config.measure.timing;
    let halo = Halo::new(halo_config);

    // Initial optimisation on phase 0 — both the serve plan and the
    // static twin start here.
    let first = &phases[0];
    let initial = halo.optimise_with_arg(&first.program, first.train_seed, first.train_arg)?;
    let static_opt = halo.optimise_with_arg(&first.program, first.train_seed, first.train_arg)?;
    let serve_alloc = halo.make_sharded_allocator(&initial, config.shards);
    let static_alloc = halo.make_sharded_allocator(&static_opt, config.shards);

    let mut stream = ProfileStream::new(config.decay);
    stream.absorb(&initial.profile);
    let mut active = ActivePlan {
        groups: initial.groups.clone(),
        optimised: initial,
        source_phase: 0,
        best_miss_reduction: f64::NEG_INFINITY,
    };

    let mut rows = Vec::new();
    let mut swaps = 0u64;
    let mut window = 0u64;
    for (phase_idx, phase) in phases.iter().enumerate() {
        if phase_idx > 0 {
            // A new binary means a new context-interning order: the old
            // stream's node ids would alias unrelated contexts. Reset —
            // a real deployment keys the stream by build id.
            stream = ProfileStream::new(config.decay);
        }
        for _ in 0..phase.windows {
            // 1. Stream one profiling window.
            let profile =
                halo.profile_with_arg(&phase.program, phase.train_seed, phase.train_arg)?;
            stream.absorb(&profile);

            // 2. Phase detection on re-grouping windows.
            let mut drift = None;
            if window.is_multiple_of(config.regroup_every) {
                let fresh = group(stream.graph(), &halo.config().grouping);
                // Across a binary change the id spaces alias, but the
                // active plan also cannot serve the new binary at all —
                // force a full-drift reading rather than trusting the
                // aliased comparison.
                let d = if active.source_phase == phase_idx {
                    grouping_drift(&active.groups, &fresh)
                } else {
                    1.0
                };
                drift = Some(d);
            }
            let regressed = active.best_miss_reduction.is_finite()
                && rows.last().is_some_and(|r: &EpochRow| {
                    r.miss_reduction < active.best_miss_reduction - config.regression_tolerance
                });

            // 3. Re-optimise and hot-swap when triggered.
            let mut swapped = false;
            let mut swap_latency_us = 0.0;
            if drift.is_some_and(|d| d > config.drift_threshold) || regressed {
                let granularity = match halo.config().profile.granularity {
                    Granularity::Auto => Granularity::Object,
                    g => g,
                };
                // Re-assemble from the *streamed* (decayed) graph: the
                // window profile supplies the context table — same
                // interning order, so ids line up — and the stream
                // supplies the edge structure.
                let mut streamed = profile.clone();
                streamed.graph = stream.graph().clone();
                let reopt = halo.assemble(&phase.program, streamed, granularity, false);
                let (_, overrides) = halo.alloc_plan(&reopt);
                let start = std::time::Instant::now();
                serve_alloc.swap_plans(reopt.ident.table.clone(), overrides);
                swap_latency_us = start.elapsed().as_secs_f64() * 1e6;
                swaps += 1;
                swapped = true;
                active = ActivePlan {
                    groups: reopt.groups.clone(),
                    optimised: reopt,
                    source_phase: phase_idx,
                    best_miss_reduction: f64::NEG_INFINITY,
                };
            }

            // 4. Measure the window: baseline, static twin, serve.
            let mcfg = MeasureConfig {
                seed: phase.ref_seed + window,
                entry_arg: phase.ref_arg,
                ..config.measure
            };
            let baseline = {
                let mut alloc = SizeClassAllocator::new();
                measure(&phase.program, &mut alloc, &mcfg)?
            };
            let static_m = measure_serving(
                &static_alloc,
                if phase_idx == 0 { &static_opt.program } else { &phase.program },
                &mcfg,
            )?;
            let serve_m = measure_serving(
                &serve_alloc,
                if active.source_phase == phase_idx {
                    &active.optimised.program
                } else {
                    &phase.program
                },
                &mcfg,
            )?;
            let miss_reduction = serve_m.miss_reduction_vs(&baseline);
            let static_miss_reduction = static_m.miss_reduction_vs(&baseline);
            active.best_miss_reduction = active.best_miss_reduction.max(miss_reduction);

            rows.push(EpochRow {
                window,
                phase: phase.name.clone(),
                plan_epoch: serve_alloc.plan_epoch(),
                drift,
                swapped,
                swap_latency_us,
                miss_reduction,
                static_miss_reduction,
            });
            window += 1;
        }
    }

    let last = rows.last().expect("at least one window ran");
    Ok(ServeReport {
        final_miss_reduction: last.miss_reduction,
        final_static_miss_reduction: last.static_miss_reduction,
        recovered: last.miss_reduction > last.static_miss_reduction,
        swaps,
        rows,
    })
}

/// Measure one window against a long-lived sharded allocator (through
/// the `&ShardedHaloAllocator` bridge — the allocator keeps its heap
/// across windows, exactly like a serving process).
fn measure_serving(
    alloc: &ShardedHaloAllocator,
    program: &Program,
    config: &MeasureConfig,
) -> Result<Measurement, PipelineError> {
    let mut handle = alloc;
    Ok(measure(program, &mut handle, config)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_graph::GroupingParams;
    use halo_vm::{Cond, ProgramBuilder, Reg, Width};

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    /// A Fig. 2-shaped program: `hot` allocation contexts interleaved
    /// per round, then a pointer-chasing sweep. Different `hot` counts
    /// produce different affinity structure (and different binaries).
    fn phased_program(hot: usize, rounds: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let create = pb.declare("create");
        let mut m = pb.function("main");
        m.imm(r(9), 0);
        m.imm(r(10), 0);
        m.imm(r(11), rounds);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Ge, r(10), r(11), done);
        for k in 0..hot {
            let dst = r(1 + k as u8);
            m.call(create, &[], Some(dst));
            m.store(r(9), dst, 0, Width::W8);
            m.mov(r(9), dst);
        }
        m.add_imm(r(10), r(10), 1);
        m.jump(top);
        m.bind(done);
        m.imm(r(12), 0);
        let sweep = m.label();
        let sdone = m.label();
        m.bind(sweep);
        m.branch(Cond::Ge, r(12), r(11), sdone);
        m.mov(r(6), r(9));
        let walk = m.label();
        let wdone = m.label();
        m.bind(walk);
        m.branch(Cond::Eq, r(6), r(13), wdone);
        m.load(r(6), r(6), 0, Width::W8);
        m.jump(walk);
        m.bind(wdone);
        m.add_imm(r(12), r(12), 1);
        m.jump(sweep);
        m.bind(sdone);
        m.ret(None);
        let main = m.finish();
        let mut f = pb.define(create);
        f.imm(r(0), 32);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
        pb.finish(main)
    }

    fn serve_config() -> ServeConfig {
        ServeConfig {
            halo: HaloConfig {
                grouping: GroupingParams { min_weight: 2, ..Default::default() },
                ..Default::default()
            },
            shards: 2,
            ..Default::default()
        }
    }

    fn phase(name: &str, program: Program, windows: u64) -> ServePhase {
        ServePhase {
            name: name.into(),
            program,
            train_seed: 7,
            train_arg: 0,
            ref_seed: 100,
            ref_arg: 0,
            windows,
        }
    }

    #[test]
    fn steady_phase_never_swaps() {
        let report = serve(&[phase("steady", phased_program(2, 48), 3)], &serve_config())
            .expect("serve runs");
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.swaps, 0, "a stable workload triggers no swap: {:?}", report.rows);
        assert!(report.rows.iter().all(|row| row.plan_epoch == 0));
        // Drift is measured every window (regroup_every = 1) and stays
        // below the threshold: the same program profiled with the same
        // train seed re-groups identically.
        assert!(report.rows.iter().all(|row| row.drift == Some(0.0)), "{:?}", report.rows);
        // The static twin and serve run the same plan: identical rows.
        for row in &report.rows {
            assert_eq!(row.miss_reduction, row.static_miss_reduction);
        }
    }

    #[test]
    fn phase_shift_triggers_a_swap_and_serve_recovers() {
        // The real workload-mix shift the CLI demo scripts: the server
        // mix hands over to the xalanc-mt mix. These workloads produce
        // genuine L1D misses, so recovery is visible in miss reduction,
        // not just in the swap bookkeeping.
        let mut mt = halo_workloads::multithreaded();
        let xalanc = mt.pop().expect("xalanc-mt");
        let server = mt.pop().expect("server");
        let to_phase = |w: &halo_workloads::Workload, windows| ServePhase {
            name: w.name.into(),
            program: w.program.clone(),
            train_seed: w.train.seed,
            train_arg: w.train.arg,
            ref_seed: w.reference.seed,
            ref_arg: w.reference.arg,
            windows,
        };
        let phases = [to_phase(&server, 1), to_phase(&xalanc, 2)];
        let report =
            serve(&phases, &ServeConfig { shards: 2, ..Default::default() }).expect("serve runs");
        assert_eq!(report.rows.len(), 3);
        assert!(report.swaps >= 1, "the binary change must trigger a swap: {:?}", report.rows);
        let shift = &report.rows[1];
        assert_eq!(shift.phase, "xalanc-mt");
        assert_eq!(shift.drift, Some(1.0), "cross-binary drift reads full");
        assert!(shift.swapped);
        assert!(shift.plan_epoch >= 1);
        // After the shift the static plan serves the new binary
        // unmodified (no instrumentation → every allocation falls back)
        // while serve re-optimised: it must end ahead.
        assert!(report.recovered, "{report:?}");
        assert!(report.final_miss_reduction > report.final_static_miss_reduction);
        // Well-formed report plumbing.
        assert_eq!(report.final_miss_reduction, report.rows.last().unwrap().miss_reduction);
        assert!(report.rows.iter().filter(|row| row.swapped).count() as u64 == report.swaps);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_scripts_are_rejected() {
        let _ = serve(&[], &ServeConfig::default());
    }
}
