//! One policy for environment-variable overrides, used by every tunable
//! in the workspace (`HALO_THREADS`, `HALO_GRAPH_BENCH_NODES`,
//! `HALO_PROPTEST_CASES`).
//!
//! The rule: a *valid* value overrides, an *unset* variable is silently
//! ignored, and an *invalid* value warns loudly on stderr — once per
//! process per variable — and falls back. Before this helper the three
//! consumers each rolled their own: `HALO_THREADS` warned,
//! `HALO_GRAPH_BENCH_NODES` silently ignored typos, and
//! `HALO_PROPTEST_CASES` panicked — so the same mistake (`=max`, `=0`)
//! produced three different behaviours.

use std::collections::BTreeSet;
use std::sync::{Mutex, OnceLock};

/// The warning line an invalid override prints: `parse`'s error message
/// (which names the variable and the value) followed by what happens
/// instead. Split out so tests can pin the text without racing on the
/// process environment.
pub fn env_warning(reason: &str, fallback_note: &str) -> String {
    format!("warning: {reason}; {fallback_note}")
}

/// Whether `var` has not warned before in this process (and mark it).
fn first_warning_for(var: &str) -> bool {
    static WARNED: OnceLock<Mutex<BTreeSet<String>>> = OnceLock::new();
    WARNED
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .map(|mut seen| seen.insert(var.to_string()))
        .unwrap_or(true)
}

/// Read and parse the environment variable `var`.
///
/// * Unset (or non-UTF-8): `None`, silently — no override requested.
/// * `parse` succeeds: `Some(value)` — the override applies.
/// * `parse` fails: `None`, after printing
///   [`env_warning`]`(reason, fallback_note)` on stderr (once per process
///   per variable) — the caller applies its default, but the typo is not
///   swallowed.
///
/// `parse` errors should name the variable and the offending value, e.g.
/// `"HALO_THREADS=max is invalid: expected a positive integer"`.
pub fn parse_env_or_warn<T>(
    var: &str,
    fallback_note: &str,
    parse: impl FnOnce(&str) -> Result<T, String>,
) -> Option<T> {
    let value = std::env::var(var).ok()?;
    match parse(&value) {
        Ok(parsed) => Some(parsed),
        Err(reason) => {
            if first_warning_for(var) {
                eprintln!("{}", env_warning(&reason, fallback_note));
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warning_text_is_reason_then_fallback() {
        assert_eq!(
            env_warning(
                "HALO_THREADS=max is invalid: expected a positive integer",
                "using hardware parallelism"
            ),
            "warning: HALO_THREADS=max is invalid: expected a positive integer; \
             using hardware parallelism"
        );
    }

    #[test]
    fn unset_variables_are_silently_ignored() {
        // A name no test or harness sets; parse must never be consulted.
        let parsed =
            parse_env_or_warn("HALO_TEST_UNSET_NEVER_EXPORTED", "using the default", |_| {
                Err::<u32, _>("parse must not run for an unset variable".into())
            });
        assert_eq!(parsed, None);
    }

    #[test]
    fn set_variables_parse_or_fall_back() {
        // Unique names so parallel tests cannot collide; `set_var` is safe
        // in the 2021 edition and these names exist only here.
        std::env::set_var("HALO_TEST_ENV_VALID", "12");
        assert_eq!(
            parse_env_or_warn("HALO_TEST_ENV_VALID", "using the default", |v| v
                .trim()
                .parse::<u32>()
                .map_err(|_| format!("HALO_TEST_ENV_VALID={v} is invalid"))),
            Some(12)
        );
        std::env::set_var("HALO_TEST_ENV_INVALID", "max");
        let parsed = parse_env_or_warn("HALO_TEST_ENV_INVALID", "using the default", |v| {
            v.trim().parse::<u32>().map_err(|_| format!("HALO_TEST_ENV_INVALID={v} is invalid"))
        });
        assert_eq!(parsed, None, "invalid values fall back instead of overriding");
        // Warned once; a second failure for the same variable stays quiet
        // but still falls back.
        let again = parse_env_or_warn("HALO_TEST_ENV_INVALID", "using the default", |v| {
            v.trim().parse::<u32>().map_err(|_| format!("HALO_TEST_ENV_INVALID={v} is invalid"))
        });
        assert_eq!(again, None);
    }
}
