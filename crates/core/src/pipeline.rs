//! Pipeline orchestration: Fig. 4 end to end, plus the granularity policy
//! (§6's page-granularity fallback, which the paper sketches but never
//! builds).

use crate::measure::{measure, MeasureConfig};
use halo_graph::{group, Granularity, Group, GroupPlan, GroupingParams, ReusePolicyChoice};
use halo_ident::{contexts_from_profile, identify, Identification};
use halo_mem::{
    GroupAllocConfig, HaloGroupAllocator, ReusePolicy, ShardedHaloAllocator, SizeClassAllocator,
};
use halo_profile::{Profile, ProfileConfig, Profiler};
use halo_rewrite::{instrument, RewriteReport};
use halo_vm::{Engine, EngineLimits, Program, VmError, PAGE_SIZE};

/// Every tunable of the optimisation pipeline, grouped by stage.
#[derive(Debug, Clone, Copy)]
pub struct HaloConfig {
    /// Profiling-stage parameters (affinity distance, granularity, etc.).
    /// `profile.granularity` selects the grouping granularity policy:
    /// object (the paper's mode), page (§6's fallback), or auto.
    pub profile: ProfileConfig,
    /// Grouping-stage parameters (merge tolerance etc.).
    pub grouping: GroupingParams,
    /// Synthesised-allocator parameters (chunk size etc.). Under
    /// page-granularity grouping the `max_grouped_size` cap is lifted to
    /// the chunk size — grouping whole large arrays is the fallback's
    /// point.
    pub alloc: GroupAllocConfig,
    /// Limits for the profiling run.
    pub limits: EngineLimits,
    /// `auto` granularity keeps a grouping only if its measured L1D miss
    /// reduction on the *train* input exceeds this fraction; otherwise it
    /// falls back (object → page → decline to group). The ref input is
    /// never consulted, preserving the §5.1 train/ref separation.
    pub auto_min_gain: f64,
    /// Which in-chunk reuse policy group plans start from. `Bump` and
    /// `Sharded` stamp every group uniformly; `Auto` runs the per-group
    /// train-input validator: groups whose own chunks fragment beyond
    /// `reuse_min_frag` are trialled with mimalloc-style sharded free
    /// lists (and smaller chunks), and a flip is kept only when it cuts
    /// the measured fragmentation without costing more than
    /// `reuse_miss_tolerance` of the train-input L1D misses.
    pub reuse: ReusePolicyChoice,
    /// Per-group fragmentation fraction (of that group's own peak
    /// resident chunks) above which the `auto` reuse policy considers the
    /// group a flip candidate.
    pub reuse_min_frag: f64,
    /// Miss budget for an `auto` reuse flip: a candidate plan is rejected
    /// if it raises train-input L1D misses by more than this fraction over
    /// the all-bump plan — contiguity keeps the group at bump.
    pub reuse_miss_tolerance: f64,
    /// Memory-subsystem geometry the `auto` policy validates against.
    /// Must match the geometry the final measurement uses, or auto's
    /// accept/decline decision is made on the wrong cache;
    /// [`crate::evaluate_with_arg`] copies it from its `MeasureConfig`.
    pub hierarchy: halo_cache::HierarchyConfig,
    /// Cycle model for the `auto` validation runs (kept alongside
    /// `hierarchy` for the same reason; the decision itself is on misses).
    pub timing: halo_cache::TimingModel,
}

impl Default for HaloConfig {
    fn default() -> Self {
        HaloConfig {
            profile: ProfileConfig::default(),
            grouping: GroupingParams::default(),
            alloc: GroupAllocConfig::default(),
            limits: EngineLimits::default(),
            auto_min_gain: 0.01,
            reuse: ReusePolicyChoice::Bump,
            reuse_min_frag: 0.10,
            reuse_miss_tolerance: 0.01,
            hierarchy: halo_cache::HierarchyConfig::default(),
            timing: halo_cache::TimingModel::default(),
        }
    }
}

/// Why the pipeline failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The profiling (or any later verification) execution trapped.
    Vm(VmError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Vm(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<VmError> for PipelineError {
    fn from(e: VmError) -> Self {
        PipelineError::Vm(e)
    }
}

/// Everything the pipeline produces for one target binary.
#[derive(Debug)]
pub struct Optimised {
    /// The rewritten (instrumented) binary.
    pub program: Program,
    /// The profiling result it was derived from.
    pub profile: Profile,
    /// The allocation-context groups.
    pub groups: Vec<Group>,
    /// The granularity the emitted groups were formed at (never
    /// [`Granularity::Auto`]: the policy resolves to a concrete mode).
    pub granularity: Granularity,
    /// Whether the `auto` policy declined to group: neither granularity's
    /// grouping beat `auto_min_gain` on the train input, so the binary
    /// passes through unmodified (`groups` is empty).
    pub auto_declined: bool,
    /// Selectors, monitored sites, and the runtime table.
    pub ident: Identification,
    /// Rewriting statistics.
    pub rewrite: RewriteReport,
}

/// The HALO optimiser: configure once, apply to binaries.
#[derive(Debug, Clone, Default)]
pub struct Halo {
    config: HaloConfig,
}

impl Halo {
    /// Create a pipeline with the given configuration.
    pub fn new(config: HaloConfig) -> Self {
        Halo { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HaloConfig {
        &self.config
    }

    /// Profile `program` (one run with `train_seed`) and return the raw
    /// profile — the first pipeline stage alone.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Vm`] if the profiling run traps.
    pub fn profile(&self, program: &Program, train_seed: u64) -> Result<Profile, PipelineError> {
        self.profile_with_arg(program, train_seed, 0)
    }

    /// Like [`Halo::profile`], passing a scale argument to the entry
    /// function (the *train* input size).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Vm`] if the profiling run traps.
    pub fn profile_with_arg(
        &self,
        program: &Program,
        train_seed: u64,
        train_arg: i64,
    ) -> Result<Profile, PipelineError> {
        let mut profiler = Profiler::new(program, self.config.profile);
        // Profiling observes the program under the default allocator, as
        // the paper's Pin tool does.
        let mut alloc = SizeClassAllocator::new();
        Engine::new(program)
            .with_seed(train_seed)
            .with_entry_arg(train_arg)
            .with_limits(self.config.limits)
            .run(&mut alloc, &mut profiler)?;
        // Per-thread profiling shards union in a parallel tree; SubGraph's
        // merge is commutative, so this is observably identical to the
        // serial fold `Profiler::finish` would do.
        Ok(profiler.finish_with(crate::parallel::par_merge_subgraphs))
    }

    /// Run the whole pipeline: profile → group → identify → rewrite.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Vm`] if the profiling run traps.
    pub fn optimise(&self, program: &Program, train_seed: u64) -> Result<Optimised, PipelineError> {
        self.optimise_with_arg(program, train_seed, 0)
    }

    /// Like [`Halo::optimise`], passing a scale argument to the entry
    /// function for the profiling run.
    ///
    /// The configured granularity policy (`config.profile.granularity`)
    /// decides which affinity graph grouping consumes. `Auto` groups at
    /// object granularity first and checks the grouping's measured L1D
    /// miss reduction **on the train input** (profiling data only — the
    /// ref input is never consulted); if the gain is below
    /// `auto_min_gain` it retries at page granularity, and if that also
    /// fails to clear the bar it declines to group at all, leaving the
    /// binary untouched (the omnetpp case, where grouping per-module
    /// contexts splits each event wave across chunks).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Vm`] if the profiling run (or, under
    /// `Auto`, a train-input validation run) traps.
    pub fn optimise_with_arg(
        &self,
        program: &Program,
        train_seed: u64,
        train_arg: i64,
    ) -> Result<Optimised, PipelineError> {
        let profile = self.profile_with_arg(program, train_seed, train_arg)?;
        let optimised = match self.config.profile.granularity {
            Granularity::Object => self.assemble(program, profile, Granularity::Object, false),
            Granularity::Page => self.assemble(program, profile, Granularity::Page, false),
            Granularity::Auto => self.resolve_auto(program, profile, train_seed, train_arg)?,
        };
        if self.config.reuse == ReusePolicyChoice::Auto && !optimised.groups.is_empty() {
            self.resolve_reuse(optimised, train_seed, train_arg)
        } else {
            Ok(optimised)
        }
    }

    /// Group `profile` at one concrete granularity, stamp every group's
    /// layout plan from the configuration, and build the rewritten binary
    /// plus selector machinery. `pub(crate)` for the serve loop, which
    /// re-assembles from a *streamed* graph instead of a fresh profile.
    pub(crate) fn assemble(
        &self,
        program: &Program,
        profile: Profile,
        granularity: Granularity,
        auto_declined: bool,
    ) -> Optimised {
        let graph = match granularity {
            Granularity::Page => &profile.page_graph,
            _ => &profile.graph,
        };
        let resolved =
            if granularity == Granularity::Auto { Granularity::Object } else { granularity };
        let mut groups =
            if auto_declined { Vec::new() } else { group(graph, &self.config.grouping) };
        let plan = GroupPlan {
            granularity: resolved,
            reuse: self.config.reuse.initial_policy(),
            chunk_size: self.config.alloc.chunk_size,
            max_spare_chunks: self.config.alloc.max_spare_chunks,
        };
        for g in &mut groups {
            g.plan = plan;
        }
        let contexts = contexts_from_profile(&profile);
        let ident = identify(&groups, &contexts);
        let (rewritten, rewrite) = instrument(program, &ident.site_bits);
        Optimised {
            program: rewritten,
            profile,
            groups,
            granularity: resolved,
            auto_declined,
            ident,
            rewrite,
        }
    }

    /// The `auto` policy: object granularity, then page, then decline —
    /// each step validated by measuring the grouping against the plain
    /// baseline on the *train* input.
    fn resolve_auto(
        &self,
        program: &Program,
        profile: Profile,
        train_seed: u64,
        train_arg: i64,
    ) -> Result<Optimised, PipelineError> {
        let train_measure = MeasureConfig {
            hierarchy: self.config.hierarchy,
            timing: self.config.timing,
            limits: self.config.limits,
            seed: train_seed,
            entry_arg: train_arg,
        };
        let mut baseline_alloc = SizeClassAllocator::new();
        let baseline = measure(program, &mut baseline_alloc, &train_measure)?;

        for granularity in [Granularity::Object, Granularity::Page] {
            let candidate = self.assemble(program, profile.clone(), granularity, false);
            if candidate.groups.is_empty() {
                continue;
            }
            let mut alloc = self.make_allocator(&candidate);
            let measured = measure(&candidate.program, &mut alloc, &train_measure)?;
            if measured.miss_reduction_vs(&baseline) > self.config.auto_min_gain {
                return Ok(candidate);
            }
        }
        // Neither granularity demonstrated a train-input win: decline to
        // group and leave the binary untouched.
        Ok(self.assemble(program, profile, Granularity::Object, true))
    }

    /// The per-group `auto` reuse policy: starting from the all-bump plans
    /// stamped by [`Halo::assemble`], measure the optimised binary on the
    /// *train* input, rank groups by their own fragmentation, and trial
    /// each offender with mimalloc-style sharded free lists — at the
    /// group's current chunk size and at progressively smaller chunks
    /// (small chunks let survivor-pinned memory purge back to the OS). A
    /// candidate plan is kept only if the measured whole-allocator
    /// fragmentation fraction strictly improves while train-input L1D
    /// misses stay within `reuse_miss_tolerance` of the all-bump run —
    /// groups whose contiguity is winning misses keep bump. The ref input
    /// is never consulted (§5.1 train/ref separation).
    fn resolve_reuse(
        &self,
        mut optimised: Optimised,
        train_seed: u64,
        train_arg: i64,
    ) -> Result<Optimised, PipelineError> {
        let train_measure = MeasureConfig {
            hierarchy: self.config.hierarchy,
            timing: self.config.timing,
            limits: self.config.limits,
            seed: train_seed,
            entry_arg: train_arg,
        };
        let mut alloc = self.make_allocator(&optimised);
        let bump = measure(&optimised.program, &mut alloc, &train_measure)?;
        let group_frags = alloc.group_frag_reports();
        let mut best = (alloc.frag_report().frag_fraction(), bump.stats.l1_misses);
        let miss_cap =
            (bump.stats.l1_misses as f64 * (1.0 + self.config.reuse_miss_tolerance)) as u64;

        // Fragmentation-heavy groups first (their flips move the total
        // most); groups below the threshold — or wasting less than a page —
        // are never touched.
        let mut candidates: Vec<usize> = (0..optimised.groups.len())
            .filter(|&i| {
                group_frags[i].frag_fraction() >= self.config.reuse_min_frag
                    && group_frags[i].wasted_bytes() >= PAGE_SIZE
            })
            .collect();
        candidates.sort_by_key(|&i| std::cmp::Reverse(group_frags[i].wasted_bytes()));

        for i in candidates {
            let bump_plan = optimised.groups[i].plan;
            let mut accepted: Option<(GroupPlan, (f64, u64))> = None;
            let mut tried: Vec<GroupPlan> = Vec::new();
            for chunk_size in
                [bump_plan.chunk_size, bump_plan.chunk_size / 64, bump_plan.chunk_size / 128]
            {
                let chunk_size = chunk_size.max(2 * PAGE_SIZE).min(bump_plan.chunk_size);
                let candidate =
                    GroupPlan { reuse: ReusePolicy::ShardedFreeLists, chunk_size, ..bump_plan };
                if tried.contains(&candidate) {
                    continue; // the floor collapsed two ladder rungs into one
                }
                tried.push(candidate);
                optimised.groups[i].plan = candidate;
                let mut alloc = self.make_allocator(&optimised);
                let measured = measure(&optimised.program, &mut alloc, &train_measure)?;
                let score = (alloc.frag_report().frag_fraction(), measured.stats.l1_misses);
                if measured.stats.l1_misses <= miss_cap
                    && score.0 < best.0
                    && accepted.as_ref().is_none_or(|(_, s)| score < *s)
                {
                    accepted = Some((candidate, score));
                }
            }
            match accepted {
                Some((plan, score)) => {
                    optimised.groups[i].plan = plan;
                    best = score;
                }
                None => optimised.groups[i].plan = bump_plan,
            }
        }
        Ok(optimised)
    }

    /// Synthesise the specialised allocator for an optimisation result
    /// (§4.4) — link this against the rewritten binary at "runtime". Each
    /// group's chunks run under its own [`GroupPlan`] (chunk size, spare
    /// budget, reuse policy), translated here into per-group
    /// [`GroupAllocConfig`] overrides.
    ///
    /// Under page-granularity grouping the `max_grouped_size` cap is
    /// lifted to the chunk size: the §6 fallback exists precisely to lay
    /// out objects the object-granularity cap excludes.
    pub fn make_allocator(&self, optimised: &Optimised) -> HaloGroupAllocator {
        let (alloc, overrides) = self.alloc_plan(optimised);
        HaloGroupAllocator::with_group_configs(alloc, optimised.ident.table.clone(), overrides)
    }

    /// Synthesise the thread-safe sharded runtime for an optimisation
    /// result: `shards` complete group allocators (each honouring the same
    /// per-group plans as [`Halo::make_allocator`]) behind thread-keyed
    /// shard selection and remote-free queues. With `shards == 1` it is
    /// the plain allocator pointer for pointer.
    pub fn make_sharded_allocator(
        &self,
        optimised: &Optimised,
        shards: usize,
    ) -> ShardedHaloAllocator {
        let (alloc, overrides) = self.alloc_plan(optimised);
        ShardedHaloAllocator::new(shards, alloc, optimised.ident.table.clone(), overrides)
    }

    /// The global allocator configuration plus one per-group override per
    /// plan — the translation both allocator constructors share, and the
    /// shape [`halo_mem::ShardedHaloAllocator::swap_plans`] accepts from
    /// the serve loop.
    pub(crate) fn alloc_plan(
        &self,
        optimised: &Optimised,
    ) -> (GroupAllocConfig, Vec<GroupAllocConfig>) {
        let mut alloc = self.config.alloc;
        if optimised.granularity == Granularity::Page {
            alloc.max_grouped_size = alloc.max_grouped_size.max(alloc.chunk_size);
        }
        let overrides = optimised
            .groups
            .iter()
            .map(|g| GroupAllocConfig {
                chunk_size: g.plan.chunk_size,
                max_spare_chunks: g.plan.max_spare_chunks,
                reuse_policy: g.plan.reuse,
                ..alloc
            })
            .collect();
        (alloc, overrides)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Cond, ProgramBuilder, Reg, Width};

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    /// Fig. 2 at small scale: A/B hot and interleaved with cold C.
    fn fig2_program(rounds: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let create = pb.declare("create");
        let mut m = pb.function("main");
        m.imm(r(9), 0); // list head
        m.imm(r(10), 0);
        m.imm(r(11), rounds);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Ge, r(10), r(11), done);
        m.call(create, &[], Some(r(1))); // context A
        m.store(r(9), r(1), 0, Width::W8);
        m.mov(r(9), r(1));
        m.call(create, &[], Some(r(2))); // context B
        m.store(r(9), r(2), 0, Width::W8);
        m.mov(r(9), r(2));
        m.call(create, &[], Some(r(3))); // context C (touched once)
        m.store(r(10), r(3), 8, Width::W8);
        m.add_imm(r(10), r(10), 1);
        m.jump(top);
        m.bind(done);
        m.imm(r(12), 0);
        let sweep = m.label();
        let sdone = m.label();
        m.bind(sweep);
        m.branch(Cond::Ge, r(12), r(11), sdone);
        m.mov(r(6), r(9));
        let walk = m.label();
        let wdone = m.label();
        m.bind(walk);
        m.branch(Cond::Eq, r(6), r(13), wdone);
        m.load(r(7), r(6), 8, Width::W8);
        m.load(r(6), r(6), 0, Width::W8);
        m.jump(walk);
        m.bind(wdone);
        m.add_imm(r(12), r(12), 1);
        m.jump(sweep);
        m.bind(sdone);
        m.ret(None);
        let main = m.finish();
        let mut f = pb.define(create);
        f.imm(r(0), 32);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
        pb.finish(main)
    }

    #[test]
    fn pipeline_groups_the_hot_pair() {
        let p = fig2_program(64);
        let halo = Halo::new(HaloConfig {
            grouping: GroupingParams { min_weight: 2, ..Default::default() },
            ..Default::default()
        });
        let opt = halo.optimise(&p, 7).expect("pipeline runs");
        assert!(!opt.groups.is_empty(), "A and B should form a group");
        // The rewritten binary grew by instrumentation.
        assert!(opt.rewrite.sites_instrumented > 0);
        assert!(opt.program.code_size() > p.code_size());
        // Monitored sites are few — "only a small handful of call sites".
        assert!(opt.ident.site_bits.len() <= 4);
    }

    #[test]
    fn synthesised_allocator_groups_at_runtime() {
        let p = fig2_program(64);
        let halo = Halo::new(HaloConfig {
            grouping: GroupingParams { min_weight: 2, ..Default::default() },
            ..Default::default()
        });
        let opt = halo.optimise(&p, 7).expect("pipeline runs");
        let mut alloc = halo.make_allocator(&opt);
        let mut monitor = halo_vm::NullMonitor;
        Engine::new(&opt.program)
            .with_seed(9)
            .run(&mut alloc, &mut monitor)
            .expect("optimised binary runs");
        let stats = alloc.stats();
        assert!(stats.grouped_allocs > 0, "grouped allocations happened");
        // C is ungrouped: some allocations fell back.
        assert!(stats.fallback_allocs > 0, "cold context falls back");
    }

    #[test]
    fn pipeline_is_deterministic() {
        let p = fig2_program(32);
        let halo = Halo::new(HaloConfig::default());
        let a = halo.optimise(&p, 3).expect("runs");
        let b = halo.optimise(&p, 3).expect("runs");
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.ident.site_bits, b.ident.site_bits);
        assert_eq!(a.program.code_size(), b.program.code_size());
    }

    #[test]
    fn programs_without_groups_pass_through() {
        // A program with a single allocation and no affinity.
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(0), 64);
        m.malloc(r(0), r(1));
        m.store(r(0), r(1), 0, Width::W8);
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let halo = Halo::new(HaloConfig::default());
        let opt = halo.optimise(&p, 1).expect("runs");
        assert!(opt.groups.is_empty());
        assert_eq!(opt.program.code_size(), p.code_size(), "no instrumentation");
        // The allocator degenerates to pure fallback.
        let mut alloc = halo.make_allocator(&opt);
        let mut monitor = halo_vm::NullMonitor;
        Engine::new(&opt.program).run(&mut alloc, &mut monitor).expect("runs");
        assert_eq!(alloc.stats().grouped_allocs, 0);
    }

    #[test]
    fn profiling_failure_is_reported() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        let top = m.label();
        m.bind(top);
        m.jump(top);
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let halo = Halo::new(HaloConfig {
            limits: EngineLimits { max_instructions: 1000, max_call_depth: 8 },
            ..Default::default()
        });
        assert!(matches!(halo.optimise(&p, 0), Err(PipelineError::Vm(VmError::FuelExhausted))));
    }
}
