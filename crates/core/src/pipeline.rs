//! Pipeline orchestration: Fig. 4 end to end.

use halo_graph::{group, Group, GroupingParams};
use halo_ident::{contexts_from_profile, identify, Identification};
use halo_mem::{GroupAllocConfig, HaloGroupAllocator, SizeClassAllocator};
use halo_profile::{Profile, ProfileConfig, Profiler};
use halo_rewrite::{instrument, RewriteReport};
use halo_vm::{Engine, EngineLimits, Program, VmError};

/// Every tunable of the optimisation pipeline, grouped by stage.
#[derive(Debug, Clone, Copy, Default)]
pub struct HaloConfig {
    /// Profiling-stage parameters (affinity distance etc.).
    pub profile: ProfileConfig,
    /// Grouping-stage parameters (merge tolerance etc.).
    pub grouping: GroupingParams,
    /// Synthesised-allocator parameters (chunk size etc.).
    pub alloc: GroupAllocConfig,
    /// Limits for the profiling run.
    pub limits: EngineLimits,
}

/// Why the pipeline failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// The profiling (or any later verification) execution trapped.
    Vm(VmError),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Vm(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<VmError> for PipelineError {
    fn from(e: VmError) -> Self {
        PipelineError::Vm(e)
    }
}

/// Everything the pipeline produces for one target binary.
#[derive(Debug)]
pub struct Optimised {
    /// The rewritten (instrumented) binary.
    pub program: Program,
    /// The profiling result it was derived from.
    pub profile: Profile,
    /// The allocation-context groups.
    pub groups: Vec<Group>,
    /// Selectors, monitored sites, and the runtime table.
    pub ident: Identification,
    /// Rewriting statistics.
    pub rewrite: RewriteReport,
}

/// The HALO optimiser: configure once, apply to binaries.
#[derive(Debug, Clone, Default)]
pub struct Halo {
    config: HaloConfig,
}

impl Halo {
    /// Create a pipeline with the given configuration.
    pub fn new(config: HaloConfig) -> Self {
        Halo { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HaloConfig {
        &self.config
    }

    /// Profile `program` (one run with `train_seed`) and return the raw
    /// profile — the first pipeline stage alone.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Vm`] if the profiling run traps.
    pub fn profile(&self, program: &Program, train_seed: u64) -> Result<Profile, PipelineError> {
        self.profile_with_arg(program, train_seed, 0)
    }

    /// Like [`Halo::profile`], passing a scale argument to the entry
    /// function (the *train* input size).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Vm`] if the profiling run traps.
    pub fn profile_with_arg(
        &self,
        program: &Program,
        train_seed: u64,
        train_arg: i64,
    ) -> Result<Profile, PipelineError> {
        let mut profiler = Profiler::new(program, self.config.profile);
        // Profiling observes the program under the default allocator, as
        // the paper's Pin tool does.
        let mut alloc = SizeClassAllocator::new();
        Engine::new(program)
            .with_seed(train_seed)
            .with_entry_arg(train_arg)
            .with_limits(self.config.limits)
            .run(&mut alloc, &mut profiler)?;
        Ok(profiler.finish())
    }

    /// Run the whole pipeline: profile → group → identify → rewrite.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Vm`] if the profiling run traps.
    pub fn optimise(&self, program: &Program, train_seed: u64) -> Result<Optimised, PipelineError> {
        self.optimise_with_arg(program, train_seed, 0)
    }

    /// Like [`Halo::optimise`], passing a scale argument to the entry
    /// function for the profiling run.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Vm`] if the profiling run traps.
    pub fn optimise_with_arg(
        &self,
        program: &Program,
        train_seed: u64,
        train_arg: i64,
    ) -> Result<Optimised, PipelineError> {
        let profile = self.profile_with_arg(program, train_seed, train_arg)?;
        let groups = group(&profile.graph, &self.config.grouping);
        let contexts = contexts_from_profile(&profile);
        let ident = identify(&groups, &contexts);
        let (rewritten, rewrite) = instrument(program, &ident.site_bits);
        Ok(Optimised { program: rewritten, profile, groups, ident, rewrite })
    }

    /// Synthesise the specialised allocator for an optimisation result
    /// (§4.4) — link this against the rewritten binary at "runtime".
    pub fn make_allocator(&self, optimised: &Optimised) -> HaloGroupAllocator {
        HaloGroupAllocator::new(self.config.alloc, optimised.ident.table.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Cond, ProgramBuilder, Reg, Width};

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    /// Fig. 2 at small scale: A/B hot and interleaved with cold C.
    fn fig2_program(rounds: i64) -> Program {
        let mut pb = ProgramBuilder::new();
        let create = pb.declare("create");
        let mut m = pb.function("main");
        m.imm(r(9), 0); // list head
        m.imm(r(10), 0);
        m.imm(r(11), rounds);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Ge, r(10), r(11), done);
        m.call(create, &[], Some(r(1))); // context A
        m.store(r(9), r(1), 0, Width::W8);
        m.mov(r(9), r(1));
        m.call(create, &[], Some(r(2))); // context B
        m.store(r(9), r(2), 0, Width::W8);
        m.mov(r(9), r(2));
        m.call(create, &[], Some(r(3))); // context C (touched once)
        m.store(r(10), r(3), 8, Width::W8);
        m.add_imm(r(10), r(10), 1);
        m.jump(top);
        m.bind(done);
        m.imm(r(12), 0);
        let sweep = m.label();
        let sdone = m.label();
        m.bind(sweep);
        m.branch(Cond::Ge, r(12), r(11), sdone);
        m.mov(r(6), r(9));
        let walk = m.label();
        let wdone = m.label();
        m.bind(walk);
        m.branch(Cond::Eq, r(6), r(13), wdone);
        m.load(r(7), r(6), 8, Width::W8);
        m.load(r(6), r(6), 0, Width::W8);
        m.jump(walk);
        m.bind(wdone);
        m.add_imm(r(12), r(12), 1);
        m.jump(sweep);
        m.bind(sdone);
        m.ret(None);
        let main = m.finish();
        let mut f = pb.define(create);
        f.imm(r(0), 32);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        f.finish();
        pb.finish(main)
    }

    #[test]
    fn pipeline_groups_the_hot_pair() {
        let p = fig2_program(64);
        let halo = Halo::new(HaloConfig {
            grouping: GroupingParams { min_weight: 2, ..Default::default() },
            ..Default::default()
        });
        let opt = halo.optimise(&p, 7).expect("pipeline runs");
        assert!(!opt.groups.is_empty(), "A and B should form a group");
        // The rewritten binary grew by instrumentation.
        assert!(opt.rewrite.sites_instrumented > 0);
        assert!(opt.program.code_size() > p.code_size());
        // Monitored sites are few — "only a small handful of call sites".
        assert!(opt.ident.site_bits.len() <= 4);
    }

    #[test]
    fn synthesised_allocator_groups_at_runtime() {
        let p = fig2_program(64);
        let halo = Halo::new(HaloConfig {
            grouping: GroupingParams { min_weight: 2, ..Default::default() },
            ..Default::default()
        });
        let opt = halo.optimise(&p, 7).expect("pipeline runs");
        let mut alloc = halo.make_allocator(&opt);
        let mut monitor = halo_vm::NullMonitor;
        Engine::new(&opt.program)
            .with_seed(9)
            .run(&mut alloc, &mut monitor)
            .expect("optimised binary runs");
        let stats = alloc.stats();
        assert!(stats.grouped_allocs > 0, "grouped allocations happened");
        // C is ungrouped: some allocations fell back.
        assert!(stats.fallback_allocs > 0, "cold context falls back");
    }

    #[test]
    fn pipeline_is_deterministic() {
        let p = fig2_program(32);
        let halo = Halo::new(HaloConfig::default());
        let a = halo.optimise(&p, 3).expect("runs");
        let b = halo.optimise(&p, 3).expect("runs");
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.ident.site_bits, b.ident.site_bits);
        assert_eq!(a.program.code_size(), b.program.code_size());
    }

    #[test]
    fn programs_without_groups_pass_through() {
        // A program with a single allocation and no affinity.
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(0), 64);
        m.malloc(r(0), r(1));
        m.store(r(0), r(1), 0, Width::W8);
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let halo = Halo::new(HaloConfig::default());
        let opt = halo.optimise(&p, 1).expect("runs");
        assert!(opt.groups.is_empty());
        assert_eq!(opt.program.code_size(), p.code_size(), "no instrumentation");
        // The allocator degenerates to pure fallback.
        let mut alloc = halo.make_allocator(&opt);
        let mut monitor = halo_vm::NullMonitor;
        Engine::new(&opt.program).run(&mut alloc, &mut monitor).expect("runs");
        assert_eq!(alloc.stats().grouped_allocs, 0);
    }

    #[test]
    fn profiling_failure_is_reported() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        let top = m.label();
        m.bind(top);
        m.jump(top);
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let halo = Halo::new(HaloConfig {
            limits: EngineLimits { max_instructions: 1000, max_call_depth: 8 },
            ..Default::default()
        });
        assert!(matches!(halo.optimise(&p, 0), Err(PipelineError::Vm(VmError::FuelExhausted))));
    }
}
