//! The §5 evaluation methodology for a single workload: profile on the
//! *train* input, measure on the *ref* input, across all compared
//! configurations — each produced by the [`crate::backend`] registry
//! rather than a hand-written arm per configuration.

use crate::backend::{BackendCtx, BackendSpec, BACKENDS};
use crate::measure::{measure_detailed, MeasureConfig, Measurement};
use crate::parallel::par_map;
use crate::pipeline::{Halo, HaloConfig, Optimised, PipelineError};
use halo_cache::ThreadAccessStats;
use halo_hds::{analyze, HdsConfig, HdsResult};
use halo_mem::{
    DegradeStats, FaultPlan, FragReport, GroupAllocStats, ShardedAllocStats, SizeClassAllocator,
};
use halo_profile::TraceCollector;
use halo_vm::{Engine, Program, VmError};

/// What to run and with which knobs.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// HALO pipeline configuration.
    pub halo: HaloConfig,
    /// Hot-data-streams configuration.
    pub hds: HdsConfig,
    /// Measurement-run configuration (the *ref* seed lives here).
    pub measure: MeasureConfig,
    /// Optional backends to measure in addition to the always-on ones —
    /// registry ids, e.g. `"random"` (Fig. 15), `"ptmalloc"` (§5.1), and
    /// `"halo-sharded"` (the thread-safe sharded runtime).
    pub extras: Vec<&'static str>,
    /// Shard count for the `halo-sharded` backend (`--shards` on the
    /// CLI). Ignored unless that backend is enabled.
    pub shards: usize,
    /// Deterministic fault schedule replayed against every HALO backend
    /// (`--inject` on the CLI). `None` — the default — attaches no
    /// injector, keeping every measurement byte-identical to a build
    /// without fault support. Each backend gets a fresh injector with
    /// fresh occurrence counters, so the schedule replays identically
    /// per backend.
    pub faults: Option<FaultPlan>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            halo: HaloConfig::default(),
            hds: HdsConfig::default(),
            measure: MeasureConfig::default(),
            extras: Vec::new(),
            shards: 4,
            faults: None,
        }
    }
}

/// One configuration's measurement plus technique-specific extras.
#[derive(Debug, Clone)]
pub struct ConfigResult {
    /// The measured execution.
    pub measurement: Measurement,
    /// Fragmentation of grouped data (backends with grouped pools).
    pub frag: Option<FragReport>,
    /// Group-allocator event counters (backends with grouped pools).
    pub alloc_stats: Option<GroupAllocStats>,
    /// Remote-free queue pressure (the `halo-sharded` backend only).
    pub sharded: Option<ShardedAllocStats>,
    /// Degradation-ladder counters (HALO backends; all-zero outside
    /// fault-injection runs unless the run genuinely degraded).
    pub degrade: Option<DegradeStats>,
    /// Per-logical-thread cache counters, in thread-id order; a single
    /// entry for single-threaded programs.
    pub thread_stats: Vec<ThreadAccessStats>,
}

/// The full §5 result for one workload.
#[derive(Debug)]
pub struct EvalResult {
    /// Workload name.
    pub name: String,
    /// One entry per enabled backend, in registry order: `(backend id,
    /// result)`. The always-on ids are `baseline`, `halo`, and `hds`;
    /// whatever [`EvalConfig::extras`] enabled follows.
    pub backends: Vec<(&'static str, ConfigResult)>,
    /// The HALO pipeline artefacts (groups + plans, selectors, rewrite
    /// report).
    pub optimised: Optimised,
    /// The hot-data-streams analysis artefacts (stream counts etc.).
    pub hds_analysis: HdsResult,
}

impl EvalResult {
    /// The result of backend `id`, if it was measured.
    pub fn get(&self, id: &str) -> Option<&ConfigResult> {
        self.backends.iter().find(|(b, _)| *b == id).map(|(_, r)| r)
    }

    fn expect_backend(&self, id: &str) -> &ConfigResult {
        self.get(id).unwrap_or_else(|| panic!("always-on backend '{id}' was not measured"))
    }

    /// Unmodified binary under the jemalloc-style baseline.
    pub fn baseline(&self) -> &ConfigResult {
        self.expect_backend("baseline")
    }

    /// Rewritten binary under the synthesised allocator.
    pub fn halo(&self) -> &ConfigResult {
        self.expect_backend("halo")
    }

    /// Unmodified binary under the hot-data-streams allocator.
    pub fn hds(&self) -> &ConfigResult {
        self.expect_backend("hds")
    }

    /// Unmodified binary under the random four-pool allocator (Fig. 15),
    /// when the `random` extra was enabled.
    pub fn random(&self) -> Option<&ConfigResult> {
        self.get("random")
    }

    /// Unmodified binary under the ptmalloc-style baseline (§5.1), when
    /// the `ptmalloc` extra was enabled.
    pub fn ptmalloc(&self) -> Option<&ConfigResult> {
        self.get("ptmalloc")
    }

    /// Fig. 13 row: L1D miss reduction (fractions) for (HDS, HALO).
    pub fn miss_reduction_row(&self) -> (f64, f64) {
        let base = &self.baseline().measurement;
        (
            self.hds().measurement.miss_reduction_vs(base),
            self.halo().measurement.miss_reduction_vs(base),
        )
    }

    /// Fig. 14 row: speedup (fractions) for (HDS, HALO).
    pub fn speedup_row(&self) -> (f64, f64) {
        let base = &self.baseline().measurement;
        (self.hds().measurement.speedup_vs(base), self.halo().measurement.speedup_vs(base))
    }
}

/// Run the full methodology for one workload program.
///
/// `train_seed` drives the profiling runs (the paper's *test/train*
/// inputs); the measurement seed in `config.measure` drives the *ref*
/// runs. All runs are deterministic, standing in for the paper's
/// 11-trial medians (see DESIGN.md).
///
/// # Errors
///
/// Returns [`PipelineError`] if any execution traps.
pub fn evaluate(
    program: &Program,
    name: &str,
    train_seed: u64,
    config: &EvalConfig,
) -> Result<EvalResult, PipelineError> {
    evaluate_with_arg(program, name, train_seed, 0, config)
}

/// Like [`evaluate`], passing a scale argument to the entry function for
/// the profiling (train) runs. The measurement (ref) argument lives in
/// `config.measure.entry_arg`.
///
/// # Errors
///
/// Returns [`PipelineError`] if any execution traps.
pub fn evaluate_with_arg(
    program: &Program,
    name: &str,
    train_seed: u64,
    train_arg: i64,
    config: &EvalConfig,
) -> Result<EvalResult, PipelineError> {
    // --- HALO pipeline on the train input. The auto policies (granularity
    // and per-group reuse) validate candidates by measurement, so they
    // must see the same memory-subsystem geometry the final measurements
    // use.
    let mut halo_config = config.halo;
    halo_config.hierarchy = config.measure.hierarchy;
    halo_config.timing = config.measure.timing;
    let halo = Halo::new(halo_config);
    let optimised = halo.optimise_with_arg(program, train_seed, train_arg)?;

    // --- Hot-data-streams analysis on the train input.
    let mut collector = TraceCollector::new();
    {
        let mut alloc = SizeClassAllocator::new();
        Engine::new(program)
            .with_seed(train_seed)
            .with_entry_arg(train_arg)
            .with_limits(config.halo.limits)
            .run(&mut alloc, &mut collector)?;
    }
    let trace = collector.finish();
    let hds_analysis = analyze(&trace, &config.hds);

    // --- Measurement runs on the ref input: every enabled registry
    // backend. Each backend owns its whole measurement (allocator,
    // engine, simulated memory, cache model) and shares only read-only
    // artefacts, so the backends fan out across threads
    // (`HALO_THREADS`-governed, like the workload sweeps); results are
    // collected in registry order, keeping every downstream table and
    // JSON document byte-identical to the old serial loop.
    let ctx = BackendCtx {
        config,
        halo: Some(&halo),
        optimised: Some(&optimised),
        hds: Some(&hds_analysis),
    };
    let enabled: Vec<&BackendSpec> = BACKENDS.iter().filter(|s| s.enabled(config)).collect();
    let measured = par_map(&enabled, |spec| -> Result<(&'static str, ConfigResult), VmError> {
        let mut alloc = spec.make_allocator(&ctx);
        if let Some(plan) = &config.faults {
            // Each backend replays the schedule from occurrence zero;
            // backends without a degradation ladder (the baselines)
            // decline and run clean.
            alloc.backend_inject(plan);
        }
        let target = if spec.rewritten { &optimised.program } else { program };
        let d = measure_detailed(target, &mut alloc, &config.measure)?;
        Ok((
            spec.id,
            ConfigResult {
                measurement: d.measurement,
                frag: alloc.backend_frag(),
                alloc_stats: alloc.backend_stats(),
                sharded: alloc.backend_sharded_stats(),
                degrade: alloc.backend_degrade(),
                thread_stats: d.thread_stats,
            },
        ))
    });
    let mut backends = Vec::with_capacity(measured.len());
    for result in measured {
        backends.push(result?);
    }

    Ok(EvalResult { name: name.to_string(), backends, optimised, hds_analysis })
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{Cond, ProgramBuilder, Reg, Width};

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    /// A/B hot interleaved with cold C — distinct call sites, so both HALO
    /// and HDS have material to work with.
    fn workload() -> Program {
        let mut pb = ProgramBuilder::new();
        let mk_a = pb.declare("mk_a");
        let mk_b = pb.declare("mk_b");
        let mk_c = pb.declare("mk_c");
        for f in [mk_a, mk_b, mk_c] {
            let mut fb = pb.define(f);
            fb.imm(r(0), 24);
            fb.malloc(r(0), r(1));
            fb.ret(Some(r(1)));
            fb.finish();
        }
        let mut m = pb.function("main");
        m.imm(r(9), 0);
        m.imm(r(10), 0);
        m.imm(r(11), 256);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Ge, r(10), r(11), done);
        m.call(mk_a, &[], Some(r(1)));
        m.store(r(9), r(1), 0, Width::W8);
        m.mov(r(9), r(1));
        m.call(mk_b, &[], Some(r(2)));
        m.store(r(9), r(2), 0, Width::W8);
        m.mov(r(9), r(2));
        m.call(mk_c, &[], Some(r(3)));
        m.store(r(10), r(3), 8, Width::W8);
        m.add_imm(r(10), r(10), 1);
        m.jump(top);
        m.bind(done);
        m.imm(r(12), 0);
        m.imm(r(14), 40);
        let sweep = m.label();
        let sdone = m.label();
        m.bind(sweep);
        m.branch(Cond::Ge, r(12), r(14), sdone);
        m.mov(r(6), r(9));
        let walk = m.label();
        let wdone = m.label();
        m.bind(walk);
        m.branch(Cond::Eq, r(6), r(13), wdone);
        m.load(r(7), r(6), 8, Width::W8);
        m.load(r(6), r(6), 0, Width::W8);
        m.jump(walk);
        m.bind(wdone);
        m.add_imm(r(12), r(12), 1);
        m.jump(sweep);
        m.bind(sdone);
        m.ret(None);
        let main = m.finish();
        pb.finish(main)
    }

    #[test]
    fn evaluation_improves_the_motivating_workload() {
        let p = workload();
        let cfg = EvalConfig {
            halo: HaloConfig {
                grouping: halo_graph::GroupingParams { min_weight: 2, ..Default::default() },
                ..Default::default()
            },
            extras: vec!["random", "ptmalloc"],
            ..Default::default()
        };
        let result = evaluate(&p, "fig2", 1, &cfg).expect("evaluation runs");
        let (hds_mr, halo_mr) = result.miss_reduction_row();
        let (_, halo_su) = result.speedup_row();
        // HALO must reduce misses and not meaningfully slow the program
        // down on the motivating pattern (at this tiny scale the two added
        // instrumentation instructions can eat the cycle savings).
        assert!(halo_mr > 0.05, "HALO miss reduction {halo_mr}");
        assert!(halo_su > -0.01, "HALO speedup {halo_su}");
        // HDS with distinct immediate call sites also gets improvement.
        assert!(hds_mr > 0.0, "HDS miss reduction {hds_mr}");
        // Extras are present.
        assert!(result.random().is_some() && result.ptmalloc().is_some());
        assert!(result.halo().frag.is_some());
        assert!(result.optimised.rewrite.sites_instrumented > 0);
        assert!(result.hds_analysis.stats.hot_streams > 0);
    }

    #[test]
    fn jemalloc_baseline_beats_ptmalloc_on_misses() {
        // The §5.1 claim, at workload scale: the size-class baseline
        // produces no more misses than the boundary-tag allocator with its
        // inline headers.
        let p = workload();
        let cfg = EvalConfig { extras: vec!["ptmalloc"], ..Default::default() };
        let result = evaluate(&p, "fig2", 1, &cfg).expect("runs");
        let pt = result.ptmalloc().expect("requested");
        assert!(
            result.baseline().measurement.stats.l1_misses <= pt.measurement.stats.l1_misses,
            "jemalloc {} vs ptmalloc {}",
            result.baseline().measurement.stats.l1_misses,
            pt.measurement.stats.l1_misses
        );
    }

    #[test]
    fn sharded_backend_measures_like_halo_on_single_threaded_programs() {
        // A program that never switches logical threads drives every
        // request through shard 0, whose address layout is identical to
        // the plain allocator's — so the sharded backend's measurement
        // must reproduce the halo backend's exactly, at any shard count.
        let p = workload();
        let cfg = EvalConfig {
            halo: HaloConfig {
                grouping: halo_graph::GroupingParams { min_weight: 2, ..Default::default() },
                ..Default::default()
            },
            extras: vec!["halo-sharded"],
            shards: 4,
            ..Default::default()
        };
        let result = evaluate(&p, "fig2", 1, &cfg).expect("evaluation runs");
        let sharded = result.get("halo-sharded").expect("requested backend");
        let halo = result.halo();
        assert_eq!(sharded.measurement.stats.l1_misses, halo.measurement.stats.l1_misses);
        assert_eq!(sharded.measurement.cycles, halo.measurement.cycles);
        assert_eq!(sharded.frag, halo.frag, "one active shard: aggregate equals plain");
        assert_eq!(sharded.alloc_stats, halo.alloc_stats);
    }

    /// A cross-thread malloc/free stream: logical thread 1 builds a list,
    /// logical thread 2 frees every node — under a sharded backend each
    /// free lands on a foreign shard's remote queue.
    fn cross_thread_workload() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.thread_switch(1);
        m.imm(r(9), 0);
        m.imm(r(10), 0);
        m.imm(r(11), 64);
        m.imm(r(0), 24);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Ge, r(10), r(11), done);
        m.malloc(r(0), r(1));
        m.store(r(9), r(1), 0, Width::W8);
        m.mov(r(9), r(1));
        m.add_imm(r(10), r(10), 1);
        m.jump(top);
        m.bind(done);
        m.thread_switch(2);
        m.imm(r(13), 0); // explicit null for the list-walk terminator
        let ftop = m.label();
        let fdone = m.label();
        m.bind(ftop);
        m.branch(Cond::Eq, r(9), r(13), fdone);
        m.load(r(2), r(9), 0, Width::W8);
        m.free(r(9));
        m.mov(r(9), r(2));
        m.jump(ftop);
        m.bind(fdone);
        m.ret(None);
        let main = m.finish();
        pb.finish(main)
    }

    #[test]
    fn sharded_backend_reports_exact_free_counts_on_cross_thread_streams() {
        // The program frees everything it allocates, but on a different
        // logical thread: the sharded allocator defers those frees to the
        // owners' remote queues, and the engine's end-of-run flush
        // (`run_finished` → `drain_remote`) must apply them before the
        // evaluation snapshots the counters — otherwise the backend
        // appears to leak.
        let p = cross_thread_workload();
        let cfg = EvalConfig { extras: vec!["halo-sharded"], shards: 2, ..EvalConfig::default() };
        let result = evaluate(&p, "mt", 1, &cfg).expect("evaluation runs");
        let s = result.get("halo-sharded").expect("requested").alloc_stats.expect("grouped");
        assert_eq!(
            s.grouped_allocs + s.fallback_allocs,
            s.grouped_frees + s.fallback_frees,
            "every free (including remote-queued ones) is applied before reporting: {s:?}"
        );
        assert_eq!(s.grouped_allocs + s.fallback_allocs, 64);
    }

    #[test]
    fn fault_injection_degrades_but_never_fails_the_evaluation() {
        let p = workload();
        let cfg = EvalConfig {
            halo: HaloConfig {
                grouping: halo_graph::GroupingParams { min_weight: 2, ..Default::default() },
                ..Default::default()
            },
            extras: vec!["halo-sharded"],
            faults: Some(FaultPlan::new(3).at(halo_mem::FaultSite::VmmReserve, 1)),
            ..Default::default()
        };
        let result = evaluate(&p, "fig2", 1, &cfg).expect("evaluation survives injected faults");
        // The HALO backend's first slab reservation failed: its group
        // degraded, the run completed on the fallback, and the ladder's
        // counters surfaced in the result.
        let d = result.halo().degrade.expect("halo backend reports degradation");
        assert!(d.injected_faults >= 1, "the fault fired: {d:?}");
        assert!(d.fallback_routes >= 1, "requests were routed, not refused: {d:?}");
        assert!(d.degraded_groups >= 1);
        // Each backend replays the schedule with fresh counters.
        let ds = result.get("halo-sharded").expect("requested").degrade.expect("ladder");
        assert!(ds.injected_faults >= 1, "fresh injector per backend: {ds:?}");
        // Baselines predate the ladder and decline injection.
        assert!(result.baseline().degrade.is_none());
        // An empty plan attaches an injector that never fires.
        let clean = EvalConfig { faults: Some(FaultPlan::default()), ..EvalConfig::default() };
        let clean_result = evaluate(&p, "fig2", 1, &clean).expect("runs");
        assert_eq!(clean_result.halo().degrade, Some(DegradeStats::default()));
    }

    #[test]
    fn backends_follow_registry_order_and_gating() {
        let p = workload();
        let plain = evaluate(&p, "fig2", 1, &EvalConfig::default()).expect("runs");
        let ids: Vec<&str> = plain.backends.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, ["baseline", "halo", "hds"], "extras absent unless requested");
        assert!(plain.random().is_none() && plain.ptmalloc().is_none());
        let cfg = EvalConfig { extras: vec!["random"], ..Default::default() };
        let with_random = evaluate(&p, "fig2", 1, &cfg).expect("runs");
        let ids: Vec<&str> = with_random.backends.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, ["baseline", "halo", "hds", "random"]);
        // Non-grouped backends report no grouped-pool diagnostics.
        assert!(with_random.baseline().frag.is_none());
        assert!(with_random.random().expect("requested").frag.is_none());
        assert!(with_random.halo().frag.is_some());
    }
}
