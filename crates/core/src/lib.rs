//! The HALO pipeline (Fig. 4) and the evaluation harness.
//!
//! [`Halo`] wires the stages together exactly as the paper's Fig. 4:
//!
//! ```text
//! executable ──(profiling)──► affinity graph + contexts
//!            ──(grouping)───► groups
//!            ──(identification + BOLT rewriting)──► optimised executable
//!            ──(allocator synthesis)──► specialised allocator
//! ```
//!
//! The [`measure`] runner executes any program under any allocator on the
//! simulated memory hierarchy and reports the paper's two metrics (L1D
//! misses and simulated time), and [`evaluate`] runs the full §5
//! methodology for one workload: profile on the *train* seed, measure on
//! the *ref* seed, for the jemalloc-style baseline, HALO, hot data streams,
//! the random four-pool allocator (Fig. 15), and the ptmalloc-style
//! baseline (§5.1).
//!
//! # Example
//!
//! ```
//! use halo_core::{Halo, HaloConfig, measure, MeasureConfig};
//! use halo_vm::{Cond, ProgramBuilder, Reg, Width};
//!
//! // A program with two hot interleaved contexts (the Fig. 2 shape).
//! # fn fig2() -> halo_vm::Program {
//! #     let mut pb = ProgramBuilder::new();
//! #     let mk = pb.declare("mk");
//! #     let mut m = pb.function("main");
//! #     let r = Reg;
//! #     m.imm(r(9), 0).imm(r(10), 0).imm(r(11), 64);
//! #     let top = m.label(); let done = m.label();
//! #     m.bind(top);
//! #     m.branch(Cond::Ge, r(10), r(11), done);
//! #     m.call(mk, &[], Some(r(1)));
//! #     m.store(r(9), r(1), 0, Width::W8);
//! #     m.mov(r(9), r(1));
//! #     m.call(mk, &[], Some(r(2)));
//! #     m.store(r(9), r(2), 0, Width::W8);
//! #     m.mov(r(9), r(2));
//! #     m.add_imm(r(10), r(10), 1);
//! #     m.jump(top);
//! #     m.bind(done);
//! #     m.imm(r(12), 0);
//! #     let sweep = m.label(); let sdone = m.label();
//! #     m.bind(sweep);
//! #     m.branch(Cond::Ge, r(12), r(11), sdone);
//! #     m.mov(r(6), r(9));
//! #     let walk = m.label(); let wdone = m.label();
//! #     m.bind(walk);
//! #     m.branch(Cond::Eq, r(6), r(13), wdone);
//! #     m.load(r(6), r(6), 0, Width::W8);
//! #     m.jump(walk);
//! #     m.bind(wdone);
//! #     m.add_imm(r(12), r(12), 1);
//! #     m.jump(sweep);
//! #     m.bind(sdone);
//! #     m.ret(None);
//! #     let main = m.finish();
//! #     let mut f = pb.define(mk);
//! #     f.imm(r(0), 32);
//! #     f.malloc(r(0), r(1));
//! #     f.ret(Some(r(1)));
//! #     f.finish();
//! #     pb.finish(main)
//! # }
//! let program = fig2();
//! let halo = Halo::new(HaloConfig::default());
//! let optimised = halo.optimise(&program, 1)?;
//! let mut alloc = halo.make_allocator(&optimised);
//! let m = measure(&optimised.program, &mut alloc, &MeasureConfig::default())?;
//! assert!(m.stats.accesses() > 0);
//! # Ok::<(), halo_core::PipelineError>(())
//! ```

mod backend;
mod env;
mod evaluate;
mod measure;
mod parallel;
mod pipeline;
mod serve;

pub use backend::{backend_spec, BackendCtx, BackendSpec, BACKENDS};
pub use env::{env_warning, parse_env_or_warn};
pub use evaluate::{evaluate, evaluate_with_arg, ConfigResult, EvalConfig, EvalResult};
pub use measure::{
    measure, measure_detailed, measure_with, CacheMonitor, MeasureConfig, MeasureDetail,
    Measurement,
};
pub use parallel::{
    par_each_ordered, par_map, par_merge_subgraphs, parse_halo_threads, thread_count,
};
pub use pipeline::{Halo, HaloConfig, Optimised, PipelineError};
pub use serve::{serve, EpochRow, ServeConfig, ServePhase, ServeReport};
