//! Deterministic parallel fan-out for workload sweeps.
//!
//! `halo plot`, `halo run --benchmark all`, and the fig12/fig13/fig14
//! harnesses are embarrassingly parallel across workloads: every job owns
//! its whole pipeline (profiler, allocators, simulated memory), so nothing
//! is shared but the read-only workload descriptions. [`par_each_ordered`]
//! runs such jobs on scoped std threads and delivers results **in input
//! order, streamed as soon as each prefix completes** — so callers that
//! render results to text print rows progressively (like the old serial
//! loops) yet produce byte-identical output at any thread count, the
//! property `tests/cli_smoke.rs` pins down. [`par_map`] is the
//! collect-everything convenience wrapper.
//!
//! Thread count: `HALO_THREADS` if set (a positive integer; `1` forces the
//! serial path), else [`std::thread::available_parallelism`], capped at
//! the number of jobs. No crates.io dependency — just `std::thread::scope`,
//! an atomic work-stealing cursor, and a mutex/condvar for in-order
//! delivery.

use halo_graph::SubGraph;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Parse a `HALO_THREADS` value: a positive integer (`1` forces the
/// serial path). `Err` describes why the value is unusable — `0` and
/// non-numeric strings used to be silently ignored, which made typos like
/// `HALO_THREADS=max` run at full parallelism without a word.
pub fn parse_halo_threads(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "HALO_THREADS={value} is invalid: thread count must be at least 1 \
             (use 1 to force the serial path)"
        )),
        Ok(n) => Ok(n),
        Err(_) => Err(format!(
            "HALO_THREADS={value} is invalid: expected a positive integer, \
             e.g. HALO_THREADS=1 for the serial path"
        )),
    }
}

/// Worker threads to use for `jobs` independent jobs (≥ 1).
///
/// Honours `HALO_THREADS` when set to a valid positive integer; an invalid
/// value is reported on stderr via [`crate::parse_env_or_warn`] (once per
/// process) and falls back to the hardware parallelism instead of being
/// silently ignored.
pub fn thread_count(jobs: usize) -> usize {
    let hw = || std::thread::available_parallelism().map_or(1, |n| n.get());
    let requested =
        crate::parse_env_or_warn("HALO_THREADS", "using hardware parallelism", parse_halo_threads)
            .unwrap_or_else(hw);
    requested.min(jobs).max(1)
}

/// Sets the shared panic flag if its thread unwinds, so the delivering
/// thread stops waiting on the condvar instead of deadlocking.
struct PanicSignal<'a> {
    flag: &'a AtomicBool,
    ready: &'a Condvar,
}

impl Drop for PanicSignal<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.flag.store(true, Ordering::Release);
            self.ready.notify_all();
        }
    }
}

/// Apply `f` to every item on a pool of scoped threads, handing each
/// result to `sink` in input order as soon as its prefix is complete
/// (item N's result is delivered once items 0..N have been delivered).
///
/// `sink` returns `false` to cancel the sweep: jobs not yet claimed are
/// skipped, already-running jobs finish but their results are dropped.
/// Panics in `f` propagate to the caller.
pub fn par_each_ordered<T, R, F, S>(items: &[T], f: F, mut sink: S)
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
    S: FnMut(R) -> bool,
{
    let threads = thread_count(items.len());
    if threads <= 1 {
        for item in items {
            if !sink(f(item)) {
                return;
            }
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let cancelled = AtomicBool::new(false);
    let panicked = AtomicBool::new(false);
    let ready = Condvar::new();
    let mut slots: Vec<Option<R>> = Vec::new();
    slots.resize_with(items.len(), || None);
    let slots = Mutex::new(slots);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let _signal = PanicSignal { flag: &panicked, ready: &ready };
                loop {
                    if cancelled.load(Ordering::Acquire) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(item) = items.get(i) else { break };
                    let result = f(item); // off-lock: jobs run concurrently
                    let mut guard = slots.lock().expect("sweep mutex");
                    guard[i] = Some(result);
                    drop(guard);
                    ready.notify_all();
                }
            });
        }
        // This (the spawning) thread delivers results in order while the
        // workers fill slots.
        let mut next = 0;
        let mut guard = slots.lock().expect("sweep mutex");
        while next < items.len() {
            if panicked.load(Ordering::Acquire) {
                // Stop surviving workers from claiming further jobs;
                // scope re-raises the worker's panic on exit.
                cancelled.store(true, Ordering::Release);
                break;
            }
            match guard[next].take() {
                Some(result) => {
                    drop(guard);
                    if !sink(result) {
                        cancelled.store(true, Ordering::Release);
                        break;
                    }
                    next += 1;
                    guard = slots.lock().expect("sweep mutex");
                }
                // Timed wait: the panic flag is stored without the lock,
                // so a pure `wait` could miss its notification; the
                // timeout bounds delivery latency on that (rare) path.
                None => {
                    guard = ready
                        .wait_timeout(guard, std::time::Duration::from_millis(50))
                        .expect("sweep mutex")
                        .0
                }
            }
        }
    });
}

/// [`par_each_ordered`], collected: apply `f` to every item and return all
/// results in input order regardless of completion order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let mut results = Vec::with_capacity(items.len());
    par_each_ordered(items, f, |r| {
        results.push(r);
        true
    });
    results
}

/// Union per-thread profiling shards into one [`SubGraph`] by parallel
/// tree reduction: each round pairs adjacent shards and merges the pairs
/// concurrently (an odd tail passes through), halving the count until one
/// remains. Because [`SubGraph::merge`] is commutative and associative,
/// the result is observably identical to the serial left fold at any
/// thread count — `tests/property_invariants.rs` pins that down.
///
/// `par_map` borrows its items, but `merge` consumes both sides; each
/// pair rides in a `Mutex<Option<_>>` cell the worker takes ownership
/// from. The per-round mutex traffic is two uncontended locks per merge,
/// noise next to the merges themselves.
pub fn par_merge_subgraphs(mut shards: Vec<SubGraph>) -> SubGraph {
    while shards.len() > 1 {
        type Cell = Mutex<(Option<SubGraph>, Option<SubGraph>)>;
        let mut cells: Vec<Cell> = Vec::with_capacity(shards.len().div_ceil(2));
        let mut iter = shards.into_iter();
        while let Some(a) = iter.next() {
            cells.push(Mutex::new((Some(a), iter.next())));
        }
        shards = par_map(&cells, |cell| {
            let (a, b) = {
                let mut guard = cell.lock().expect("merge cell");
                (guard.0.take(), guard.1.take())
            };
            let a = a.expect("each cell is visited exactly once");
            match b {
                Some(b) => a.merge(b),
                None => a,
            }
        });
    }
    shards.pop().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_graph::NodeId;

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..100).collect();
        let out = par_map(&items, |&n| {
            // Reverse completion order: later items finish first.
            std::thread::sleep(std::time::Duration::from_micros(100 - n));
            n * 2
        });
        assert_eq!(out, items.iter().map(|n| n * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs_work() {
        assert_eq!(par_map(&[] as &[u32], |&n| n), Vec::<u32>::new());
        assert_eq!(par_map(&[7u32], |&n| n + 1), vec![8]);
    }

    #[test]
    fn thread_count_is_capped_by_jobs_and_floored_at_one() {
        assert_eq!(thread_count(0), 1);
        assert_eq!(thread_count(1), 1);
        assert!(thread_count(64) >= 1);
    }

    #[test]
    fn halo_threads_values_parse_or_explain() {
        assert_eq!(parse_halo_threads("1"), Ok(1));
        assert_eq!(parse_halo_threads("16"), Ok(16));
        assert_eq!(parse_halo_threads(" 4 "), Ok(4), "surrounding whitespace tolerated");
        for bad in ["0", "max", "", "-2", "1.5", "two"] {
            let err = parse_halo_threads(bad).expect_err(bad);
            assert!(err.contains("HALO_THREADS"), "error names the variable: {err}");
            assert!(err.contains("invalid"), "error says why: {err}");
        }
    }

    #[test]
    fn sink_cancellation_stops_the_sweep() {
        use std::sync::atomic::AtomicUsize;
        let started = AtomicUsize::new(0);
        let items: Vec<u32> = (0..1000).collect();
        let mut delivered = Vec::new();
        par_each_ordered(
            &items,
            |&n| {
                started.fetch_add(1, Ordering::Relaxed);
                // Slow enough that the sweep cannot drain all 1000 jobs
                // before the sink's cancellation lands.
                std::thread::sleep(std::time::Duration::from_micros(200));
                n
            },
            |n| {
                delivered.push(n);
                n < 3 // cancel after delivering 0, 1, 2, 3
            },
        );
        assert_eq!(delivered, vec![0, 1, 2, 3]);
        // Unclaimed jobs were skipped (in-flight ones may still finish).
        assert!(started.load(Ordering::Relaxed) < 1000, "cancellation did not stop the sweep");
    }

    #[test]
    fn delivery_streams_before_the_sweep_finishes() {
        // Item 9 blocks until item 0 has been *delivered* — only possible
        // if delivery is streamed, not batched after all jobs complete.
        use std::sync::atomic::AtomicBool;
        let first_delivered = AtomicBool::new(false);
        let items: Vec<u32> = (0..10).collect();
        let mut seen = 0;
        par_each_ordered(
            &items,
            |&n| {
                if n == 9 && thread_count(10) > 1 {
                    while !first_delivered.load(Ordering::Acquire) {
                        std::thread::yield_now();
                    }
                }
                n
            },
            |_| {
                seen += 1;
                first_delivered.store(true, Ordering::Release);
                true
            },
        );
        assert_eq!(seen, 10);
    }

    #[test]
    fn tree_merge_matches_serial_fold() {
        // Shards with overlapping nodes/edges and an odd count (so the
        // pass-through tail path runs).
        let shards: Vec<SubGraph> = (0..7u32)
            .map(|s| {
                let mut sub = SubGraph::new();
                for i in 0..20u32 {
                    sub.add_accesses(NodeId((s * 3 + i) % 25), (s + i) as u64);
                    sub.add_edge_weight(
                        NodeId(i % 5),
                        NodeId((s + i) % 25),
                        1 + (s + i) as u64 % 7,
                    );
                }
                sub
            })
            .collect();
        let serial = shards.iter().cloned().fold(SubGraph::new(), SubGraph::merge);
        let parallel = par_merge_subgraphs(shards);
        assert_eq!(parallel.len(), serial.len());
        assert_eq!(parallel.edges(), serial.edges());
        for i in 0..25 {
            assert_eq!(parallel.accesses(NodeId(i)), serial.accesses(NodeId(i)), "node {i}");
        }
    }

    #[test]
    fn tree_merge_handles_empty_and_single() {
        assert!(par_merge_subgraphs(Vec::new()).is_empty());
        let mut only = SubGraph::new();
        only.add_edge_weight(NodeId(0), NodeId(1), 9);
        let merged = par_merge_subgraphs(vec![only]);
        assert_eq!(merged.weight(NodeId(0), NodeId(1)), 9);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        par_map(&items, |&n| {
            if n == 3 {
                panic!("boom");
            }
            n
        });
    }
}
