//! Measurement: run a program under an allocator on the simulated memory
//! hierarchy and report the paper's metrics.

use halo_cache::{AccessStats, CacheHierarchy, HierarchyConfig, TimingModel};
use halo_vm::{Engine, EngineLimits, ExitStats, Monitor, Program, VmAllocator, VmError};

/// Measurement-run parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasureConfig {
    /// Memory-subsystem geometry (defaults to the Xeon W-2195).
    pub hierarchy: HierarchyConfig,
    /// Cycle model.
    pub timing: TimingModel,
    /// Execution limits.
    pub limits: EngineLimits,
    /// Seed for the program's internal randomness (the *ref* input).
    pub seed: u64,
    /// Scale argument passed to the entry function in `r0` (the *ref*
    /// input size).
    pub entry_arg: i64,
}

/// A [`Monitor`] feeding data accesses into a [`CacheHierarchy`].
#[derive(Debug)]
pub struct CacheMonitor {
    hierarchy: CacheHierarchy,
}

impl CacheMonitor {
    /// Wrap a hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheMonitor { hierarchy: CacheHierarchy::new(config) }
    }

    /// The accumulated statistics.
    pub fn stats(&self) -> AccessStats {
        self.hierarchy.stats()
    }
}

impl Monitor for CacheMonitor {
    fn on_access(&mut self, addr: u64, width: u8, store: bool) {
        self.hierarchy.access(addr, width, store);
    }
}

/// One measured execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Cache and TLB counters.
    pub stats: AccessStats,
    /// Instructions retired.
    pub instructions: u64,
    /// Simulated cycles under the configured [`TimingModel`].
    pub cycles: f64,
    /// Allocation count (for "allocations per million instructions").
    pub allocs: u64,
    /// Free count.
    pub frees: u64,
}

impl Measurement {
    /// L1D miss reduction of `self` relative to `baseline`, as a fraction
    /// (Fig. 13's axis; positive = fewer misses). A zero-miss baseline
    /// yields 0.0 — an unguarded division here would emit NaN (0/0) or
    /// −inf, which flows unchecked into `halo_bench::pct` and the
    /// fig13/fig14 tables.
    pub fn miss_reduction_vs(&self, baseline: &Measurement) -> f64 {
        if baseline.stats.l1_misses == 0 {
            return 0.0;
        }
        1.0 - self.stats.l1_misses as f64 / baseline.stats.l1_misses as f64
    }

    /// Speedup of `self` relative to `baseline`, as a fraction
    /// (Figs. 14/15's axis; positive = faster).
    pub fn speedup_vs(&self, baseline: &Measurement) -> f64 {
        TimingModel::speedup(baseline.cycles, self.cycles)
    }

    /// Heap allocations per million instructions (the benchmark-selection
    /// criterion of §5.1).
    pub fn allocs_per_million_instructions(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.allocs as f64 * 1e6 / self.instructions as f64
    }
}

/// Run `program` under `alloc` and measure it.
///
/// # Errors
///
/// Returns the [`VmError`] if the program traps or exceeds limits.
pub fn measure<A: VmAllocator>(
    program: &Program,
    alloc: &mut A,
    config: &MeasureConfig,
) -> Result<Measurement, VmError> {
    measure_with(program, alloc, config).map(|(m, _)| m)
}

/// Like [`measure`], but also returns the raw [`ExitStats`].
///
/// # Errors
///
/// Returns the [`VmError`] if the program traps or exceeds limits.
pub fn measure_with<A: VmAllocator>(
    program: &Program,
    alloc: &mut A,
    config: &MeasureConfig,
) -> Result<(Measurement, ExitStats), VmError> {
    let mut monitor = CacheMonitor::new(config.hierarchy);
    let exit = Engine::new(program)
        .with_seed(config.seed)
        .with_entry_arg(config.entry_arg)
        .with_limits(config.limits)
        .run(alloc, &mut monitor)?;
    let stats = monitor.stats();
    let cycles = config.timing.cycles(exit.instructions, &stats);
    Ok((
        Measurement {
            stats,
            instructions: exit.instructions,
            cycles,
            allocs: exit.allocs,
            frees: exit.frees,
        },
        exit,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_mem::{BumpAllocator, SizeClassAllocator};
    use halo_vm::{Cond, ProgramBuilder, Reg, Width};

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    /// Interleave two kinds of 16-byte objects, then sweep only one kind.
    fn interleaved_sweep() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(9), 0);
        m.imm(r(10), 0);
        m.imm(r(11), 512);
        m.imm(r(0), 16);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Ge, r(10), r(11), done);
        m.malloc(r(0), r(1)); // hot
        m.store(r(9), r(1), 0, Width::W8);
        m.mov(r(9), r(1));
        m.malloc(r(0), r(2)); // cold
        m.store(r(10), r(2), 8, Width::W8);
        m.add_imm(r(10), r(10), 1);
        m.jump(top);
        m.bind(done);
        m.imm(r(12), 0);
        m.imm(r(14), 50);
        let sweep = m.label();
        let sdone = m.label();
        m.bind(sweep);
        m.branch(Cond::Ge, r(12), r(14), sdone);
        m.mov(r(6), r(9));
        let walk = m.label();
        let wdone = m.label();
        m.bind(walk);
        m.branch(Cond::Eq, r(6), r(13), wdone);
        m.load(r(6), r(6), 0, Width::W8);
        m.jump(walk);
        m.bind(wdone);
        m.add_imm(r(12), r(12), 1);
        m.jump(sweep);
        m.bind(sdone);
        m.ret(None);
        let main = m.finish();
        pb.finish(main)
    }

    #[test]
    fn measurement_captures_misses_and_cycles() {
        let p = interleaved_sweep();
        let mut alloc = SizeClassAllocator::new();
        let m = measure(&p, &mut alloc, &MeasureConfig::default()).expect("runs");
        assert!(m.stats.l1_misses > 0);
        assert!(m.cycles > 0.0);
        assert_eq!(m.allocs, 1024);
        assert!(m.allocs_per_million_instructions() > 1.0);
    }

    #[test]
    fn denser_layout_measures_faster() {
        // The same program under a pure bump allocator (hot and cold
        // interleaved in memory) vs. size classes: both interleave here, so
        // instead compare against a hierarchy with tiny caches to verify
        // monotonicity of the cycle model with misses.
        let p = interleaved_sweep();
        let mut a1 = SizeClassAllocator::new();
        let big = measure(&p, &mut a1, &MeasureConfig::default()).expect("runs");
        let tiny_cfg =
            MeasureConfig { hierarchy: halo_cache::HierarchyConfig::tiny(), ..Default::default() };
        let mut a2 = SizeClassAllocator::new();
        let small = measure(&p, &mut a2, &tiny_cfg).expect("runs");
        assert!(small.stats.l1_misses >= big.stats.l1_misses);
        assert!(small.cycles > big.cycles);
    }

    #[test]
    fn metric_helpers_match_definitions() {
        let p = interleaved_sweep();
        let mut a1 = SizeClassAllocator::new();
        let base = measure(&p, &mut a1, &MeasureConfig::default()).expect("runs");
        let mut a2 = BumpAllocator::new();
        let opt = measure(&p, &mut a2, &MeasureConfig::default()).expect("runs");
        let mr = opt.miss_reduction_vs(&base);
        assert!((-1.0..=1.0).contains(&mr));
        let su = opt.speedup_vs(&base);
        assert!(su > -1.0);
        // Identity comparisons are zero.
        assert_eq!(base.miss_reduction_vs(&base), 0.0);
        assert_eq!(base.speedup_vs(&base), 0.0);
    }

    #[test]
    fn zero_miss_baseline_yields_zero_not_nan() {
        // Regression test: a workload whose baseline never misses (or a
        // synthetic Measurement with no misses) must compare as 0.0, not
        // NaN (0/0) or −inf (n/0), because the result flows unchecked into
        // percentage formatting and the fig13/fig14 tables.
        let zero = Measurement {
            stats: AccessStats::default(),
            instructions: 100,
            cycles: 100.0,
            allocs: 0,
            frees: 0,
        };
        let mut missing = zero;
        missing.stats.l1_misses = 42;
        assert_eq!(zero.miss_reduction_vs(&zero), 0.0);
        assert_eq!(missing.miss_reduction_vs(&zero), 0.0, "n/0 must not be -inf");
        assert!(zero.miss_reduction_vs(&zero).is_finite());
        // And the formatted form stays printable.
        assert_eq!(format!("{:+.1}%", missing.miss_reduction_vs(&zero) * 100.0), "+0.0%");
    }
}
