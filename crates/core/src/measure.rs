//! Measurement: run a program under an allocator on the simulated memory
//! hierarchy and report the paper's metrics.

use halo_cache::{
    AccessStats, CoherenceStats, CoherentHierarchy, HierarchyConfig, ThreadAccessStats, TimingModel,
};
use halo_vm::{
    AccessBatch, Engine, EngineLimits, ExitStats, Monitor, Program, VmAllocator, VmError,
};

/// Measurement-run parameters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasureConfig {
    /// Memory-subsystem geometry (defaults to the Xeon W-2195).
    pub hierarchy: HierarchyConfig,
    /// Cycle model.
    pub timing: TimingModel,
    /// Execution limits.
    pub limits: EngineLimits,
    /// Seed for the program's internal randomness (the *ref* input).
    pub seed: u64,
    /// Scale argument passed to the entry function in `r0` (the *ref*
    /// input size).
    pub entry_arg: i64,
}

/// A [`Monitor`] feeding data accesses into a [`CoherentHierarchy`],
/// routing each access through the private L1D/dTLB of the logical thread
/// the engine most recently announced (`Op::ThreadSwitch` →
/// [`Monitor::on_thread_switch`]). Programs that never switch threads see
/// counters bit-identical to the plain
/// [`CacheHierarchy`](halo_cache::CacheHierarchy) — the differential
/// property suite pins that.
#[derive(Debug)]
pub struct CacheMonitor {
    hierarchy: CoherentHierarchy,
}

impl CacheMonitor {
    /// Wrap a hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheMonitor { hierarchy: CoherentHierarchy::new(config) }
    }

    /// The accumulated statistics, aggregated over all logical threads.
    pub fn stats(&self) -> AccessStats {
        self.hierarchy.stats()
    }

    /// Coherence-traffic counters (all zero for single-threaded runs).
    pub fn coherence(&self) -> CoherenceStats {
        self.hierarchy.coherence()
    }

    /// Per-thread counters, one entry per logical thread that touched
    /// memory, in thread-id order.
    pub fn thread_stats(&self) -> Vec<ThreadAccessStats> {
        self.hierarchy.thread_stats()
    }
}

impl Monitor for CacheMonitor {
    fn on_access(&mut self, addr: u64, width: u8, store: bool) {
        self.hierarchy.access(addr, width, store);
    }

    fn on_access_batch(&mut self, batch: &AccessBatch) {
        // One virtual call per up to `AccessBatch::CAPACITY` accesses; the
        // engine flushes before every thread switch, so the whole batch
        // belongs to the hierarchy's current thread.
        self.hierarchy.access_batch(batch.addrs(), batch.widths(), batch.stores());
    }

    fn on_thread_switch(&mut self, thread: u16) {
        self.hierarchy.set_thread(thread);
    }
}

/// One measured execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Cache and TLB counters.
    pub stats: AccessStats,
    /// Instructions retired.
    pub instructions: u64,
    /// Simulated cycles under the configured [`TimingModel`].
    pub cycles: f64,
    /// Allocation count (for "allocations per million instructions").
    pub allocs: u64,
    /// Free count.
    pub frees: u64,
    /// Coherence traffic between the logical threads' private L1Ds
    /// (all-zero for single-threaded programs). The invalidations are
    /// already folded into `cycles` via
    /// [`TimingModel::cycles_coherent`].
    pub coherence: CoherenceStats,
}

impl Measurement {
    /// L1D miss reduction of `self` relative to `baseline`, as a fraction
    /// (Fig. 13's axis; positive = fewer misses). A zero-miss baseline
    /// yields 0.0 — an unguarded division here would emit NaN (0/0) or
    /// −inf, which flows unchecked into `halo_bench::pct` and the
    /// fig13/fig14 tables.
    pub fn miss_reduction_vs(&self, baseline: &Measurement) -> f64 {
        if baseline.stats.l1_misses == 0 {
            return 0.0;
        }
        1.0 - self.stats.l1_misses as f64 / baseline.stats.l1_misses as f64
    }

    /// Speedup of `self` relative to `baseline`, as a fraction
    /// (Figs. 14/15's axis; positive = faster).
    pub fn speedup_vs(&self, baseline: &Measurement) -> f64 {
        TimingModel::speedup(baseline.cycles, self.cycles)
    }

    /// Heap allocations per million instructions (the benchmark-selection
    /// criterion of §5.1).
    pub fn allocs_per_million_instructions(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.allocs as f64 * 1e6 / self.instructions as f64
    }
}

/// Run `program` under `alloc` and measure it.
///
/// # Errors
///
/// Returns the [`VmError`] if the program traps or exceeds limits.
pub fn measure<A: VmAllocator>(
    program: &Program,
    alloc: &mut A,
    config: &MeasureConfig,
) -> Result<Measurement, VmError> {
    measure_with(program, alloc, config).map(|(m, _)| m)
}

/// Like [`measure`], but also returns the raw [`ExitStats`].
///
/// # Errors
///
/// Returns the [`VmError`] if the program traps or exceeds limits.
pub fn measure_with<A: VmAllocator>(
    program: &Program,
    alloc: &mut A,
    config: &MeasureConfig,
) -> Result<(Measurement, ExitStats), VmError> {
    measure_detailed(program, alloc, config).map(|d| (d.measurement, d.exit))
}

/// A [`Measurement`] plus the per-thread breakdown behind it (not `Copy`:
/// the breakdown is one entry per active logical thread).
#[derive(Debug, Clone)]
pub struct MeasureDetail {
    /// The aggregate measurement (what [`measure`] returns).
    pub measurement: Measurement,
    /// The raw engine exit counters.
    pub exit: ExitStats,
    /// Per-thread cache counters, in thread-id order, one entry per
    /// logical thread that touched memory (always at least one).
    pub thread_stats: Vec<ThreadAccessStats>,
}

/// Like [`measure`], but also returns the raw [`ExitStats`] and the
/// per-thread cache counters.
///
/// # Errors
///
/// Returns the [`VmError`] if the program traps or exceeds limits.
pub fn measure_detailed<A: VmAllocator>(
    program: &Program,
    alloc: &mut A,
    config: &MeasureConfig,
) -> Result<MeasureDetail, VmError> {
    let mut monitor = CacheMonitor::new(config.hierarchy);
    let exit = Engine::new(program)
        .with_seed(config.seed)
        .with_entry_arg(config.entry_arg)
        .with_limits(config.limits)
        .run(alloc, &mut monitor)?;
    let stats = monitor.stats();
    let coherence = monitor.coherence();
    // With zero invalidations (every single-threaded program) this is
    // exactly `timing.cycles`, preserving all pre-coherence timings.
    let cycles = config.timing.cycles_coherent(exit.instructions, &stats, &coherence);
    Ok(MeasureDetail {
        measurement: Measurement {
            stats,
            instructions: exit.instructions,
            cycles,
            allocs: exit.allocs,
            frees: exit.frees,
            coherence,
        },
        thread_stats: monitor.thread_stats(),
        exit,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_mem::{BumpAllocator, SizeClassAllocator};
    use halo_vm::{Cond, ProgramBuilder, Reg, Width};

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    /// Interleave two kinds of 16-byte objects, then sweep only one kind.
    fn interleaved_sweep() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(9), 0);
        m.imm(r(10), 0);
        m.imm(r(11), 512);
        m.imm(r(0), 16);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Ge, r(10), r(11), done);
        m.malloc(r(0), r(1)); // hot
        m.store(r(9), r(1), 0, Width::W8);
        m.mov(r(9), r(1));
        m.malloc(r(0), r(2)); // cold
        m.store(r(10), r(2), 8, Width::W8);
        m.add_imm(r(10), r(10), 1);
        m.jump(top);
        m.bind(done);
        m.imm(r(12), 0);
        m.imm(r(14), 50);
        let sweep = m.label();
        let sdone = m.label();
        m.bind(sweep);
        m.branch(Cond::Ge, r(12), r(14), sdone);
        m.mov(r(6), r(9));
        let walk = m.label();
        let wdone = m.label();
        m.bind(walk);
        m.branch(Cond::Eq, r(6), r(13), wdone);
        m.load(r(6), r(6), 0, Width::W8);
        m.jump(walk);
        m.bind(wdone);
        m.add_imm(r(12), r(12), 1);
        m.jump(sweep);
        m.bind(sdone);
        m.ret(None);
        let main = m.finish();
        pb.finish(main)
    }

    #[test]
    fn measurement_captures_misses_and_cycles() {
        let p = interleaved_sweep();
        let mut alloc = SizeClassAllocator::new();
        let m = measure(&p, &mut alloc, &MeasureConfig::default()).expect("runs");
        assert!(m.stats.l1_misses > 0);
        assert!(m.cycles > 0.0);
        assert_eq!(m.allocs, 1024);
        assert!(m.allocs_per_million_instructions() > 1.0);
    }

    #[test]
    fn denser_layout_measures_faster() {
        // The same program under a pure bump allocator (hot and cold
        // interleaved in memory) vs. size classes: both interleave here, so
        // instead compare against a hierarchy with tiny caches to verify
        // monotonicity of the cycle model with misses.
        let p = interleaved_sweep();
        let mut a1 = SizeClassAllocator::new();
        let big = measure(&p, &mut a1, &MeasureConfig::default()).expect("runs");
        let tiny_cfg =
            MeasureConfig { hierarchy: halo_cache::HierarchyConfig::tiny(), ..Default::default() };
        let mut a2 = SizeClassAllocator::new();
        let small = measure(&p, &mut a2, &tiny_cfg).expect("runs");
        assert!(small.stats.l1_misses >= big.stats.l1_misses);
        assert!(small.cycles > big.cycles);
    }

    #[test]
    fn metric_helpers_match_definitions() {
        let p = interleaved_sweep();
        let mut a1 = SizeClassAllocator::new();
        let base = measure(&p, &mut a1, &MeasureConfig::default()).expect("runs");
        let mut a2 = BumpAllocator::new();
        let opt = measure(&p, &mut a2, &MeasureConfig::default()).expect("runs");
        let mr = opt.miss_reduction_vs(&base);
        assert!((-1.0..=1.0).contains(&mr));
        let su = opt.speedup_vs(&base);
        assert!(su > -1.0);
        // Identity comparisons are zero.
        assert_eq!(base.miss_reduction_vs(&base), 0.0);
        assert_eq!(base.speedup_vs(&base), 0.0);
    }

    /// Two logical threads alternately storing to opposite halves of one
    /// 64-byte object: textbook false sharing.
    fn false_sharing_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(0), 64);
        m.malloc(r(0), r(1));
        m.imm(r(2), 0);
        m.imm(r(3), 200);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Ge, r(2), r(3), done);
        m.thread_switch(1);
        m.store(r(2), r(1), 0, Width::W8);
        m.thread_switch(2);
        m.store(r(2), r(1), 32, Width::W8);
        m.add_imm(r(2), r(2), 1);
        m.jump(top);
        m.bind(done);
        m.free(r(1));
        m.ret(None);
        let main = m.finish();
        pb.finish(main)
    }

    #[test]
    fn thread_switches_reach_the_cache_model() {
        let p = false_sharing_program();
        let mut alloc = SizeClassAllocator::new();
        let config = MeasureConfig::default();
        let d = measure_detailed(&p, &mut alloc, &config).expect("runs");
        let c = d.measurement.coherence;
        assert!(c.invalidations > 100, "the line ping-pongs between the threads: {c:?}");
        // The two writers are reported separately; the main thread never
        // touches memory, so only threads 1 and 2 appear.
        let threads: Vec<u16> = d.thread_stats.iter().map(|t| t.thread).collect();
        assert_eq!(threads, vec![1, 2]);
        assert!(d.thread_stats.iter().all(|t| t.stats.stores > 0));
        assert_eq!(d.exit.thread_switches, 400);
        // The invalidations are charged in the cycle model.
        assert_eq!(
            d.measurement.cycles,
            config.timing.cycles(d.measurement.instructions, &d.measurement.stats)
                + c.invalidations as f64 * config.timing.coherence_penalty
        );
    }

    #[test]
    fn single_threaded_measurements_report_no_coherence_traffic() {
        let p = interleaved_sweep();
        let mut alloc = SizeClassAllocator::new();
        let config = MeasureConfig::default();
        let d = measure_detailed(&p, &mut alloc, &config).expect("runs");
        assert_eq!(d.measurement.coherence, halo_cache::CoherenceStats::default());
        assert_eq!(d.thread_stats.len(), 1);
        assert_eq!(d.thread_stats[0].thread, 0);
        assert_eq!(d.thread_stats[0].stats, d.measurement.stats);
        assert_eq!(d.exit.thread_switches, 0);
        // Bit-identity with the pre-coherence cycle model.
        assert_eq!(
            d.measurement.cycles,
            config.timing.cycles(d.measurement.instructions, &d.measurement.stats)
        );
    }

    #[test]
    fn zero_miss_baseline_yields_zero_not_nan() {
        // Regression test: a workload whose baseline never misses (or a
        // synthetic Measurement with no misses) must compare as 0.0, not
        // NaN (0/0) or −inf (n/0), because the result flows unchecked into
        // percentage formatting and the fig13/fig14 tables.
        let zero = Measurement {
            stats: AccessStats::default(),
            instructions: 100,
            cycles: 100.0,
            allocs: 0,
            frees: 0,
            coherence: CoherenceStats::default(),
        };
        let mut missing = zero;
        missing.stats.l1_misses = 42;
        assert_eq!(zero.miss_reduction_vs(&zero), 0.0);
        assert_eq!(missing.miss_reduction_vs(&zero), 0.0, "n/0 must not be -inf");
        assert!(zero.miss_reduction_vs(&zero).is_finite());
        // And the formatted form stays printable.
        assert_eq!(format!("{:+.1}%", missing.miss_reduction_vs(&zero) * 100.0), "+0.0%");
    }
}
