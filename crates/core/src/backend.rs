//! The data-driven registry of evaluation backends.
//!
//! The §5 evaluation compares one workload under several allocator
//! configurations: the jemalloc-style baseline, HALO's synthesised
//! allocator on the rewritten binary, the hot-data-streams comparison
//! technique, the random four-pool allocator of Fig. 15, and the
//! ptmalloc2-style boundary-tag baseline of §5.1. Those used to be five
//! hand-written arms in `evaluate` plus mirrored special cases in the CLI
//! and every harness; [`BACKENDS`] replaces them with one table. Adding a
//! backend is one new [`BackendSpec`] entry — the evaluation loop, the
//! CLI's rendering, and the figure harnesses all enumerate the registry.

use crate::evaluate::EvalConfig;
use crate::pipeline::{Halo, Optimised};
use halo_hds::HdsResult;
use halo_mem::{
    BackendAllocator, BoundaryTagAllocator, HaloGroupAllocator, RandomGroupAllocator,
    SizeClassAllocator,
};

/// Everything a backend may draw on when constructing its allocator.
///
/// The pipeline artefacts are optional so light-weight harnesses (the
/// Fig. 15 and §5.1 allocator comparisons, which never run the pipeline)
/// can still construct registry backends; specs with
/// [`BackendSpec::needs_pipeline`] set panic without them.
pub struct BackendCtx<'a> {
    /// The evaluation configuration (allocator knobs, measurement seed).
    pub config: &'a EvalConfig,
    /// The configured pipeline (for allocator synthesis).
    pub halo: Option<&'a Halo>,
    /// The pipeline's artefacts (selector table, per-group plans).
    pub optimised: Option<&'a Optimised>,
    /// The hot-data-streams analysis (site map).
    pub hds: Option<&'a HdsResult>,
}

/// One evaluation backend: how to build its allocator and how the
/// evaluation should treat it.
pub struct BackendSpec {
    /// Stable identifier (`halo run --json` keys, harness lookups).
    pub id: &'static str,
    /// Human-readable name for tables.
    pub label: &'static str,
    /// Whether this backend measures the rewritten binary (`true`) or the
    /// unmodified one.
    pub rewritten: bool,
    /// `false`: measured on every evaluation. `true`: measured only when
    /// [`EvalConfig::extras`] names this backend's id.
    pub optional: bool,
    /// Whether construction requires the pipeline artefacts in
    /// [`BackendCtx`].
    pub needs_pipeline: bool,
    make: fn(&BackendCtx) -> Box<dyn BackendAllocator>,
}

impl BackendSpec {
    /// Construct this backend's allocator.
    ///
    /// # Panics
    ///
    /// Panics if the spec [`needs_pipeline`](Self::needs_pipeline) and the
    /// context carries no pipeline artefacts.
    pub fn make_allocator(&self, ctx: &BackendCtx) -> Box<dyn BackendAllocator> {
        (self.make)(ctx)
    }

    /// Whether this backend is measured under `config`.
    pub fn enabled(&self, config: &EvalConfig) -> bool {
        !self.optional || config.extras.contains(&self.id)
    }
}

fn make_baseline(_ctx: &BackendCtx) -> Box<dyn BackendAllocator> {
    Box::new(SizeClassAllocator::new())
}

fn make_halo(ctx: &BackendCtx) -> Box<dyn BackendAllocator> {
    let halo = ctx.halo.expect("halo backend needs the configured pipeline");
    let optimised = ctx.optimised.expect("halo backend needs the pipeline artefacts");
    Box::new(halo.make_allocator(optimised))
}

fn make_hds(ctx: &BackendCtx) -> Box<dyn BackendAllocator> {
    let hds = ctx.hds.expect("hds backend needs the hot-data-streams analysis");
    Box::new(HaloGroupAllocator::with_site_groups(ctx.config.halo.alloc, hds.site_map.clone()))
}

fn make_halo_sharded(ctx: &BackendCtx) -> Box<dyn BackendAllocator> {
    let halo = ctx.halo.expect("halo-sharded backend needs the configured pipeline");
    let optimised = ctx.optimised.expect("halo-sharded backend needs the pipeline artefacts");
    Box::new(halo.make_sharded_allocator(optimised, ctx.config.shards))
}

fn make_random(ctx: &BackendCtx) -> Box<dyn BackendAllocator> {
    Box::new(RandomGroupAllocator::new(ctx.config.measure.seed ^ 0x5eed))
}

fn make_ptmalloc(_ctx: &BackendCtx) -> Box<dyn BackendAllocator> {
    Box::new(BoundaryTagAllocator::new())
}

/// The §5 evaluation backends, in reporting order. `evaluate` measures
/// every enabled entry; everything downstream renders from the same table.
pub const BACKENDS: &[BackendSpec] = &[
    BackendSpec {
        id: "baseline",
        label: "jemalloc-style baseline",
        rewritten: false,
        optional: false,
        needs_pipeline: false,
        make: make_baseline,
    },
    BackendSpec {
        id: "halo",
        label: "HALO",
        rewritten: true,
        optional: false,
        needs_pipeline: true,
        make: make_halo,
    },
    BackendSpec {
        id: "hds",
        label: "hot data streams",
        rewritten: false,
        optional: false,
        needs_pipeline: true,
        make: make_hds,
    },
    BackendSpec {
        id: "halo-sharded",
        label: "HALO (sharded)",
        rewritten: true,
        optional: true,
        needs_pipeline: true,
        make: make_halo_sharded,
    },
    BackendSpec {
        id: "random",
        label: "random four-pool",
        rewritten: false,
        optional: true,
        needs_pipeline: false,
        make: make_random,
    },
    BackendSpec {
        id: "ptmalloc",
        label: "ptmalloc2-style baseline",
        rewritten: false,
        optional: true,
        needs_pipeline: false,
        make: make_ptmalloc,
    },
];

/// Look a backend up by id.
pub fn backend_spec(id: &str) -> Option<&'static BackendSpec> {
    BACKENDS.iter().find(|s| s.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_resolvable() {
        for (i, spec) in BACKENDS.iter().enumerate() {
            assert!(backend_spec(spec.id).is_some());
            assert!(
                BACKENDS[..i].iter().all(|s| s.id != spec.id),
                "duplicate backend id {}",
                spec.id
            );
        }
        assert!(backend_spec("no-such-backend").is_none());
    }

    #[test]
    fn core_backends_are_always_enabled() {
        let config = EvalConfig::default();
        let enabled: Vec<&str> =
            BACKENDS.iter().filter(|s| s.enabled(&config)).map(|s| s.id).collect();
        assert_eq!(enabled, ["baseline", "halo", "hds"]);
        let with_extras = EvalConfig {
            extras: vec!["halo-sharded", "random", "ptmalloc"],
            ..EvalConfig::default()
        };
        assert!(BACKENDS.iter().all(|s| s.enabled(&with_extras)));
    }

    #[test]
    fn pipeline_free_backends_construct_without_artefacts() {
        let config = EvalConfig::default();
        let ctx = BackendCtx { config: &config, halo: None, optimised: None, hds: None };
        for spec in BACKENDS.iter().filter(|s| !s.needs_pipeline) {
            let _ = spec.make_allocator(&ctx);
        }
    }
}
