//! The post-link rewriting pass (§4.3) — BOLT's role in the paper.
//!
//! "We rewrite the target binary using the BOLT post-link optimisation
//! framework. Constructing a custom pass specifically for heap-layout
//! optimisation, we insert instructions around every point of interest in
//! the target binary, setting and then unsetting a single bit in a shared
//! 'group state' bit vector to indicate whether the flow of control has
//! passed through this point."
//!
//! [`instrument`] does exactly that to a simulated binary: each monitored
//! call site `s` with assigned bit `b` becomes
//!
//! ```text
//!     GroupSet(b)
//!     <original call instruction>
//!     GroupClear(b)
//! ```
//!
//! Inserting instructions shifts every subsequent instruction index, so the
//! pass performs the classic rewriting chore of fixing up intra-function
//! branch targets (the simulated analogue of BOLT's relocation handling).
//! Branches that targeted an instrumented call land on its `GroupSet`, so
//! the bit is maintained no matter how control reaches the site.
//!
//! # Example
//!
//! ```
//! use halo_rewrite::instrument;
//! use halo_vm::{CallSite, ProgramBuilder, Reg};
//! use std::collections::HashMap;
//!
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! f.imm(Reg(0), 8);
//! let site = f.malloc(Reg(0), Reg(1));
//! f.ret(None);
//! let main = f.finish();
//! let program = pb.finish(main);
//!
//! let bits = HashMap::from([(site, 0u16)]);
//! let (rewritten, report) = instrument(&program, &bits);
//! assert_eq!(report.sites_instrumented, 1);
//! assert_eq!(rewritten.code_size(), program.code_size() + 2);
//! ```

use halo_vm::{CallSite, FuncId, Op, Program};
use std::collections::HashMap;

/// Summary of a rewriting pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RewriteReport {
    /// Monitored sites actually found and instrumented.
    pub sites_instrumented: usize,
    /// Instructions added (2 per instrumented site).
    pub instructions_added: usize,
    /// Branch targets adjusted during fixup.
    pub branches_fixed: usize,
}

/// Instrument `program` at every call site in `site_bits`, returning the
/// rewritten binary and a report.
///
/// Sites that do not name a call-site instruction in `program` are ignored
/// (they cannot arise from a same-binary identification run; tolerating
/// them keeps the pass usable on hand-built inputs).
pub fn instrument(
    program: &Program,
    site_bits: &HashMap<CallSite, u16>,
) -> (Program, RewriteReport) {
    let mut report = RewriteReport::default();
    let mut out = program.clone();

    for (fi, func) in out.functions.iter_mut().enumerate() {
        let fid = FuncId(fi as u32);
        let old_len = func.code.len();

        // Which old pcs get instrumented, in order.
        let instrumented: Vec<(u32, u16)> = (0..old_len as u32)
            .filter_map(|pc| {
                let op = &func.code[pc as usize];
                let bit = site_bits.get(&CallSite::new(fid, pc)).copied()?;
                op.is_call_site().then_some((pc, bit))
            })
            .collect();
        if instrumented.is_empty() {
            continue;
        }

        // Old index → new index of the first instruction emitted for it
        // (labels bind before the GroupSet, so jumps keep the bit correct).
        let mut index_map: Vec<u32> = Vec::with_capacity(old_len + 1);
        let mut new_code: Vec<Op> = Vec::with_capacity(old_len + instrumented.len() * 2);
        let mut next_site = instrumented.iter().peekable();
        for (pc, op) in func.code.drain(..).enumerate() {
            index_map.push(new_code.len() as u32);
            match next_site.peek() {
                Some(&&(site_pc, bit)) if site_pc as usize == pc => {
                    next_site.next();
                    new_code.push(Op::GroupSet(bit));
                    new_code.push(op);
                    new_code.push(Op::GroupClear(bit));
                    report.sites_instrumented += 1;
                    report.instructions_added += 2;
                }
                _ => new_code.push(op),
            }
        }
        // One-past-the-end maps too (a branch target may be the old length
        // only in malformed inputs; validated programs never do this, but
        // the map stays total for safety).
        index_map.push(new_code.len() as u32);

        // Fix up branch targets.
        for op in &mut new_code {
            if let Some(old_target) = op.branch_target() {
                let new_target = index_map[old_target as usize];
                if new_target != old_target {
                    report.branches_fixed += 1;
                }
                op.map_branch_target(|_| new_target);
            }
        }
        func.code = new_code;
    }

    debug_assert!(out.validate().is_ok(), "rewriting must preserve validity");
    (out, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use halo_vm::{
        AllocKind, CallSite, Cond, Engine, GroupState, Memory, Monitor, ProgramBuilder, Reg,
        VmAllocator, Width,
    };

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    /// Records non-instrumentation events for semantics comparison.
    #[derive(Debug, Default, PartialEq, Eq)]
    struct EventLog(Vec<String>);

    impl Monitor for EventLog {
        fn on_call(&mut self, site: CallSite, callee: halo_vm::FuncId) {
            // Call sites shift under rewriting; record callees only.
            let _ = site;
            self.0.push(format!("call {callee}"));
        }
        fn on_return(&mut self, callee: halo_vm::FuncId) {
            self.0.push(format!("ret {callee}"));
        }
        fn on_alloc(&mut self, kind: AllocKind, _s: CallSite, size: u64, ptr: u64, old: u64) {
            self.0.push(format!("alloc {kind:?} {size} {ptr} {old}"));
        }
        fn on_free(&mut self, _s: CallSite, ptr: u64) {
            self.0.push(format!("free {ptr}"));
        }
        fn on_access(&mut self, addr: u64, width: u8, store: bool) {
            self.0.push(format!("access {addr} {width} {store}"));
        }
    }

    /// A loop-heavy program with branches spanning a monitored call site.
    fn looped_program() -> (halo_vm::Program, CallSite) {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper");
        let mut m = pb.function("main");
        m.imm(r(0), 0);
        m.imm(r(1), 5);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Ge, r(0), r(1), done); // forward over the call
        let site = m.call(helper, &[r(0)], Some(r(2)));
        m.add_imm(r(0), r(0), 1);
        m.jump(top); // backward over the call
        m.bind(done);
        m.ret(Some(r(0)));
        let main = m.finish();
        let mut h = pb.define(helper);
        h.argc(1);
        h.imm(r(1), 16);
        h.malloc(r(1), r(2));
        h.store(r(0), r(2), 0, Width::W8);
        h.free(r(2));
        h.ret(Some(r(0)));
        h.finish();
        (pb.finish(main), site)
    }

    fn run_with_log(p: &halo_vm::Program) -> (halo_vm::ExitStats, EventLog) {
        let mut alloc = halo_vm::MallocOnlyAllocator::new();
        let mut log = EventLog::default();
        let stats = Engine::new(p).run(&mut alloc, &mut log).expect("runs");
        (stats, log)
    }

    #[test]
    fn rewriting_preserves_semantics() {
        let (p, site) = looped_program();
        let bits = HashMap::from([(site, 0u16)]);
        let (rp, report) = instrument(&p, &bits);
        assert_eq!(report.sites_instrumented, 1);
        assert!(report.branches_fixed > 0, "loop branches needed fixups");
        let (s1, log1) = run_with_log(&p);
        let (s2, log2) = run_with_log(&rp);
        assert_eq!(s1.return_value, s2.return_value);
        assert_eq!(log1, log2, "event stream identical modulo instrumentation");
        // Instrumentation overhead: 2 extra instructions per loop iteration.
        assert_eq!(s2.instructions, s1.instructions + 10);
    }

    #[test]
    fn multiple_sites_and_functions() {
        let mut pb = ProgramBuilder::new();
        let a = pb.declare("a");
        let mut m = pb.function("main");
        let s1 = m.call(a, &[], None);
        let s2 = m.call(a, &[], None);
        m.ret(None);
        let main = m.finish();
        let mut fa = pb.define(a);
        fa.imm(r(0), 8);
        let s3 = fa.malloc(r(0), r(1));
        fa.free(r(1));
        fa.ret(None);
        fa.finish();
        let p = pb.finish(main);
        let bits = HashMap::from([(s1, 0u16), (s2, 1u16), (s3, 2u16)]);
        let (rp, report) = instrument(&p, &bits);
        assert_eq!(report.sites_instrumented, 3);
        assert_eq!(rp.code_size(), p.code_size() + 6);
        let (x, _) = run_with_log(&p);
        let (y, _) = run_with_log(&rp);
        assert_eq!(x.allocs, y.allocs);
    }

    /// Allocator probe: snapshots the group state at each malloc.
    #[derive(Debug, Default)]
    struct ProbeAllocator {
        inner: halo_vm::MallocOnlyAllocator,
        seen_bits: Vec<Vec<u16>>,
    }

    impl ProbeAllocator {
        fn new() -> Self {
            ProbeAllocator { inner: halo_vm::MallocOnlyAllocator::new(), seen_bits: Vec::new() }
        }
    }

    impl VmAllocator for ProbeAllocator {
        fn malloc(&mut self, size: u64, site: CallSite, gs: &GroupState, mem: &mut Memory) -> u64 {
            let set: Vec<u16> = (0..gs.capacity() as u16).filter(|&b| gs.test(b)).collect();
            self.seen_bits.push(set);
            self.inner.malloc(size, site, gs, mem)
        }
        fn free(&mut self, ptr: u64, mem: &mut Memory) {
            self.inner.free(ptr, mem)
        }
        fn realloc(
            &mut self,
            ptr: u64,
            size: u64,
            site: CallSite,
            gs: &GroupState,
            mem: &mut Memory,
        ) -> u64 {
            self.inner.realloc(ptr, size, site, gs, mem)
        }
    }

    #[test]
    fn group_bits_are_visible_during_the_call_and_cleared_after() {
        // main calls wrapper (monitored, bit 4) which mallocs (monitored,
        // bit 7): at malloc time both bits must be set.
        let mut pb = ProgramBuilder::new();
        let wrapper = pb.declare("wrapper");
        let mut m = pb.function("main");
        let call_site = m.call(wrapper, &[], Some(r(1)));
        m.imm(r(2), 8);
        m.malloc(r(2), r(3)); // unmonitored allocation afterwards
        m.ret(None);
        let main = m.finish();
        let mut w = pb.define(wrapper);
        w.imm(r(0), 8);
        let malloc_site = w.malloc(r(0), r(1));
        w.ret(Some(r(1)));
        w.finish();
        let p = pb.finish(main);
        let bits = HashMap::from([(call_site, 4u16), (malloc_site, 7u16)]);
        let (rp, _) = instrument(&p, &bits);

        let mut probe = ProbeAllocator::new();
        let mut nm = halo_vm::NullMonitor;
        let mut engine = Engine::new(&rp);
        engine.run(&mut probe, &mut nm).expect("runs");
        assert_eq!(probe.seen_bits.len(), 2);
        assert_eq!(probe.seen_bits[0], vec![4, 7], "both bits set inside the wrapper call");
        assert!(probe.seen_bits[1].is_empty(), "bits cleared after returning");
        // And nothing left set at exit.
        assert_eq!(engine.group_state().count_ones(), 0);
    }

    #[test]
    fn jump_to_call_site_lands_on_group_set() {
        // A branch that targets the monitored call directly must still set
        // the bit (the label binds before the inserted GroupSet).
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("callee");
        let mut m = pb.function("main");
        let skip = m.label();
        m.imm(r(0), 0);
        m.jump(skip); // jump straight to the call
        m.imm(r(0), 99); // skipped
        m.bind(skip);
        let site = m.call(callee, &[], None);
        m.ret(Some(r(0)));
        let main = m.finish();
        let mut c = pb.define(callee);
        c.imm(r(1), 8);
        c.malloc(r(1), r(2));
        c.ret(None);
        c.finish();
        let p = pb.finish(main);
        let (rp, _) = instrument(&p, &HashMap::from([(site, 3u16)]));

        let mut probe = ProbeAllocator::new();
        let mut nm = halo_vm::NullMonitor;
        Engine::new(&rp).run(&mut probe, &mut nm).expect("runs");
        assert_eq!(probe.seen_bits, vec![vec![3]]);
    }

    #[test]
    fn unknown_sites_are_ignored() {
        let (p, _) = looped_program();
        let ghost = CallSite::new(halo_vm::FuncId(0), 999);
        let (rp, report) = instrument(&p, &HashMap::from([(ghost, 0u16)]));
        assert_eq!(report.sites_instrumented, 0);
        assert_eq!(rp.code_size(), p.code_size());
    }

    #[test]
    fn non_call_instructions_are_never_instrumented() {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(r(0), 1); // pc 0: not a call site
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let not_a_call = CallSite::new(main, 0);
        let (rp, report) = instrument(&p, &HashMap::from([(not_a_call, 0u16)]));
        assert_eq!(report.sites_instrumented, 0);
        assert_eq!(rp.code_size(), p.code_size());
    }

    #[test]
    fn empty_site_map_is_identity() {
        let (p, _) = looped_program();
        let (rp, report) = instrument(&p, &HashMap::new());
        assert_eq!(report, RewriteReport::default());
        assert_eq!(rp.code_size(), p.code_size());
        let (s1, l1) = run_with_log(&p);
        let (s2, l2) = run_with_log(&rp);
        assert_eq!(s1, s2);
        assert_eq!(l1, l2);
    }
}
