//! Property test: instrumenting arbitrary call-site subsets of randomly
//! generated programs never changes observable behaviour.
//!
//! Programs are generated terminating-by-construction: straight-line
//! arithmetic with forward-only branches, calls into a small helper that
//! allocates/touches/frees memory, and a bounded trailing loop. The oracle
//! compares the full event stream (calls, returns, allocations, frees,
//! accesses with addresses) and the return value before and after
//! rewriting.

use halo_rewrite::instrument;
use halo_vm::{
    AllocKind, CallSite, Cond, Engine, FuncId, MallocOnlyAllocator, Monitor, ProgramBuilder, Reg,
    Width,
};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum GenOp {
    Imm(u8, i64),
    Add(u8, u8, u8),
    Mul(u8, u8, u8),
    Xor(u8, u8, u8),
    StoreScratch(u8, i64),
    LoadScratch(u8, i64),
    CallHelper(u8),
    ForwardBranch(u8, u8, u8),
    Compute(u8),
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (0u8..10, -100i64..100).prop_map(|(r, v)| GenOp::Imm(r, v)),
        (0u8..10, 0u8..10, 0u8..10).prop_map(|(a, b, c)| GenOp::Add(a, b, c)),
        (0u8..10, 0u8..10, 0u8..10).prop_map(|(a, b, c)| GenOp::Mul(a, b, c)),
        (0u8..10, 0u8..10, 0u8..10).prop_map(|(a, b, c)| GenOp::Xor(a, b, c)),
        (0u8..10, 0i64..32).prop_map(|(r, o)| GenOp::StoreScratch(r, o)),
        (0u8..10, 0i64..32).prop_map(|(r, o)| GenOp::LoadScratch(r, o)),
        (0u8..10).prop_map(GenOp::CallHelper),
        (0u8..10, 0u8..10, 1u8..4).prop_map(|(a, b, skip)| GenOp::ForwardBranch(a, b, skip)),
        (1u8..20).prop_map(GenOp::Compute),
    ]
}

/// Build a program from the generated op list; returns the program and all
/// its call sites.
fn build(ops: &[GenOp]) -> (halo_vm::Program, Vec<CallSite>) {
    let mut pb = ProgramBuilder::new();
    let helper = pb.declare("helper");

    let mut m = pb.function("main");
    let mut sites = Vec::new();
    // r15 = scratch buffer base.
    m.imm(Reg(15), 256);
    let s = m.malloc(Reg(15), Reg(15));
    sites.push(s);
    // Pending forward branches: (remaining ops to skip, label).
    let mut pending: Vec<(u8, halo_vm::Label)> = Vec::new();
    for op in ops {
        match *op {
            GenOp::Imm(r, v) => {
                m.imm(Reg(r), v);
            }
            GenOp::Add(a, b, c) => {
                m.add(Reg(a), Reg(b), Reg(c));
            }
            GenOp::Mul(a, b, c) => {
                m.mul(Reg(a), Reg(b), Reg(c));
            }
            GenOp::Xor(a, b, c) => {
                m.xor(Reg(a), Reg(b), Reg(c));
            }
            GenOp::StoreScratch(r, off) => {
                m.store(Reg(r), Reg(15), off * 8, Width::W8);
            }
            GenOp::LoadScratch(r, off) => {
                m.load(Reg(r), Reg(15), off * 8, Width::W8);
            }
            GenOp::CallHelper(r) => {
                let site = m.call(helper, &[Reg(r)], Some(Reg(r)));
                sites.push(site);
            }
            GenOp::ForwardBranch(a, b, skip) => {
                let l = m.label();
                m.branch(Cond::Lt, Reg(a), Reg(b), l);
                pending.push((skip, l));
            }
            GenOp::Compute(n) => {
                m.compute(n as u64);
            }
        }
        // Bind labels whose skip distance expired.
        for entry in &mut pending {
            entry.0 = entry.0.saturating_sub(1);
        }
        let expired: Vec<halo_vm::Label> =
            pending.iter().filter(|(n, _)| *n == 0).map(|&(_, l)| l).collect();
        pending.retain(|(n, _)| *n != 0);
        for l in expired {
            m.bind(l);
        }
    }
    for (_, l) in pending {
        m.bind(l);
    }
    // A bounded trailing loop exercising backward-branch fixups.
    m.imm(Reg(11), 0);
    m.imm(Reg(12), 5);
    let top = m.label();
    let done = m.label();
    m.bind(top);
    m.branch(Cond::Ge, Reg(11), Reg(12), done);
    let s = m.call(helper, &[Reg(11)], Some(Reg(13)));
    sites.push(s);
    m.add_imm(Reg(11), Reg(11), 1);
    m.jump(top);
    m.bind(done);
    m.ret(Some(Reg(0)));
    let main = m.finish();

    let mut h = pb.define(helper);
    h.argc(1);
    h.imm(Reg(1), 24);
    let s = h.malloc(Reg(1), Reg(2));
    sites.push(s);
    h.store(Reg(0), Reg(2), 0, Width::W8);
    h.load(Reg(3), Reg(2), 0, Width::W8);
    let s = h.free(Reg(2));
    sites.push(s);
    h.add_imm(Reg(3), Reg(3), 1);
    h.ret(Some(Reg(3)));
    h.finish();

    (pb.finish(main), sites)
}

#[derive(Debug, Default, PartialEq, Eq)]
struct Trace(Vec<String>);

impl Monitor for Trace {
    fn on_call(&mut self, _site: CallSite, callee: FuncId) {
        self.0.push(format!("c{callee}"));
    }
    fn on_return(&mut self, callee: FuncId) {
        self.0.push(format!("r{callee}"));
    }
    fn on_alloc(&mut self, kind: AllocKind, _s: CallSite, size: u64, ptr: u64, old: u64) {
        self.0.push(format!("a{kind:?}:{size}:{ptr}:{old}"));
    }
    fn on_free(&mut self, _s: CallSite, ptr: u64) {
        self.0.push(format!("f{ptr}"));
    }
    fn on_access(&mut self, addr: u64, width: u8, store: bool) {
        self.0.push(format!("m{addr}:{width}:{store}"));
    }
}

fn run(p: &halo_vm::Program) -> (Option<i64>, Trace) {
    let mut alloc = MallocOnlyAllocator::new();
    let mut trace = Trace::default();
    let stats = Engine::new(p).run(&mut alloc, &mut trace).expect("generated programs terminate");
    (stats.return_value, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn instrumentation_preserves_semantics(
        ops in proptest::collection::vec(gen_op(), 0..60),
        site_selector in proptest::collection::vec(any::<bool>(), 64),
        bit_base in 0u16..32,
    ) {
        let (program, sites) = build(&ops);
        prop_assert!(program.validate().is_ok());
        // Instrument a random subset of call sites.
        let site_bits: HashMap<CallSite, u16> = sites
            .iter()
            .enumerate()
            .filter(|(i, _)| site_selector[i % site_selector.len()])
            .map(|(i, &s)| (s, bit_base + (i as u16 % 8)))
            .collect();
        let (rewritten, report) = instrument(&program, &site_bits);
        prop_assert!(rewritten.validate().is_ok(), "rewritten program stays valid");
        prop_assert_eq!(report.instructions_added, report.sites_instrumented * 2);

        let (v1, t1) = run(&program);
        let (v2, t2) = run(&rewritten);
        prop_assert_eq!(v1, v2, "return value changed");
        prop_assert_eq!(t1, t2, "event stream changed");
    }

    #[test]
    fn double_instrumentation_is_cumulative_and_safe(
        ops in proptest::collection::vec(gen_op(), 0..30),
    ) {
        // Instrument all sites, then instrument the result at its *new*
        // call-site locations: still valid, still semantics preserving.
        let (program, sites) = build(&ops);
        let bits: HashMap<CallSite, u16> =
            sites.iter().enumerate().map(|(i, &s)| (s, i as u16 % 16)).collect();
        let (once, _) = instrument(&program, &bits);
        let second_bits: HashMap<CallSite, u16> =
            once.call_sites().into_iter().map(|s| (s, 63)).collect();
        let (twice, report2) = instrument(&once, &second_bits);
        prop_assert!(twice.validate().is_ok());
        prop_assert_eq!(report2.sites_instrumented, once.call_sites().len());
        let (v1, t1) = run(&program);
        let (v2, t2) = run(&twice);
        prop_assert_eq!(v1, v2);
        prop_assert_eq!(t1, t2);
    }
}
