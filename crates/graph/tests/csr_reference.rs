//! CSR-vs-HashMap equivalence (DESIGN.md §13): the flat edge store and
//! the incremental CSR clusterer must be observably indistinguishable
//! from the seed code's `HashMap<(NodeId, NodeId), u64>` graph and its
//! literal full-scan Fig. 6 loop, which are retained here as the oracle.
//!
//! Every property drives both implementations with the same random node
//! and edge script — interleaving a mid-stream `finalise()` so the
//! CSR → accumulator melt path is exercised too — and compares weights,
//! edge enumeration, thresholding, cold-node filtering, `coverage_of`,
//! and the full `group()` output (members in accretion order, weight,
//! accesses). The float math on both sides goes through the same
//! expressions (`w as f64 / d as f64`; `sc − (1 − T)·max(sa, sb)`), so
//! "equal" means bit-identical, not approximately close.

use halo_graph::{group, AffinityGraph, GroupingParams, NodeId};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};

/// The seed code's graph: nodes in a Vec, edges in a HashMap keyed by the
/// canonicalised `(min, max)` endpoint pair.
#[derive(Clone, Default)]
struct RefGraph {
    nodes: Vec<(u64, bool)>, // (accesses, alive)
    edges: HashMap<(NodeId, NodeId), u64>,
}

fn key(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u <= v {
        (u, v)
    } else {
        (v, u)
    }
}

impl RefGraph {
    fn add_node(&mut self, accesses: u64) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push((accesses, true));
        id
    }

    fn add_accesses(&mut self, n: NodeId, delta: u64) {
        self.nodes[n.index()].0 += delta;
    }

    fn accesses(&self, n: NodeId) -> u64 {
        self.nodes[n.index()].0
    }

    fn is_alive(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(|d| d.1)
    }

    fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().enumerate().filter(|(_, n)| n.1).map(|(i, _)| NodeId(i as u32))
    }

    fn total_accesses(&self) -> u64 {
        self.nodes.iter().filter(|n| n.1).map(|n| n.0).sum()
    }

    fn coverage_of<I: IntoIterator<Item = NodeId>>(&self, members: I) -> f64 {
        let total: u64 = self.nodes.iter().map(|n| n.0).sum();
        if total == 0 {
            return 0.0;
        }
        let covered: u64 =
            members.into_iter().map(|n| self.nodes.get(n.index()).map_or(0, |d| d.0)).sum();
        covered as f64 / total as f64
    }

    fn add_edge_weight(&mut self, u: NodeId, v: NodeId, delta: u64) {
        *self.edges.entry(key(u, v)).or_insert(0) += delta;
    }

    fn weight(&self, u: NodeId, v: NodeId) -> u64 {
        self.edges.get(&key(u, v)).copied().unwrap_or(0)
    }

    /// Positive-weight edges between alive endpoints, sorted (the HashMap
    /// yields them unordered; the new store's `edges()` contract is
    /// ascending `(u, v)`, so sorting is the comparison form).
    fn edges(&self) -> Vec<(NodeId, NodeId, u64)> {
        let mut out: Vec<_> = self
            .edges
            .iter()
            .filter(|(&(u, v), &w)| w > 0 && self.is_alive(u) && self.is_alive(v))
            .map(|(&(u, v), &w)| (u, v, w))
            .collect();
        out.sort_unstable();
        out
    }

    fn threshold_edges(&mut self, min_weight: u64) {
        self.edges.retain(|_, w| *w >= min_weight);
    }

    /// The seed code's cold-node filter, verbatim: keep hottest-first
    /// until `keep_fraction` of accesses is covered, discard the rest.
    fn discard_cold_nodes(&mut self, keep_fraction: f64) -> Vec<NodeId> {
        let total = self.total_accesses();
        let target = (total as f64 * keep_fraction).ceil() as u64;
        let mut order: Vec<NodeId> = self.nodes().collect();
        order.sort_by_key(|n| std::cmp::Reverse(self.accesses(*n)));
        let mut covered = 0u64;
        let mut discarded = Vec::new();
        for n in order {
            if covered >= target {
                self.nodes[n.index()].1 = false;
                discarded.push(n);
            } else {
                covered += self.accesses(n);
            }
        }
        let alive: Vec<bool> = self.nodes.iter().map(|n| n.1).collect();
        self.edges.retain(|&(u, v), _| alive[u.index()] && alive[v.index()]);
        discarded
    }
}

/// The seed code's incremental subgraph score (Fig. 7), with the same
/// float expressions the crate funnels through `score_parts`.
#[derive(Default)]
struct RefScore {
    members: Vec<NodeId>,
    weight_sum: u64,
    loop_count: usize,
}

fn score_parts(weight_sum: u64, denom: u64) -> f64 {
    if denom == 0 {
        0.0
    } else {
        weight_sum as f64 / denom as f64
    }
}

impl RefScore {
    fn singleton(g: &RefGraph, node: NodeId) -> Self {
        let loop_w = g.weight(node, node);
        RefScore { members: vec![node], weight_sum: loop_w, loop_count: usize::from(loop_w > 0) }
    }

    fn score(&self) -> f64 {
        let v = self.members.len() as u64;
        score_parts(self.weight_sum, self.loop_count as u64 + v * v.saturating_sub(1) / 2)
    }

    fn deltas_for(&self, g: &RefGraph, candidate: NodeId) -> (u64, usize) {
        let mut w = 0u64;
        for &m in &self.members {
            w += g.weight(m, candidate);
        }
        let loop_w = g.weight(candidate, candidate);
        (w + loop_w, usize::from(loop_w > 0))
    }

    fn score_with(&self, g: &RefGraph, candidate: NodeId) -> f64 {
        let (w, l) = self.deltas_for(g, candidate);
        let v = (self.members.len() + 1) as u64;
        score_parts(self.weight_sum + w, (self.loop_count + l) as u64 + v * (v - 1) / 2)
    }

    fn push(&mut self, g: &RefGraph, candidate: NodeId) {
        let (w, l) = self.deltas_for(g, candidate);
        self.weight_sum += w;
        self.loop_count += l;
        self.members.push(candidate);
    }
}

fn ref_merge_benefit(g: &RefGraph, sub: &RefScore, candidate: NodeId, tolerance: f64) -> f64 {
    let sa = sub.score();
    let sb = RefScore::singleton(g, candidate).score();
    let sc = sub.score_with(g, candidate);
    sc - (1.0 - tolerance) * sa.max(sb)
}

/// The seed code's Fig. 6 loop, verbatim: strongest-available-edge seed,
/// full O(n) stranger scan per growth step, no adjacency shortcuts.
/// (Iterating `avail` as a BTreeSet instead of a HashSet is immaterial:
/// the `benefit > bb || (benefit == bb && stranger < bn)` fold is
/// order-insensitive, and seed selection keys break all ties.)
fn ref_group(graph: &RefGraph, params: &GroupingParams) -> Vec<(Vec<NodeId>, u64, u64)> {
    let mut work = graph.clone();
    work.threshold_edges(params.min_weight);
    let total_accesses = work.total_accesses();
    let min_group_weight = (total_accesses as f64 * params.group_threshold).ceil() as u64;

    let mut avail: BTreeSet<NodeId> = work.nodes().collect();
    let mut groups = Vec::new();

    loop {
        let seed_edge = work
            .edges()
            .into_iter()
            .filter(|(u, v, _)| avail.contains(u) && avail.contains(v))
            .max_by_key(|&(u, v, w)| (w, std::cmp::Reverse((u, v))));
        let Some((u, v, _)) = seed_edge else { break };

        let seed = if work.accesses(u) >= work.accesses(v) { u } else { v };
        let mut sub = RefScore::singleton(&work, seed);
        avail.remove(&seed);

        while sub.members.len() < params.max_group_members {
            let mut best: Option<(NodeId, f64)> = None;
            for &stranger in &avail {
                let benefit = ref_merge_benefit(&work, &sub, stranger, params.merge_tolerance);
                if benefit > 0.0
                    && best.is_none_or(|(bn, bb)| benefit > bb || (benefit == bb && stranger < bn))
                {
                    best = Some((stranger, benefit));
                }
            }
            match best {
                Some((node, _)) => {
                    sub.push(&work, node);
                    avail.remove(&node);
                }
                None => break,
            }
        }

        if sub.weight_sum >= min_group_weight && sub.weight_sum > 0 {
            let accesses = sub.members.iter().map(|&m| work.accesses(m)).sum();
            groups.push((sub.members, sub.weight_sum, accesses));
        }
    }

    if let Some(cap) = params.max_groups {
        groups.sort_by_key(|g| std::cmp::Reverse(g.2));
        groups.truncate(cap);
    }
    groups
}

/// A random graph script: per-node initial accesses plus a stream of edge
/// increments (indices are taken modulo the node count).
fn build_pair(
    accesses: &[u64],
    edges: &[(u32, u32, u64)],
    finalise_at: usize,
) -> (AffinityGraph, RefGraph) {
    let n = accesses.len() as u32;
    let mut g = AffinityGraph::new();
    let mut r = RefGraph::default();
    for &a in accesses {
        g.add_node(a);
        r.add_node(a);
    }
    for (i, &(u, v, w)) in edges.iter().enumerate() {
        // Mid-stream finalisation melts the CSR back to the accumulator —
        // the reference has no such phase and must not care.
        if i == finalise_at {
            g.finalise();
        }
        let (u, v) = (NodeId(u % n), NodeId(v % n));
        g.add_edge_weight(u, v, w);
        r.add_edge_weight(u, v, w);
        g.add_accesses(u, w % 5);
        r.add_accesses(u, w % 5);
    }
    (g, r)
}

fn assert_same_edges(g: &AffinityGraph, r: &RefGraph, what: &str) {
    assert_eq!(g.edges().collect::<Vec<_>>(), r.edges(), "{what}: edge lists differ");
    assert_eq!(g.edge_count(), r.edges().len(), "{what}: edge counts differ");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn storage_reads_match_the_reference(
        accesses in proptest::collection::vec(0u64..2_000, 2..40),
        edges in proptest::collection::vec((0u32..64, 0u32..64, 0u64..50), 0..300),
        finalise_at in 0usize..301,
        min_weight in 0u64..40,
    ) {
        let (mut g, mut r) = build_pair(&accesses, &edges, finalise_at);
        let n = accesses.len() as u32;

        assert_same_edges(&g, &r, "after build");
        for u in 0..n {
            for v in u..n {
                assert_eq!(
                    g.weight(NodeId(u), NodeId(v)),
                    r.weight(NodeId(u), NodeId(v)),
                    "weight({u}, {v})"
                );
            }
        }
        assert_eq!(g.total_accesses(), r.total_accesses());
        let members: Vec<NodeId> = (0..n).step_by(3).map(NodeId).collect();
        assert_eq!(g.coverage_of(members.iter().copied()), r.coverage_of(members), "coverage_of");

        g.threshold_edges(min_weight);
        r.threshold_edges(min_weight);
        assert_same_edges(&g, &r, "after threshold_edges");
    }

    #[test]
    fn cold_node_filter_matches_the_reference(
        accesses in proptest::collection::vec(0u64..2_000, 2..40),
        edges in proptest::collection::vec((0u32..64, 0u32..64, 1u64..50), 0..200),
        keep_permille in 0u64..1_001,
    ) {
        let (mut g, mut r) = build_pair(&accesses, &edges, usize::MAX);
        let keep = keep_permille as f64 / 1000.0;
        assert_eq!(
            g.discard_cold_nodes(keep),
            r.discard_cold_nodes(keep),
            "discarded ids (keep_fraction {keep})"
        );
        assert_eq!(g.nodes().collect::<Vec<_>>(), r.nodes().collect::<Vec<_>>(), "alive sets");
        assert_same_edges(&g, &r, "after discard_cold_nodes");
        for u in g.nodes() {
            assert!(g.is_alive(u) && r.is_alive(u));
        }
    }

    #[test]
    fn grouping_matches_the_full_scan_reference(
        accesses in proptest::collection::vec(0u64..2_000, 2..32),
        edges in proptest::collection::vec((0u32..48, 0u32..48, 1u64..80), 0..250),
        finalise_at in 0usize..251,
        min_weight in 1u64..24,
        max_members in 2usize..10,
        tol_permille in 0u64..400,
        thresh_permille in 0u64..20,
        cap in 0usize..5,
    ) {
        let (g, r) = build_pair(&accesses, &edges, finalise_at);
        let params = GroupingParams {
            min_weight,
            max_group_members: max_members,
            merge_tolerance: tol_permille as f64 / 1000.0,
            group_threshold: thresh_permille as f64 / 1000.0,
            max_groups: if cap == 0 { None } else { Some(cap) },
        };
        let ours = group(&g, &params);
        let theirs = ref_group(&r, &params);
        assert_eq!(ours.len(), theirs.len(), "group count");
        for (got, want) in ours.iter().zip(&theirs) {
            assert_eq!(got.members, want.0, "members (accretion order)");
            assert_eq!(got.weight, want.1, "group weight");
            assert_eq!(got.accesses, want.2, "group accesses");
        }
    }
}
