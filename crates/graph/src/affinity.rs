//! The pairwise affinity graph (§4.1), on flat storage sized for
//! million-context profiles (DESIGN.md §13).

use crate::csr::{Csr, EdgeAccumulator};

/// Identifies a node (an allocation context) in an [`AffinityGraph`].
///
/// Ids are dense and stable: filtering cold nodes never renumbers the
/// survivors, so profiler-side context tables can key off `NodeId` directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The id as a plain index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ctx#{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct NodeData {
    accesses: u64,
    alive: bool,
}

/// Edge storage phases. Writes land in a hash accumulator; the first
/// read-heavy operation (or an explicit [`AffinityGraph::finalise`])
/// compacts it into CSR. A write to a finalised graph melts the CSR back
/// into an accumulator, so the API stays phase-free for callers.
#[derive(Debug, Clone)]
enum EdgeStore {
    Building(EdgeAccumulator),
    Finalised(Csr),
}

impl Default for EdgeStore {
    fn default() -> Self {
        EdgeStore::Building(EdgeAccumulator::default())
    }
}

/// A weighted undirected multigraph-free graph over allocation contexts,
/// with loop edges permitted (two *different* objects from the *same*
/// context can be affinitive, which the score function must account for).
///
/// Edges live in one of two representations (an accumulation hash table
/// while building, compressed sparse rows once finalised — see
/// [`AffinityGraph::finalise`]); every method works in either phase, and
/// [`AffinityGraph::edges`] yields ascending `(u, v)` order in both.
#[derive(Debug, Clone, Default)]
pub struct AffinityGraph {
    nodes: Vec<NodeData>,
    store: EdgeStore,
}

impl AffinityGraph {
    /// Hard capacity: node ids must fit `NodeId`'s `u32`. A million-node
    /// profile (DESIGN.md §13) is ~0.02% of this, but a runaway live
    /// profiler could conceivably reach it — and a silent `as u32` wrap
    /// would alias ids and corrupt every downstream grouping.
    pub const MAX_NODES: usize = u32::MAX as usize;

    /// Convert a node index into a [`NodeId`], panicking with a clear
    /// message once `capacity` is reached instead of silently truncating.
    /// `capacity` is a seam for the overflow guard test; real callers pass
    /// [`AffinityGraph::MAX_NODES`].
    fn checked_id(index: usize, capacity: usize) -> NodeId {
        assert!(
            index < capacity,
            "affinity graph overflow: node index {index} does not fit the u32 NodeId space \
             (capacity {capacity}); discard cold contexts before interning more"
        );
        NodeId(index as u32)
    }

    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node with an initial access count; returns its id.
    ///
    /// # Panics
    ///
    /// Panics when the graph already holds [`AffinityGraph::MAX_NODES`]
    /// nodes — ids would otherwise wrap and alias.
    pub fn add_node(&mut self, accesses: u64) -> NodeId {
        let id = Self::checked_id(self.nodes.len(), Self::MAX_NODES);
        self.nodes.push(NodeData { accesses, alive: true });
        id
    }

    /// Number of nodes ever added (alive and discarded).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterate over the ids of alive nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        // Indices are < len, which add_node capped at MAX_NODES, so the
        // checked conversion can only fire if that invariant breaks.
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| Self::checked_id(i, Self::MAX_NODES))
    }

    /// Whether `n` is alive (not discarded by the cold-node filter).
    pub fn is_alive(&self, n: NodeId) -> bool {
        self.nodes.get(n.index()).is_some_and(|d| d.alive)
    }

    /// Access count recorded for `n`.
    pub fn accesses(&self, n: NodeId) -> u64 {
        self.nodes[n.index()].accesses
    }

    /// Add to a node's access count.
    pub fn add_accesses(&mut self, n: NodeId, delta: u64) {
        self.nodes[n.index()].accesses += delta;
    }

    /// Total accesses across alive nodes — the `graph.accesses` quantity of
    /// the Fig. 6 group-weight threshold.
    pub fn total_accesses(&self) -> u64 {
        self.nodes.iter().filter(|n| n.alive).map(|n| n.accesses).sum()
    }

    /// Fraction of this graph's accesses — over *every* node ever added,
    /// discarded or not, so the result is a true fraction in `[0, 1]` —
    /// attributed to `members`. Returns 0 when the graph has seen no
    /// accesses at all. The granularity ablation asks this of the *page*
    /// graph for the object-granularity group members: how much of the
    /// salient access stream do the object-level groups actually cover?
    /// (roms: almost none — the grids dominate and are invisible below
    /// the tracked-size cap.)
    pub fn coverage_of<I: IntoIterator<Item = NodeId>>(&self, members: I) -> f64 {
        let total: u64 = self.nodes.iter().map(|n| n.accesses).sum();
        if total == 0 {
            return 0.0;
        }
        let covered: u64 =
            members.into_iter().map(|n| self.nodes.get(n.index()).map_or(0, |d| d.accesses)).sum();
        covered as f64 / total as f64
    }

    /// Increment the weight of edge `(u, v)`; `u == v` records a loop.
    /// On a finalised graph this melts the CSR back into build phase.
    pub fn add_edge_weight(&mut self, u: NodeId, v: NodeId, delta: u64) {
        debug_assert!(self.is_alive(u) && self.is_alive(v));
        self.make_building().add(u.0, v.0, delta);
    }

    /// Make room for `additional` more distinct edges before a bulk
    /// insertion loop (melting a finalised store back to build phase if
    /// necessary). Purely a performance hint — see
    /// `EdgeAccumulator::reserve` for the pathology it avoids.
    pub fn reserve_edges(&mut self, additional: usize) {
        self.make_building().reserve(additional);
    }

    /// Current weight of edge `(u, v)` (0 when absent).
    pub fn weight(&self, u: NodeId, v: NodeId) -> u64 {
        match &self.store {
            EdgeStore::Building(acc) => acc.get(u.0, v.0),
            EdgeStore::Finalised(csr) => csr.weight(u.0, v.0),
        }
    }

    /// Whether the edge store is currently in compact CSR form.
    pub fn is_finalised(&self) -> bool {
        matches!(self.store, EdgeStore::Finalised(_))
    }

    /// Compact the edge store into CSR: per-node offset rows with sorted
    /// neighbour/weight arrays, loops kept (once, in their node's row).
    /// Edges to discarded endpoints are dropped for good. Idempotent; a
    /// later [`AffinityGraph::add_edge_weight`] transparently reverts to
    /// the build phase.
    pub fn finalise(&mut self) {
        if !self.is_finalised() {
            self.rebuild_csr(0);
        }
    }

    /// Rebuild the CSR from the current store, keeping only edges of
    /// weight ≥ `min_weight` between alive endpoints.
    fn rebuild_csr(&mut self, min_weight: u64) {
        let nodes = &self.nodes;
        let keep = |u: u32, v: u32, w: u64| {
            w >= min_weight && nodes[u as usize].alive && nodes[v as usize].alive
        };
        let csr = match &self.store {
            EdgeStore::Building(acc) => Csr::build(nodes.len(), |f| {
                acc.for_each(|u, v, w| {
                    if keep(u, v, w) {
                        f(u, v, w)
                    }
                })
            }),
            EdgeStore::Finalised(csr) => Csr::build(nodes.len(), |f| {
                csr.for_each_edge(|u, v, w| {
                    if keep(u, v, w) {
                        f(u, v, w)
                    }
                })
            }),
        };
        self.store = EdgeStore::Finalised(csr);
    }

    /// The accumulator, melting a finalised CSR back into build phase if
    /// necessary.
    fn make_building(&mut self) -> &mut EdgeAccumulator {
        if let EdgeStore::Finalised(csr) = &self.store {
            let mut acc = EdgeAccumulator::with_capacity(csr.edge_count() + 1);
            csr.for_each_edge(|u, v, w| acc.add(u, v, w));
            self.store = EdgeStore::Building(acc);
        }
        match &mut self.store {
            EdgeStore::Building(acc) => acc,
            EdgeStore::Finalised(_) => unreachable!("store was just melted"),
        }
    }

    /// Iterate over `(u, v, weight)` for every edge with positive weight
    /// between alive endpoints, in ascending `(u, v)` order (each
    /// undirected edge once, with `u <= v`; loops included). On a
    /// finalised graph this walks the CSR rows allocation-free; in build
    /// phase it collects and sorts, so hot callers should finalise first.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, u64)> + '_ {
        let (building, finalised) = match &self.store {
            EdgeStore::Building(acc) => {
                let mut collected = Vec::with_capacity(acc.len());
                acc.for_each(|u, v, w| {
                    if self.nodes[u as usize].alive && self.nodes[v as usize].alive {
                        collected.push((u, v, w));
                    }
                });
                collected.sort_unstable();
                (Some(collected), None)
            }
            EdgeStore::Finalised(csr) => (None, Some(csr.edge_iter())),
        };
        building
            .into_iter()
            .flatten()
            .chain(finalised.into_iter().flatten())
            .map(|(u, v, w)| (NodeId(u), NodeId(v), w))
    }

    /// Number of positive-weight edges between alive endpoints.
    pub fn edge_count(&self) -> usize {
        match &self.store {
            // Build-phase entries are all positive-weight between alive
            // endpoints (edges cannot be added to discarded nodes, and
            // discarding finalises), so the occupancy count is the answer.
            EdgeStore::Building(acc) => acc.len(),
            EdgeStore::Finalised(csr) => csr.edge_count(),
        }
    }

    /// Neighbours of `n` (excluding `n` itself) with edge weights, in
    /// ascending neighbour order. O(degree) on a finalised graph.
    pub fn neighbours(&self, n: NodeId) -> Vec<(NodeId, u64)> {
        match &self.store {
            EdgeStore::Finalised(csr) => {
                let (nbrs, wts) = csr.row(n.index());
                nbrs.iter()
                    .zip(wts)
                    .filter(|&(&v, _)| v != n.0)
                    .map(|(&v, &w)| (NodeId(v), w))
                    .collect()
            }
            EdgeStore::Building(_) => self
                .edges()
                .filter_map(|(u, v, w)| {
                    if u == n && v != n {
                        Some((v, w))
                    } else if v == n && u != n {
                        Some((u, w))
                    } else {
                        None
                    }
                })
                .collect(),
        }
    }

    /// Drop edges lighter than `min_weight` (the noise-reduction edge
    /// thresholding of §4.2). Leaves the graph finalised.
    pub fn threshold_edges(&mut self, min_weight: u64) {
        self.rebuild_csr(min_weight);
    }

    /// Exponentially decay the graph: every edge weight and node access
    /// count becomes `floor(value · factor)`, and edges that decay to zero
    /// are dropped for good. Streaming profilers call this once per window
    /// so stale phases fade with half-life `ln 2 / ln(1/factor)` windows
    /// while fresh edges keep full weight. Like any write, this leaves the
    /// graph in build phase (a finalised CSR melts). Deterministic: IEEE
    /// multiply plus truncation, no rounding-mode dependence.
    ///
    /// # Panics
    ///
    /// Panics when `factor` is outside `[0, 1]` — growth is not decay, and
    /// NaN would silently zero the graph.
    pub fn decay(&mut self, factor: f64) {
        assert!((0.0..=1.0).contains(&factor), "decay factor {factor} must be within [0, 1]");
        let scaled = |w: u64| (w as f64 * factor) as u64;
        for n in &mut self.nodes {
            n.accesses = scaled(n.accesses);
        }
        let mut decayed = EdgeAccumulator::with_capacity(self.edge_count() + 1);
        let mut keep = |u: u32, v: u32, w: u64| {
            let w = scaled(w);
            if w > 0 {
                decayed.add(u, v, w);
            }
        };
        match &self.store {
            EdgeStore::Building(acc) => acc.for_each(&mut keep),
            EdgeStore::Finalised(csr) => csr.for_each_edge(&mut keep),
        }
        self.store = EdgeStore::Building(decayed);
    }

    /// Keep the hottest nodes covering `keep_fraction` of all accesses and
    /// discard the rest along with their edges (§4.1: "after 90% of all
    /// observed accesses have been accounted for, any remaining nodes are
    /// discarded"). Returns the discarded ids. Leaves the graph finalised.
    pub fn discard_cold_nodes(&mut self, keep_fraction: f64) -> Vec<NodeId> {
        let total = self.total_accesses();
        let target = (total as f64 * keep_fraction).ceil() as u64;
        let mut order: Vec<NodeId> = self.nodes().collect();
        order.sort_by_key(|n| std::cmp::Reverse(self.accesses(*n)));
        let mut covered = 0u64;
        let mut discarded = Vec::new();
        for n in order {
            if covered >= target {
                self.nodes[n.index()].alive = false;
                discarded.push(n);
            } else {
                covered += self.accesses(n);
            }
        }
        self.rebuild_csr(0); // drops the dead nodes' edges
        discarded
    }

    /// Build an adjacency table over alive nodes: `adj[n]` lists
    /// `(neighbour, weight)` pairs, excluding loops. Loops are returned
    /// separately as `loops[n]`.
    pub fn adjacency(&self) -> (Vec<Vec<(NodeId, u64)>>, Vec<u64>) {
        let mut adj = vec![Vec::new(); self.nodes.len()];
        let mut loops = vec![0u64; self.nodes.len()];
        for (u, v, w) in self.edges() {
            if u == v {
                loops[u.index()] = w;
            } else {
                adj[u.index()].push((v, w));
                adj[v.index()].push((u, w));
            }
        }
        (adj, loops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_nodes_and_edges() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(10);
        let b = g.add_node(20);
        g.add_edge_weight(a, b, 5);
        g.add_edge_weight(b, a, 3); // same undirected edge
        assert_eq!(g.weight(a, b), 8);
        assert_eq!(g.weight(b, a), 8);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.total_accesses(), 30);
    }

    #[test]
    fn loops_are_edges_too() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(10);
        g.add_edge_weight(a, a, 7);
        assert_eq!(g.weight(a, a), 7);
        let (adj, loops) = g.adjacency();
        assert!(adj[0].is_empty());
        assert_eq!(loops[0], 7);
    }

    #[test]
    fn threshold_removes_light_edges() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(1);
        let c = g.add_node(1);
        g.add_edge_weight(a, b, 10);
        g.add_edge_weight(b, c, 2);
        g.threshold_edges(5);
        assert_eq!(g.weight(a, b), 10);
        assert_eq!(g.weight(b, c), 0);
    }

    #[test]
    fn discard_cold_nodes_keeps_90_percent_coverage() {
        let mut g = AffinityGraph::new();
        // 80 + 15 + 5 accesses; covering 90% needs the first two nodes,
        // after which the remainder is discarded (§4.1).
        let hot = g.add_node(80);
        let warm = g.add_node(15);
        let cold = g.add_node(5);
        g.add_edge_weight(hot, cold, 4);
        let dropped = g.discard_cold_nodes(0.9);
        assert_eq!(dropped, vec![cold]);
        assert!(g.is_alive(hot) && g.is_alive(warm) && !g.is_alive(cold));
        // Edges to dead nodes disappear.
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_accesses(), 95);
    }

    #[test]
    fn discard_keeps_everything_when_fraction_is_one() {
        let mut g = AffinityGraph::new();
        g.add_node(5);
        g.add_node(5);
        let dropped = g.discard_cold_nodes(1.0);
        assert!(dropped.is_empty());
    }

    #[test]
    fn coverage_fraction_is_bounded_and_empty_safe() {
        let mut g = AffinityGraph::new();
        assert_eq!(g.coverage_of([]), 0.0);
        let a = g.add_node(75);
        let b = g.add_node(25);
        assert_eq!(g.coverage_of([a]), 0.75);
        assert_eq!(g.coverage_of([a, b]), 1.0);
        assert_eq!(g.coverage_of([]), 0.0);
        // Out-of-range ids (from a graph with more nodes) contribute 0.
        assert_eq!(g.coverage_of([NodeId(99)]), 0.0);
        // Discarding a node must not push coverage past 1: the denominator
        // spans every node ever added, dead or alive.
        g.discard_cold_nodes(0.75);
        assert!(!g.is_alive(b));
        assert_eq!(g.coverage_of([a, b]), 1.0);
        assert_eq!(g.coverage_of([b]), 0.25);
    }

    #[test]
    fn neighbours_excludes_loops() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(1);
        g.add_edge_weight(a, a, 3);
        g.add_edge_weight(a, b, 4);
        let n = g.neighbours(a);
        assert_eq!(n, vec![(b, 4)]);
    }

    #[test]
    fn edges_are_sorted_in_both_phases() {
        let mut g = AffinityGraph::new();
        let ids: Vec<NodeId> = (0..6).map(|_| g.add_node(1)).collect();
        // Insert in a deliberately scrambled order.
        for &(u, v, w) in
            &[(5, 1, 9u64), (0, 3, 4), (2, 2, 7), (0, 1, 2), (4, 5, 1), (3, 3, 3), (1, 2, 6)]
        {
            g.add_edge_weight(ids[u], ids[v], w);
        }
        let expected = vec![
            (ids[0], ids[1], 2),
            (ids[0], ids[3], 4),
            (ids[1], ids[2], 6),
            (ids[1], ids[5], 9),
            (ids[2], ids[2], 7),
            (ids[3], ids[3], 3),
            (ids[4], ids[5], 1),
        ];
        assert!(!g.is_finalised());
        assert_eq!(g.edges().collect::<Vec<_>>(), expected, "build phase");
        g.finalise();
        assert!(g.is_finalised());
        assert_eq!(g.edges().collect::<Vec<_>>(), expected, "finalised");
    }

    #[test]
    fn finalise_then_write_melts_back_losslessly() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(1);
        let c = g.add_node(1);
        g.add_edge_weight(a, b, 5);
        g.finalise();
        assert_eq!(g.weight(a, b), 5);
        g.add_edge_weight(a, b, 2); // melts
        assert!(!g.is_finalised());
        g.add_edge_weight(b, c, 1);
        assert_eq!(g.weight(a, b), 7);
        assert_eq!(g.weight(b, c), 1);
        g.finalise();
        assert_eq!(g.weight(a, b), 7);
        assert_eq!(g.edge_count(), 2);
        // Re-finalising is a no-op.
        g.finalise();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn checked_id_converts_below_capacity() {
        assert_eq!(AffinityGraph::checked_id(0, 4), NodeId(0));
        assert_eq!(AffinityGraph::checked_id(3, 4), NodeId(3));
        // The real capacity is the full u32 id space.
        assert_eq!(
            AffinityGraph::checked_id(u32::MAX as usize - 1, AffinityGraph::MAX_NODES).0,
            u32::MAX - 1
        );
    }

    #[test]
    #[should_panic(expected = "does not fit the u32 NodeId space")]
    fn node_id_overflow_panics_instead_of_truncating() {
        // The small-capacity seam stands in for interning 2^32 contexts:
        // index == capacity is the first id that would silently wrap.
        let _ = AffinityGraph::checked_id(4, 4);
    }

    #[test]
    fn decay_scales_weights_and_drops_vanished_edges() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(100);
        let b = g.add_node(10);
        let c = g.add_node(1);
        g.add_edge_weight(a, b, 10);
        g.add_edge_weight(b, c, 1); // decays to zero and disappears
        g.add_edge_weight(a, a, 5); // loops decay like any edge
        g.decay(0.5);
        assert_eq!(g.weight(a, b), 5);
        assert_eq!(g.weight(b, c), 0);
        assert_eq!(g.weight(a, a), 2);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.accesses(a), 50);
        assert_eq!(g.accesses(b), 5);
        assert_eq!(g.accesses(c), 0);
        // A second half-life halves again (floor division).
        g.decay(0.5);
        assert_eq!(g.weight(a, b), 2);
        assert_eq!(g.weight(a, a), 1);
    }

    #[test]
    fn decay_melts_a_finalised_graph_like_any_write() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(8);
        let b = g.add_node(8);
        g.add_edge_weight(a, b, 8);
        g.finalise();
        assert!(g.is_finalised());
        g.decay(0.25);
        assert!(!g.is_finalised(), "decay is a write: the CSR melts");
        assert_eq!(g.weight(a, b), 2);
        // Fresh edges land at full weight alongside the decayed ones.
        g.add_edge_weight(a, b, 8);
        assert_eq!(g.weight(a, b), 10);
    }

    #[test]
    fn decay_edge_factors_are_total_forgetting_and_identity() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(7);
        let b = g.add_node(3);
        g.add_edge_weight(a, b, 9);
        let mut id = g.clone();
        id.decay(1.0);
        assert_eq!(id.weight(a, b), 9, "factor 1.0 is the identity");
        assert_eq!(id.accesses(a), 7);
        g.decay(0.0);
        assert_eq!(g.weight(a, b), 0, "factor 0.0 forgets everything");
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.total_accesses(), 0);
        assert!(g.is_alive(a) && g.is_alive(b), "nodes stay interned");
    }

    #[test]
    #[should_panic(expected = "must be within [0, 1]")]
    fn decay_rejects_growth_factors() {
        AffinityGraph::new().decay(1.5);
    }

    #[test]
    fn nodes_added_after_finalise_read_as_isolated() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(1);
        g.add_edge_weight(a, a, 2);
        g.finalise();
        let late = g.add_node(9);
        assert_eq!(g.weight(late, a), 0);
        assert_eq!(g.weight(late, late), 0);
        assert!(g.neighbours(late).is_empty());
        assert!(g.is_alive(late));
        g.add_edge_weight(late, a, 4);
        assert_eq!(g.weight(late, a), 4);
    }
}
