//! Alternative clustering algorithms for the grouping ablation.
//!
//! §4.2 claims the Fig. 6 greedy-density algorithm produces clusters "more
//! amenable to region-based co-allocation than standard modularity, HCS, or
//! cut-based clustering techniques". To let the ablation bench test that
//! claim, this module implements both comparison algorithms:
//!
//! * [`modularity_clusters`] — greedy agglomerative modularity maximisation
//!   (Clauset–Newman–Moore style) on the weighted affinity graph;
//! * [`hcs_clusters`] — Hartuv & Shamir's Highly Connected Subgraphs
//!   algorithm, splitting by global min-cut ([`stoer_wagner_min_cut`])
//!   until every part has edge connectivity > |V|/2. HCS is defined on
//!   unweighted graphs, so it runs on the skeleton of edges at or above a
//!   weight threshold.

use crate::affinity::{AffinityGraph, NodeId};
use std::collections::HashMap;

/// Greedy agglomerative modularity clustering.
///
/// Starts from singleton communities and repeatedly merges the pair with the
/// largest positive modularity gain
/// `ΔQ(a, b) = w_ab/m − d_a·d_b/(2m²)`,
/// where `m` is the total edge weight, `w_ab` the inter-community weight and
/// `d` the community strength (loops count twice). Stops at the modularity
/// maximum. Singleton communities with no edges are omitted from the result.
pub fn modularity_clusters(graph: &AffinityGraph) -> Vec<Vec<NodeId>> {
    let nodes: Vec<NodeId> = graph.nodes().collect();
    if nodes.is_empty() {
        return Vec::new();
    }
    let index: HashMap<NodeId, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let n = nodes.len();

    let mut m = 0f64; // total edge weight
    let mut strength = vec![0f64; n];
    // Inter-community weights, community ids = indices into `nodes` initially.
    let mut between: HashMap<(usize, usize), f64> = HashMap::new();
    for (u, v, w) in graph.edges() {
        let (ui, vi) = (index[&u], index[&v]);
        m += w as f64;
        if ui == vi {
            strength[ui] += 2.0 * w as f64;
        } else {
            strength[ui] += w as f64;
            strength[vi] += w as f64;
            let key = (ui.min(vi), ui.max(vi));
            *between.entry(key).or_insert(0.0) += w as f64;
        }
    }
    if m == 0.0 {
        return Vec::new();
    }

    let mut members: Vec<Vec<NodeId>> = nodes.iter().map(|&n| vec![n]).collect();
    let mut alive: Vec<bool> = vec![true; n];

    loop {
        let mut best: Option<((usize, usize), f64)> = None;
        for (&(a, b), &w_ab) in &between {
            if !alive[a] || !alive[b] {
                continue;
            }
            let dq = w_ab / m - strength[a] * strength[b] / (2.0 * m * m);
            if dq > 0.0 && best.is_none_or(|(_, bq)| dq > bq) {
                best = Some(((a, b), dq));
            }
        }
        let Some(((a, b), _)) = best else { break };
        // Merge b into a.
        let moved = std::mem::take(&mut members[b]);
        members[a].extend(moved);
        strength[a] += strength[b];
        alive[b] = false;
        let entries: Vec<((usize, usize), f64)> =
            between.iter().filter(|(&(x, y), _)| x == b || y == b).map(|(&k, &v)| (k, v)).collect();
        for ((x, y), w) in entries {
            between.remove(&(x, y));
            let other = if x == b { y } else { x };
            if other != a {
                let key = (a.min(other), a.max(other));
                *between.entry(key).or_insert(0.0) += w;
            }
        }
    }

    members
        .into_iter()
        .enumerate()
        .filter(|(i, ms)| alive[*i] && ms.len() > 1)
        .map(|(_, ms)| ms)
        .collect()
}

/// Global minimum cut of the subgraph induced by `nodes`, by the
/// Stoer–Wagner algorithm. Returns `(cut_weight, side)` where `side` is one
/// shore of the cut. `weight_fn` supplies edge weights (use `1` for the
/// unweighted connectivity HCS needs).
///
/// # Panics
///
/// Panics if `nodes.len() < 2`.
pub fn stoer_wagner_min_cut(
    nodes: &[NodeId],
    weight_fn: impl Fn(NodeId, NodeId) -> u64,
) -> (u64, Vec<NodeId>) {
    let n = nodes.len();
    assert!(n >= 2, "min cut needs at least two nodes");
    // Dense adjacency over local indices; merged vertices accumulate rows.
    let mut w = vec![vec![0u64; n]; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let wt = weight_fn(nodes[i], nodes[j]);
            w[i][j] = wt;
            w[j][i] = wt;
        }
    }
    // merged[i] = original node ids currently contracted into vertex i.
    let mut merged: Vec<Vec<NodeId>> = nodes.iter().map(|&x| vec![x]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best_cut = u64::MAX;
    let mut best_side: Vec<NodeId> = Vec::new();

    while active.len() > 1 {
        // Maximum-adjacency search for the cut of this phase.
        let mut weights: HashMap<usize, u64> = active.iter().map(|&v| (v, 0)).collect();
        let mut order: Vec<usize> = Vec::with_capacity(active.len());
        let mut remaining: Vec<usize> = active.clone();
        while !remaining.is_empty() {
            let (pos, &next) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, &v)| weights[&v])
                .expect("non-empty remaining");
            remaining.swap_remove(pos);
            order.push(next);
            for &v in &remaining {
                *weights.get_mut(&v).expect("tracked") += w[next][v];
            }
        }
        let t = *order.last().expect("order non-empty");
        let s = order[order.len() - 2];
        let cut_of_phase = active.iter().filter(|&&v| v != t).map(|&v| w[t][v]).sum();
        if cut_of_phase < best_cut {
            best_cut = cut_of_phase;
            best_side = merged[t].clone();
        }
        // Contract t into s.
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        let moved = std::mem::take(&mut merged[t]);
        merged[s].extend(moved);
        active.retain(|&v| v != t);
    }
    (best_cut, best_side)
}

/// Hartuv & Shamir's HCS clustering on the unweighted skeleton of edges
/// with weight ≥ `min_weight`. A subgraph is *highly connected* when its
/// min cut exceeds `|V|/2`; anything else is split along its min cut and
/// both sides are processed recursively. Singletons are dropped.
pub fn hcs_clusters(graph: &AffinityGraph, min_weight: u64) -> Vec<Vec<NodeId>> {
    let nodes: Vec<NodeId> = graph.nodes().collect();
    let mut out = Vec::new();
    let edge = |u: NodeId, v: NodeId| u64::from(graph.weight(u, v) >= min_weight && u != v);
    hcs_recurse(&nodes, &edge, &mut out, 0);
    out
}

fn hcs_recurse(
    nodes: &[NodeId],
    edge: &impl Fn(NodeId, NodeId) -> u64,
    out: &mut Vec<Vec<NodeId>>,
    depth: usize,
) {
    if nodes.len() < 2 || depth > 64 {
        return;
    }
    let (cut, side) = stoer_wagner_min_cut(nodes, edge);
    if cut as f64 > nodes.len() as f64 / 2.0 {
        out.push(nodes.to_vec());
        return;
    }
    let side_set: std::collections::HashSet<NodeId> = side.iter().copied().collect();
    let other: Vec<NodeId> = nodes.iter().copied().filter(|n| !side_set.contains(n)).collect();
    hcs_recurse(&side, edge, out, depth + 1);
    hcs_recurse(&other, edge, out, depth + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two K4 cliques joined by a single light edge.
    fn two_cliques() -> (AffinityGraph, Vec<NodeId>, Vec<NodeId>) {
        let mut g = AffinityGraph::new();
        let a: Vec<NodeId> = (0..4).map(|_| g.add_node(100)).collect();
        let b: Vec<NodeId> = (0..4).map(|_| g.add_node(100)).collect();
        for side in [&a, &b] {
            for i in 0..4 {
                for j in (i + 1)..4 {
                    g.add_edge_weight(side[i], side[j], 50);
                }
            }
        }
        g.add_edge_weight(a[0], b[0], 1);
        (g, a, b)
    }

    fn cluster_of(clusters: &[Vec<NodeId>], n: NodeId) -> Option<usize> {
        clusters.iter().position(|c| c.contains(&n))
    }

    #[test]
    fn modularity_separates_cliques() {
        let (g, a, b) = two_cliques();
        let clusters = modularity_clusters(&g);
        let ca = cluster_of(&clusters, a[0]).unwrap();
        let cb = cluster_of(&clusters, b[0]).unwrap();
        assert_ne!(ca, cb);
        assert!(a.iter().all(|&n| cluster_of(&clusters, n) == Some(ca)));
        assert!(b.iter().all(|&n| cluster_of(&clusters, n) == Some(cb)));
    }

    #[test]
    fn modularity_on_empty_graph() {
        let g = AffinityGraph::new();
        assert!(modularity_clusters(&g).is_empty());
    }

    #[test]
    fn stoer_wagner_finds_the_bridge() {
        let (g, a, b) = two_cliques();
        let nodes: Vec<NodeId> = g.nodes().collect();
        let (cut, side) = stoer_wagner_min_cut(&nodes, |u, v| g.weight(u, v));
        assert_eq!(cut, 1);
        // One shore is exactly one clique.
        let side_set: std::collections::HashSet<_> = side.iter().copied().collect();
        let is_a = a.iter().all(|n| side_set.contains(n));
        let is_b = b.iter().all(|n| side_set.contains(n));
        assert!(is_a ^ is_b);
        assert_eq!(side.len(), 4);
    }

    #[test]
    fn stoer_wagner_disconnected_graph_has_zero_cut() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(1);
        let c = g.add_node(1);
        g.add_edge_weight(a, b, 5);
        let (cut, _) = stoer_wagner_min_cut(&[a, b, c], |u, v| g.weight(u, v));
        assert_eq!(cut, 0);
    }

    #[test]
    fn stoer_wagner_two_nodes() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(1);
        g.add_edge_weight(a, b, 7);
        let (cut, side) = stoer_wagner_min_cut(&[a, b], |u, v| g.weight(u, v));
        assert_eq!(cut, 7);
        assert_eq!(side.len(), 1);
    }

    #[test]
    fn hcs_recovers_cliques() {
        let (g, a, b) = two_cliques();
        let clusters = hcs_clusters(&g, 1);
        // K4 has edge connectivity 3 > 4/2 → both cliques are HCS clusters.
        assert_eq!(clusters.len(), 2);
        let ca = cluster_of(&clusters, a[1]).unwrap();
        let cb = cluster_of(&clusters, b[1]).unwrap();
        assert_ne!(ca, cb);
    }

    #[test]
    fn hcs_splits_a_path_to_nothing() {
        // A path a–b–c is never highly connected; HCS yields no clusters
        // of size ≥ 2 (split down to singletons, which are dropped).
        let mut g = AffinityGraph::new();
        let a = g.add_node(1);
        let b = g.add_node(1);
        let c = g.add_node(1);
        g.add_edge_weight(a, b, 9);
        g.add_edge_weight(b, c, 9);
        let clusters = hcs_clusters(&g, 1);
        assert!(clusters.iter().all(|c| c.len() <= 2));
    }
}
