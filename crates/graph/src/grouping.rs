//! The greedy context-grouping algorithm (paper Fig. 6).

use crate::affinity::{AffinityGraph, NodeId};
use crate::score::{merge_benefit, SubgraphScore};
use std::collections::HashSet;

/// Tunables of the Fig. 6 algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupingParams {
    /// Edges lighter than this are dropped before grouping
    /// (`args.min_weight`; the noise-reduction thresholding of §4.2).
    pub min_weight: u64,
    /// Maximum members per group (`args.max_group_members`).
    pub max_group_members: usize,
    /// Merge tolerance `T` (§4.2 finds ~5% to work well).
    pub merge_tolerance: f64,
    /// A finished group is kept only if its internal weight is at least
    /// `total accesses × gthresh` (`args.gthresh`).
    pub group_threshold: f64,
    /// Optional cap on the number of groups emitted, hottest first. The
    /// paper's artefact exposes this as `--max-groups` (roms uses 4).
    pub max_groups: Option<usize>,
}

impl Default for GroupingParams {
    fn default() -> Self {
        GroupingParams {
            min_weight: 8,
            max_group_members: 16,
            merge_tolerance: 0.05,
            group_threshold: 0.0005,
            max_groups: None,
        }
    }
}

/// A group of allocation contexts to be co-allocated from a shared pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Member contexts, in the order the algorithm accreted them.
    pub members: Vec<NodeId>,
    /// Σ of affinity-edge weights inside the group.
    pub weight: u64,
    /// Σ of member access counts — the "popularity" that orders selector
    /// construction (Fig. 10) and runtime selector evaluation.
    pub accesses: u64,
    /// This group's layout plan. The clusterer stamps the paper defaults;
    /// the pipeline overwrites them from its configuration (and, under the
    /// `auto` reuse policy, from per-group train-input validation).
    pub plan: crate::GroupPlan,
}

impl Group {
    /// Whether `n` is a member.
    pub fn contains(&self, n: NodeId) -> bool {
        self.members.contains(&n)
    }
}

/// Partition (a subset of) the graph's contexts into co-allocation groups —
/// the paper's Fig. 6 algorithm, verbatim:
///
/// 1. drop edges below `min_weight`;
/// 2. while any ungrouped edge remains, seed a group with the hotter
///    endpoint of the strongest available edge;
/// 3. grow it greedily by maximum [`merge_benefit`] while positive and the
///    group is under `max_group_members`;
/// 4. keep the group if its internal weight reaches
///    `total_accesses × group_threshold`.
///
/// Returned groups are in formation order (strongest seed edge first).
pub fn group(graph: &AffinityGraph, params: &GroupingParams) -> Vec<Group> {
    let mut work = graph.clone();
    work.threshold_edges(params.min_weight);
    let total_accesses = work.total_accesses();
    let min_group_weight = (total_accesses as f64 * params.group_threshold).ceil() as u64;

    let mut avail: HashSet<NodeId> = work.nodes().collect();
    let mut groups: Vec<Group> = Vec::new();

    loop {
        // Strongest edge in the subgraph induced by the available nodes.
        // Loop edges participate: a context strongly affinitive with itself
        // can seed (and remain) a singleton group.
        let seed_edge = work
            .edges()
            .filter(|(u, v, _)| avail.contains(u) && avail.contains(v))
            .max_by_key(|&(u, v, w)| (w, std::cmp::Reverse((u, v))));
        let Some((u, v, _)) = seed_edge else { break };

        // Seed with the hotter endpoint.
        let seed = if work.accesses(u) >= work.accesses(v) { u } else { v };
        let mut sub = SubgraphScore::singleton(&work, seed);
        avail.remove(&seed);

        // Grow by best positive merge benefit.
        while sub.len() < params.max_group_members {
            let mut best: Option<(NodeId, f64)> = None;
            for &stranger in &avail {
                let benefit = merge_benefit(&work, &sub, stranger, params.merge_tolerance);
                if benefit > 0.0
                    && best.is_none_or(|(bn, bb)| benefit > bb || (benefit == bb && stranger < bn))
                {
                    best = Some((stranger, benefit));
                }
            }
            match best {
                Some((node, _)) => {
                    sub.push(&work, node);
                    avail.remove(&node);
                }
                None => break,
            }
        }

        if sub.weight_sum() >= min_group_weight && sub.weight_sum() > 0 {
            let accesses = sub.members().iter().map(|&m| work.accesses(m)).sum();
            groups.push(Group {
                members: sub.members().to_vec(),
                weight: sub.weight_sum(),
                accesses,
                plan: crate::GroupPlan::default(),
            });
        }
    }

    if let Some(cap) = params.max_groups {
        groups.sort_by_key(|g| std::cmp::Reverse(g.accesses));
        groups.truncate(cap);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> GroupingParams {
        GroupingParams {
            min_weight: 1,
            max_group_members: 16,
            merge_tolerance: 0.05,
            group_threshold: 0.0,
            max_groups: None,
        }
    }

    /// Two tight clusters joined by one weak edge — the canonical case the
    /// algorithm must separate.
    fn two_clusters() -> (AffinityGraph, Vec<NodeId>, Vec<NodeId>) {
        let mut g = AffinityGraph::new();
        let left: Vec<NodeId> = (0..3).map(|_| g.add_node(1000)).collect();
        let right: Vec<NodeId> = (0..3).map(|_| g.add_node(900)).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                g.add_edge_weight(left[i], left[j], 500);
                g.add_edge_weight(right[i], right[j], 400);
            }
        }
        g.add_edge_weight(left[2], right[0], 3); // weak bridge
        (g, left, right)
    }

    #[test]
    fn separates_two_tight_clusters() {
        let (g, left, right) = two_clusters();
        let groups = group(&g, &params());
        assert_eq!(groups.len(), 2);
        let find = |n: NodeId| groups.iter().position(|gr| gr.contains(n)).unwrap();
        // All of `left` in one group, all of `right` in the other.
        assert!(left.iter().all(|&n| find(n) == find(left[0])));
        assert!(right.iter().all(|&n| find(n) == find(right[0])));
        assert_ne!(find(left[0]), find(right[0]));
    }

    #[test]
    fn groups_are_disjoint_and_within_bounds() {
        let (g, _, _) = two_clusters();
        let p = GroupingParams { max_group_members: 2, ..params() };
        let groups = group(&g, &p);
        let mut seen = HashSet::new();
        for gr in &groups {
            assert!(gr.members.len() <= 2);
            for &m in &gr.members {
                assert!(seen.insert(m), "node {m} appears in two groups");
            }
        }
    }

    #[test]
    fn strongest_edge_seeds_first_group() {
        let (g, left, _) = two_clusters();
        let groups = group(&g, &params());
        // Left cluster has the heavier edges, so it forms first.
        assert!(groups[0].contains(left[0]));
    }

    #[test]
    fn min_weight_filters_noise_edges() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(10);
        let b = g.add_node(10);
        g.add_edge_weight(a, b, 2);
        let p = GroupingParams { min_weight: 5, ..params() };
        assert!(group(&g, &p).is_empty());
        let p2 = GroupingParams { min_weight: 1, ..params() };
        assert_eq!(group(&g, &p2).len(), 1);
    }

    #[test]
    fn group_threshold_discards_cold_groups() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(1_000_000); // a very hot, edgeless node
        let b = g.add_node(10);
        let c = g.add_node(10);
        g.add_edge_weight(b, c, 4);
        let _ = a;
        // 4 < 0.001 × 1,000,020 → discarded.
        let p = GroupingParams { group_threshold: 0.001, ..params() };
        assert!(group(&g, &p).is_empty());
    }

    #[test]
    fn loop_only_context_forms_singleton_group() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(100);
        g.add_edge_weight(a, a, 50);
        let groups = group(&g, &params());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![a]);
        assert_eq!(groups[0].weight, 50);
    }

    #[test]
    fn max_groups_keeps_hottest() {
        let (g, left, right) = two_clusters();
        let p = GroupingParams { max_groups: Some(1), ..params() };
        let groups = group(&g, &p);
        assert_eq!(groups.len(), 1);
        // Left members are hotter (1000 each vs 900).
        assert!(left.iter().all(|&n| groups[0].contains(n)));
        assert!(right.iter().all(|&n| !groups[0].contains(n)));
    }

    #[test]
    fn empty_graph_yields_no_groups() {
        let g = AffinityGraph::new();
        assert!(group(&g, &params()).is_empty());
    }

    #[test]
    fn isolated_nodes_stay_ungrouped() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(100);
        let b = g.add_node(100);
        let c = g.add_node(5);
        g.add_edge_weight(a, b, 10);
        let groups = group(&g, &params());
        assert_eq!(groups.len(), 1);
        assert!(!groups[0].contains(c));
    }

    #[test]
    fn deterministic_across_runs() {
        let (g, _, _) = two_clusters();
        let a = group(&g, &params());
        let b = group(&g, &params());
        assert_eq!(a, b);
    }
}
