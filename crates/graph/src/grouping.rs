//! The greedy context-grouping algorithm (paper Fig. 6).
//!
//! Rewritten on CSR adjacency for million-node graphs (DESIGN.md §13):
//! the seed scan walks a once-sorted edge list behind a forward-only
//! cursor, and group growth evaluates only candidates adjacent to a
//! member, with per-candidate weights accumulated incrementally as
//! members join. Both are *exact* reformulations of the original
//! full-rescan loops — the grouping-snapshot and CSR-reference property
//! suites pin the output bit-for-bit — because:
//!
//! * the available-node set only ever shrinks, so an edge skipped by the
//!   cursor (an endpoint already grouped) can never become the maximum
//!   again, and the cursor's next valid edge *is* the old per-iteration
//!   `max_by_key`;
//! * candidate weights are integer sums, so accumulating them one member
//!   at a time equals the old per-candidate rescan exactly, and the score
//!   arithmetic goes through the same `score.rs` float helpers;
//! * a candidate *not* adjacent to any member can still win the old full
//!   scan in rare corners (tiny scores, or a tolerance so large the
//!   benefit grows with the candidate's loop weight). An analytic upper
//!   bound on every non-adjacent candidate's benefit gates those steps:
//!   when the bound (plus float slack) could reach the adjacent best —
//!   or zero — the step falls back to the literal full scan.

use crate::affinity::{AffinityGraph, NodeId};
use crate::score::{merge_benefit_parts, score_parts};

/// Tunables of the Fig. 6 algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupingParams {
    /// Edges lighter than this are dropped before grouping
    /// (`args.min_weight`; the noise-reduction thresholding of §4.2).
    pub min_weight: u64,
    /// Maximum members per group (`args.max_group_members`).
    pub max_group_members: usize,
    /// Merge tolerance `T` (§4.2 finds ~5% to work well).
    pub merge_tolerance: f64,
    /// A finished group is kept only if its internal weight is at least
    /// `total accesses × gthresh` (`args.gthresh`).
    pub group_threshold: f64,
    /// Optional cap on the number of groups emitted, hottest first. The
    /// paper's artefact exposes this as `--max-groups` (roms uses 4).
    pub max_groups: Option<usize>,
}

impl Default for GroupingParams {
    fn default() -> Self {
        GroupingParams {
            min_weight: 8,
            max_group_members: 16,
            merge_tolerance: 0.05,
            group_threshold: 0.0005,
            max_groups: None,
        }
    }
}

/// A group of allocation contexts to be co-allocated from a shared pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Group {
    /// Member contexts, in the order the algorithm accreted them.
    pub members: Vec<NodeId>,
    /// Σ of affinity-edge weights inside the group.
    pub weight: u64,
    /// Σ of member access counts — the "popularity" that orders selector
    /// construction (Fig. 10) and runtime selector evaluation.
    pub accesses: u64,
    /// This group's layout plan. The clusterer stamps the paper defaults;
    /// the pipeline overwrites them from its configuration (and, under the
    /// `auto` reuse policy, from per-group train-input validation).
    pub plan: crate::GroupPlan,
}

impl Group {
    /// Whether `n` is a member.
    pub fn contains(&self, n: NodeId) -> bool {
        self.members.contains(&n)
    }
}

/// Per-call scratch state for one `group()` run, sized once to the node
/// count and reset per group by walking the touched list (so forming many
/// small groups on a million-node graph stays O(work), not O(n·groups)).
struct Grower {
    /// Still ungrouped (and alive).
    avail: Vec<bool>,
    /// Σ of edge weights from current group members to each node.
    cand_w: Vec<u64>,
    /// Whether the node is already on the `cands` list.
    queued: Vec<bool>,
    /// Candidate nodes adjacent to at least one member.
    cands: Vec<u32>,
    /// Loop weight per node (in the thresholded graph).
    loop_w: Vec<u64>,
}

impl Grower {
    /// Fold `node`'s row into the candidate weights (called when `node`
    /// becomes a member).
    fn absorb(&mut self, work: &AffinityGraph, node: NodeId) {
        for (v, w) in work.neighbours(node) {
            let vi = v.index();
            if !self.avail[vi] {
                continue;
            }
            self.cand_w[vi] += w;
            if !self.queued[vi] {
                self.queued[vi] = true;
                self.cands.push(v.0);
            }
        }
    }

    /// The Fig. 8 benefit of adding `c` to the current group, via exactly
    /// the float expressions of `score.rs` (`sa` and the pair counts are
    /// precomputed per growth step).
    #[inline]
    fn benefit_of(&self, c: usize, sa: f64, sum: u64, loops: u64, pairs1: u64, tol: f64) -> f64 {
        let lw = self.loop_w[c];
        let has_loop = u64::from(lw > 0);
        let sb = score_parts(lw, has_loop);
        let sc = score_parts(sum + self.cand_w[c] + lw, loops + has_loop + pairs1);
        merge_benefit_parts(sa, sb, sc, tol)
    }

    /// Reset per-group state by touched-list walk.
    fn clear_candidates(&mut self) {
        for &c in &self.cands {
            self.cand_w[c as usize] = 0;
            self.queued[c as usize] = false;
        }
        self.cands.clear();
    }
}

/// Fold `benefit` for `stranger` into the running best, with the original
/// scan's total tie-break (higher benefit, then smaller id).
#[inline]
fn consider(best: &mut Option<(NodeId, f64)>, stranger: NodeId, benefit: f64) {
    if benefit > 0.0 && best.is_none_or(|(bn, bb)| benefit > bb || (benefit == bb && stranger < bn))
    {
        *best = Some((stranger, benefit));
    }
}

/// Partition (a subset of) the graph's contexts into co-allocation groups —
/// the paper's Fig. 6 algorithm, verbatim:
///
/// 1. drop edges below `min_weight`;
/// 2. while any ungrouped edge remains, seed a group with the hotter
///    endpoint of the strongest available edge;
/// 3. grow it greedily by maximum [`crate::merge_benefit`] while positive
///    and the group is under `max_group_members`;
/// 4. keep the group if its internal weight reaches
///    `total_accesses × group_threshold`.
///
/// Returned groups are in formation order (strongest seed edge first).
pub fn group(graph: &AffinityGraph, params: &GroupingParams) -> Vec<Group> {
    let mut work = graph.clone();
    work.threshold_edges(params.min_weight); // finalises into CSR
    let total_accesses = work.total_accesses();
    let min_group_weight = (total_accesses as f64 * params.group_threshold).ceil() as u64;
    let n = work.len();
    let tol = params.merge_tolerance;

    // The old loop re-ran `max_by_key((w, Reverse((u, v))))` per group;
    // sorting once by descending weight then ascending (u, v) and walking
    // a forward-only cursor visits seeds in the same order.
    let mut edge_order: Vec<(u64, u32, u32)> =
        work.edges().map(|(u, v, w)| (w, u.0, v.0)).collect();
    edge_order.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));

    let mut grower = Grower {
        avail: vec![false; n],
        cand_w: vec![0; n],
        queued: vec![false; n],
        cands: Vec::new(),
        loop_w: vec![0; n],
    };
    for node in work.nodes() {
        grower.avail[node.index()] = true;
    }
    for &(w, u, v) in &edge_order {
        if u == v {
            grower.loop_w[u as usize] = w;
        }
    }

    let mut groups: Vec<Group> = Vec::new();
    let mut cursor = 0usize;

    loop {
        // Strongest edge in the subgraph induced by the available nodes.
        // Loop edges participate: a context strongly affinitive with itself
        // can seed (and remain) a singleton group.
        while cursor < edge_order.len() {
            let (_, u, v) = edge_order[cursor];
            if grower.avail[u as usize] && grower.avail[v as usize] {
                break;
            }
            cursor += 1;
        }
        let Some(&(_, eu, ev)) = edge_order.get(cursor) else { break };
        let (u, v) = (NodeId(eu), NodeId(ev));

        // Seed with the hotter endpoint.
        let seed = if work.accesses(u) >= work.accesses(v) { u } else { v };
        let mut members = vec![seed];
        let mut weight_sum = grower.loop_w[seed.index()];
        let mut loop_count = u64::from(weight_sum > 0);
        grower.avail[seed.index()] = false;
        grower.absorb(&work, seed);

        // Grow by best positive merge benefit.
        while members.len() < params.max_group_members {
            let v_len = members.len() as u64;
            let pairs0 = v_len * (v_len - 1) / 2;
            let pairs1 = v_len * (v_len + 1) / 2;
            let sa = score_parts(weight_sum, loop_count + pairs0);

            let mut best: Option<(NodeId, f64)> = None;
            for i in 0..grower.cands.len() {
                let c = grower.cands[i] as usize;
                if grower.avail[c] {
                    let b = grower.benefit_of(c, sa, weight_sum, loop_count, pairs1, tol);
                    consider(&mut best, NodeId(c as u32), b);
                }
            }

            // Can a candidate with *no* edge into the group beat (or tie)
            // the adjacent best? Its benefit is f(lw) = (W + lw)/d −
            // (1−T)·max(sa, lw) with lw its loop weight and d the merged
            // denominator; f peaks at lw = sa when (1−T)·d > 1 (and at
            // lw = 0 without a loop), so two closed forms bound it. If the
            // bound clears the bar, run the literal full scan.
            let d0 = loop_count + pairs1;
            let d1 = d0 + 1;
            let one_minus_t = 1.0 - tol;
            let unbounded = one_minus_t * d1 as f64 <= 1.0;
            let ub = if unbounded {
                f64::INFINITY
            } else {
                let b0 = score_parts(weight_sum, d0) - one_minus_t * sa;
                let b1 = (weight_sum as f64 + sa) / d1 as f64 - one_minus_t * sa;
                b0.max(b1)
            };
            let slack = 1e-9 * (1.0 + ub.abs() + sa);
            let could_matter = match best {
                Some((_, bb)) => ub + slack >= bb,
                None => ub + slack > 0.0,
            };
            if could_matter {
                for c in 0..n {
                    if grower.avail[c] {
                        let b = grower.benefit_of(c, sa, weight_sum, loop_count, pairs1, tol);
                        consider(&mut best, NodeId(c as u32), b);
                    }
                }
            }

            match best {
                Some((node, _)) => {
                    let ni = node.index();
                    weight_sum += grower.cand_w[ni] + grower.loop_w[ni];
                    loop_count += u64::from(grower.loop_w[ni] > 0);
                    grower.avail[ni] = false;
                    grower.absorb(&work, node);
                    members.push(node);
                }
                None => break,
            }
        }

        grower.clear_candidates();
        if weight_sum >= min_group_weight && weight_sum > 0 {
            let accesses = members.iter().map(|&m| work.accesses(m)).sum();
            groups.push(Group {
                members,
                weight: weight_sum,
                accesses,
                plan: crate::GroupPlan::default(),
            });
        }
    }

    if let Some(cap) = params.max_groups {
        groups.sort_by_key(|g| std::cmp::Reverse(g.accesses));
        groups.truncate(cap);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn params() -> GroupingParams {
        GroupingParams {
            min_weight: 1,
            max_group_members: 16,
            merge_tolerance: 0.05,
            group_threshold: 0.0,
            max_groups: None,
        }
    }

    /// Two tight clusters joined by one weak edge — the canonical case the
    /// algorithm must separate.
    fn two_clusters() -> (AffinityGraph, Vec<NodeId>, Vec<NodeId>) {
        let mut g = AffinityGraph::new();
        let left: Vec<NodeId> = (0..3).map(|_| g.add_node(1000)).collect();
        let right: Vec<NodeId> = (0..3).map(|_| g.add_node(900)).collect();
        for i in 0..3 {
            for j in (i + 1)..3 {
                g.add_edge_weight(left[i], left[j], 500);
                g.add_edge_weight(right[i], right[j], 400);
            }
        }
        g.add_edge_weight(left[2], right[0], 3); // weak bridge
        (g, left, right)
    }

    #[test]
    fn separates_two_tight_clusters() {
        let (g, left, right) = two_clusters();
        let groups = group(&g, &params());
        assert_eq!(groups.len(), 2);
        let find = |n: NodeId| groups.iter().position(|gr| gr.contains(n)).unwrap();
        // All of `left` in one group, all of `right` in the other.
        assert!(left.iter().all(|&n| find(n) == find(left[0])));
        assert!(right.iter().all(|&n| find(n) == find(right[0])));
        assert_ne!(find(left[0]), find(right[0]));
    }

    #[test]
    fn groups_are_disjoint_and_within_bounds() {
        let (g, _, _) = two_clusters();
        let p = GroupingParams { max_group_members: 2, ..params() };
        let groups = group(&g, &p);
        let mut seen = HashSet::new();
        for gr in &groups {
            assert!(gr.members.len() <= 2);
            for &m in &gr.members {
                assert!(seen.insert(m), "node {m} appears in two groups");
            }
        }
    }

    #[test]
    fn strongest_edge_seeds_first_group() {
        let (g, left, _) = two_clusters();
        let groups = group(&g, &params());
        // Left cluster has the heavier edges, so it forms first.
        assert!(groups[0].contains(left[0]));
    }

    #[test]
    fn min_weight_filters_noise_edges() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(10);
        let b = g.add_node(10);
        g.add_edge_weight(a, b, 2);
        let p = GroupingParams { min_weight: 5, ..params() };
        assert!(group(&g, &p).is_empty());
        let p2 = GroupingParams { min_weight: 1, ..params() };
        assert_eq!(group(&g, &p2).len(), 1);
    }

    #[test]
    fn group_threshold_discards_cold_groups() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(1_000_000); // a very hot, edgeless node
        let b = g.add_node(10);
        let c = g.add_node(10);
        g.add_edge_weight(b, c, 4);
        let _ = a;
        // 4 < 0.001 × 1,000,020 → discarded.
        let p = GroupingParams { group_threshold: 0.001, ..params() };
        assert!(group(&g, &p).is_empty());
    }

    #[test]
    fn loop_only_context_forms_singleton_group() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(100);
        g.add_edge_weight(a, a, 50);
        let groups = group(&g, &params());
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].members, vec![a]);
        assert_eq!(groups[0].weight, 50);
    }

    #[test]
    fn max_groups_keeps_hottest() {
        let (g, left, right) = two_clusters();
        let p = GroupingParams { max_groups: Some(1), ..params() };
        let groups = group(&g, &p);
        assert_eq!(groups.len(), 1);
        // Left members are hotter (1000 each vs 900).
        assert!(left.iter().all(|&n| groups[0].contains(n)));
        assert!(right.iter().all(|&n| !groups[0].contains(n)));
    }

    #[test]
    fn empty_graph_yields_no_groups() {
        let g = AffinityGraph::new();
        assert!(group(&g, &params()).is_empty());
    }

    #[test]
    fn isolated_nodes_stay_ungrouped() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(100);
        let b = g.add_node(100);
        let c = g.add_node(5);
        g.add_edge_weight(a, b, 10);
        let groups = group(&g, &params());
        assert_eq!(groups.len(), 1);
        assert!(!groups[0].contains(c));
    }

    #[test]
    fn deterministic_across_runs() {
        let (g, _, _) = two_clusters();
        let a = group(&g, &params());
        let b = group(&g, &params());
        assert_eq!(a, b);
    }

    /// A huge tolerance lets *non-adjacent* candidates win a growth step,
    /// which only the full-scan fallback can see: the heavy loop on `c`
    /// seeds the first group, `{c}` has no neighbours at all, yet with
    /// T = 0.9 merging the edgeless `a` is beneficial (s({c,a}) = 2500 vs
    /// (1−T)·5000 = 500), so the group must still grow.
    #[test]
    fn non_adjacent_candidate_wins_under_large_tolerance() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(100);
        let b = g.add_node(100);
        let c = g.add_node(100);
        let d = g.add_node(100);
        g.add_edge_weight(a, b, 1000);
        g.add_edge_weight(c, c, 5000); // non-adjacent, heavy loop
        g.add_edge_weight(b, d, 1); // weak adjacent candidate
        let p = GroupingParams { merge_tolerance: 0.9, ..params() };
        let groups = group(&g, &p);
        // The loop-seeded group swallows the graph one fallback step at a
        // time: {c} → {c,a} (non-adjacent) → {c,a,b} → {c,a,b,d}.
        assert_eq!(groups.len(), 1);
        assert!([a, b, c, d].iter().all(|&n| groups[0].contains(n)));
    }
}
