//! Per-group layout plans.
//!
//! The paper's prototype makes exactly one layout decision per binary: a
//! single global allocator configuration. §6 names the cost — leela's and
//! roms's Table-1 fragmentation — and suggests mimalloc-style free-list
//! sharding inside group chunks as the remedy. A [`GroupPlan`] makes the
//! *group* the unit of optimisation instead: every group carries the
//! granularity it was formed at plus the allocator knobs (reuse policy,
//! chunk size, spare-chunk budget) the synthesised allocator applies to
//! that group's chunks alone. The pipeline stamps plans after grouping and
//! the `auto` reuse policy revises them per group from train-input
//! measurements.

use crate::granularity::Granularity;
use std::fmt;
use std::str::FromStr;

/// How freed regions inside a group's chunks are recycled.
///
/// The paper uses pure bump allocation and names its fragmentation
/// behaviour as the main avenue for improvement, suggesting "techniques
/// such as free list sharding [mimalloc] and meshing could be used in
/// place of bump allocation" (§6). [`ReusePolicy::ShardedFreeLists`]
/// implements the first suggestion: per-chunk, size-sharded free lists
/// that let a chunk recycle its own holes without any cross-chunk
/// bookkeeping, trading a little contiguity for much better practical
/// fragmentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ReusePolicy {
    /// The paper's design: regions are never reused until their whole
    /// chunk empties.
    #[default]
    Bump,
    /// mimalloc-style sharding: freed regions go onto a per-chunk,
    /// per-size free list consulted before bumping.
    ShardedFreeLists,
}

impl fmt::Display for ReusePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReusePolicy::Bump => "bump",
            ReusePolicy::ShardedFreeLists => "sharded",
        })
    }
}

/// The reuse-policy *policy*: what the pipeline should stamp into group
/// plans. `Bump` and `Sharded` apply one [`ReusePolicy`] to every group;
/// `Auto` starts from bump and flips individual fragmentation-heavy groups
/// to sharded free lists when a train-input measurement validates the flip
/// (the per-group analogue of the granularity `auto` policy).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ReusePolicyChoice {
    /// The paper's mode: every group bump allocates.
    #[default]
    Bump,
    /// Every group recycles through sharded free lists.
    Sharded,
    /// Decide per group, validated on the train input.
    Auto,
}

impl ReusePolicyChoice {
    /// All three choices, in CLI/reporting order.
    pub const ALL: [ReusePolicyChoice; 3] =
        [ReusePolicyChoice::Bump, ReusePolicyChoice::Sharded, ReusePolicyChoice::Auto];

    /// The concrete policy groups start from under this choice (`Auto`
    /// starts at bump and flips groups only on measured evidence).
    pub fn initial_policy(self) -> ReusePolicy {
        match self {
            ReusePolicyChoice::Sharded => ReusePolicy::ShardedFreeLists,
            ReusePolicyChoice::Bump | ReusePolicyChoice::Auto => ReusePolicy::Bump,
        }
    }
}

impl fmt::Display for ReusePolicyChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ReusePolicyChoice::Bump => "bump",
            ReusePolicyChoice::Sharded => "sharded",
            ReusePolicyChoice::Auto => "auto",
        })
    }
}

impl FromStr for ReusePolicyChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "bump" => Ok(ReusePolicyChoice::Bump),
            "sharded" => Ok(ReusePolicyChoice::Sharded),
            "auto" => Ok(ReusePolicyChoice::Auto),
            other => Err(format!("unknown reuse policy '{other}' (bump|sharded|auto)")),
        }
    }
}

/// One group's layout decisions — the per-group unit of optimisation.
///
/// Stamped onto every [`crate::Group`] by the pipeline; the synthesised
/// allocator turns each plan into a per-group configuration override, so
/// one binary can run bump-allocated contiguity-critical groups next to
/// sharded fragmentation-heavy ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GroupPlan {
    /// Granularity the group was formed at (never `Auto`: plans record the
    /// resolved mode).
    pub granularity: Granularity,
    /// How this group's chunks recycle freed regions.
    pub reuse: ReusePolicy,
    /// Chunk size for this group's chunks, in bytes (a power of two).
    pub chunk_size: u64,
    /// Dirty chunks this group may keep spare before they are purged.
    pub max_spare_chunks: usize,
}

impl Default for GroupPlan {
    /// Mirrors the paper-default allocator configuration (1 MiB bump
    /// chunks, one spare) at object granularity; `halo_mem` pins the
    /// agreement with `GroupAllocConfig::default` by test.
    fn default() -> Self {
        GroupPlan {
            granularity: Granularity::Object,
            reuse: ReusePolicy::Bump,
            chunk_size: 1 << 20,
            max_spare_chunks: 1,
        }
    }
}

impl fmt::Display for GroupPlan {
    /// Compact `reuse@chunk` form for reports, e.g. `sharded@8KiB` or
    /// `bump@1MiB`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (size, unit) = if self.chunk_size >= 1 << 20 {
            (self.chunk_size >> 20, "MiB")
        } else {
            (self.chunk_size >> 10, "KiB")
        };
        write!(f, "{}@{}{}", self.reuse, size, unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_choice_parses_and_displays_roundtrip() {
        for c in ReusePolicyChoice::ALL {
            assert_eq!(c.to_string().parse::<ReusePolicyChoice>(), Ok(c));
        }
        let err = "meshing".parse::<ReusePolicyChoice>().unwrap_err();
        assert!(err.contains("bump|sharded|auto"), "{err}");
        assert!("".parse::<ReusePolicyChoice>().is_err());
    }

    #[test]
    fn choices_start_from_the_right_policy() {
        assert_eq!(ReusePolicyChoice::Bump.initial_policy(), ReusePolicy::Bump);
        assert_eq!(ReusePolicyChoice::Auto.initial_policy(), ReusePolicy::Bump);
        assert_eq!(ReusePolicyChoice::Sharded.initial_policy(), ReusePolicy::ShardedFreeLists);
    }

    #[test]
    fn plan_display_is_compact() {
        let plan = GroupPlan::default();
        assert_eq!(plan.to_string(), "bump@1MiB");
        let sharded = GroupPlan {
            reuse: ReusePolicy::ShardedFreeLists,
            chunk_size: 8192,
            ..GroupPlan::default()
        };
        assert_eq!(sharded.to_string(), "sharded@8KiB");
    }
}
