//! Graphviz (DOT) export of affinity graphs — the rendering behind the
//! paper's Figure 9, where nodes are allocation contexts coloured by
//! group, edge thickness encodes weight, and edges under a threshold are
//! hidden "to reduce visual noise".

use crate::affinity::{AffinityGraph, NodeId};
use crate::grouping::Group;
use std::fmt::Write;

/// Palette for group colouring (cycled when there are many groups).
const COLOURS: &[&str] =
    &["skyblue", "salmon", "palegreen", "gold", "plum", "khaki", "lightcyan", "orange"];

/// Render `graph` as a DOT document.
///
/// * `labels` supplies per-node text (e.g. context names from the
///   profiler); nodes without one use their id.
/// * `groups` drives fill colours; ungrouped nodes are grey, matching the
///   paper's figure.
/// * Edges lighter than `min_edge_weight` are omitted.
///
/// The output is byte-deterministic: nodes are emitted in id order and
/// edges in ascending `(u, v)` order ([`AffinityGraph::edges`] guarantees
/// it in both storage phases), so the same graph renders to the same
/// document regardless of process, insertion order, or finalisation
/// state. The old HashMap-backed store leaked its per-process iteration
/// order into the edge lines; `deterministic_regardless_of_build_order`
/// pins the fix.
pub fn to_dot(
    graph: &AffinityGraph,
    labels: &dyn Fn(NodeId) -> String,
    groups: &[Group],
    min_edge_weight: u64,
) -> String {
    let mut out = String::from("graph affinity {\n  layout=neato;\n  overlap=false;\n");
    let group_of = |n: NodeId| groups.iter().position(|g| g.members.contains(&n));
    let max_weight = graph.edges().map(|(_, _, w)| w).max().unwrap_or(1).max(1);

    for n in graph.nodes() {
        let colour = match group_of(n) {
            Some(g) => COLOURS[g % COLOURS.len()],
            None => "gray80",
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\\n{} accesses\", style=filled, fillcolor={}];",
            n.0,
            labels(n).replace('"', "'"),
            graph.accesses(n),
            colour
        );
    }
    for (u, v, w) in graph.edges() {
        if w < min_edge_weight || u == v {
            continue;
        }
        // Pen width 1–8 scaled by relative weight, like the figure's
        // thickness encoding.
        let pen = 1.0 + 7.0 * (w as f64 / max_weight as f64);
        let _ = writeln!(out, "  n{} -- n{} [penwidth={pen:.1}, label=\"{w}\"];", u.0, v.0);
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (AffinityGraph, Vec<Group>) {
        let mut g = AffinityGraph::new();
        let a = g.add_node(100);
        let b = g.add_node(90);
        let c = g.add_node(5);
        g.add_edge_weight(a, b, 500);
        g.add_edge_weight(b, c, 2);
        g.add_edge_weight(a, a, 30);
        let groups = vec![Group {
            members: vec![a, b],
            weight: 530,
            accesses: 190,
            plan: Default::default(),
        }];
        (g, groups)
    }

    #[test]
    fn dot_marks_groups_and_hides_weak_edges() {
        let (g, groups) = sample();
        let dot = to_dot(&g, &|n| format!("ctx{}", n.0), &groups, 10);
        assert!(dot.starts_with("graph affinity {"));
        assert!(dot.contains("fillcolor=skyblue"), "grouped nodes coloured");
        assert!(dot.contains("fillcolor=gray80"), "ungrouped node grey");
        assert!(dot.contains("n0 -- n1"), "strong edge drawn");
        assert!(!dot.contains("n1 -- n2"), "weak edge hidden");
        assert!(!dot.contains("n0 -- n0"), "loops not drawn");
        assert!(dot.contains("label=\"500\""));
    }

    /// Two graphs with the same logical content but different edge
    /// insertion orders (and different storage phases) must render to
    /// byte-identical documents — edge lines follow (u, v) order, not
    /// the edge store's internal layout.
    #[test]
    fn deterministic_regardless_of_build_order() {
        let edges: Vec<(u32, u32, u64)> =
            (0..40u32).map(|i| (i % 7, 7 + (i * 13) % 23, 10 + i as u64)).collect();
        let build = |order: &[usize], finalise: bool| {
            let mut g = AffinityGraph::new();
            for _ in 0..30 {
                g.add_node(50);
            }
            for &i in order {
                let (u, v, w) = edges[i];
                g.add_edge_weight(NodeId(u), NodeId(v), w);
            }
            if finalise {
                g.finalise();
            }
            to_dot(&g, &|n| format!("ctx{}", n.0), &[], 1)
        };
        let forward: Vec<usize> = (0..edges.len()).collect();
        let reverse: Vec<usize> = (0..edges.len()).rev().collect();
        let scrambled: Vec<usize> = (0..edges.len()).map(|i| (i * 17) % edges.len()).collect();
        let reference = build(&forward, false);
        assert_eq!(reference, build(&reverse, false), "reverse insertion");
        assert_eq!(reference, build(&scrambled, false), "scrambled insertion");
        assert_eq!(reference, build(&forward, true), "finalised rendering");
        // And rendering the same graph twice is trivially stable.
        assert_eq!(build(&reverse, true), build(&reverse, true));
    }

    #[test]
    fn labels_are_quoted_safely() {
        let (g, groups) = sample();
        let dot = to_dot(&g, &|_| "say \"hi\"".to_string(), &groups, 1);
        assert!(!dot.contains("\"say \"hi\"\""), "double quotes escaped");
        assert!(dot.contains("say 'hi'"));
    }
}
