//! The affinity graph and context-grouping algorithms of HALO (§4.2).
//!
//! Nodes are allocation contexts (opaque [`NodeId`]s assigned by the
//! profiler); edges are weighted by the number of contemporaneous accesses
//! observed between objects of the two contexts. On top of the graph this
//! crate implements:
//!
//! * the **score** function — a loop-aware variant of weighted graph
//!   density (paper Fig. 7);
//! * the **merge benefit** function with tolerance `T` (paper Fig. 8);
//! * the **greedy grouping algorithm** (paper Fig. 6), rewritten on CSR
//!   adjacency so grouping a million-node graph finishes in seconds;
//! * two alternative clusterers the paper compares against in prose
//!   (greedy modularity maximisation and HCS via Stoer–Wagner min-cut),
//!   used by the grouping ablation bench.
//!
//! Edge storage is flat (DESIGN.md §13): writes accumulate in a hash
//! table, reads run on compressed sparse rows after
//! [`AffinityGraph::finalise`], and [`SubGraph`] deltas let profiling
//! shards build pieces of a graph independently and merge them in any
//! order.
//!
//! # Example
//!
//! ```
//! use halo_graph::{AffinityGraph, GroupingParams, group};
//!
//! let mut g = AffinityGraph::new();
//! let a = g.add_node(1000);
//! let b = g.add_node(900);
//! let c = g.add_node(10);
//! g.add_edge_weight(a, b, 500); // strongly related
//! g.add_edge_weight(b, c, 1);   // noise
//! let groups = group(&g, &GroupingParams::default());
//! assert_eq!(groups.len(), 1);
//! assert!(groups[0].members.contains(&a) && groups[0].members.contains(&b));
//! ```

mod affinity;
mod alt;
mod csr;
mod dot;
mod drift;
mod granularity;
mod grouping;
mod plan;
mod score;
mod subgraph;

pub use affinity::{AffinityGraph, NodeId};
pub use alt::{hcs_clusters, modularity_clusters, stoer_wagner_min_cut};
pub use dot::to_dot;
pub use drift::grouping_drift;
pub use granularity::Granularity;
pub use grouping::{group, Group, GroupingParams};
pub use plan::{GroupPlan, ReusePolicy, ReusePolicyChoice};
pub use score::{merge_benefit, score_of_members, SubgraphScore};
pub use subgraph::SubGraph;
