//! Grouping drift: how far has a freshly computed grouping moved from the
//! one the active plan was built on?
//!
//! The phase detector in serve mode (DESIGN.md §15) re-groups the decayed
//! streaming graph every window and needs a scalar answer to "did the
//! workload's affinity structure actually change, or is this the same
//! clustering with noise?". We use one minus the Jaccard similarity of the
//! two groupings' *co-membership pair sets*: a pair of contexts counts as
//! agreeing when both groupings place it in one group. Unlike the Rand
//! index, pairs that neither grouping co-locates (the overwhelming
//! majority in a sparse clustering) do not inflate agreement.

use crate::grouping::Group;
use crate::NodeId;
use std::collections::HashMap;

fn pairs(n: u64) -> u64 {
    n * (n.saturating_sub(1)) / 2
}

/// Drift between two groupings over the same `NodeId` space, in `[0, 1]`:
/// `0.0` means every co-grouped pair is co-grouped in both (identical
/// cluster structure — group order, plans, and singleton placement are
/// ignored), `1.0` means no co-grouped pair survives. Two empty (or
/// all-singleton) groupings have no co-membership evidence and report
/// `0.0` — no evidence of change is not change.
///
/// A node assigned to several groups (the clusterers never do this, but
/// the type permits it) counts its first assignment.
pub fn grouping_drift(old: &[Group], new: &[Group]) -> f64 {
    let assign = |groups: &[Group]| -> HashMap<NodeId, usize> {
        let mut map = HashMap::new();
        for (gi, g) in groups.iter().enumerate() {
            for &m in &g.members {
                map.entry(m).or_insert(gi);
            }
        }
        map
    };
    let a = assign(old);
    let b = assign(new);
    // Pairs co-grouped in both = Σ C(n_ij, 2) over the contingency table
    // of nodes present in both assignments.
    let mut contingency: HashMap<(usize, usize), u64> = HashMap::new();
    for (n, &gi) in &a {
        if let Some(&gj) = b.get(n) {
            *contingency.entry((gi, gj)).or_insert(0) += 1;
        }
    }
    let both: u64 = contingency.values().map(|&c| pairs(c)).sum();
    let in_old: u64 = old.iter().map(|g| pairs(g.members.len() as u64)).sum();
    let in_new: u64 = new.iter().map(|g| pairs(g.members.len() as u64)).sum();
    let union = in_old + in_new - both;
    if union == 0 {
        return 0.0;
    }
    1.0 - both as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GroupPlan;

    fn g(members: &[u32]) -> Group {
        Group {
            members: members.iter().map(|&m| NodeId(m)).collect(),
            weight: 0,
            accesses: 0,
            plan: GroupPlan::default(),
        }
    }

    #[test]
    fn identical_groupings_have_zero_drift() {
        let a = vec![g(&[0, 1, 2]), g(&[3, 4])];
        assert_eq!(grouping_drift(&a, &a), 0.0);
        // Group order and member order are structure-irrelevant.
        let b = vec![g(&[4, 3]), g(&[2, 0, 1])];
        assert_eq!(grouping_drift(&a, &b), 0.0);
    }

    #[test]
    fn disjoint_regroupings_have_full_drift() {
        // Every old co-membership is broken and every new one is fresh.
        let a = vec![g(&[0, 1]), g(&[2, 3])];
        let b = vec![g(&[0, 2]), g(&[1, 3])];
        assert_eq!(grouping_drift(&a, &b), 1.0);
        // Groupings over entirely different node sets (a phase shift to a
        // different binary) share nothing either.
        let c = vec![g(&[10, 11, 12])];
        assert_eq!(grouping_drift(&a, &c), 1.0);
    }

    #[test]
    fn partial_overlap_is_proportional() {
        // Old: {0,1,2} → pairs {01,02,12}. New: {0,1},{2,3} → pairs
        // {01,23}. Shared: {01}. Jaccard = 1/4, drift = 3/4.
        let a = vec![g(&[0, 1, 2])];
        let b = vec![g(&[0, 1]), g(&[2, 3])];
        assert_eq!(grouping_drift(&a, &b), 0.75);
        // Symmetric.
        assert_eq!(grouping_drift(&b, &a), 0.75);
    }

    #[test]
    fn no_coevidence_reports_zero() {
        assert_eq!(grouping_drift(&[], &[]), 0.0);
        // All-singleton groupings carry no co-membership pairs at all.
        let s = vec![g(&[0]), g(&[1])];
        assert_eq!(grouping_drift(&s, &s), 0.0);
        assert_eq!(grouping_drift(&[], &s), 0.0);
    }

    #[test]
    fn growth_from_empty_is_full_drift() {
        let a = vec![g(&[0, 1])];
        assert_eq!(grouping_drift(&[], &a), 1.0);
        assert_eq!(grouping_drift(&a, &[]), 1.0);
    }
}
