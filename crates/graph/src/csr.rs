//! Flat edge storage for million-node affinity graphs (DESIGN.md §13).
//!
//! Two representations share the work between the write-heavy profiling
//! phase and the read-heavy grouping phase:
//!
//! * [`EdgeAccumulator`] — an open-addressing hash table from packed
//!   canonical `(min, max)` endpoint pairs to accumulated weight. This is
//!   the build phase: O(1) amortised increments, no ordering.
//! * [`Csr`] — compressed sparse rows: one offset per node into parallel
//!   neighbour/weight arrays, rows sorted by neighbour id. Non-loop edges
//!   appear in both endpoint rows; a loop appears once, in its node's own
//!   row. O(degree) neighbour iteration, O(log degree) weight lookup, and
//!   edge enumeration in ascending `(u, v)` order for free.
//!
//! Both are dependency-free: `halo_graph` has no crates to lean on, so the
//! accumulator hashes with the SplitMix64 finaliser instead of `std`'s
//! `RandomState` — which also makes iteration order a pure function of the
//! insertion sequence rather than of a per-process random seed.

/// Pack a canonicalised endpoint pair into the accumulator key.
#[inline]
pub(crate) fn pack(u: u32, v: u32) -> u64 {
    let (a, b) = if u <= v { (u, v) } else { (v, u) };
    ((a as u64) << 32) | b as u64
}

/// SplitMix64 finaliser: a full-avalanche mix of the packed key.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    key: u64,
    /// 0 marks an empty slot: weights only ever grow, and zero-delta
    /// increments are dropped at the door, so no live entry is ever 0.
    weight: u64,
}

/// Open-addressing accumulator from packed edge keys to summed weights.
#[derive(Debug, Clone, Default)]
pub(crate) struct EdgeAccumulator {
    slots: Vec<Slot>,
    /// Number of occupied slots. Capacity is a power of two and is grown
    /// at 7/8 load, so linear probes stay short.
    len: usize,
}

impl EdgeAccumulator {
    pub(crate) fn with_capacity(edges: usize) -> Self {
        let cap = (edges * 8 / 7 + 1).next_power_of_two().max(16);
        EdgeAccumulator { slots: vec![Slot::default(); cap], len: 0 }
    }

    /// Number of distinct (positive-weight) edges accumulated.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Add `delta` to the weight of the edge `(u, v)`.
    pub(crate) fn add(&mut self, u: u32, v: u32, delta: u64) {
        if delta == 0 {
            return;
        }
        if self.len * 8 >= self.slots.len() * 7 {
            self.grow();
        }
        let key = pack(u, v);
        let mask = self.slots.len() - 1;
        let mut i = mix(key) as usize & mask;
        loop {
            let s = &mut self.slots[i];
            if s.weight == 0 {
                *s = Slot { key, weight: delta };
                self.len += 1;
                return;
            }
            if s.key == key {
                s.weight += delta;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Current weight of `(u, v)`, 0 when absent.
    pub(crate) fn get(&self, u: u32, v: u32) -> u64 {
        if self.slots.is_empty() {
            return 0;
        }
        let key = pack(u, v);
        let mask = self.slots.len() - 1;
        let mut i = mix(key) as usize & mask;
        loop {
            let s = &self.slots[i];
            if s.weight == 0 {
                return 0;
            }
            if s.key == key {
                return s.weight;
            }
            i = (i + 1) & mask;
        }
    }

    /// Visit every accumulated edge as `(u, v, weight)` with `u <= v`, in
    /// slot order (deterministic for a given insertion sequence, but not
    /// sorted — callers wanting order sort or finalise to CSR).
    pub(crate) fn for_each(&self, mut f: impl FnMut(u32, u32, u64)) {
        for s in &self.slots {
            if s.weight != 0 {
                f((s.key >> 32) as u32, s.key as u32, s.weight);
            }
        }
    }

    /// Grow so that `additional` more edges fit without crossing the 7/8
    /// load threshold mid-stream. Bulk callers that copy one accumulator
    /// into another ([`crate::SubGraph::merge`], `apply_to`) MUST pre-size:
    /// the source iterates in slot (= hash) order, and feeding that order
    /// into a *smaller* same-hash table packs each growth phase into one
    /// contiguous run whose linear probes degenerate quadratically (~40×
    /// at 200k edges).
    pub(crate) fn reserve(&mut self, additional: usize) {
        let needed = ((self.len + additional) * 8 / 7 + 1).next_power_of_two().max(16);
        if needed > self.slots.len() {
            self.rehash(needed);
        }
    }

    fn grow(&mut self) {
        self.rehash((self.slots.len() * 2).max(16));
    }

    fn rehash(&mut self, new_cap: usize) {
        let old = std::mem::replace(&mut self.slots, vec![Slot::default(); new_cap]);
        let mask = new_cap - 1;
        for s in old {
            if s.weight == 0 {
                continue;
            }
            let mut i = mix(s.key) as usize & mask;
            while self.slots[i].weight != 0 {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }
}

/// Finalised compressed-sparse-row edge storage over `num_nodes` nodes.
#[derive(Debug, Clone, Default)]
pub(crate) struct Csr {
    /// `offsets[n]..offsets[n + 1]` indexes node `n`'s row. Length is
    /// `num_nodes + 1` (a lone 0 for the empty graph).
    offsets: Vec<usize>,
    /// Row-sorted neighbour ids.
    nbr: Vec<u32>,
    /// Weights parallel to `nbr`.
    wts: Vec<u64>,
    /// Distinct edges stored (loops counted once).
    edge_count: usize,
}

impl Csr {
    /// Build from `(u, v, weight)` triples with `u <= v`, visited via
    /// `edges` (called twice: once to count degrees, once to fill). The
    /// caller has already filtered out dead endpoints and zero weights.
    pub(crate) fn build(num_nodes: usize, edges: impl Fn(&mut dyn FnMut(u32, u32, u64))) -> Csr {
        let mut deg = vec![0usize; num_nodes];
        let mut edge_count = 0usize;
        edges(&mut |u, v, _| {
            deg[u as usize] += 1;
            if u != v {
                deg[v as usize] += 1;
            }
            edge_count += 1;
        });
        let mut offsets = Vec::with_capacity(num_nodes + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut nbr = vec![0u32; acc];
        let mut wts = vec![0u64; acc];
        let mut cursor = offsets.clone();
        edges(&mut |u, v, w| {
            let cu = &mut cursor[u as usize];
            nbr[*cu] = v;
            wts[*cu] = w;
            *cu += 1;
            if u != v {
                let cv = &mut cursor[v as usize];
                nbr[*cv] = u;
                wts[*cv] = w;
                *cv += 1;
            }
        });
        // Sort each row by neighbour id (weights ride along).
        let mut scratch: Vec<(u32, u64)> = Vec::new();
        for n in 0..num_nodes {
            let (s, e) = (offsets[n], offsets[n + 1]);
            if e - s < 2 {
                continue;
            }
            scratch.clear();
            scratch.extend(nbr[s..e].iter().copied().zip(wts[s..e].iter().copied()));
            scratch.sort_unstable_by_key(|&(v, _)| v);
            for (i, &(v, w)) in scratch.iter().enumerate() {
                nbr[s + i] = v;
                wts[s + i] = w;
            }
        }
        Csr { offsets, nbr, wts, edge_count }
    }

    pub(crate) fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Node `n`'s row as parallel (neighbours, weights) slices. Nodes added
    /// after finalisation have no row yet and read as empty.
    pub(crate) fn row(&self, n: usize) -> (&[u32], &[u64]) {
        match self.offsets.get(n..n + 2) {
            Some(&[s, e]) => (&self.nbr[s..e], &self.wts[s..e]),
            _ => (&[], &[]),
        }
    }

    /// O(log degree) weight lookup; 0 when the edge is absent.
    pub(crate) fn weight(&self, u: u32, v: u32) -> u64 {
        // Loops live in their node's own row; plain edges are in both rows,
        // so searching u's row suffices either way.
        let (nbrs, wts) = self.row(u as usize);
        match nbrs.binary_search(&v) {
            Ok(i) => wts[i],
            Err(_) => 0,
        }
    }

    /// Visit each distinct edge once as `(u, v, weight)` with `u <= v`, in
    /// ascending `(u, v)` order.
    pub(crate) fn for_each_edge(&self, mut f: impl FnMut(u32, u32, u64)) {
        self.edge_iter().for_each(|(u, v, w)| f(u, v, w));
    }

    /// [`Csr::for_each_edge`] as an allocation-free iterator.
    pub(crate) fn edge_iter(&self) -> impl Iterator<Item = (u32, u32, u64)> + '_ {
        (0..self.offsets.len().saturating_sub(1)).flat_map(move |u| {
            let (nbrs, wts) = self.row(u);
            // Rows are sorted, so the distinct-edge half (v >= u) is a
            // contiguous suffix.
            let start = nbrs.partition_point(|&v| (v as usize) < u);
            nbrs[start..].iter().zip(&wts[start..]).map(move |(&v, &w)| (u as u32, v, w))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_sums_and_canonicalises() {
        let mut acc = EdgeAccumulator::default();
        acc.add(3, 1, 5);
        acc.add(1, 3, 2);
        acc.add(2, 2, 9);
        acc.add(1, 3, 0); // zero delta is dropped
        assert_eq!(acc.get(1, 3), 7);
        assert_eq!(acc.get(3, 1), 7);
        assert_eq!(acc.get(2, 2), 9);
        assert_eq!(acc.get(0, 1), 0);
        assert_eq!(acc.len(), 2);
    }

    #[test]
    fn accumulator_survives_growth() {
        let mut acc = EdgeAccumulator::default();
        for i in 0..10_000u32 {
            acc.add(i, i + 1, (i + 1) as u64);
        }
        assert_eq!(acc.len(), 10_000);
        for i in 0..10_000u32 {
            assert_eq!(acc.get(i + 1, i), (i + 1) as u64, "edge {i}");
        }
    }

    #[test]
    fn csr_rows_are_sorted_and_lookup_agrees() {
        let mut acc = EdgeAccumulator::default();
        let edges = [(4u32, 0u32, 11u64), (0, 1, 3), (2, 2, 8), (0, 2, 5), (3, 0, 7)];
        for &(u, v, w) in &edges {
            acc.add(u, v, w);
        }
        let csr = Csr::build(5, |f| acc.for_each(f));
        assert_eq!(csr.edge_count(), 5);
        let (nbrs, wts) = csr.row(0);
        assert_eq!(nbrs, &[1, 2, 3, 4]);
        assert_eq!(wts, &[3, 5, 7, 11]);
        for &(u, v, w) in &edges {
            assert_eq!(csr.weight(u, v), w);
            assert_eq!(csr.weight(v, u), w);
        }
        assert_eq!(csr.weight(1, 2), 0);
        // Enumeration: each edge once, ascending (u, v), loop included.
        let mut seen = Vec::new();
        csr.for_each_edge(|u, v, w| seen.push((u, v, w)));
        assert_eq!(seen, vec![(0, 1, 3), (0, 2, 5), (0, 3, 7), (0, 4, 11), (2, 2, 8)]);
    }

    #[test]
    fn csr_empty_and_out_of_range_rows() {
        let csr = Csr::default();
        assert_eq!(csr.row(0), (&[][..], &[][..]));
        assert_eq!(csr.weight(3, 4), 0);
        let acc = EdgeAccumulator::default();
        let csr = Csr::build(2, |f| acc.for_each(f));
        assert_eq!(csr.row(1), (&[][..], &[][..]));
        assert_eq!(csr.row(7), (&[][..], &[][..]));
    }
}
