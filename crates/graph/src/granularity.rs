//! Profiling/grouping granularity (§6's page-granularity suggestion).
//!
//! The paper profiles at **object** granularity: queue identities are heap
//! objects, and objects above the grouped-size cap are invisible. §6
//! observes that roms defeats this — its regularities live between *pages*
//! of large arrays — and sketches a **page**-granularity fallback the
//! artefact never builds. This type names the three policies the
//! reproduction supports end to end; the pipeline (`halo_core`) resolves
//! [`Granularity::Auto`] to one of the concrete modes per binary.

use std::fmt;
use std::str::FromStr;

/// Which identity macro-accesses are keyed by during profiling, and which
/// affinity graph grouping consumes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Granularity {
    /// The paper's mode: queue identities are heap objects; objects above
    /// the tracked-size cap are ignored.
    #[default]
    Object,
    /// The §6 fallback: queue identities are 4 KiB pages (`addr >> 12`)
    /// attributed to the allocation context owning the address, with no
    /// object-size cap — large arrays participate page by page.
    Page,
    /// Profile both; group at object granularity first and fall back to
    /// page granularity (or decline to group at all) when the predicted
    /// gain on the *train* input is ~0.
    Auto,
}

impl Granularity {
    /// All three policies, in CLI/reporting order.
    pub const ALL: [Granularity; 3] = [Granularity::Object, Granularity::Page, Granularity::Auto];

    /// Whether this policy needs the page-level affinity graph recorded
    /// during profiling.
    pub fn tracks_pages(self) -> bool {
        !matches!(self, Granularity::Object)
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Granularity::Object => "object",
            Granularity::Page => "page",
            Granularity::Auto => "auto",
        })
    }
}

impl FromStr for Granularity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "object" => Ok(Granularity::Object),
            "page" => Ok(Granularity::Page),
            "auto" => Ok(Granularity::Auto),
            other => Err(format!("unknown granularity '{other}' (object|page|auto)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_displays_roundtrip() {
        for g in Granularity::ALL {
            assert_eq!(g.to_string().parse::<Granularity>(), Ok(g));
        }
        assert!("pages".parse::<Granularity>().is_err());
        assert!("".parse::<Granularity>().is_err());
    }

    #[test]
    fn only_object_mode_skips_page_tracking() {
        assert!(!Granularity::Object.tracks_pages());
        assert!(Granularity::Page.tracks_pages());
        assert!(Granularity::Auto.tracks_pages());
    }
}
