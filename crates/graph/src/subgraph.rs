//! Mergeable per-shard affinity deltas (DESIGN.md §13).
//!
//! A [`SubGraph`] is the write-side slice of an [`AffinityGraph`] that one
//! profiling shard (a logical thread, a trace partition, a generator
//! worker) builds independently: node access counts keyed by the *global*
//! stable [`NodeId`] space plus an edge-weight accumulator. Because every
//! field merges by pointwise integer sum (and the node set by union of id
//! ranges), [`SubGraph::merge`] is commutative and associative — any
//! partition of an event stream over any number of shards, merged in any
//! order or tree shape, yields the same graph as single-pass recording.
//! That is what lets `halo_core` union shards with `par_map` and stay
//! byte-identical to the serial fold (`tests/property_invariants.rs`).

use crate::affinity::{AffinityGraph, NodeId};
use crate::csr::EdgeAccumulator;

/// One shard's contribution to an affinity graph: dense per-node access
/// deltas and an edge-weight accumulator over global node ids.
#[derive(Debug, Clone, Default)]
pub struct SubGraph {
    /// Access deltas, indexed by `NodeId`; the vector length is the
    /// highest node id this shard has seen plus one.
    accesses: Vec<u64>,
    edges: EdgeAccumulator,
}

impl SubGraph {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes this shard knows about (highest seen id + 1).
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the shard recorded nothing at all.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty() && self.edges.len() == 0
    }

    /// Number of distinct positive-weight edges recorded.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    fn ensure_node(&mut self, n: NodeId) {
        if self.accesses.len() <= n.index() {
            self.accesses.resize(n.index() + 1, 0);
        }
    }

    /// Record `delta` accesses on node `n` (0 still marks the node as
    /// seen, widening the id range the merge unions).
    pub fn add_accesses(&mut self, n: NodeId, delta: u64) {
        self.ensure_node(n);
        self.accesses[n.index()] += delta;
    }

    /// Access delta recorded for `n` (0 when unseen).
    pub fn accesses(&self, n: NodeId) -> u64 {
        self.accesses.get(n.index()).copied().unwrap_or(0)
    }

    /// Add `delta` to edge `(u, v)`; `u == v` records a loop.
    pub fn add_edge_weight(&mut self, u: NodeId, v: NodeId, delta: u64) {
        self.ensure_node(if u >= v { u } else { v });
        self.edges.add(u.0, v.0, delta);
    }

    /// Accumulated weight of `(u, v)` (0 when absent).
    pub fn weight(&self, u: NodeId, v: NodeId) -> u64 {
        self.edges.get(u.0, v.0)
    }

    /// The recorded edges as sorted `(u, v, weight)` triples with
    /// `u <= v` — the canonical form two shards are compared in.
    pub fn edges(&self) -> Vec<(NodeId, NodeId, u64)> {
        let mut out = Vec::with_capacity(self.edges.len());
        self.edges.for_each(|u, v, w| out.push((NodeId(u), NodeId(v), w)));
        out.sort_unstable();
        out
    }

    /// Union `other` into `self`: node ranges union (by stable id — no
    /// renumbering ever happens), access counts and edge weights sum.
    /// Commutative and associative up to observable state (the internal
    /// hash layout may differ, every accessor is order-insensitive).
    #[must_use]
    pub fn merge(mut self, other: SubGraph) -> SubGraph {
        if self.accesses.len() < other.accesses.len() {
            // Grow-once so the pointwise sum below never reallocates.
            self.accesses.resize(other.accesses.len(), 0);
        }
        for (mine, theirs) in self.accesses.iter_mut().zip(&other.accesses) {
            *mine += theirs;
        }
        // Pre-size before the slot-order copy (see EdgeAccumulator::reserve
        // for why feeding hash order into a smaller table is quadratic).
        self.edges.reserve(other.edges.len());
        other.edges.for_each(|u, v, w| self.edges.add(u, v, w));
        self
    }

    /// Apply this delta to a full graph: missing nodes are appended (with
    /// zero initial accesses), then access counts and edge weights are
    /// added. The graph ends in build phase; callers finalise when done.
    pub fn apply_to(&self, graph: &mut AffinityGraph) {
        while graph.len() < self.accesses.len() {
            graph.add_node(0);
        }
        for (i, &a) in self.accesses.iter().enumerate() {
            if a > 0 {
                graph.add_accesses(NodeId(i as u32), a);
            }
        }
        graph.reserve_edges(self.edges.len());
        self.edges.for_each(|u, v, w| {
            graph.add_edge_weight(NodeId(u), NodeId(v), w);
        });
    }

    /// Materialise the delta as a standalone, finalised graph.
    pub fn into_graph(self) -> AffinityGraph {
        let mut graph = AffinityGraph::new();
        self.apply_to(&mut graph);
        graph.finalise();
        graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn records_and_reads_back() {
        let mut s = SubGraph::new();
        assert!(s.is_empty());
        s.add_accesses(n(2), 10);
        s.add_edge_weight(n(0), n(2), 5);
        s.add_edge_weight(n(2), n(0), 1);
        s.add_edge_weight(n(1), n(1), 7);
        assert_eq!(s.len(), 3);
        assert_eq!(s.accesses(n(2)), 10);
        assert_eq!(s.accesses(n(9)), 0);
        assert_eq!(s.weight(n(2), n(0)), 6);
        assert_eq!(s.edges(), vec![(n(0), n(2), 6), (n(1), n(1), 7)]);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = SubGraph::new();
        a.add_accesses(n(0), 3);
        a.add_edge_weight(n(0), n(1), 4);
        let mut b = SubGraph::new();
        b.add_accesses(n(2), 8);
        b.add_edge_weight(n(1), n(0), 2);
        b.add_edge_weight(n(2), n(2), 9);
        let ab = a.clone().merge(b.clone());
        let ba = b.merge(a);
        assert_eq!(ab.len(), ba.len());
        assert_eq!(ab.edges(), ba.edges());
        for i in 0..3 {
            assert_eq!(ab.accesses(n(i)), ba.accesses(n(i)));
        }
        assert_eq!(ab.weight(n(0), n(1)), 6);
        assert_eq!(ab.accesses(n(2)), 8);
    }

    #[test]
    fn zero_access_marks_node_seen() {
        let mut s = SubGraph::new();
        s.add_accesses(n(4), 0);
        assert_eq!(s.len(), 5);
        assert!(!s.is_empty());
        let g = s.into_graph();
        assert_eq!(g.len(), 5);
        assert_eq!(g.total_accesses(), 0);
    }

    #[test]
    fn apply_to_extends_and_sums() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(100);
        g.add_edge_weight(a, a, 1);
        let mut s = SubGraph::new();
        s.add_accesses(n(0), 11);
        s.add_accesses(n(1), 22);
        s.add_edge_weight(n(0), n(0), 2);
        s.add_edge_weight(n(0), n(1), 3);
        s.apply_to(&mut g);
        assert_eq!(g.len(), 2);
        assert_eq!(g.accesses(n(0)), 111);
        assert_eq!(g.accesses(n(1)), 22);
        assert_eq!(g.weight(n(0), n(0)), 3);
        assert_eq!(g.weight(n(0), n(1)), 3);
    }

    #[test]
    fn into_graph_is_finalised() {
        let mut s = SubGraph::new();
        s.add_edge_weight(n(0), n(1), 5);
        s.add_accesses(n(0), 1);
        s.add_accesses(n(1), 1);
        let g = s.into_graph();
        assert!(g.is_finalised());
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(n(0), n(1), 5)]);
    }
}
