//! The group-quality score (paper Fig. 7) and merge benefit (Fig. 8).

use crate::affinity::{AffinityGraph, NodeId};

/// The Fig. 7 quotient from its integer parts: `weight_sum / denom`,
/// with the empty-denominator convention (score 0).
///
/// Every score the crate computes — incremental ([`SubgraphScore`]) or
/// CSR-side (the `grouping.rs` candidate scan) — funnels through this one
/// expression, so the two paths are bit-identical by construction.
#[inline]
pub(crate) fn score_parts(weight_sum: u64, denom: u64) -> f64 {
    if denom == 0 {
        0.0
    } else {
        weight_sum as f64 / denom as f64
    }
}

/// The Fig. 8 combination of the three scores:
/// `s(G[A ∪ B]) − (1 − T)·max(s(G[A]), s(G[B]))`.
#[inline]
pub(crate) fn merge_benefit_parts(sa: f64, sb: f64, sc: f64, tolerance: f64) -> f64 {
    sc - (1.0 - tolerance) * sa.max(sb)
}

/// Incremental bookkeeping for the score of an induced subgraph.
///
/// The Fig. 7 score of `G = (V, E)` is
///
/// ```text
/// s(G) = Σ w(u,v) / (|L| + |V|·(|V|−1)/2)
/// ```
///
/// where the sum runs over edges of the induced subgraph and `L` is the set
/// of positive-weight loop edges present in it. Growing a group one node at
/// a time only needs the candidate's edges into the group, so the grouping
/// algorithm keeps one of these structures per group and updates it in
/// O(degree) per merge instead of recomputing from scratch.
#[derive(Debug, Clone, Default)]
pub struct SubgraphScore {
    members: Vec<NodeId>,
    /// Σ w(u,v) over all edges (including loops) inside the subgraph.
    weight_sum: u64,
    /// |L|: number of members with a positive loop edge.
    loop_count: usize,
}

impl SubgraphScore {
    /// Start with a single-node subgraph.
    pub fn singleton(graph: &AffinityGraph, node: NodeId) -> Self {
        let loop_w = graph.weight(node, node);
        SubgraphScore {
            members: vec![node],
            weight_sum: loop_w,
            loop_count: usize::from(loop_w > 0),
        }
    }

    /// Current members.
    pub fn members(&self) -> &[NodeId] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the subgraph is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Σ of edge weights inside the subgraph (the group weight checked
    /// against the Fig. 6 threshold).
    pub fn weight_sum(&self) -> u64 {
        self.weight_sum
    }

    /// The Fig. 7 score. Empty or edge-free subgraphs score 0.
    pub fn score(&self) -> f64 {
        let v = self.members.len() as u64;
        score_parts(self.weight_sum, self.loop_count as u64 + v * v.saturating_sub(1) / 2)
    }

    /// The score this subgraph would have after adding `candidate`,
    /// without mutating it.
    pub fn score_with(&self, graph: &AffinityGraph, candidate: NodeId) -> f64 {
        let (w, l) = self.deltas_for(graph, candidate);
        let v = (self.members.len() + 1) as u64;
        score_parts(self.weight_sum + w, (self.loop_count + l) as u64 + v * (v - 1) / 2)
    }

    /// Add `candidate` to the subgraph.
    pub fn push(&mut self, graph: &AffinityGraph, candidate: NodeId) {
        let (w, l) = self.deltas_for(graph, candidate);
        self.weight_sum += w;
        self.loop_count += l;
        self.members.push(candidate);
    }

    fn deltas_for(&self, graph: &AffinityGraph, candidate: NodeId) -> (u64, usize) {
        let mut w = 0u64;
        for &m in &self.members {
            w += graph.weight(m, candidate);
        }
        let loop_w = graph.weight(candidate, candidate);
        (w + loop_w, usize::from(loop_w > 0))
    }
}

/// The Fig. 7 score of an arbitrary member set, computed from scratch.
/// Primarily for tests and for scoring clusters produced by the alternative
/// algorithms; the grouping loop uses [`SubgraphScore`] incrementally.
pub fn score_of_members(graph: &AffinityGraph, members: &[NodeId]) -> f64 {
    let mut s = SubgraphScore::default();
    for &m in members {
        s.push(graph, m);
    }
    s.score()
}

/// The Fig. 8 merge benefit of adding `candidate` to `group`:
///
/// ```text
/// m(A, B) = s(G[A ∪ B]) − (1 − T)·max(s(G[A]), s(G[B]))
/// ```
///
/// Positive only if the merged subgraph scores higher than either side in
/// isolation, up to the tolerance `T` that deliberately permits fractionally
/// score-lowering merges to encourage group formation (§4.2).
pub fn merge_benefit(
    graph: &AffinityGraph,
    group: &SubgraphScore,
    candidate: NodeId,
    tolerance: f64,
) -> f64 {
    let sa = group.score();
    let sb = SubgraphScore::singleton(graph, candidate).score();
    let sc = group.score_with(graph, candidate);
    merge_benefit_parts(sa, sb, sc, tolerance)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (AffinityGraph, NodeId, NodeId, NodeId) {
        let mut g = AffinityGraph::new();
        let a = g.add_node(100);
        let b = g.add_node(100);
        let c = g.add_node(100);
        g.add_edge_weight(a, b, 30);
        g.add_edge_weight(b, c, 20);
        g.add_edge_weight(a, c, 10);
        (g, a, b, c)
    }

    #[test]
    fn score_matches_figure7_formula() {
        let (g, a, b, c) = triangle();
        // Full triangle: (30+20+10) / (0 loops + 3·2/2) = 60/3 = 20.
        assert_eq!(score_of_members(&g, &[a, b, c]), 20.0);
        // Pair (a, b): 30 / 1 = 30.
        assert_eq!(score_of_members(&g, &[a, b]), 30.0);
        // Singleton without loop: denominator 0 → score 0.
        assert_eq!(score_of_members(&g, &[a]), 0.0);
    }

    #[test]
    fn loops_enter_both_numerator_and_denominator() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(10);
        let b = g.add_node(10);
        g.add_edge_weight(a, a, 12);
        g.add_edge_weight(a, b, 6);
        // {a}: 12 / (1 loop) = 12.
        assert_eq!(score_of_members(&g, &[a]), 12.0);
        // {a, b}: (12 + 6) / (1 loop + 1 pair) = 9.
        assert_eq!(score_of_members(&g, &[a, b]), 9.0);
    }

    #[test]
    fn incremental_matches_scratch() {
        let (g, a, b, c) = triangle();
        let mut inc = SubgraphScore::singleton(&g, a);
        assert_eq!(inc.score_with(&g, b), score_of_members(&g, &[a, b]));
        inc.push(&g, b);
        assert_eq!(inc.score(), score_of_members(&g, &[a, b]));
        assert_eq!(inc.score_with(&g, c), score_of_members(&g, &[a, b, c]));
        inc.push(&g, c);
        assert_eq!(inc.score(), score_of_members(&g, &[a, b, c]));
        assert_eq!(inc.weight_sum(), 60);
    }

    #[test]
    fn merge_benefit_positive_for_tight_candidates() {
        let (g, a, b, _) = triangle();
        let group = SubgraphScore::singleton(&g, a);
        // s(A)=0, s(B)=0, s(A∪B)=30 → benefit 30.
        assert_eq!(merge_benefit(&g, &group, b, 0.05), 30.0);
    }

    #[test]
    fn merge_benefit_negative_for_weakly_connected_candidates() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(10);
        let b = g.add_node(10);
        let c = g.add_node(10);
        g.add_edge_weight(a, b, 100);
        g.add_edge_weight(b, c, 1);
        let mut group = SubgraphScore::singleton(&g, a);
        group.push(&g, b);
        // Adding c: s = 101/3 ≈ 33.7 vs (1−T)·100 = 95 → negative.
        assert!(merge_benefit(&g, &group, c, 0.05) < 0.0);
    }

    #[test]
    fn tolerance_allows_fractionally_worse_merges() {
        let mut g = AffinityGraph::new();
        let a = g.add_node(10);
        let b = g.add_node(10);
        let c = g.add_node(10);
        // Perfect triangle of equal edges: adding c to {a,b} keeps score
        // at w (s({a,b}) = w, s({a,b,c}) = 3w/3 = w). With T=0 the benefit
        // is exactly 0 (not positive); any positive T makes it positive.
        for (u, v) in [(a, b), (b, c), (a, c)] {
            g.add_edge_weight(u, v, 50);
        }
        let mut group = SubgraphScore::singleton(&g, a);
        group.push(&g, b);
        assert!(merge_benefit(&g, &group, c, 0.0) <= 0.0);
        assert!(merge_benefit(&g, &group, c, 0.05) > 0.0);
    }
}
