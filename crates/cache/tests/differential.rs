//! Differential property suite: the fused fast-path hierarchies against
//! the retained reference walks.
//!
//! The fast paths ([`CacheHierarchy`]'s precomputed shift/mask geometry,
//! single-line short-circuit, and MRU line filter; [`CoherentHierarchy`]'s
//! per-thread filter and timestamp-LRU L1) are all claimed to be *exactly*
//! equivalent to the original per-access division-based walk preserved in
//! `halo_cache::reference`. These properties prove it on randomized traces
//! across geometries (including ways=1, non-power-of-two set counts and
//! page sizes, and prefetch on/off) and thread interleavings — counter for
//! counter, MESI-lite state for state.
//!
//! Case count per property follows the vendored proptest's config and the
//! `HALO_PROPTEST_CASES` override (CI trims it, soak runs raise it).

use halo_cache::{
    CacheConfig, CacheHierarchy, CoherentHierarchy, HierarchyConfig, ReferenceCoherentHierarchy,
    ReferenceHierarchy,
};
use proptest::prelude::*;

/// A small geometry from the generated knobs. L1 set counts of 3 exercise
/// the modulo fallback (no mask); sets=1 exercises the degenerate
/// fully-associative corner; ways=1 the direct-mapped one. The L2/L3 stay
/// small so evictions and prefetch interactions actually happen within a
/// few hundred accesses.
#[allow(clippy::too_many_arguments)]
fn geometry(
    line: u64,
    l1_ways: u32,
    l1_sets: u64,
    prefetch: bool,
    page_bytes: u64,
    tlb_ways: u32,
    tlb_sets: u32,
) -> HierarchyConfig {
    HierarchyConfig {
        l1: CacheConfig {
            size_bytes: line * u64::from(l1_ways) * l1_sets,
            line_bytes: line,
            ways: l1_ways,
        },
        l2: CacheConfig { size_bytes: line * 4 * 8, line_bytes: line, ways: 4 },
        l3: CacheConfig { size_bytes: line * 8 * 16, line_bytes: line, ways: 8 },
        tlb_entries: tlb_ways * tlb_sets,
        tlb_ways,
        page_bytes,
        adjacent_line_prefetch: prefetch,
    }
}

/// Page sizes under test: the real 4 KiB, a non-power-of-two (the page
/// divider must fall back to division), and one small enough that most
/// accesses touch several pages.
const PAGES: [u64; 3] = [4096, 1000, 128];

/// Width from a generated exponent: 1..=16 bytes, so wide accesses
/// straddle lines and pages.
fn widths(step_exp: u8) -> u8 {
    1u8 << (step_exp % 5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single-threaded fast path ≡ reference walk, including across
    /// interleaved flushes (which reset the MRU filter).
    #[test]
    fn plain_hierarchy_matches_reference(
        line_exp in 5u32..7,
        l1_ways in 1u32..5,
        l1_sets in 1u64..5,
        prefetch in any::<bool>(),
        page_sel in 0usize..3,
        tlb_ways in 1u32..3,
        tlb_sets in 1u32..5,
        trace in proptest::collection::vec((0u64..8192, 0u8..5, any::<bool>()) , 1..400),
    ) {
        let config = geometry(
            1 << line_exp, l1_ways, l1_sets, prefetch, PAGES[page_sel], tlb_ways, tlb_sets,
        );
        let mut fast = CacheHierarchy::new(config);
        let mut reference = ReferenceHierarchy::new(config);
        for (i, &(addr, wexp, store)) in trace.iter().enumerate() {
            let width = widths(wexp);
            fast.access(addr, width, store);
            reference.access(addr, width, store);
            if i % 97 == 96 {
                fast.flush();
                reference.flush();
            }
            prop_assert_eq!(fast.stats(), reference.stats(), "diverged at step {}", i);
        }
    }

    /// `access_batch` ≡ the same accesses delivered one at a time, at
    /// arbitrary batch boundaries.
    #[test]
    fn plain_batch_matches_per_access(
        l1_ways in 1u32..5,
        l1_sets in 1u64..5,
        prefetch in any::<bool>(),
        chunk in 1usize..48,
        trace in proptest::collection::vec((0u64..8192, 0u8..5, any::<bool>()), 1..400),
    ) {
        let config = geometry(64, l1_ways, l1_sets, prefetch, 4096, 2, 4);
        let mut batched = CacheHierarchy::new(config);
        let mut serial = CacheHierarchy::new(config);
        let addrs: Vec<u64> = trace.iter().map(|&(a, _, _)| a).collect();
        let ws: Vec<u8> = trace.iter().map(|&(_, w, _)| widths(w)).collect();
        let stores: Vec<bool> = trace.iter().map(|&(_, _, s)| s).collect();
        for start in (0..trace.len()).step_by(chunk) {
            let end = (start + chunk).min(trace.len());
            batched.access_batch(&addrs[start..end], &ws[start..end], &stores[start..end]);
        }
        for i in 0..trace.len() {
            serial.access(addrs[i], ws[i], stores[i]);
        }
        prop_assert_eq!(batched.stats(), serial.stats());
    }

    /// Thread-aware fast path ≡ reference MESI-lite walk: aggregate
    /// counters, coherence traffic, per-thread breakdowns, and the
    /// MESI-lite state of every touched line in every thread's L1D.
    #[test]
    fn coherent_hierarchy_matches_reference(
        line_exp in 5u32..7,
        l1_ways in 1u32..5,
        l1_sets in 1u64..5,
        prefetch in any::<bool>(),
        page_sel in 0usize..3,
        trace in proptest::collection::vec(
            (0u16..4, 0u64..2048, 0u8..5, any::<bool>()), 1..400),
    ) {
        let config =
            geometry(1 << line_exp, l1_ways, l1_sets, prefetch, PAGES[page_sel], 2, 4);
        let mut fast = CoherentHierarchy::new(config);
        let mut reference = ReferenceCoherentHierarchy::new(config);
        for (i, &(thread, addr, wexp, store)) in trace.iter().enumerate() {
            let width = widths(wexp);
            fast.set_thread(thread);
            reference.set_thread(thread);
            fast.access(addr, width, store);
            reference.access(addr, width, store);
            prop_assert_eq!(fast.stats(), reference.stats(), "stats diverged at step {}", i);
            prop_assert_eq!(
                fast.coherence(), reference.coherence(), "coherence diverged at step {}", i);
        }
        prop_assert_eq!(fast.thread_stats(), reference.thread_stats());
        for &(_, addr, _, _) in &trace {
            for t in 0..4u16 {
                prop_assert_eq!(
                    fast.line_state(t, addr),
                    reference.line_state(t, addr),
                    "state of addr {:#x} in thread {} diverged", addr, t
                );
            }
        }
    }

    /// Coherent `access_batch` ≡ per-access delivery. Batches never span a
    /// thread switch (the engine flushes before announcing one), so the
    /// trace is chunked within each thread's run of accesses.
    #[test]
    fn coherent_batch_matches_per_access(
        l1_ways in 1u32..5,
        l1_sets in 1u64..5,
        chunk in 1usize..32,
        trace in proptest::collection::vec(
            (0u16..4, 0u64..2048, 0u8..5, any::<bool>()), 1..400),
    ) {
        let config = geometry(64, l1_ways, l1_sets, true, 4096, 2, 4);
        let mut batched = CoherentHierarchy::new(config);
        let mut serial = CoherentHierarchy::new(config);
        // Split the trace into same-thread runs, then feed each run in
        // `chunk`-sized batches.
        let mut start = 0;
        while start < trace.len() {
            let thread = trace[start].0;
            let mut end = start;
            while end < trace.len() && trace[end].0 == thread {
                end += 1;
            }
            let addrs: Vec<u64> = trace[start..end].iter().map(|&(_, a, _, _)| a).collect();
            let ws: Vec<u8> = trace[start..end].iter().map(|&(_, _, w, _)| widths(w)).collect();
            let stores: Vec<bool> = trace[start..end].iter().map(|&(_, _, _, s)| s).collect();
            batched.set_thread(thread);
            for s in (0..addrs.len()).step_by(chunk) {
                let e = (s + chunk).min(addrs.len());
                batched.access_batch(&addrs[s..e], &ws[s..e], &stores[s..e]);
            }
            serial.set_thread(thread);
            for i in 0..addrs.len() {
                serial.access(addrs[i], ws[i], stores[i]);
            }
            start = end;
        }
        prop_assert_eq!(batched.stats(), serial.stats());
        prop_assert_eq!(batched.coherence(), serial.coherence());
        prop_assert_eq!(batched.thread_stats(), serial.thread_stats());
    }
}
