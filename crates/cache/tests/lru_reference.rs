//! Property test: the set-associative cache agrees with a naive reference
//! model, and the hierarchy obeys basic conservation laws.

use halo_cache::{CacheConfig, CacheHierarchy, HierarchyConfig, SetAssocCache, TimingModel};
use proptest::prelude::*;

/// The simplest possible LRU cache: per set, a vector ordered by recency,
/// searched linearly.
struct ReferenceLru {
    sets: usize,
    ways: usize,
    data: Vec<Vec<u64>>,
}

impl ReferenceLru {
    fn new(sets: usize, ways: usize) -> Self {
        ReferenceLru { sets, ways, data: vec![Vec::new(); sets] }
    }

    fn access(&mut self, line: u64) -> bool {
        let set = &mut self.data[(line as usize) % self.sets];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.insert(0, line);
            true
        } else {
            set.insert(0, line);
            set.truncate(self.ways);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn set_assoc_cache_matches_reference_lru(
        accesses in proptest::collection::vec(0u64..512, 1..800),
        ways in 1u32..8,
        sets_log2 in 0u32..4,
    ) {
        let sets = 1u64 << sets_log2;
        let config = CacheConfig {
            size_bytes: sets * ways as u64 * 64,
            line_bytes: 64,
            ways,
        };
        let mut cache = SetAssocCache::new(config);
        let mut reference = ReferenceLru::new(sets as usize, ways as usize);
        for addr in accesses {
            let line = addr; // treat inputs as line numbers directly
            let hit = cache.access_line(line).0;
            let ref_hit = reference.access(line);
            prop_assert_eq!(hit, ref_hit, "divergence at line {}", line);
        }
        prop_assert!(cache.resident_lines() <= (sets * ways as u64) as usize);
    }

    #[test]
    fn hierarchy_counters_are_conserved(
        accesses in proptest::collection::vec((0u64..100_000, 1u8..9, any::<bool>()), 1..500),
    ) {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        for &(addr, width, store) in &accesses {
            h.access(addr, width, store);
        }
        let s = h.stats();
        // Loads + stores equals the request count (line splitting affects
        // hits/misses, not the request counters).
        prop_assert_eq!(s.loads + s.stores, accesses.len() as u64);
        // Miss counts are monotone down the hierarchy.
        prop_assert!(s.l1_misses <= s.accesses());
        prop_assert!(s.l2_misses <= s.l1_misses);
        prop_assert!(s.l3_misses <= s.l2_misses);
        // The timing model is monotone in the counters.
        let t = TimingModel::default();
        let zero = halo_cache::AccessStats::default();
        prop_assert!(t.cycles(1000, &s) >= t.cycles(1000, &zero));
    }

    #[test]
    fn repeating_any_sequence_cannot_miss_more(
        accesses in proptest::collection::vec(0u64..64, 1..100),
    ) {
        // Replaying the same (small-footprint) sequence twice: the second
        // pass over a working set that fits in L3 never increases the
        // DRAM-level miss count.
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        for &a in &accesses {
            h.access(a * 64, 8, false);
        }
        let first = h.stats();
        for &a in &accesses {
            h.access(a * 64, 8, false);
        }
        let second = h.stats();
        prop_assert_eq!(
            second.l3_misses, first.l3_misses,
            "a 64-line working set fits L3; the replay must add no DRAM misses"
        );
    }
}
