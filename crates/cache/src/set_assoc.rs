//! A single set-associative, write-allocate, LRU cache.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (lines per set).
    pub ways: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `ways`-line sets, or line size not a power of two).
    pub fn sets(&self) -> u64 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(lines % self.ways as u64, 0, "capacity must divide into whole sets");
        assert!(lines >= self.ways as u64, "must have at least one set");
        lines / self.ways as u64
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags are full line addresses, so the same structure serves as a TLB by
/// passing page numbers as "line addresses" with `line_bytes = 1`.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: u64,
    /// `Some(sets - 1)` when the set count is a power of two, replacing
    /// the per-access modulo with a mask (the L3's 36864 sets are not a
    /// power of two, so the modulo fallback stays live).
    set_mask: Option<u64>,
    line_shift: u32,
    ways: usize,
    /// Occupancy of each set (how many of its `ways` slots hold a line).
    len: Box<[u32]>,
    /// Tag storage, `sets × ways`, each set's occupied prefix ordered
    /// most- to least-recently used. One flat allocation instead of the
    /// former per-set `Vec`s: a set scan is one pointer chase, not two.
    /// (All-zero at rest, so construction of even the 442k-slot L3 is a
    /// calloc of lazy zero pages, and one cache stays one pair of touched
    /// regions per set — a per-slot timestamp scheme was measurably
    /// slower here purely from the extra pages it dirtied.)
    tags: Box<[u64]>,
}

impl SetAssocCache {
    /// Build an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways as usize;
        SetAssocCache {
            config,
            sets,
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            line_shift: config.line_bytes.trailing_zeros(),
            ways,
            len: vec![0u32; sets as usize].into_boxed_slice(),
            tags: vec![0u64; sets as usize * ways].into_boxed_slice(),
        }
    }

    /// Set index for a line number.
    #[inline]
    fn set_index(&self, line: u64) -> usize {
        (match self.set_mask {
            Some(mask) => line & mask,
            None => line % self.sets,
        }) as usize
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Line address (tag) for a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Touch the line containing `addr`; returns `true` on hit. On miss the
    /// line is filled, evicting the LRU line of its set if necessary; the
    /// evicted line address is returned through `evicted`.
    #[inline]
    pub fn access_line(&mut self, line: u64) -> (bool, Option<u64>) {
        let set_idx = self.set_index(line);
        let occ = self.len[set_idx] as usize;
        let base = set_idx * self.ways;
        if let Some(pos) = self.tags[base..base + occ].iter().position(|&t| t == line) {
            // Promote to MRU with an explicit shift: on these small sets
            // a handful of element moves beats `slice::rotate_right`'s
            // generic block machinery. Order is identical to
            // remove+insert(0).
            let mut i = pos;
            while i > 0 {
                self.tags[base + i] = self.tags[base + i - 1];
                i -= 1;
            }
            self.tags[base] = line;
            (true, None)
        } else {
            // Miss: shift the survivors right one slot (dropping the LRU
            // tag when the set is full) and fill the MRU slot.
            let (keep, evicted) = if occ == self.ways {
                (occ - 1, Some(self.tags[base + occ - 1]))
            } else {
                self.len[set_idx] = occ as u32 + 1;
                (occ, None)
            };
            let mut i = keep;
            while i > 0 {
                self.tags[base + i] = self.tags[base + i - 1];
                i -= 1;
            }
            self.tags[base] = line;
            (false, evicted)
        }
    }

    /// Touch the byte address `addr`; returns `true` on hit.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_line(self.line_of(addr)).0
    }

    /// Whether the line containing `addr` is currently resident (does not
    /// update recency).
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let set_idx = self.set_index(line);
        let base = set_idx * self.ways;
        self.tags[base..base + self.len[set_idx] as usize].contains(&line)
    }

    /// Remove `line` (a line number, as passed to [`Self::access_line`])
    /// if resident; returns whether a copy was actually dropped. This is
    /// the coherence hook: a remote write kills local copies without
    /// touching recency of the survivors.
    pub fn invalidate_line(&mut self, line: u64) -> bool {
        let set_idx = self.set_index(line);
        let occ = self.len[set_idx] as usize;
        let base = set_idx * self.ways;
        if let Some(pos) = self.tags[base..base + occ].iter().position(|&t| t == line) {
            // Close the gap, preserving recency order of the survivors.
            self.tags.copy_within(base + pos + 1..base + occ, base + pos);
            self.len[set_idx] = occ as u32 - 1;
            true
        } else {
            false
        }
    }

    /// Invalidate everything.
    pub fn flush(&mut self) {
        self.len.fill(0);
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.len.iter().map(|&n| n as usize).sum()
    }
}

#[cfg(test)]
// `N * 64` spells out "line N times the line size"; keep it literal.
#[allow(clippy::erasing_op, clippy::identity_op)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets × 2 ways × 64-byte lines = 256 bytes.
        SetAssocCache::new(CacheConfig { size_bytes: 256, line_bytes: 64, ways: 2 })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 8 };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig { size_bytes: 256, line_bytes: 48, ways: 2 }.sets();
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        assert!(!c.access(0 * 64));
        assert!(!c.access(2 * 64));
        // Set 0 is full; touching line 0 makes line 2 the LRU.
        assert!(c.access(0 * 64));
        let (hit, evicted) = c.access_line(4);
        assert!(!hit);
        assert_eq!(evicted, Some(2));
        // Line 0 survived, line 2 did not.
        assert!(c.access(0 * 64));
        assert!(!c.access(2 * 64));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0 * 64); // set 0
        c.access(1 * 64); // set 1
        c.access(3 * 64); // set 1
        c.access(5 * 64); // set 1 — evicts line 1, set 0 untouched
        assert!(c.access(0));
        assert!(!c.access(64));
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0);
        c.access(64);
        assert_eq!(c.resident_lines(), 2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn invalidate_line_removes_only_its_target() {
        let mut c = tiny();
        c.access(0 * 64); // set 0
        c.access(2 * 64); // set 0
        assert!(c.invalidate_line(0));
        assert!(!c.invalidate_line(0), "already gone");
        assert!(!c.contains(0 * 64));
        assert!(c.contains(2 * 64), "peer line survives");
        // The freed way is reusable without evicting the survivor.
        let (_, evicted) = c.access_line(4);
        assert_eq!(evicted, None);
    }

    #[test]
    fn contains_does_not_touch_recency() {
        let mut c = tiny();
        c.access(0 * 64);
        c.access(2 * 64);
        assert!(c.contains(0 * 64));
        // `contains` must not have promoted line 0: line 0 is still LRU, so
        // filling line 4 evicts it.
        let (_, evicted) = c.access_line(4);
        assert_eq!(evicted, Some(0));
    }
}
