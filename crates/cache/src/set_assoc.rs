//! A single set-associative, write-allocate, LRU cache.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Associativity (lines per set).
    pub ways: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible into
    /// `ways`-line sets, or line size not a power of two).
    pub fn sets(&self) -> u64 {
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        let lines = self.size_bytes / self.line_bytes;
        assert_eq!(lines % self.ways as u64, 0, "capacity must divide into whole sets");
        assert!(lines >= self.ways as u64, "must have at least one set");
        lines / self.ways as u64
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags are full line addresses, so the same structure serves as a TLB by
/// passing page numbers as "line addresses" with `line_bytes = 1`.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    sets: u64,
    line_shift: u32,
    /// Per set: tags ordered most- to least-recently used.
    lru: Vec<Vec<u64>>,
}

impl SetAssocCache {
    /// Build an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        SetAssocCache {
            config,
            sets,
            line_shift: config.line_bytes.trailing_zeros(),
            lru: vec![Vec::with_capacity(config.ways as usize); sets as usize],
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Line address (tag) for a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Touch the line containing `addr`; returns `true` on hit. On miss the
    /// line is filled, evicting the LRU line of its set if necessary; the
    /// evicted line address is returned through `evicted`.
    #[inline]
    pub fn access_line(&mut self, line: u64) -> (bool, Option<u64>) {
        let set = &mut self.lru[(line % self.sets) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Move to MRU position.
            let tag = set.remove(pos);
            set.insert(0, tag);
            (true, None)
        } else {
            set.insert(0, line);
            let evicted = if set.len() > self.config.ways as usize { set.pop() } else { None };
            (false, evicted)
        }
    }

    /// Touch the byte address `addr`; returns `true` on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.access_line(self.line_of(addr)).0
    }

    /// Whether the line containing `addr` is currently resident (does not
    /// update recency).
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.lru[(line % self.sets) as usize].contains(&line)
    }

    /// Remove `line` (a line number, as passed to [`Self::access_line`])
    /// if resident; returns whether a copy was actually dropped. This is
    /// the coherence hook: a remote write kills local copies without
    /// touching recency of the survivors.
    pub fn invalidate_line(&mut self, line: u64) -> bool {
        let set = &mut self.lru[(line % self.sets) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Invalidate everything.
    pub fn flush(&mut self) {
        for set in &mut self.lru {
            set.clear();
        }
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.lru.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
// `N * 64` spells out "line N times the line size"; keep it literal.
#[allow(clippy::erasing_op, clippy::identity_op)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 2 sets × 2 ways × 64-byte lines = 256 bytes.
        SetAssocCache::new(CacheConfig { size_bytes: 256, line_bytes: 64, ways: 2 })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 8 };
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig { size_bytes: 256, line_bytes: 48, ways: 2 }.sets();
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = tiny();
        // Lines 0, 2, 4 all map to set 0 (even line numbers).
        assert!(!c.access(0 * 64));
        assert!(!c.access(2 * 64));
        // Set 0 is full; touching line 0 makes line 2 the LRU.
        assert!(c.access(0 * 64));
        let (hit, evicted) = c.access_line(4);
        assert!(!hit);
        assert_eq!(evicted, Some(2));
        // Line 0 survived, line 2 did not.
        assert!(c.access(0 * 64));
        assert!(!c.access(2 * 64));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = tiny();
        c.access(0 * 64); // set 0
        c.access(1 * 64); // set 1
        c.access(3 * 64); // set 1
        c.access(5 * 64); // set 1 — evicts line 1, set 0 untouched
        assert!(c.access(0));
        assert!(!c.access(64));
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0);
        c.access(64);
        assert_eq!(c.resident_lines(), 2);
        c.flush();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0));
    }

    #[test]
    fn invalidate_line_removes_only_its_target() {
        let mut c = tiny();
        c.access(0 * 64); // set 0
        c.access(2 * 64); // set 0
        assert!(c.invalidate_line(0));
        assert!(!c.invalidate_line(0), "already gone");
        assert!(!c.contains(0 * 64));
        assert!(c.contains(2 * 64), "peer line survives");
        // The freed way is reusable without evicting the survivor.
        let (_, evicted) = c.access_line(4);
        assert_eq!(evicted, None);
    }

    #[test]
    fn contains_does_not_touch_recency() {
        let mut c = tiny();
        c.access(0 * 64);
        c.access(2 * 64);
        assert!(c.contains(0 * 64));
        // `contains` must not have promoted line 0: line 0 is still LRU, so
        // filling line 4 evicts it.
        let (_, evicted) = c.access_line(4);
        assert_eq!(evicted, Some(0));
    }
}
