//! The pre-fast-path hierarchy walks, retained verbatim as behavioural
//! oracles.
//!
//! [`CacheHierarchy`](crate::CacheHierarchy) and
//! [`CoherentHierarchy`](crate::CoherentHierarchy) now carry precomputed
//! shift/mask geometry, a single-line fast path, and a per-thread MRU line
//! filter. Every one of those is claimed to be *exactly* equivalent to the
//! original per-access walk — same counters, same LRU contents, same
//! MESI-lite states. This module keeps that original walk alive, division
//! by division, so the differential property suite can prove the claim on
//! randomized traces instead of trusting it.
//!
//! Nothing here is reachable from the measurement pipeline; the reference
//! models exist only to be compared against.

use crate::hierarchy::{AccessStats, HierarchyConfig};
use crate::set_assoc::{CacheConfig, SetAssocCache};
use crate::{CoherenceStats, LineState, ThreadAccessStats};
use std::collections::HashMap;

/// The original single-threaded three-level walk: one division per level
/// per access, no fast paths. Mirrors the public API of
/// [`CacheHierarchy`](crate::CacheHierarchy) that the tests need.
#[derive(Debug)]
pub struct ReferenceHierarchy {
    config: HierarchyConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    tlb: SetAssocCache,
    stats: AccessStats,
}

impl ReferenceHierarchy {
    /// Build an empty reference hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        ReferenceHierarchy {
            config,
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            l3: SetAssocCache::new(config.l3),
            tlb: SetAssocCache::new(CacheConfig {
                size_bytes: (config.tlb_entries as u64).max(config.tlb_ways as u64),
                line_bytes: 1,
                ways: config.tlb_ways,
            }),
            stats: AccessStats::default(),
        }
    }

    /// Accumulated counters.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Reset counters, keep contents.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    /// The original `access`: division-based page/line splitting, inclusive
    /// range loop, no filter.
    pub fn access(&mut self, addr: u64, width: u8, store: bool) {
        if store {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        let first_page = addr / self.config.page_bytes;
        let last_page = (addr + width.max(1) as u64 - 1) / self.config.page_bytes;
        for page in first_page..=last_page {
            if !self.tlb.access(page) {
                self.stats.tlb_misses += 1;
            }
        }
        let line_bytes = self.config.l1.line_bytes;
        let first_line = addr / line_bytes;
        let last_line = (addr + width.max(1) as u64 - 1) / line_bytes;
        for line in first_line..=last_line {
            self.access_one_line(line * line_bytes);
        }
    }

    fn access_one_line(&mut self, line_addr: u64) {
        if self.l1.access(line_addr) {
            self.stats.l1_hits += 1;
            return;
        }
        self.stats.l1_misses += 1;
        let line_bytes = self.config.l1.line_bytes;
        let l2_hit = self.l2.access(line_addr);
        if !l2_hit {
            self.stats.l2_misses += 1;
            if !self.l3.access(line_addr) {
                self.stats.l3_misses += 1;
            }
        }
        if self.config.adjacent_line_prefetch {
            for neighbour in
                [line_addr.wrapping_add(line_bytes), line_addr.wrapping_sub(line_bytes)]
            {
                self.l2.access(neighbour);
                self.l3.access(neighbour);
            }
        }
    }

    /// Flush all levels and the TLB (counters are preserved).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.l3.flush();
        self.tlb.flush();
    }
}

/// One logical thread's private structures in the reference coherent
/// model, mirroring the original `ThreadDomain`.
#[derive(Debug)]
struct RefThreadDomain {
    l1: SetAssocCache,
    tlb: SetAssocCache,
    states: HashMap<u64, LineState>,
    stats: AccessStats,
}

impl RefThreadDomain {
    fn new(config: &HierarchyConfig) -> Self {
        RefThreadDomain {
            l1: SetAssocCache::new(config.l1),
            tlb: SetAssocCache::new(CacheConfig {
                size_bytes: (config.tlb_entries as u64).max(config.tlb_ways as u64),
                line_bytes: 1,
                ways: config.tlb_ways,
            }),
            states: HashMap::new(),
            stats: AccessStats::default(),
        }
    }

    fn invalidate(&mut self, line: u64) -> bool {
        if self.l1.invalidate_line(line) {
            self.states.remove(&line);
            true
        } else {
            false
        }
    }
}

/// The original thread-aware MESI-lite walk, per-access and
/// division-based: the oracle the fast-path
/// [`CoherentHierarchy`](crate::CoherentHierarchy) is differentially
/// tested against, line state by line state.
#[derive(Debug)]
pub struct ReferenceCoherentHierarchy {
    config: HierarchyConfig,
    l2: SetAssocCache,
    l3: SetAssocCache,
    threads: Vec<RefThreadDomain>,
    current: usize,
    stats: AccessStats,
    coherence: CoherenceStats,
}

impl ReferenceCoherentHierarchy {
    /// Build an empty reference hierarchy on logical thread 0.
    pub fn new(config: HierarchyConfig) -> Self {
        ReferenceCoherentHierarchy {
            config,
            l2: SetAssocCache::new(config.l2),
            l3: SetAssocCache::new(config.l3),
            threads: vec![RefThreadDomain::new(&config)],
            current: 0,
            stats: AccessStats::default(),
            coherence: CoherenceStats::default(),
        }
    }

    /// Route subsequent accesses through `thread`'s private L1D/dTLB.
    pub fn set_thread(&mut self, thread: u16) {
        let t = thread as usize;
        while self.threads.len() <= t {
            self.threads.push(RefThreadDomain::new(&self.config));
        }
        self.current = t;
    }

    /// Aggregate counters.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Coherence-traffic counters.
    pub fn coherence(&self) -> CoherenceStats {
        self.coherence
    }

    /// Per-thread counters (active threads only, thread-id order).
    pub fn thread_stats(&self) -> Vec<ThreadAccessStats> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, d)| d.stats.loads + d.stats.stores > 0)
            .map(|(t, d)| ThreadAccessStats { thread: t as u16, stats: d.stats })
            .collect()
    }

    /// MESI-lite state of the line containing `addr` in `thread`'s L1D.
    pub fn line_state(&self, thread: u16, addr: u64) -> LineState {
        let Some(domain) = self.threads.get(thread as usize) else {
            return LineState::Invalid;
        };
        let line = self.l2.line_of(addr);
        domain.states.get(&line).copied().unwrap_or(LineState::Invalid)
    }

    /// The original coherent `access`, division-based and filter-free.
    pub fn access(&mut self, addr: u64, width: u8, store: bool) {
        if store {
            self.stats.stores += 1;
            self.threads[self.current].stats.stores += 1;
        } else {
            self.stats.loads += 1;
            self.threads[self.current].stats.loads += 1;
        }
        let first_page = addr / self.config.page_bytes;
        let last_page = (addr + width.max(1) as u64 - 1) / self.config.page_bytes;
        for page in first_page..=last_page {
            if !self.threads[self.current].tlb.access(page) {
                self.stats.tlb_misses += 1;
                self.threads[self.current].stats.tlb_misses += 1;
            }
        }
        let line_bytes = self.config.l1.line_bytes;
        let first_line = addr / line_bytes;
        let last_line = (addr + width.max(1) as u64 - 1) / line_bytes;
        for line in first_line..=last_line {
            self.access_one_line(line * line_bytes, store);
        }
    }

    fn access_one_line(&mut self, line_addr: u64, store: bool) {
        let t = self.current;
        let line = self.threads[t].l1.line_of(line_addr);
        let (hit, evicted) = self.threads[t].l1.access_line(line);
        if let Some(victim) = evicted {
            self.threads[t].states.remove(&victim);
        }
        if hit {
            self.stats.l1_hits += 1;
            self.threads[t].stats.l1_hits += 1;
            if store {
                self.write_hit(t, line);
            }
            return;
        }
        self.stats.l1_misses += 1;
        self.threads[t].stats.l1_misses += 1;
        let mut remote_copies = false;
        for u in 0..self.threads.len() {
            if u == t {
                continue;
            }
            if store {
                if self.threads[u].invalidate(line) {
                    remote_copies = true;
                    self.coherence.invalidations += 1;
                }
            } else if self.threads[u].states.contains_key(&line) {
                remote_copies = true;
                self.threads[u].states.insert(line, LineState::Shared);
            }
        }
        if remote_copies {
            self.coherence.remote_fills += 1;
        }
        let state = match (store, remote_copies) {
            (true, _) => LineState::Modified,
            (false, true) => LineState::Shared,
            (false, false) => LineState::Exclusive,
        };
        self.threads[t].states.insert(line, state);
        let line_bytes = self.config.l1.line_bytes;
        let l2_hit = self.l2.access(line_addr);
        if !l2_hit {
            self.stats.l2_misses += 1;
            self.threads[t].stats.l2_misses += 1;
            if !self.l3.access(line_addr) {
                self.stats.l3_misses += 1;
                self.threads[t].stats.l3_misses += 1;
            }
        }
        if self.config.adjacent_line_prefetch {
            for neighbour in
                [line_addr.wrapping_add(line_bytes), line_addr.wrapping_sub(line_bytes)]
            {
                self.l2.access(neighbour);
                self.l3.access(neighbour);
            }
        }
    }

    fn write_hit(&mut self, t: usize, line: u64) {
        let state = *self.threads[t].states.get(&line).expect("resident line has a state");
        match state {
            LineState::Modified => {}
            LineState::Exclusive => {
                self.threads[t].states.insert(line, LineState::Modified);
            }
            LineState::Shared => {
                self.coherence.upgrades += 1;
                for u in 0..self.threads.len() {
                    if u != t && self.threads[u].invalidate(line) {
                        self.coherence.invalidations += 1;
                    }
                }
                self.threads[t].states.insert(line, LineState::Modified);
            }
            LineState::Invalid => unreachable!("a hit line is never Invalid"),
        }
    }

    /// Flush all levels, TLBs, and states (counters are preserved).
    pub fn flush(&mut self) {
        self.l2.flush();
        self.l3.flush();
        for domain in &mut self.threads {
            domain.l1.flush();
            domain.tlb.flush();
            domain.states.clear();
        }
    }
}
