//! A latency-based timing model turning access counts into cycles.

use crate::coherent::CoherenceStats;
use crate::hierarchy::AccessStats;

/// Converts instruction and miss counts into simulated cycles.
///
/// The model is deliberately simple — an out-of-order core is approximated
/// by a base CPI plus *additional* average penalties per miss level (partial
/// overlap of misses is folded into the penalty constants). This is the
/// "time elapsed" axis of Figs. 12, 14, and 15.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Cycles per retired instruction assuming all memory hits L1.
    pub base_cpi: f64,
    /// Additional cycles for an access served from L2.
    pub l2_penalty: f64,
    /// Additional cycles for an access served from L3.
    pub l3_penalty: f64,
    /// Additional cycles for an access served from DRAM.
    pub mem_penalty: f64,
    /// Additional cycles for a dTLB miss (page walk, partially overlapped).
    pub tlb_penalty: f64,
    /// Additional cycles per cross-thread invalidation (the snoop +
    /// cache-to-cache round trip a write to a remotely-cached line costs).
    /// Only [`cycles_coherent`](Self::cycles_coherent) charges it, so
    /// single-thread timings are untouched.
    pub coherence_penalty: f64,
}

impl TimingModel {
    /// Penalties loosely modelled on Skylake-SP class hardware.
    pub fn skylake_like() -> Self {
        TimingModel {
            base_cpi: 0.5,
            l2_penalty: 10.0,
            l3_penalty: 35.0,
            mem_penalty: 180.0,
            tlb_penalty: 25.0,
            coherence_penalty: 70.0,
        }
    }

    /// Total simulated cycles for a run that retired `instructions` and
    /// produced the given access statistics.
    pub fn cycles(&self, instructions: u64, stats: &AccessStats) -> f64 {
        // An access that missed all the way to DRAM pays the *deepest*
        // penalty only (the level penalties are already cumulative averages).
        let l2_served = stats.l1_misses - stats.l2_misses;
        let l3_served = stats.l2_misses - stats.l3_misses;
        let mem_served = stats.l3_misses;
        instructions as f64 * self.base_cpi
            + l2_served as f64 * self.l2_penalty
            + l3_served as f64 * self.l3_penalty
            + mem_served as f64 * self.mem_penalty
            + stats.tlb_misses as f64 * self.tlb_penalty
    }

    /// Like [`cycles`](Self::cycles), plus the coherence cost: every
    /// cross-thread invalidation charges
    /// [`coherence_penalty`](Self::coherence_penalty) on top. With zero
    /// invalidations (any single-thread run) this is exactly `cycles` —
    /// the bit-identity the differential suite pins.
    pub fn cycles_coherent(
        &self,
        instructions: u64,
        stats: &AccessStats,
        coherence: &CoherenceStats,
    ) -> f64 {
        self.cycles(instructions, stats) + coherence.invalidations as f64 * self.coherence_penalty
    }

    /// Speedup of `optimised` over `baseline` as a fraction
    /// (`0.28` = "28% speedup", matching the paper's Figs. 14/15 axis).
    pub fn speedup(baseline_cycles: f64, optimised_cycles: f64) -> f64 {
        if optimised_cycles <= 0.0 {
            return 0.0;
        }
        baseline_cycles / optimised_cycles - 1.0
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::skylake_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(l1m: u64, l2m: u64, l3m: u64, tlbm: u64) -> AccessStats {
        AccessStats {
            l1_hits: 1000,
            l1_misses: l1m,
            l2_misses: l2m,
            l3_misses: l3m,
            tlb_misses: tlbm,
            loads: 0,
            stores: 0,
        }
    }

    #[test]
    fn all_hits_costs_base_cpi_only() {
        let t = TimingModel::skylake_like();
        let c = t.cycles(1000, &stats(0, 0, 0, 0));
        assert_eq!(c, 500.0);
    }

    #[test]
    fn deeper_misses_cost_more() {
        let t = TimingModel::skylake_like();
        let c_l2 = t.cycles(1000, &stats(10, 0, 0, 0));
        let c_l3 = t.cycles(1000, &stats(10, 10, 0, 0));
        let c_mem = t.cycles(1000, &stats(10, 10, 10, 0));
        assert!(c_l2 < c_l3 && c_l3 < c_mem);
    }

    #[test]
    fn penalties_are_exclusive_per_level() {
        let t = TimingModel {
            base_cpi: 0.0,
            l2_penalty: 1.0,
            l3_penalty: 10.0,
            mem_penalty: 100.0,
            tlb_penalty: 0.0,
            coherence_penalty: 0.0,
        };
        // 5 misses served by L2, 3 by L3, 2 by memory.
        let c = t.cycles(0, &stats(10, 5, 2, 0));
        assert_eq!(c, 5.0 * 1.0 + 3.0 * 10.0 + 2.0 * 100.0);
    }

    #[test]
    fn coherence_penalty_charges_invalidations_only() {
        let t = TimingModel::skylake_like();
        let s = stats(0, 0, 0, 0);
        let quiet = CoherenceStats::default();
        assert_eq!(t.cycles_coherent(1000, &s, &quiet), t.cycles(1000, &s));
        let noisy = CoherenceStats { invalidations: 7, upgrades: 3, remote_fills: 9 };
        assert_eq!(
            t.cycles_coherent(1000, &s, &noisy) - t.cycles(1000, &s),
            7.0 * t.coherence_penalty,
            "upgrades and remote fills are informational, not charged"
        );
    }

    #[test]
    fn speedup_sign_convention() {
        assert!((TimingModel::speedup(128.0, 100.0) - 0.28).abs() < 1e-12);
        assert!(TimingModel::speedup(100.0, 128.0) < 0.0);
        assert_eq!(TimingModel::speedup(100.0, 100.0), 0.0);
    }
}
