//! Three-level cache hierarchy plus data TLB.

use crate::set_assoc::{CacheConfig, SetAssocCache};
use crate::span::SpanUnit;

/// Geometry of the whole simulated memory subsystem.
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Unified per-core L2.
    pub l2: CacheConfig,
    /// Shared L3.
    pub l3: CacheConfig,
    /// Data-TLB entry count.
    pub tlb_entries: u32,
    /// Data-TLB associativity.
    pub tlb_ways: u32,
    /// Page size in bytes.
    pub page_bytes: u64,
    /// Adjacent-line prefetching into L2: on an L1 demand miss for line
    /// `L`, lines `L±1` are brought into L2/L3. Models the spatial
    /// prefetchers of the evaluation hardware — the reason sequential
    /// layouts are cheap and scattered ones "generat[e] … prefetching
    /// failures" (§1).
    pub adjacent_line_prefetch: bool,
}

impl HierarchyConfig {
    /// The evaluation machine from §5.1: Intel Xeon W-2195 — 32 KiB 8-way
    /// L1D, 1024 KiB 16-way L2, 25344 KiB 11-way shared L3, 64-byte lines,
    /// 64-entry 4-way dTLB over 4 KiB pages.
    pub fn xeon_w2195() -> Self {
        HierarchyConfig {
            l1: CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 8 },
            l2: CacheConfig { size_bytes: 1024 * 1024, line_bytes: 64, ways: 16 },
            l3: CacheConfig { size_bytes: 25344 * 1024, line_bytes: 64, ways: 11 },
            tlb_entries: 64,
            tlb_ways: 4,
            page_bytes: 4096,
            adjacent_line_prefetch: true,
        }
    }

    /// A scaled-down hierarchy for fast unit tests (512 B / 4 KiB / 32 KiB),
    /// with prefetching off so tests see raw placement effects.
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1: CacheConfig { size_bytes: 512, line_bytes: 64, ways: 2 },
            l2: CacheConfig { size_bytes: 4096, line_bytes: 64, ways: 4 },
            l3: CacheConfig { size_bytes: 32 * 1024, line_bytes: 64, ways: 8 },
            tlb_entries: 8,
            tlb_ways: 2,
            page_bytes: 4096,
            adjacent_line_prefetch: false,
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::xeon_w2195()
    }
}

/// Hit/miss counters accumulated by a [`CacheHierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessStats {
    /// Demand accesses that hit in L1D.
    pub l1_hits: u64,
    /// Demand accesses that missed L1D.
    pub l1_misses: u64,
    /// L1 misses that also missed L2.
    pub l2_misses: u64,
    /// L2 misses that also missed L3 (memory accesses).
    pub l3_misses: u64,
    /// dTLB misses.
    pub tlb_misses: u64,
    /// Load accesses observed.
    pub loads: u64,
    /// Store accesses observed.
    pub stores: u64,
}

impl AccessStats {
    /// Total demand accesses (loads + stores, after line splitting).
    pub fn accesses(&self) -> u64 {
        self.l1_hits + self.l1_misses
    }

    /// L1D miss rate in `[0, 1]`; 0 when no accesses were made.
    pub fn l1_miss_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.l1_misses as f64 / total as f64
        }
    }
}

/// The simulated memory subsystem: L1D → L2 → L3 with a dTLB on the side.
///
/// All levels fill on miss (mostly-inclusive, as on the evaluation part's
/// generation of Intel hardware) and replace true-LRU. Accesses that
/// straddle a line boundary are split and counted per line touched, which is
/// how a real L1D sees them.
#[derive(Debug)]
pub struct CacheHierarchy {
    config: HierarchyConfig,
    l1: SetAssocCache,
    l2: SetAssocCache,
    l3: SetAssocCache,
    tlb: SetAssocCache,
    stats: AccessStats,
    /// Precomputed shift/mask divider for L1 lines.
    line_unit: SpanUnit,
    /// Precomputed divider for pages (falls back to division when the
    /// page size is not a power of two — it is never asserted to be).
    page_unit: SpanUnit,
    /// MRU filter: the `(line, page)` the previous access ended on. A
    /// repeat access confined to that line and page is a guaranteed
    /// L1+TLB hit whose MRU promotion is a no-op, so the whole walk can
    /// be skipped; see the invalidation rules in DESIGN.md §14.
    filter: Option<(u64, u64)>,
}

impl CacheHierarchy {
    /// Build an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Self {
        CacheHierarchy {
            config,
            l1: SetAssocCache::new(config.l1),
            l2: SetAssocCache::new(config.l2),
            l3: SetAssocCache::new(config.l3),
            tlb: SetAssocCache::new(CacheConfig {
                size_bytes: (config.tlb_entries as u64).max(config.tlb_ways as u64),
                line_bytes: 1,
                ways: config.tlb_ways,
            }),
            stats: AccessStats::default(),
            line_unit: SpanUnit::new(config.l1.line_bytes),
            page_unit: SpanUnit::new(config.page_bytes),
            filter: None,
        }
    }

    /// The geometry this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Accumulated counters.
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Reset the counters but keep cache contents (used to exclude warm-up
    /// phases from measurement).
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
    }

    /// Simulate a data access of `width` bytes at `addr`.
    #[inline]
    pub fn access(&mut self, addr: u64, width: u8, store: bool) {
        if store {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
        let lines = self.line_unit.lines_touched(addr, width);
        let pages = self.page_unit.lines_touched(addr, width);
        // MRU filter: confined to the line and page the previous access
        // ended on, this is an L1 hit and a TLB hit whose MRU promotions
        // are both no-ops — only the counter moves.
        if lines.is_single() && pages.is_single() && self.filter == Some((lines.first, pages.first))
        {
            self.stats.l1_hits += 1;
            return;
        }
        // TLB: per page touched.
        for page in pages.first..=pages.last {
            if !self.tlb.access(page) {
                self.stats.tlb_misses += 1;
            }
        }
        // Caches: per line touched.
        for line in lines.first..=lines.last {
            self.access_one_line(line);
        }
        // The walk leaves its final line and page at the MRU position of
        // their sets — exactly what the filter asserts.
        self.filter = Some((lines.last, pages.last));
    }

    /// Stream a batch of accesses (SoA slices) through the hierarchy,
    /// identical to calling [`access`](Self::access) per element.
    pub fn access_batch(&mut self, addrs: &[u64], widths: &[u8], stores: &[bool]) {
        debug_assert!(addrs.len() == widths.len() && addrs.len() == stores.len());
        for i in 0..addrs.len() {
            self.access(addrs[i], widths[i], stores[i]);
        }
    }

    fn access_one_line(&mut self, line: u64) {
        let line_bytes = self.line_unit.bytes();
        let line_addr = line * line_bytes;
        if self.l1.access_line(line).0 {
            self.stats.l1_hits += 1;
            return;
        }
        self.stats.l1_misses += 1;
        let l2_hit = self.l2.access(line_addr);
        if !l2_hit {
            self.stats.l2_misses += 1;
            if !self.l3.access(line_addr) {
                self.stats.l3_misses += 1;
            }
        }
        if self.config.adjacent_line_prefetch {
            // Fill the spatial neighbours into L2/L3 without touching the
            // demand counters (an idealised, always-timely prefetcher).
            for neighbour in
                [line_addr.wrapping_add(line_bytes), line_addr.wrapping_sub(line_bytes)]
            {
                self.l2.access(neighbour);
                self.l3.access(neighbour);
            }
        }
    }

    /// Flush all levels and the TLB (counters are preserved).
    pub fn flush(&mut self) {
        self.l1.flush();
        self.l2.flush();
        self.l3.flush();
        self.tlb.flush();
        self.filter = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_progression_through_levels() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        h.access(0, 8, false);
        assert_eq!(h.stats().l1_misses, 1);
        assert_eq!(h.stats().l2_misses, 1);
        assert_eq!(h.stats().l3_misses, 1);
        h.access(8, 8, false); // same line
        assert_eq!(h.stats().l1_hits, 1);
        assert_eq!(h.stats().l1_misses, 1);
    }

    #[test]
    fn l2_catches_l1_capacity_victims() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        // Touch 16 distinct lines: L1 (512B = 8 lines) overflows, L2 holds all.
        for i in 0..16u64 {
            h.access(i * 64, 8, false);
        }
        h.reset_stats();
        for i in 0..16u64 {
            h.access(i * 64, 8, false);
        }
        let s = h.stats();
        assert!(s.l1_misses > 0, "working set exceeds L1");
        assert_eq!(s.l2_misses, 0, "working set fits in L2");
    }

    #[test]
    fn line_straddling_access_counts_both_lines() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        h.access(60, 8, true); // crosses the 64-byte boundary
        assert_eq!(h.stats().l1_misses, 2);
        assert_eq!(h.stats().stores, 1);
    }

    #[test]
    fn tlb_misses_per_new_page() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        h.access(0, 8, false);
        h.access(4096, 8, false);
        h.access(0, 8, false); // still resident (8 entries)
        assert_eq!(h.stats().tlb_misses, 2);
    }

    #[test]
    fn dense_layout_beats_scattered_layout() {
        // The core premise of the paper, as seen by the simulator: the same
        // logical objects packed densely generate fewer misses than spread
        // across lines.
        let cfg = HierarchyConfig::tiny();
        let mut dense = CacheHierarchy::new(cfg);
        let mut scattered = CacheHierarchy::new(cfg);
        for round in 0..10 {
            let _ = round;
            for i in 0..16u64 {
                dense.access(i * 16, 8, false); // 4 objects per line: 4 lines total
                scattered.access(i * 256, 8, false); // 1 object per 4 lines: 16 lines
            }
        }
        assert!(dense.stats().l1_misses < scattered.stats().l1_misses / 4);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        h.access(0, 8, false);
        h.reset_stats();
        h.access(0, 8, false);
        assert_eq!(h.stats().l1_hits, 1);
        assert_eq!(h.stats().l1_misses, 0);
    }

    #[test]
    fn xeon_geometry_is_consistent() {
        // Constructing the full-size hierarchy exercises the geometry
        // assertions (25344 KiB / 64 B / 11 ways divides evenly).
        let h = CacheHierarchy::new(HierarchyConfig::xeon_w2195());
        assert_eq!(h.config().l1.sets(), 64);
        assert_eq!(h.config().l3.ways, 11);
    }

    #[test]
    fn miss_rate_bounds() {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny());
        assert_eq!(h.stats().l1_miss_rate(), 0.0);
        for i in 0..100u64 {
            h.access(i * 8, 8, i % 2 == 0);
        }
        let r = h.stats().l1_miss_rate();
        assert!(r > 0.0 && r <= 1.0);
        assert_eq!(h.stats().loads + h.stats().stores, 100);
    }
}
