//! Memory-hierarchy simulation for the HALO reproduction.
//!
//! The paper evaluates on an Intel Xeon W-2195 (32 KiB per-core L1D,
//! 1024 KiB per-core L2, 25344 KiB shared L3) and reports two metrics per
//! configuration: **L1 data-cache misses** and **time elapsed**. This crate
//! provides the stand-in for that hardware: set-associative LRU caches, a
//! data TLB, a three-level hierarchy, and a simple latency-based timing
//! model that converts access counts into simulated cycles.
//!
//! Absolute numbers will not match a real Xeon — the reproduction targets
//! the *shape* of the results (who wins and by roughly what factor), as
//! explained in `DESIGN.md`.
//!
//! # Example
//!
//! ```
//! use halo_cache::{CacheHierarchy, HierarchyConfig};
//!
//! let mut h = CacheHierarchy::new(HierarchyConfig::xeon_w2195());
//! h.access(0x1000, 8, false);
//! h.access(0x1000, 8, false); // same line: L1 hit
//! assert_eq!(h.stats().l1_misses, 1);
//! assert_eq!(h.stats().l1_hits, 1);
//! ```

mod coherent;
mod hierarchy;
mod reference;
mod set_assoc;
mod span;
mod timing;

pub use coherent::{CoherenceStats, CoherentHierarchy, LineState, ThreadAccessStats};
pub use hierarchy::{AccessStats, CacheHierarchy, HierarchyConfig};
pub use reference::{ReferenceCoherentHierarchy, ReferenceHierarchy};
pub use set_assoc::{CacheConfig, SetAssocCache};
pub use span::{Span, SpanUnit};
pub use timing::TimingModel;
