//! Shared line/page span computation for the hierarchy hot loops.
//!
//! Both [`CacheHierarchy`](crate::CacheHierarchy) and
//! [`CoherentHierarchy`](crate::CoherentHierarchy) split every access into
//! the cache lines (and pages) it touches. Before this module each of them
//! spelled the split out inline as
//! `(addr + width.max(1) - 1) / line_bytes`, paying a 64-bit division per
//! access per level. [`SpanUnit`] hoists that computation into one place
//! and replaces the division with a shift whenever the unit size is a
//! power of two (always true for cache lines — [`CacheConfig::sets`]
//! asserts it — and true for every realistic page size; non-power-of-two
//! units fall back to the division, bit-for-bit identical).
//!
//! [`CacheConfig::sets`]: crate::CacheConfig::sets

/// The half-open unit count is never needed: a span is the *inclusive*
/// range `[first, last]` of line (or page) numbers an access touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Unit number containing the first byte of the access.
    pub first: u64,
    /// Unit number containing the last byte of the access.
    pub last: u64,
}

impl Span {
    /// Whether the access stayed inside one line/page — the common case
    /// the hierarchies fast-path.
    #[inline]
    pub fn is_single(self) -> bool {
        self.first == self.last
    }
}

/// A precomputed divider for one span unit (a line size or a page size),
/// built once per hierarchy instead of re-deriving per access.
#[derive(Debug, Clone, Copy)]
pub struct SpanUnit {
    bytes: u64,
    /// `Some(log2(bytes))` when `bytes` is a power of two; `None` keeps
    /// the exact division fallback for irregular unit sizes.
    shift: Option<u32>,
}

impl SpanUnit {
    /// Build a divider for `bytes`-sized units.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn new(bytes: u64) -> Self {
        assert!(bytes > 0, "span unit must be non-zero");
        SpanUnit { bytes, shift: bytes.is_power_of_two().then(|| bytes.trailing_zeros()) }
    }

    /// Unit size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        self.bytes
    }

    /// Unit number containing byte address `addr`.
    #[inline]
    pub fn index_of(self, addr: u64) -> u64 {
        match self.shift {
            Some(s) => addr >> s,
            None => addr / self.bytes,
        }
    }

    /// The units a `width`-byte access at `addr` touches. Zero-width
    /// accesses are clamped to one byte, exactly as the hierarchies always
    /// did (`width.max(1)`).
    #[inline]
    pub fn lines_touched(self, addr: u64, width: u8) -> Span {
        let last_byte = addr + (width.max(1) as u64 - 1);
        Span { first: self.index_of(addr), last: self.index_of(last_byte) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_width_touches_exactly_one_unit() {
        // width 0 is clamped to 1 byte — the pre-helper hierarchies'
        // `width.max(1)` behaviour.
        let u = SpanUnit::new(64);
        assert_eq!(u.lines_touched(0, 0), Span { first: 0, last: 0 });
        assert_eq!(u.lines_touched(63, 0), Span { first: 0, last: 0 });
        assert_eq!(u.lines_touched(64, 0), Span { first: 1, last: 1 });
        assert!(u.lines_touched(63, 0).is_single());
    }

    #[test]
    fn straddling_access_spans_both_units() {
        let u = SpanUnit::new(64);
        // 8 bytes at 60: bytes 60..=67 touch lines 0 and 1.
        let s = u.lines_touched(60, 8);
        assert_eq!(s, Span { first: 0, last: 1 });
        assert!(!s.is_single());
        // 8 bytes at 56: bytes 56..=63 stay in line 0.
        assert!(u.lines_touched(56, 8).is_single());
        // One byte exactly on the boundary belongs to the next line.
        assert_eq!(u.lines_touched(64, 1), Span { first: 1, last: 1 });
    }

    #[test]
    fn max_width_access_spans_at_most_ceil_plus_one_units() {
        // The widest possible access (u8::MAX bytes) across 64-byte lines
        // touches at most ceil(255/64)+1 = 5 lines, and exactly 4 when
        // aligned.
        let u = SpanUnit::new(64);
        let aligned = u.lines_touched(0, u8::MAX);
        assert_eq!(aligned, Span { first: 0, last: 3 }); // bytes 0..=254
        let misaligned = u.lines_touched(63, u8::MAX);
        assert_eq!(misaligned, Span { first: 0, last: 4 }); // bytes 63..=317
    }

    #[test]
    fn non_power_of_two_units_divide_exactly() {
        // Page sizes are not asserted to be powers of two anywhere, so the
        // fallback division must agree with the shift path's semantics.
        let u = SpanUnit::new(3000);
        assert_eq!(u.index_of(2999), 0);
        assert_eq!(u.index_of(3000), 1);
        assert_eq!(u.lines_touched(2998, 8), Span { first: 0, last: 1 });
        // And a power-of-two unit built the same way uses the shift.
        let p = SpanUnit::new(4096);
        assert_eq!(p.index_of(4095), 0);
        assert_eq!(p.index_of(4096), 1);
        assert_eq!(p.lines_touched(4090, 16), Span { first: 0, last: 1 });
    }

    #[test]
    fn shift_and_division_agree_across_a_sweep() {
        let shifted = SpanUnit::new(64);
        for addr in 0..1024u64 {
            for width in [0u8, 1, 7, 8, 63, 64, 65, 255] {
                let last_byte = addr + width.max(1) as u64 - 1;
                let expect = Span { first: addr / 64, last: last_byte / 64 };
                assert_eq!(shifted.lines_touched(addr, width), expect);
            }
        }
    }
}
