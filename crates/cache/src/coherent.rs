//! Thread-aware cache hierarchy with a MESI-lite coherence cost model.
//!
//! [`CacheHierarchy`](crate::CacheHierarchy) is oblivious to which logical
//! thread issued an access, so a sharded allocator's true/false-sharing
//! behaviour is invisible to it. [`CoherentHierarchy`] gives every logical
//! thread (announced via `Op::ThreadSwitch` upstream) its own private L1D
//! and dTLB over the *shared* L2/L3, and tracks a per-line MESI-lite state
//! in each private L1:
//!
//! * a demand fill is **Exclusive** when no other thread holds the line,
//!   **Shared** otherwise (a read miss also downgrades remote
//!   Modified/Exclusive copies to Shared);
//! * a write hit on Exclusive upgrades silently to **Modified**;
//! * a write hit on Shared is a bus upgrade: it counts one `upgrade`,
//!   invalidates every remote copy (one `invalidation` each), and leaves
//!   the writer Modified;
//! * a write miss invalidates every remote copy before filling Modified.
//!
//! Invalidations are the cycle-model hook: each one charges
//! [`TimingModel::coherence_penalty`](crate::TimingModel) via
//! [`TimingModel::cycles_coherent`](crate::TimingModel::cycles_coherent),
//! so false sharing (two threads writing disjoint halves of one line)
//! shows up as time, exactly the cost per-thread sharding removes.
//!
//! When only one logical thread ever runs, no line can ever be Shared, so
//! every counter here stays zero and the hit/miss/TLB stream — private L1
//! over shared L2/L3 with the same adjacent-line prefetch — is
//! *bit-identical* to [`CacheHierarchy`](crate::CacheHierarchy); the
//! differential property suite pins that identity.

use crate::hierarchy::{AccessStats, HierarchyConfig};
use crate::set_assoc::{CacheConfig, SetAssocCache};
use std::collections::HashMap;

/// MESI-lite state of a line in one thread's private L1D.
///
/// The model folds the snooping protocol's transient states away: a line
/// is either absent ([`Invalid`](LineState::Invalid)) or resident in
/// exactly one of the three stable states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Not resident in that thread's L1D.
    Invalid,
    /// Resident, clean, and possibly replicated in other threads' L1Ds.
    Shared,
    /// Resident, clean, and the only L1 copy.
    Exclusive,
    /// Resident, written, and the only L1 copy.
    Modified,
}

/// Coherence-traffic counters accumulated by a [`CoherentHierarchy`].
///
/// All three counters are zero for any run that only ever uses one
/// logical thread — the single-thread identity the differential tests pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Remote L1 copies invalidated by a write (the per-event cost the
    /// timing model charges [`coherence_penalty`] for).
    ///
    /// [`coherence_penalty`]: crate::TimingModel::coherence_penalty
    pub invalidations: u64,
    /// Write hits on Shared lines (bus upgrades, S→M). Informational:
    /// the invalidations they broadcast are counted separately.
    pub upgrades: u64,
    /// Demand misses filled while another thread held the line (served by
    /// cache-to-cache transfer on real hardware) — the true-sharing read
    /// traffic that sharding cannot remove.
    pub remote_fills: u64,
}

/// Per-thread slice of a [`CoherentHierarchy`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadAccessStats {
    /// Logical thread id (the `Op::ThreadSwitch` operand).
    pub thread: u16,
    /// The accesses this thread issued and how its private L1/TLB and the
    /// shared L2/L3 served them.
    pub stats: AccessStats,
}

/// One logical thread's private structures: L1D, dTLB, and the MESI-lite
/// state of each resident L1 line.
#[derive(Debug)]
struct ThreadDomain {
    l1: SetAssocCache,
    tlb: SetAssocCache,
    /// `line number → state` for lines resident in `l1` (and only those —
    /// eviction and invalidation both remove the entry).
    states: HashMap<u64, LineState>,
    stats: AccessStats,
}

impl ThreadDomain {
    fn new(config: &HierarchyConfig) -> Self {
        ThreadDomain {
            l1: SetAssocCache::new(config.l1),
            tlb: SetAssocCache::new(CacheConfig {
                size_bytes: (config.tlb_entries as u64).max(config.tlb_ways as u64),
                line_bytes: 1,
                ways: config.tlb_ways,
            }),
            states: HashMap::new(),
            stats: AccessStats::default(),
        }
    }

    /// Drop `line` from this L1 (and its state). Returns whether a copy
    /// was actually present.
    fn invalidate(&mut self, line: u64) -> bool {
        if self.l1.invalidate_line(line) {
            self.states.remove(&line);
            true
        } else {
            false
        }
    }
}

/// Per-thread L1Ds and dTLBs over a shared L2/L3, with MESI-lite
/// coherence between the L1s. See the [module docs](self).
#[derive(Debug)]
pub struct CoherentHierarchy {
    config: HierarchyConfig,
    l2: SetAssocCache,
    l3: SetAssocCache,
    /// Indexed by logical thread id; grown on demand by [`set_thread`].
    ///
    /// [`set_thread`]: CoherentHierarchy::set_thread
    threads: Vec<ThreadDomain>,
    current: usize,
    stats: AccessStats,
    coherence: CoherenceStats,
}

impl CoherentHierarchy {
    /// Build an empty hierarchy; accesses are attributed to logical
    /// thread 0 until [`set_thread`](CoherentHierarchy::set_thread) says
    /// otherwise (matching the engine, which starts on thread 0).
    pub fn new(config: HierarchyConfig) -> Self {
        CoherentHierarchy {
            config,
            l2: SetAssocCache::new(config.l2),
            l3: SetAssocCache::new(config.l3),
            threads: vec![ThreadDomain::new(&config)],
            current: 0,
            stats: AccessStats::default(),
            coherence: CoherenceStats::default(),
        }
    }

    /// The geometry this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Route subsequent accesses through logical thread `thread`'s private
    /// L1D/dTLB (the `Monitor::on_thread_switch` hook).
    pub fn set_thread(&mut self, thread: u16) {
        let t = thread as usize;
        while self.threads.len() <= t {
            self.threads.push(ThreadDomain::new(&self.config));
        }
        self.current = t;
    }

    /// Aggregate counters across all threads (field-for-field the sum of
    /// [`thread_stats`](CoherentHierarchy::thread_stats)).
    pub fn stats(&self) -> AccessStats {
        self.stats
    }

    /// Coherence-traffic counters.
    pub fn coherence(&self) -> CoherenceStats {
        self.coherence
    }

    /// Per-thread counters, for every logical thread that issued at least
    /// one access, in thread-id order.
    pub fn thread_stats(&self) -> Vec<ThreadAccessStats> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, d)| d.stats.loads + d.stats.stores > 0)
            .map(|(t, d)| ThreadAccessStats { thread: t as u16, stats: d.stats })
            .collect()
    }

    /// MESI-lite state of the line containing `addr` in `thread`'s L1D
    /// (Invalid for unknown threads) — the hook the reference-model
    /// property test compares line-for-line.
    pub fn line_state(&self, thread: u16, addr: u64) -> LineState {
        let Some(domain) = self.threads.get(thread as usize) else {
            return LineState::Invalid;
        };
        let line = self.l2.line_of(addr);
        domain.states.get(&line).copied().unwrap_or(LineState::Invalid)
    }

    /// Reset all counters but keep cache contents and states.
    pub fn reset_stats(&mut self) {
        self.stats = AccessStats::default();
        self.coherence = CoherenceStats::default();
        for domain in &mut self.threads {
            domain.stats = AccessStats::default();
        }
    }

    /// Simulate a data access of `width` bytes at `addr` on the current
    /// logical thread. Line/page splitting and the shared-level walk
    /// mirror [`CacheHierarchy::access`](crate::CacheHierarchy::access)
    /// exactly.
    pub fn access(&mut self, addr: u64, width: u8, store: bool) {
        if store {
            self.stats.stores += 1;
            self.threads[self.current].stats.stores += 1;
        } else {
            self.stats.loads += 1;
            self.threads[self.current].stats.loads += 1;
        }
        // dTLB: per page touched, on the current thread's private TLB.
        let first_page = addr / self.config.page_bytes;
        let last_page = (addr + width.max(1) as u64 - 1) / self.config.page_bytes;
        for page in first_page..=last_page {
            if !self.threads[self.current].tlb.access(page) {
                self.stats.tlb_misses += 1;
                self.threads[self.current].stats.tlb_misses += 1;
            }
        }
        // Caches: per line touched.
        let line_bytes = self.config.l1.line_bytes;
        let first_line = addr / line_bytes;
        let last_line = (addr + width.max(1) as u64 - 1) / line_bytes;
        for line in first_line..=last_line {
            self.access_one_line(line * line_bytes, store);
        }
    }

    fn access_one_line(&mut self, line_addr: u64, store: bool) {
        let t = self.current;
        let line = self.threads[t].l1.line_of(line_addr);
        let (hit, evicted) = self.threads[t].l1.access_line(line);
        if let Some(victim) = evicted {
            // A capacity/conflict victim silently loses its state; dirty
            // write-back is not modelled (the shared L2 filled the line on
            // the original demand miss, as in the plain hierarchy).
            self.threads[t].states.remove(&victim);
        }
        if hit {
            self.stats.l1_hits += 1;
            self.threads[t].stats.l1_hits += 1;
            if store {
                self.write_hit(t, line);
            }
            return;
        }
        self.stats.l1_misses += 1;
        self.threads[t].stats.l1_misses += 1;
        // Coherence probe: does any other thread hold the line? Writes
        // invalidate remote copies, reads downgrade them to Shared.
        let mut remote_copies = false;
        for u in 0..self.threads.len() {
            if u == t {
                continue;
            }
            if store {
                if self.threads[u].invalidate(line) {
                    remote_copies = true;
                    self.coherence.invalidations += 1;
                }
            } else if self.threads[u].states.contains_key(&line) {
                remote_copies = true;
                self.threads[u].states.insert(line, LineState::Shared);
            }
        }
        if remote_copies {
            self.coherence.remote_fills += 1;
        }
        let state = match (store, remote_copies) {
            (true, _) => LineState::Modified,
            (false, true) => LineState::Shared,
            (false, false) => LineState::Exclusive,
        };
        self.threads[t].states.insert(line, state);
        // Shared levels: exactly the plain hierarchy's walk (same calls,
        // same order), so single-thread L2/L3 contents stay bit-identical.
        let line_bytes = self.config.l1.line_bytes;
        let l2_hit = self.l2.access(line_addr);
        if !l2_hit {
            self.stats.l2_misses += 1;
            self.threads[t].stats.l2_misses += 1;
            if !self.l3.access(line_addr) {
                self.stats.l3_misses += 1;
                self.threads[t].stats.l3_misses += 1;
            }
        }
        if self.config.adjacent_line_prefetch {
            for neighbour in
                [line_addr.wrapping_add(line_bytes), line_addr.wrapping_sub(line_bytes)]
            {
                self.l2.access(neighbour);
                self.l3.access(neighbour);
            }
        }
    }

    /// MESI-lite write-hit transition for `line` resident in thread `t`.
    fn write_hit(&mut self, t: usize, line: u64) {
        let state = *self.threads[t].states.get(&line).expect("resident line has a state");
        match state {
            LineState::Modified => {}
            LineState::Exclusive => {
                // Silent upgrade: no bus traffic, no counters.
                self.threads[t].states.insert(line, LineState::Modified);
            }
            LineState::Shared => {
                // Bus upgrade: announce ownership, killing every remote
                // copy. Counted even when remote copies were since evicted
                // (the writer cannot know — the upgrade is still issued).
                self.coherence.upgrades += 1;
                for u in 0..self.threads.len() {
                    if u != t && self.threads[u].invalidate(line) {
                        self.coherence.invalidations += 1;
                    }
                }
                self.threads[t].states.insert(line, LineState::Modified);
            }
            LineState::Invalid => unreachable!("a hit line is never Invalid"),
        }
    }

    /// Flush all levels, TLBs, and line states (counters are preserved).
    pub fn flush(&mut self) {
        self.l2.flush();
        self.l3.flush();
        for domain in &mut self.threads {
            domain.l1.flush();
            domain.tlb.flush();
            domain.states.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CacheHierarchy;
    use crate::timing::TimingModel;

    const LINE: u64 = 64;

    fn coherent() -> CoherentHierarchy {
        CoherentHierarchy::new(HierarchyConfig::tiny())
    }

    #[test]
    fn single_thread_is_bit_identical_to_plain_hierarchy() {
        // The deterministic core of the differential property suite: same
        // access stream, never switching threads, must produce the same
        // counters and the same cycles under both models.
        for config in [
            HierarchyConfig::tiny(),
            HierarchyConfig { adjacent_line_prefetch: true, ..HierarchyConfig::tiny() },
            HierarchyConfig::xeon_w2195(),
        ] {
            let mut plain = CacheHierarchy::new(config);
            let mut coh = CoherentHierarchy::new(config);
            for i in 0..4000u64 {
                let addr = (i * 37) % 8192;
                let width = 1 + (i % 16) as u8;
                let store = i % 3 == 0;
                plain.access(addr, width, store);
                coh.access(addr, width, store);
            }
            assert_eq!(plain.stats(), coh.stats());
            assert_eq!(coh.coherence(), CoherenceStats::default());
            let t = TimingModel::skylake_like();
            assert_eq!(
                t.cycles(1_000, &plain.stats()),
                t.cycles_coherent(1_000, &coh.stats(), &coh.coherence())
            );
        }
    }

    #[test]
    fn exclusive_fill_then_silent_modified_upgrade() {
        let mut h = coherent();
        h.access(0, 8, false);
        assert_eq!(h.line_state(0, 0), LineState::Exclusive);
        h.access(0, 8, true); // E → M, no bus traffic
        assert_eq!(h.line_state(0, 0), LineState::Modified);
        assert_eq!(h.coherence(), CoherenceStats::default());
    }

    #[test]
    fn read_sharing_downgrades_to_shared() {
        let mut h = coherent();
        h.access(0, 8, true); // t0: M
        h.set_thread(1);
        h.access(0, 8, false); // t1 read miss: both S, cache-to-cache fill
        assert_eq!(h.line_state(0, 0), LineState::Shared);
        assert_eq!(h.line_state(1, 0), LineState::Shared);
        let c = h.coherence();
        assert_eq!(c.remote_fills, 1);
        assert_eq!(c.invalidations, 0);
        assert_eq!(c.upgrades, 0);
    }

    #[test]
    fn shared_write_hit_upgrades_and_invalidates() {
        let mut h = coherent();
        h.access(0, 8, false); // t0: E
        h.set_thread(1);
        h.access(0, 8, false); // both S
        h.access(0, 8, true); // t1 write *hit* on S: upgrade, kill t0's copy
        assert_eq!(h.line_state(1, 0), LineState::Modified);
        assert_eq!(h.line_state(0, 0), LineState::Invalid);
        let c = h.coherence();
        assert_eq!(c.upgrades, 1);
        assert_eq!(c.invalidations, 1);
    }

    #[test]
    fn write_miss_invalidates_every_remote_copy() {
        let mut h = coherent();
        h.access(0, 8, false); // t0: E
        h.set_thread(1);
        h.access(0, 8, false); // t0, t1: S
        h.set_thread(2);
        h.access(0, 8, true); // t2 write miss: kill both copies
        assert_eq!(h.line_state(2, 0), LineState::Modified);
        assert_eq!(h.line_state(0, 0), LineState::Invalid);
        assert_eq!(h.line_state(1, 0), LineState::Invalid);
        assert_eq!(h.coherence().invalidations, 2);
        assert_eq!(h.coherence().upgrades, 0);
    }

    #[test]
    fn false_sharing_ping_pong_on_one_split_line() {
        // Two threads write disjoint halves of one 64-byte line: every
        // store after the first misses (the other side just invalidated
        // the copy) and invalidates in turn — the pathology per-thread
        // sharded placement exists to avoid.
        let mut h = coherent();
        const ROUNDS: u64 = 10;
        for _ in 0..ROUNDS {
            h.set_thread(0);
            h.access(0, 8, true); // low half
            h.set_thread(1);
            h.access(32, 8, true); // high half, same line
        }
        let c = h.coherence();
        // Every store but the very first one invalidates the peer's copy.
        assert_eq!(c.invalidations, 2 * ROUNDS - 1);
        assert_eq!(c.upgrades, 0, "copies are always killed before a hit can upgrade");
        let s = h.stats();
        assert_eq!(s.l1_misses, 2 * ROUNDS, "each store misses: the line ping-pongs");
        // The invalidations carry a configurable cycle cost.
        let t = TimingModel::skylake_like();
        let with = t.cycles_coherent(0, &s, &c);
        let without = t.cycles(0, &s);
        assert_eq!(with - without, c.invalidations as f64 * t.coherence_penalty);
    }

    #[test]
    fn per_thread_stats_sum_to_aggregate() {
        let mut h = coherent();
        for i in 0..300u64 {
            h.set_thread((i % 3) as u16);
            h.access((i * 24) % 4096, 8, i % 4 == 0);
        }
        let per = h.thread_stats();
        assert_eq!(per.len(), 3);
        assert_eq!(per.iter().map(|t| t.thread).collect::<Vec<_>>(), vec![0, 1, 2]);
        let mut sum = AccessStats::default();
        for t in &per {
            sum.l1_hits += t.stats.l1_hits;
            sum.l1_misses += t.stats.l1_misses;
            sum.l2_misses += t.stats.l2_misses;
            sum.l3_misses += t.stats.l3_misses;
            sum.tlb_misses += t.stats.tlb_misses;
            sum.loads += t.stats.loads;
            sum.stores += t.stats.stores;
        }
        assert_eq!(sum, h.stats());
    }

    #[test]
    fn idle_threads_are_not_reported() {
        let mut h = coherent();
        h.set_thread(5); // creates domains 0..=5
        h.access(0, 8, false);
        let per = h.thread_stats();
        assert_eq!(per.len(), 1, "only threads that accessed memory appear");
        assert_eq!(per[0].thread, 5);
    }

    #[test]
    fn eviction_drops_state_without_coherence_traffic() {
        // Overflow one L1 set (tiny: 4 sets, 2 ways): the victim's state
        // entry must go with it so `line_state` reports Invalid.
        let mut h = coherent();
        h.access(0, 8, false);
        h.access(4 * LINE, 8, false); // same set (4 sets)
        h.access(8 * LINE, 8, false); // evicts line 0
        assert_eq!(h.line_state(0, 0), LineState::Invalid);
        assert_eq!(h.coherence(), CoherenceStats::default());
    }

    #[test]
    fn flush_clears_contents_and_states() {
        let mut h = coherent();
        h.access(0, 8, true);
        h.set_thread(1);
        h.access(LINE, 8, false);
        h.flush();
        assert_eq!(h.line_state(0, 0), LineState::Invalid);
        assert_eq!(h.line_state(1, LINE), LineState::Invalid);
        h.set_thread(0);
        h.access(0, 8, false);
        assert_eq!(h.stats().l1_misses, 3, "post-flush access misses again");
    }
}
