//! Thread-aware cache hierarchy with a MESI-lite coherence cost model.
//!
//! [`CacheHierarchy`](crate::CacheHierarchy) is oblivious to which logical
//! thread issued an access, so a sharded allocator's true/false-sharing
//! behaviour is invisible to it. [`CoherentHierarchy`] gives every logical
//! thread (announced via `Op::ThreadSwitch` upstream) its own private L1D
//! and dTLB over the *shared* L2/L3, and tracks a per-line MESI-lite state
//! in each private L1:
//!
//! * a demand fill is **Exclusive** when no other thread holds the line,
//!   **Shared** otherwise (a read miss also downgrades remote
//!   Modified/Exclusive copies to Shared);
//! * a write hit on Exclusive upgrades silently to **Modified**;
//! * a write hit on Shared is a bus upgrade: it counts one `upgrade`,
//!   invalidates every remote copy (one `invalidation` each), and leaves
//!   the writer Modified;
//! * a write miss invalidates every remote copy before filling Modified.
//!
//! Invalidations are the cycle-model hook: each one charges
//! [`TimingModel::coherence_penalty`](crate::TimingModel) via
//! [`TimingModel::cycles_coherent`](crate::TimingModel::cycles_coherent),
//! so false sharing (two threads writing disjoint halves of one line)
//! shows up as time, exactly the cost per-thread sharding removes.
//!
//! When only one logical thread ever runs, no line can ever be Shared, so
//! every counter here stays zero and the hit/miss/TLB stream — private L1
//! over shared L2/L3 with the same adjacent-line prefetch — is
//! *bit-identical* to [`CacheHierarchy`](crate::CacheHierarchy); the
//! differential property suite pins that identity.

use crate::hierarchy::{AccessStats, HierarchyConfig};
use crate::set_assoc::{CacheConfig, SetAssocCache};
use crate::span::SpanUnit;

/// MESI-lite state of a line in one thread's private L1D.
///
/// The model folds the snooping protocol's transient states away: a line
/// is either absent ([`Invalid`](LineState::Invalid)) or resident in
/// exactly one of the three stable states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Not resident in that thread's L1D.
    Invalid,
    /// Resident, clean, and possibly replicated in other threads' L1Ds.
    Shared,
    /// Resident, clean, and the only L1 copy.
    Exclusive,
    /// Resident, written, and the only L1 copy.
    Modified,
}

/// Coherence-traffic counters accumulated by a [`CoherentHierarchy`].
///
/// All three counters are zero for any run that only ever uses one
/// logical thread — the single-thread identity the differential tests pin.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoherenceStats {
    /// Remote L1 copies invalidated by a write (the per-event cost the
    /// timing model charges [`coherence_penalty`] for).
    ///
    /// [`coherence_penalty`]: crate::TimingModel::coherence_penalty
    pub invalidations: u64,
    /// Write hits on Shared lines (bus upgrades, S→M). Informational:
    /// the invalidations they broadcast are counted separately.
    pub upgrades: u64,
    /// Demand misses filled while another thread held the line (served by
    /// cache-to-cache transfer on real hardware) — the true-sharing read
    /// traffic that sharding cannot remove.
    pub remote_fills: u64,
}

/// Per-thread slice of a [`CoherentHierarchy`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadAccessStats {
    /// Logical thread id (the `Op::ThreadSwitch` operand).
    pub thread: u16,
    /// The accesses this thread issued and how its private L1/TLB and the
    /// shared L2/L3 served them.
    pub stats: AccessStats,
}

/// The per-thread MRU filter: the `(line, page)` the domain's previous
/// access ended on, plus whether that line is known Modified (so a store
/// hit is a state-machine no-op). Cleared by remote invalidation and
/// flush; downgraded (`writable = false`) by a remote read; never stale
/// across own accesses because every slow-path access rewrites it. The
/// full invalidation-rule argument lives in DESIGN.md §14.
#[derive(Debug, Clone, Copy)]
struct LineFilter {
    line: u64,
    page: u64,
    /// `true` only when the line is known Modified. `false` is always
    /// safe: it merely sends the next store down the exact slow path.
    writable: bool,
}

/// A private L1D whose lines carry their MESI-lite state inline: each set
/// is a `(tag, state)` list ordered MRU → LRU, replicating
/// [`SetAssocCache`]'s true-LRU maths exactly while making every state
/// lookup the same short way-scan as the hit check. This replaces the
/// former side `HashMap<u64, LineState>` — whose hashing dominated the
/// coherent hot loop — with zero-cost state access on the paths that need
/// it (write hits read the MRU slot directly; probes and invalidations
/// scan one set).
#[derive(Debug)]
struct StatefulL1 {
    sets: u64,
    set_mask: Option<u64>,
    ways: usize,
    /// Monotone access clock driving the timestamp-LRU replacement.
    clock: u64,
    /// Tag storage, `sets × ways`, empty slots holding [`Self::EMPTY`].
    /// Slots have **no positional recency meaning**: recency lives in
    /// `stamps`, so a hit is one timestamp store instead of the memmove a
    /// move-to-front list needs — element shuffling was the single
    /// largest term in the coherent hot loop.
    tags: Box<[u64]>,
    /// Last-touch clock value per slot (`0` = never touched, so empty
    /// ways are always preferred victims). Min stamp in a set is the
    /// true-LRU victim — the same line a move-to-front list would evict.
    stamps: Box<[u64]>,
    /// MESI-lite state of the line whose tag sits at the same flat index.
    /// Slots whose tag is [`Self::EMPTY`] hold garbage states that are
    /// never read (the sentinel can never match a probe).
    states: Box<[LineState]>,
    /// Flat index of the slot the last [`Self::access_line`] touched —
    /// the "MRU slot" that [`Self::mru_state`]/[`Self::set_mru_state`]
    /// address. Valid only between an access and the next mutation, which
    /// is exactly how the write-hit and fill-state-fixup paths use it
    /// (remote-domain probes in between touch *other* domains' L1s).
    mru: usize,
}

impl StatefulL1 {
    /// Sentinel tag for an empty way. Unreachable as a real tag: a line
    /// number is `addr >> line_shift` with `line_bytes ≥ 1`, and even at
    /// `line_bytes = 1` the tag `u64::MAX` would denote the last byte of
    /// the address space, which no modelled allocator hands out.
    const EMPTY: u64 = u64::MAX;

    fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways as usize;
        StatefulL1 {
            sets,
            set_mask: sets.is_power_of_two().then(|| sets - 1),
            ways,
            clock: 0,
            tags: vec![Self::EMPTY; sets as usize * ways].into_boxed_slice(),
            stamps: vec![0u64; sets as usize * ways].into_boxed_slice(),
            states: vec![LineState::Invalid; sets as usize * ways].into_boxed_slice(),
            mru: 0,
        }
    }

    #[inline]
    fn set_index(&self, line: u64) -> usize {
        (match self.set_mask {
            Some(mask) => line & mask,
            None => line % self.sets,
        }) as usize
    }

    /// Position of `line` in its set, if resident.
    #[inline]
    fn find(&self, base: usize, line: u64) -> Option<usize> {
        self.tags[base..base + self.ways].iter().position(|&t| t == line)
    }

    /// Touch `line`, filling it with `fill_state` on a miss (the LRU
    /// victim's state leaves with its tag). Returns whether it hit; on a
    /// hit the line keeps its state (read it via [`Self::mru_state`],
    /// update it via [`Self::set_mru_state`]). Victim choice is identical
    /// to [`SetAssocCache::access_line`]'s move-to-front list: the
    /// minimum stamp is the least-recently-touched resident way, with
    /// never-touched (stamp 0) empty ways preferred outright.
    #[inline]
    fn access_line(&mut self, line: u64, fill_state: LineState) -> bool {
        let set_idx = self.set_index(line);
        let base = set_idx * self.ways;
        self.clock += 1;
        if let Some(pos) = self.find(base, line) {
            self.stamps[base + pos] = self.clock;
            self.mru = base + pos;
            true
        } else {
            let set = &self.stamps[base..base + self.ways];
            let mut victim = 0;
            for i in 1..self.ways {
                if set[i] < set[victim] {
                    victim = i;
                }
            }
            self.tags[base + victim] = line;
            self.stamps[base + victim] = self.clock;
            self.states[base + victim] = fill_state;
            self.mru = base + victim;
            false
        }
    }

    /// State of the slot the immediately preceding
    /// [`Self::access_line`] hit or filled.
    #[inline]
    fn mru_state(&self) -> LineState {
        self.states[self.mru]
    }

    /// Overwrite that slot's state (the write-hit upgrade and the
    /// post-probe fill fix-up).
    #[inline]
    fn set_mru_state(&mut self, state: LineState) {
        self.states[self.mru] = state;
    }

    /// State of `line` if resident (no recency update — the remote-probe
    /// read).
    #[inline]
    fn state_of(&self, line: u64) -> Option<LineState> {
        let base = self.set_index(line) * self.ways;
        self.find(base, line).map(|pos| self.states[base + pos])
    }

    /// Downgrade `line` to Shared if resident, without touching recency
    /// (the remote read-downgrade); returns whether a copy was found.
    #[inline]
    fn share_if_resident(&mut self, line: u64) -> bool {
        let base = self.set_index(line) * self.ways;
        if let Some(pos) = self.find(base, line) {
            self.states[base + pos] = LineState::Shared;
            true
        } else {
            false
        }
    }

    /// Remove `line` if resident (recency of survivors untouched — their
    /// stamps keep their relative order); returns whether a copy was
    /// dropped.
    fn invalidate_line(&mut self, line: u64) -> bool {
        let base = self.set_index(line) * self.ways;
        if let Some(pos) = self.find(base, line) {
            self.tags[base + pos] = Self::EMPTY;
            self.stamps[base + pos] = 0;
            true
        } else {
            false
        }
    }

    fn flush(&mut self) {
        self.tags.fill(Self::EMPTY);
        self.stamps.fill(0);
    }
}

/// One logical thread's private structures: a state-carrying L1D and a
/// dTLB. (The MESI-lite states live inside [`StatefulL1`]; eviction and
/// invalidation drop them together with the tag.)
#[derive(Debug)]
struct ThreadDomain {
    l1: StatefulL1,
    tlb: SetAssocCache,
    stats: AccessStats,
    /// Last-line MRU filter; `None` until the first access.
    filter: Option<LineFilter>,
}

impl ThreadDomain {
    fn new(config: &HierarchyConfig) -> Self {
        ThreadDomain {
            l1: StatefulL1::new(config.l1),
            tlb: SetAssocCache::new(CacheConfig {
                size_bytes: (config.tlb_entries as u64).max(config.tlb_ways as u64),
                line_bytes: 1,
                ways: config.tlb_ways,
            }),
            stats: AccessStats::default(),
            filter: None,
        }
    }

    /// Drop `line` from this L1 (and its state). Returns whether a copy
    /// was actually present.
    fn invalidate(&mut self, line: u64) -> bool {
        if self.l1.invalidate_line(line) {
            // A remote write killed the copy: the filter must not keep
            // reporting hits on it.
            if matches!(self.filter, Some(f) if f.line == line) {
                self.filter = None;
            }
            true
        } else {
            false
        }
    }

    /// A remote read downgraded `line` to Shared: a filtered store would
    /// now need a bus upgrade, so drop the write permission (loads keep
    /// fast-pathing — a read hit on Shared is stateless).
    fn downgrade(&mut self, line: u64) {
        if let Some(f) = &mut self.filter {
            if f.line == line {
                f.writable = false;
            }
        }
    }
}

/// Per-thread L1Ds and dTLBs over a shared L2/L3, with MESI-lite
/// coherence between the L1s. See the [module docs](self).
#[derive(Debug)]
pub struct CoherentHierarchy {
    config: HierarchyConfig,
    l2: SetAssocCache,
    l3: SetAssocCache,
    /// Indexed by logical thread id; grown on demand by [`set_thread`].
    ///
    /// [`set_thread`]: CoherentHierarchy::set_thread
    threads: Vec<ThreadDomain>,
    current: usize,
    coherence: CoherenceStats,
    /// Precomputed shift/mask divider for L1 lines.
    line_unit: SpanUnit,
    /// Precomputed divider for pages (division fallback when the page
    /// size is not a power of two).
    page_unit: SpanUnit,
}

impl CoherentHierarchy {
    /// Build an empty hierarchy; accesses are attributed to logical
    /// thread 0 until [`set_thread`](CoherentHierarchy::set_thread) says
    /// otherwise (matching the engine, which starts on thread 0).
    pub fn new(config: HierarchyConfig) -> Self {
        CoherentHierarchy {
            config,
            l2: SetAssocCache::new(config.l2),
            l3: SetAssocCache::new(config.l3),
            threads: vec![ThreadDomain::new(&config)],
            current: 0,
            coherence: CoherenceStats::default(),
            line_unit: SpanUnit::new(config.l1.line_bytes),
            page_unit: SpanUnit::new(config.page_bytes),
        }
    }

    /// The geometry this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Route subsequent accesses through logical thread `thread`'s private
    /// L1D/dTLB (the `Monitor::on_thread_switch` hook).
    pub fn set_thread(&mut self, thread: u16) {
        let t = thread as usize;
        while self.threads.len() <= t {
            self.threads.push(ThreadDomain::new(&self.config));
        }
        self.current = t;
    }

    /// Aggregate counters across all threads (field-for-field the sum of
    /// [`thread_stats`](CoherentHierarchy::thread_stats)). Summed on
    /// demand: the hot loop maintains only the per-domain counters, so
    /// every access saves the duplicate aggregate increments.
    pub fn stats(&self) -> AccessStats {
        let mut sum = AccessStats::default();
        for d in &self.threads {
            sum.loads += d.stats.loads;
            sum.stores += d.stats.stores;
            sum.l1_hits += d.stats.l1_hits;
            sum.l1_misses += d.stats.l1_misses;
            sum.l2_misses += d.stats.l2_misses;
            sum.l3_misses += d.stats.l3_misses;
            sum.tlb_misses += d.stats.tlb_misses;
        }
        sum
    }

    /// Coherence-traffic counters.
    pub fn coherence(&self) -> CoherenceStats {
        self.coherence
    }

    /// Per-thread counters, for every logical thread that issued at least
    /// one access, in thread-id order.
    pub fn thread_stats(&self) -> Vec<ThreadAccessStats> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, d)| d.stats.loads + d.stats.stores > 0)
            .map(|(t, d)| ThreadAccessStats { thread: t as u16, stats: d.stats })
            .collect()
    }

    /// MESI-lite state of the line containing `addr` in `thread`'s L1D
    /// (Invalid for unknown threads) — the hook the reference-model
    /// property test compares line-for-line.
    pub fn line_state(&self, thread: u16, addr: u64) -> LineState {
        let Some(domain) = self.threads.get(thread as usize) else {
            return LineState::Invalid;
        };
        let line = self.l2.line_of(addr);
        domain.l1.state_of(line).unwrap_or(LineState::Invalid)
    }

    /// Reset all counters but keep cache contents and states.
    pub fn reset_stats(&mut self) {
        self.coherence = CoherenceStats::default();
        for domain in &mut self.threads {
            domain.stats = AccessStats::default();
        }
    }

    /// Simulate a data access of `width` bytes at `addr` on the current
    /// logical thread. Line/page splitting and the shared-level walk
    /// mirror [`CacheHierarchy::access`](crate::CacheHierarchy::access)
    /// exactly.
    #[inline]
    pub fn access(&mut self, addr: u64, width: u8, store: bool) {
        let lines = self.line_unit.lines_touched(addr, width);
        let pages = self.page_unit.lines_touched(addr, width);
        let t = self.current;
        let domain = &mut self.threads[t];
        if store {
            domain.stats.stores += 1;
        } else {
            domain.stats.loads += 1;
        }
        // Single-line, single-page accesses (the overwhelmingly common
        // shape) run fused under one `domain` borrow: filter check, TLB,
        // L1, write-hit transition, and the filter update, with no loop
        // setup and no repeated `threads[t]` re-indexing.
        if lines.is_single() && pages.is_single() {
            // MRU filter: confined to the line and page this thread's
            // previous access ended on, the access is an L1+TLB hit whose
            // MRU promotions are no-ops, and — for stores — a
            // Modified-state write hit, which is a MESI no-op too. Remote
            // invalidations clear the filter and remote reads drop its
            // write permission, so the state machine stays exact.
            if let Some(f) = domain.filter {
                if f.line == lines.first && f.page == pages.first && (!store || f.writable) {
                    domain.stats.l1_hits += 1;
                    return;
                }
            }
            if !domain.tlb.access(pages.first) {
                domain.stats.tlb_misses += 1;
            }
            // The access leaves its line and page MRU in their sets; a
            // store leaves the line Modified (so the filter may fast-path
            // the next store), a load's final state is not re-checked
            // (`writable: false` is always safe — the next store simply
            // takes the exact slow path).
            let filter = Some(LineFilter { line: lines.first, page: pages.first, writable: store });
            if domain.l1.access_line(lines.first, LineState::Exclusive) {
                domain.stats.l1_hits += 1;
                if store {
                    // MESI-lite write-hit transition for the line the hit
                    // just stamped MRU. (A hit line is never Invalid.)
                    match domain.l1.mru_state() {
                        LineState::Modified => domain.filter = filter,
                        LineState::Shared => {
                            self.shared_write_upgrade(t, lines.first);
                            self.threads[t].filter = filter;
                        }
                        // Silent E→M upgrade: no bus traffic, no counters.
                        _ => {
                            domain.l1.set_mru_state(LineState::Modified);
                            domain.filter = filter;
                        }
                    }
                } else {
                    domain.filter = filter;
                }
            } else {
                domain.stats.l1_misses += 1;
                self.miss_line(t, lines.first, store);
                self.threads[t].filter = filter;
            }
            return;
        }
        // General path: line-straddling or page-straddling accesses.
        // dTLB: per page touched, on the current thread's private TLB.
        for page in pages.first..=pages.last {
            if !domain.tlb.access(page) {
                domain.stats.tlb_misses += 1;
            }
        }
        // Caches: per line touched.
        for line in lines.first..=lines.last {
            self.access_one_line(line, store);
        }
        // The walk leaves its final line and page MRU in their sets. A
        // store leaves every touched line Modified; a load's final state
        // is not tracked (false is always safe — the next store simply
        // takes the exact slow path).
        self.threads[t].filter =
            Some(LineFilter { line: lines.last, page: pages.last, writable: store });
    }

    /// Stream a batch of accesses (SoA slices, as flushed by the engine's
    /// batched monitor path) through the hierarchy on the current logical
    /// thread — identical, access for access, to calling
    /// [`access`](Self::access) per element, but monomorphised as one
    /// tight loop over the arrays.
    pub fn access_batch(&mut self, addrs: &[u64], widths: &[u8], stores: &[bool]) {
        debug_assert!(addrs.len() == widths.len() && addrs.len() == stores.len());
        for i in 0..addrs.len() {
            self.access(addrs[i], widths[i], stores[i]);
        }
    }

    #[inline]
    fn access_one_line(&mut self, line: u64, store: bool) {
        let t = self.current;
        // A miss fills with a provisional state, corrected after the
        // probe in `miss_line` (the fresh fill sits at the MRU slot, so
        // the fix-up is O(1)). A capacity/conflict victim silently takes
        // its state with it; dirty write-back is not modelled (the shared
        // L2 filled the line on the original demand miss, as in the
        // plain hierarchy). The single `domain` borrow keeps the ~93%
        // hit path free of repeated `threads[t]` re-indexing.
        let domain = &mut self.threads[t];
        if domain.l1.access_line(line, LineState::Exclusive) {
            domain.stats.l1_hits += 1;
            if store {
                // MESI-lite write-hit transition for the line the hit
                // just stamped MRU.
                match domain.l1.mru_state() {
                    LineState::Modified => {}
                    LineState::Shared => self.shared_write_upgrade(t, line),
                    // Silent E→M upgrade: no bus traffic, no counters.
                    // (A hit line is never Invalid.)
                    _ => domain.l1.set_mru_state(LineState::Modified),
                }
            }
            return;
        }
        domain.stats.l1_misses += 1;
        self.miss_line(t, line, store);
    }

    /// The L1-miss slow path: coherence probe, fill-state fix-up, and the
    /// shared L2/L3 walk.
    fn miss_line(&mut self, t: usize, line: u64, store: bool) {
        // Coherence probe: does any other thread hold the line? Writes
        // invalidate remote copies, reads downgrade them to Shared.
        let mut remote_copies = false;
        for u in 0..self.threads.len() {
            if u == t {
                continue;
            }
            if store {
                if self.threads[u].invalidate(line) {
                    remote_copies = true;
                    self.coherence.invalidations += 1;
                }
            } else if self.threads[u].l1.share_if_resident(line) {
                remote_copies = true;
                self.threads[u].downgrade(line);
            }
        }
        if remote_copies {
            self.coherence.remote_fills += 1;
        }
        let state = match (store, remote_copies) {
            (true, _) => LineState::Modified,
            (false, true) => LineState::Shared,
            (false, false) => LineState::Exclusive,
        };
        self.threads[t].l1.set_mru_state(state);
        // Shared levels: exactly the plain hierarchy's walk (same calls,
        // same order), so single-thread L2/L3 contents stay bit-identical.
        let line_bytes = self.line_unit.bytes();
        let line_addr = line * line_bytes;
        let l2_hit = self.l2.access(line_addr);
        if !l2_hit {
            self.threads[t].stats.l2_misses += 1;
            if !self.l3.access(line_addr) {
                self.threads[t].stats.l3_misses += 1;
            }
        }
        if self.config.adjacent_line_prefetch {
            for neighbour in
                [line_addr.wrapping_add(line_bytes), line_addr.wrapping_sub(line_bytes)]
            {
                self.l2.access(neighbour);
                self.l3.access(neighbour);
            }
        }
    }

    /// Write hit on a Shared line: a bus upgrade announcing ownership,
    /// killing every remote copy. Counted even when remote copies were
    /// since evicted (the writer cannot know — the upgrade is still
    /// issued).
    fn shared_write_upgrade(&mut self, t: usize, line: u64) {
        self.coherence.upgrades += 1;
        for u in 0..self.threads.len() {
            if u != t && self.threads[u].invalidate(line) {
                self.coherence.invalidations += 1;
            }
        }
        self.threads[t].l1.set_mru_state(LineState::Modified);
    }

    /// Flush all levels, TLBs, and line states (counters are preserved).
    pub fn flush(&mut self) {
        self.l2.flush();
        self.l3.flush();
        for domain in &mut self.threads {
            domain.l1.flush();
            domain.tlb.flush();
            domain.filter = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::CacheHierarchy;
    use crate::timing::TimingModel;

    const LINE: u64 = 64;

    fn coherent() -> CoherentHierarchy {
        CoherentHierarchy::new(HierarchyConfig::tiny())
    }

    #[test]
    fn single_thread_is_bit_identical_to_plain_hierarchy() {
        // The deterministic core of the differential property suite: same
        // access stream, never switching threads, must produce the same
        // counters and the same cycles under both models.
        for config in [
            HierarchyConfig::tiny(),
            HierarchyConfig { adjacent_line_prefetch: true, ..HierarchyConfig::tiny() },
            HierarchyConfig::xeon_w2195(),
        ] {
            let mut plain = CacheHierarchy::new(config);
            let mut coh = CoherentHierarchy::new(config);
            for i in 0..4000u64 {
                let addr = (i * 37) % 8192;
                let width = 1 + (i % 16) as u8;
                let store = i % 3 == 0;
                plain.access(addr, width, store);
                coh.access(addr, width, store);
            }
            assert_eq!(plain.stats(), coh.stats());
            assert_eq!(coh.coherence(), CoherenceStats::default());
            let t = TimingModel::skylake_like();
            assert_eq!(
                t.cycles(1_000, &plain.stats()),
                t.cycles_coherent(1_000, &coh.stats(), &coh.coherence())
            );
        }
    }

    #[test]
    fn exclusive_fill_then_silent_modified_upgrade() {
        let mut h = coherent();
        h.access(0, 8, false);
        assert_eq!(h.line_state(0, 0), LineState::Exclusive);
        h.access(0, 8, true); // E → M, no bus traffic
        assert_eq!(h.line_state(0, 0), LineState::Modified);
        assert_eq!(h.coherence(), CoherenceStats::default());
    }

    #[test]
    fn read_sharing_downgrades_to_shared() {
        let mut h = coherent();
        h.access(0, 8, true); // t0: M
        h.set_thread(1);
        h.access(0, 8, false); // t1 read miss: both S, cache-to-cache fill
        assert_eq!(h.line_state(0, 0), LineState::Shared);
        assert_eq!(h.line_state(1, 0), LineState::Shared);
        let c = h.coherence();
        assert_eq!(c.remote_fills, 1);
        assert_eq!(c.invalidations, 0);
        assert_eq!(c.upgrades, 0);
    }

    #[test]
    fn shared_write_hit_upgrades_and_invalidates() {
        let mut h = coherent();
        h.access(0, 8, false); // t0: E
        h.set_thread(1);
        h.access(0, 8, false); // both S
        h.access(0, 8, true); // t1 write *hit* on S: upgrade, kill t0's copy
        assert_eq!(h.line_state(1, 0), LineState::Modified);
        assert_eq!(h.line_state(0, 0), LineState::Invalid);
        let c = h.coherence();
        assert_eq!(c.upgrades, 1);
        assert_eq!(c.invalidations, 1);
    }

    #[test]
    fn write_miss_invalidates_every_remote_copy() {
        let mut h = coherent();
        h.access(0, 8, false); // t0: E
        h.set_thread(1);
        h.access(0, 8, false); // t0, t1: S
        h.set_thread(2);
        h.access(0, 8, true); // t2 write miss: kill both copies
        assert_eq!(h.line_state(2, 0), LineState::Modified);
        assert_eq!(h.line_state(0, 0), LineState::Invalid);
        assert_eq!(h.line_state(1, 0), LineState::Invalid);
        assert_eq!(h.coherence().invalidations, 2);
        assert_eq!(h.coherence().upgrades, 0);
    }

    #[test]
    fn false_sharing_ping_pong_on_one_split_line() {
        // Two threads write disjoint halves of one 64-byte line: every
        // store after the first misses (the other side just invalidated
        // the copy) and invalidates in turn — the pathology per-thread
        // sharded placement exists to avoid.
        let mut h = coherent();
        const ROUNDS: u64 = 10;
        for _ in 0..ROUNDS {
            h.set_thread(0);
            h.access(0, 8, true); // low half
            h.set_thread(1);
            h.access(32, 8, true); // high half, same line
        }
        let c = h.coherence();
        // Every store but the very first one invalidates the peer's copy.
        assert_eq!(c.invalidations, 2 * ROUNDS - 1);
        assert_eq!(c.upgrades, 0, "copies are always killed before a hit can upgrade");
        let s = h.stats();
        assert_eq!(s.l1_misses, 2 * ROUNDS, "each store misses: the line ping-pongs");
        // The invalidations carry a configurable cycle cost.
        let t = TimingModel::skylake_like();
        let with = t.cycles_coherent(0, &s, &c);
        let without = t.cycles(0, &s);
        assert_eq!(with - without, c.invalidations as f64 * t.coherence_penalty);
    }

    #[test]
    fn per_thread_stats_sum_to_aggregate() {
        let mut h = coherent();
        for i in 0..300u64 {
            h.set_thread((i % 3) as u16);
            h.access((i * 24) % 4096, 8, i % 4 == 0);
        }
        let per = h.thread_stats();
        assert_eq!(per.len(), 3);
        assert_eq!(per.iter().map(|t| t.thread).collect::<Vec<_>>(), vec![0, 1, 2]);
        let mut sum = AccessStats::default();
        for t in &per {
            sum.l1_hits += t.stats.l1_hits;
            sum.l1_misses += t.stats.l1_misses;
            sum.l2_misses += t.stats.l2_misses;
            sum.l3_misses += t.stats.l3_misses;
            sum.tlb_misses += t.stats.tlb_misses;
            sum.loads += t.stats.loads;
            sum.stores += t.stats.stores;
        }
        assert_eq!(sum, h.stats());
    }

    #[test]
    fn idle_threads_are_not_reported() {
        let mut h = coherent();
        h.set_thread(5); // creates domains 0..=5
        h.access(0, 8, false);
        let per = h.thread_stats();
        assert_eq!(per.len(), 1, "only threads that accessed memory appear");
        assert_eq!(per[0].thread, 5);
    }

    #[test]
    fn eviction_drops_state_without_coherence_traffic() {
        // Overflow one L1 set (tiny: 4 sets, 2 ways): the victim's state
        // entry must go with it so `line_state` reports Invalid.
        let mut h = coherent();
        h.access(0, 8, false);
        h.access(4 * LINE, 8, false); // same set (4 sets)
        h.access(8 * LINE, 8, false); // evicts line 0
        assert_eq!(h.line_state(0, 0), LineState::Invalid);
        assert_eq!(h.coherence(), CoherenceStats::default());
    }

    #[test]
    fn flush_clears_contents_and_states() {
        let mut h = coherent();
        h.access(0, 8, true);
        h.set_thread(1);
        h.access(LINE, 8, false);
        h.flush();
        assert_eq!(h.line_state(0, 0), LineState::Invalid);
        assert_eq!(h.line_state(1, LINE), LineState::Invalid);
        h.set_thread(0);
        h.access(0, 8, false);
        assert_eq!(h.stats().l1_misses, 3, "post-flush access misses again");
    }
}
