//! Properties of the epoch-based plan hot-swap (DESIGN.md §15).
//!
//! Two guarantees are pinned here:
//!
//! * **Identity**: swapping in a plan identical to the active one is
//!   observably a no-op — the pointer stream, statistics, and
//!   fragmentation reports match a twin allocator that never swapped,
//!   pointer for pointer. Only the plan epoch advances.
//! * **Safety under load**: a swap to a *different* plan while producer
//!   and consumer threads hammer the allocator never double-hands-out a
//!   pointer (live-set oracle), never loses a free, and drains to exactly
//!   zero live bytes at join — old chunks retire through the ordinary
//!   free machinery while new chunks carve under the new plan.

use halo_mem::{
    AllocatorStats, GroupAllocConfig, GroupSelector, HaloGroupAllocator, SelectorTable,
    ShardedHaloAllocator,
};
use halo_vm::{CallSite, FuncId, GroupState, Memory, SplitMix64, SyncVmAllocator, VmAllocator};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};

fn site() -> CallSite {
    CallSite::new(FuncId(0), 0)
}

fn two_group_table() -> SelectorTable {
    SelectorTable::new(
        vec![
            GroupSelector { group: 0, conjunctions: vec![vec![0]] },
            GroupSelector { group: 1, conjunctions: vec![vec![1]] },
        ],
        2,
    )
}

fn small_config() -> GroupAllocConfig {
    GroupAllocConfig { chunk_size: 65_536, slab_size: 65_536 * 64, ..GroupAllocConfig::default() }
}

/// One deterministic malloc/free round against `alloc`, returning the
/// pointer stream. Mixed grouped/fallback traffic, a rotating free
/// pattern so chunks retire and recycle, `swap` invoked halfway through.
fn drive(alloc: &ShardedHaloAllocator, mut swap: impl FnMut(&ShardedHaloAllocator)) -> Vec<u64> {
    let mut mem = Memory::new();
    let mut gs = GroupState::new(2);
    let mut rng = SplitMix64::new(0x91a7_50a9);
    let mut stream = Vec::new();
    let mut live = Vec::new();
    for i in 0..4_000u64 {
        if i == 2_000 {
            // Free half the survivors first so the post-swap allocator
            // sees spare chunks, then swap.
            for p in live.drain(..1_000) {
                alloc.free(p, &mut mem);
            }
            swap(alloc);
        }
        gs.reset();
        gs.set((i % 2) as u16);
        let size = if i % 97 == 0 { 5_000 } else { 16 + rng.next_below(12) * 16 };
        let ptr = alloc.malloc(size, site(), &gs, &mut mem);
        stream.push(ptr);
        live.push(ptr);
        if i % 3 == 0 {
            let victim = live.swap_remove((rng.next_below(live.len() as u64)) as usize);
            alloc.free(victim, &mut mem);
        }
    }
    for p in live {
        alloc.free(p, &mut mem);
    }
    alloc.drain_remote(&mut mem);
    stream
}

#[test]
fn identical_plan_swap_is_observably_a_noop() {
    let table = two_group_table();
    let overrides = vec![
        GroupAllocConfig { chunk_size: 16_384, ..small_config() },
        GroupAllocConfig { chunk_size: 65_536, ..small_config() },
    ];
    let swapped = ShardedHaloAllocator::new(2, small_config(), table.clone(), overrides.clone());
    let control = ShardedHaloAllocator::new(2, small_config(), table.clone(), overrides.clone());

    let swapped_stream = drive(&swapped, |a| {
        let epoch = a.swap_plans(table.clone(), overrides.clone());
        assert_eq!(epoch, 1, "the epoch advances even for an identity swap");
    });
    let control_stream = drive(&control, |_| {});

    assert_eq!(swapped_stream, control_stream, "identity swap: pointer-for-pointer equal");
    assert_eq!(swapped.sharded_stats(), control.sharded_stats(), "identical statistics");
    assert_eq!(swapped.frag_report(), control.frag_report(), "identical fragmentation");
    assert_eq!(
        swapped.group_frag_reports(),
        control.group_frag_reports(),
        "identical per-group fragmentation"
    );
    assert_eq!(swapped.live_bytes(), 0);
    assert_eq!(control.live_bytes(), 0);
    assert_eq!(swapped.plan_epoch(), 1);
    assert_eq!(control.plan_epoch(), 0, "the control never swapped");
}

#[test]
fn changed_plan_applies_to_fresh_chunks_only() {
    // Single-arena view of the same property: after a swap that changes
    // group 0's chunk size, group 0 carves its next chunk under the new
    // size while group 1 keeps filling its open chunk, and pointers
    // allocated before the swap free cleanly after it.
    let cfg = small_config();
    let mut a = HaloGroupAllocator::with_group_configs(
        cfg,
        two_group_table(),
        vec![
            GroupAllocConfig { chunk_size: 16_384, ..cfg },
            GroupAllocConfig { chunk_size: 65_536, ..cfg },
        ],
    );
    let mut mem = Memory::new();
    let mut gs = GroupState::new(2);
    let grouped = |a: &mut HaloGroupAllocator, gs: &mut GroupState, mem: &mut Memory, g: u16| {
        gs.reset();
        gs.set(g);
        VmAllocator::malloc(a, 64, site(), gs, mem)
    };
    let pre_g0 = grouped(&mut a, &mut gs, &mut mem, 0);
    let pre_g1 = grouped(&mut a, &mut gs, &mut mem, 1);

    a.install_plan(
        two_group_table(),
        vec![
            GroupAllocConfig { chunk_size: 32_768, ..cfg },
            GroupAllocConfig { chunk_size: 65_536, ..cfg },
        ],
    );
    assert_eq!(a.group_config(0).chunk_size, 32_768, "group 0 runs the new plan");

    let post_g0 = grouped(&mut a, &mut gs, &mut mem, 0);
    let post_g1 = grouped(&mut a, &mut gs, &mut mem, 1);
    // Group 1's configuration did not change: it bumps within the chunk
    // it was already filling. Group 0's did: it abandoned its 16 KiB
    // chunk and carved a fresh 32 KiB one.
    assert_eq!(post_g1, pre_g1 + 64, "unchanged group keeps its open chunk");
    assert_ne!(post_g0, pre_g0 + 64, "changed group starts a fresh chunk");

    // Pre-swap pointers free through the normal path and the heap drains.
    for p in [pre_g0, pre_g1, post_g0, post_g1] {
        VmAllocator::free(&mut a, p, &mut mem);
    }
    assert_eq!(a.live_bytes(), 0, "pre- and post-swap pointers all drain");
}

const PRODUCERS: usize = 4;
const CONSUMERS: usize = 2;
const MALLOCS_PER_PRODUCER: u64 = 10_000;

#[test]
fn swap_under_load_keeps_the_heap_exact() {
    let config = small_config();
    let alloc = ShardedHaloAllocator::new(4, config, two_group_table(), Vec::new());
    let live: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let freed = Mutex::new(0u64);
    let swapped = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..CONSUMERS).map(|_| mpsc::channel::<u64>()).unzip();
        for p in 0..PRODUCERS {
            let tx = senders[p % CONSUMERS].clone();
            let (alloc, live, swapped) = (&alloc, &live, &swapped);
            scope.spawn(move || {
                let mut mem = Memory::new();
                let mut gs = GroupState::new(2);
                let mut rng = SplitMix64::new(p as u64 * 131 + 7);
                for i in 0..MALLOCS_PER_PRODUCER {
                    if p == 0 && i == MALLOCS_PER_PRODUCER / 2 {
                        // Producer 0 doubles as the serve loop: swap the
                        // whole fleet onto a different plan mid-storm.
                        alloc.swap_plans(
                            two_group_table(),
                            vec![
                                GroupAllocConfig { chunk_size: 16_384, ..config },
                                GroupAllocConfig { chunk_size: 131_072, ..config },
                            ],
                        );
                        swapped.store(true, Ordering::Release);
                    }
                    gs.reset();
                    gs.set((i % 2) as u16);
                    let size = if i % 97 == 0 { 5_000 } else { 16 + rng.next_below(12) * 16 };
                    let ptr = alloc.malloc(size, site(), &gs, &mut mem);
                    assert!(
                        live.lock().expect("live set").insert(ptr),
                        "pointer {ptr:#x} handed out while still live (double hand-out)"
                    );
                    tx.send(ptr).expect("consumer alive");
                }
            });
        }
        drop(senders);
        for rx in receivers {
            let (alloc, live, freed) = (&alloc, &live, &freed);
            scope.spawn(move || {
                let mut mem = Memory::new();
                let mut count = 0u64;
                for ptr in rx {
                    assert!(
                        live.lock().expect("live set").remove(&ptr),
                        "freeing a pointer that was never handed out"
                    );
                    alloc.free(ptr, &mut mem);
                    count += 1;
                }
                *freed.lock().expect("freed count") += count;
            });
        }
    });

    assert!(swapped.load(Ordering::Acquire), "the mid-storm swap ran");
    assert_eq!(alloc.plan_epoch(), 1, "exactly one swap epoch");
    let total = PRODUCERS as u64 * MALLOCS_PER_PRODUCER;
    assert_eq!(*freed.lock().expect("freed count"), total, "every pointer freed exactly once");
    assert!(live.lock().expect("live set").is_empty(), "no pointer remained live");

    let mut mem = Memory::new();
    alloc.drain_remote(&mut mem);
    assert_eq!(alloc.remote_pending(), 0, "all remote-free queues drain across the epoch");
    assert_eq!(alloc.live_bytes(), 0, "aggregate live bytes reach exactly zero");
    assert_eq!(alloc.live_objects(), 0);
    let stats = alloc.sharded_stats();
    assert_eq!(stats.remote_drained, stats.remote_frees, "every queued free was applied");
    assert_eq!(stats.alloc.grouped_allocs + stats.alloc.fallback_allocs, total);
    assert_eq!(stats.alloc.grouped_frees + stats.alloc.fallback_frees, total);
}
