//! Concurrency stress test for the native group-pool heap (`halo_mem::rt`):
//! many threads allocating and freeing through the same static heap, with
//! distinct per-thread site bits, must never corrupt chunk bookkeeping.

use halo_mem::rt::{enter_site, GroupHeap, NativeSelector};
use std::alloc::{GlobalAlloc, Layout};

static SELECTORS: &[NativeSelector] = &[
    NativeSelector { group: 0, masks: &[0b001] },
    NativeSelector { group: 1, masks: &[0b010] },
    NativeSelector { group: 2, masks: &[0b100] },
];

static HEAP: GroupHeap = GroupHeap::new(SELECTORS);

#[test]
fn concurrent_grouped_allocation_is_safe_and_consistent() {
    let threads: Vec<_> = (0..8u8)
        .map(|t| {
            std::thread::spawn(move || {
                let bit = t % 3;
                let _guard = enter_site(bit);
                let layout = Layout::from_size_align(32 + t as usize * 8, 8).unwrap();
                let mut live: Vec<*mut u8> = Vec::new();
                for round in 0..200 {
                    // SAFETY: layouts are valid; every pointer is written
                    // before reads and deallocated exactly once below.
                    let p = unsafe { HEAP.alloc(layout) };
                    assert!(!p.is_null());
                    unsafe { p.write_bytes(t, layout.size()) };
                    live.push(p);
                    if round % 3 == 0 {
                        if let Some(q) = live.pop() {
                            unsafe { HEAP.dealloc(q, layout) };
                        }
                    }
                }
                // Verify our writes survived concurrent neighbours.
                for &p in &live {
                    for i in 0..layout.size() {
                        assert_eq!(unsafe { *p.add(i) }, t, "cross-thread corruption");
                    }
                }
                for p in live {
                    unsafe { HEAP.dealloc(p, layout) };
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("no thread panicked");
    }
    // Every group's current chunk may remain (reset in place); nothing else.
    assert!(HEAP.chunk_count() <= 3, "at most one live chunk per group");
}

#[test]
fn mixed_grouped_and_system_traffic() {
    // Grouped and non-grouped allocations interleaved on one thread:
    // dealloc must route each pointer to its owner.
    let layout = Layout::from_size_align(64, 8).unwrap();
    let mut grouped = Vec::new();
    let mut plain = Vec::new();
    for i in 0..100 {
        if i % 2 == 0 {
            let _g = enter_site(0);
            grouped.push(unsafe { HEAP.alloc(layout) });
        } else {
            plain.push(unsafe { HEAP.alloc(layout) });
        }
    }
    for p in grouped.into_iter().chain(plain) {
        assert!(!p.is_null());
        unsafe { HEAP.dealloc(p, layout) };
    }
}
