//! Chaos property suite for the fault-injection subsystem and the
//! degradation ladder (DESIGN.md §12): randomized fault schedules ×
//! randomized allocation traces, single- and multi-threaded, under the
//! same live-set oracle as `sharded_stress.rs`. The properties proved for
//! every schedule:
//!
//! 1. **No double hand-out** — a returned region never overlaps a live
//!    region (interval oracle, stronger than pointer-equality);
//! 2. **No lost bytes** — after every pointer is freed, live bytes reach
//!    exactly zero, degraded groups and all;
//! 3. **Continued service** — every request after a fault is still served
//!    (non-zero pointer), and after a mid-operation thread panic the
//!    surviving threads keep allocating;
//! 4. **Observability** — every fault the injector fired is counted in
//!    `DegradeStats` (`injected_faults` matches the injector, and each
//!    fired site moves its ladder counter);
//! 5. **Identity** — an attached injector with an *empty* plan changes
//!    nothing: pointer-for-pointer identical to no injector at all.
//!
//! Each test prints a `chaos verdict: zero leaks` line on success, which
//! CI greps under pipefail (release mode, the `chaos` job).

use halo_mem::{
    AllocatorStats, FaultInjector, FaultPlan, FaultSite, GroupAllocConfig, GroupSelector,
    HaloGroupAllocator, SelectorTable, ShardedHaloAllocator,
};
use halo_vm::{CallSite, FuncId, GroupState, Memory, SplitMix64, SyncVmAllocator, VmAllocator};
use std::collections::BTreeMap;
use std::sync::{mpsc, Arc, Mutex};

/// Schedules per property loop; `HALO_PROPTEST_CASES` overrides it (the
/// same knob the compat proptest runner honours; invalid values panic
/// loudly rather than silently shrinking coverage).
fn cases(default: u64) -> u64 {
    match std::env::var("HALO_PROPTEST_CASES").ok().as_deref() {
        None => default,
        Some(s) => match s.parse() {
            Ok(n) if n > 0 => n,
            _ => panic!("HALO_PROPTEST_CASES must be a positive integer, got {s:?}"),
        },
    }
}

fn site() -> CallSite {
    CallSite::new(FuncId(0), 0)
}

fn two_group_table() -> SelectorTable {
    SelectorTable::new(
        vec![
            GroupSelector { group: 0, conjunctions: vec![vec![0]] },
            GroupSelector { group: 1, conjunctions: vec![vec![1]] },
        ],
        2,
    )
}

/// Small chunks/slabs so chunk churn (and therefore the injected fault
/// sites) is exercised by short traces.
fn small_config() -> GroupAllocConfig {
    GroupAllocConfig {
        chunk_size: 8192,
        max_spare_chunks: 1,
        max_grouped_size: 4096,
        slab_size: 8192 * 8,
        ..GroupAllocConfig::default()
    }
}

/// A randomized schedule over `sites`: each site independently gets no
/// entry, an exact `site@n` entry, or a `site~p` rate entry.
fn random_plan(rng: &mut SplitMix64, sites: &[FaultSite]) -> FaultPlan {
    let mut plan = FaultPlan::new(rng.next_u64());
    for &s in sites {
        match rng.next_below(3) {
            0 => {}
            1 => plan = plan.at(s, 1 + rng.next_below(40)),
            _ => plan = plan.rate(s, (1 + rng.next_below(20)) as f64 / 100.0),
        }
    }
    plan
}

/// The interval oracle: insert `[ptr, ptr + size)`, panicking if it
/// overlaps any live region (a double hand-out).
fn oracle_insert(live: &mut BTreeMap<u64, u64>, ptr: u64, size: u64) {
    let size = size.max(1);
    if let Some((&prev, &psz)) = live.range(..=ptr).next_back() {
        assert!(prev + psz <= ptr, "region {ptr:#x}+{size} overlaps live {prev:#x}+{psz}");
    }
    if let Some((&next, _)) = live.range(ptr..).next() {
        assert!(ptr + size <= next, "region {ptr:#x}+{size} overlaps live {next:#x}");
    }
    live.insert(ptr, size);
}

/// Drive one randomized trace (malloc/free/realloc mix) against `a`,
/// then free every survivor. Returns the number of requests served.
fn run_trace(a: &mut HaloGroupAllocator, rng: &mut SplitMix64, ops: u64) -> u64 {
    let mut mem = Memory::new();
    let mut gs = GroupState::new(2);
    let mut live: BTreeMap<u64, u64> = BTreeMap::new();
    let mut served = 0;
    for i in 0..ops {
        gs.reset();
        gs.set((i % 2) as u16);
        match rng.next_below(4) {
            // Mostly allocate: grouped sizes with a trickle above the cap
            // so the fallback participates too.
            0 | 1 => {
                let size = if i % 23 == 0 { 5000 } else { 16 + rng.next_below(12) * 16 };
                let ptr = a.malloc(size, site(), &gs, &mut mem);
                assert_ne!(ptr, 0, "continued service: request {i} was refused");
                oracle_insert(&mut live, ptr, size);
                served += 1;
            }
            2 => {
                if let Some((&ptr, _)) = live.range(rng.next_u64()..).next() {
                    live.remove(&ptr);
                    a.free(ptr, &mut mem);
                }
            }
            _ => {
                if let Some((&ptr, _)) = live.range(rng.next_u64()..).next() {
                    live.remove(&ptr);
                    let size = 16 + rng.next_below(12) * 16;
                    let moved = a.realloc(ptr, size, site(), &gs, &mut mem);
                    assert_ne!(moved, 0, "continued service: realloc {i} was refused");
                    oracle_insert(&mut live, moved, size);
                    served += 1;
                }
            }
        }
    }
    for &ptr in live.keys() {
        a.free(ptr, &mut mem);
    }
    served
}

#[test]
fn randomized_schedules_degrade_but_never_leak() {
    let cases = cases(32);
    for case in 0..cases {
        let mut rng = SplitMix64::new(0xC0_FFEE ^ (case * 0x9E37));
        let plan = random_plan(&mut rng, &[FaultSite::VmmReserve, FaultSite::ChunkAlloc]);
        let injector = Arc::new(FaultInjector::new(plan.clone()));
        let mut a = HaloGroupAllocator::new(small_config(), two_group_table());
        a.set_fault_injector(Arc::clone(&injector));
        run_trace(&mut a, &mut rng, 600);
        assert_eq!(a.live_bytes(), 0, "schedule {plan}: live bytes reach exactly zero");
        assert_eq!(a.live_objects(), 0, "schedule {plan}: no lost objects");
        // Observability: the ladder counted exactly what the injector
        // fired, and each fired site moved its counter.
        let d = a.degrade_stats();
        assert_eq!(d.injected_faults, injector.fired(), "schedule {plan}: every fault counted");
        let carve_faults =
            injector.fired_at(FaultSite::VmmReserve) + injector.fired_at(FaultSite::ChunkAlloc);
        if carve_faults > 0 {
            assert!(d.degraded_groups >= 1, "schedule {plan}: a failed carve degrades: {d:?}");
            assert!(d.fallback_routes >= 1, "schedule {plan}: traffic was routed: {d:?}");
        } else {
            assert!(!d.any(), "schedule {plan}: no fault, no degradation: {d:?}");
        }
        // Deterministic replay: the same schedule over the same trace
        // fires identically.
        let replay = Arc::new(FaultInjector::new(plan.clone()));
        let mut b = HaloGroupAllocator::new(small_config(), two_group_table());
        b.set_fault_injector(Arc::clone(&replay));
        let mut rng2 = SplitMix64::new(0xC0_FFEE ^ (case * 0x9E37));
        let _ = random_plan(&mut rng2, &[FaultSite::VmmReserve, FaultSite::ChunkAlloc]);
        run_trace(&mut b, &mut rng2, 600);
        assert_eq!(b.degrade_stats(), d, "schedule {plan}: replay is deterministic");
    }
    println!("chaos verdict: zero leaks ({cases} single-threaded schedules)");
}

#[test]
fn multithreaded_chaos_with_panicking_threads_never_leaks() {
    const PRODUCERS: usize = 3;
    const MALLOCS: u64 = 400;
    let cases = cases(32).div_ceil(4);
    for case in 0..cases {
        let mut rng = SplitMix64::new(0xBAD_5EED ^ (case * 0x51_F15E));
        // All four sites, including the mid-operation panicking thread
        // and remote-free-queue overflow.
        let plan = random_plan(
            &mut rng,
            &[
                FaultSite::VmmReserve,
                FaultSite::ChunkAlloc,
                FaultSite::RemoteQueue,
                FaultSite::ShardPanic,
            ],
        );
        let injector = Arc::new(FaultInjector::new(plan.clone()));
        let mut owned = ShardedHaloAllocator::new(4, small_config(), two_group_table(), Vec::new());
        owned.set_fault_injector(Arc::clone(&injector));
        owned.set_remote_queue_cap(64);
        let a = &owned;
        let live: Mutex<BTreeMap<u64, u64>> = Mutex::new(BTreeMap::new());
        let mut panicked = 0u64;
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<u64>();
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let tx = tx.clone();
                    let live = &live;
                    scope.spawn(move || {
                        let mut mem = Memory::new();
                        let mut gs = GroupState::new(2);
                        let mut rng = SplitMix64::new(case * 31 + p as u64);
                        for i in 0..MALLOCS {
                            gs.reset();
                            gs.set((i % 2) as u16);
                            let size =
                                if i % 23 == 0 { 5000 } else { 16 + rng.next_below(12) * 16 };
                            // May hit the injected ShardPanic *inside*
                            // the shard lock: the pointer was never
                            // handed out, so the oracle stays exact.
                            let ptr = SyncVmAllocator::malloc(a, size, site(), &gs, &mut mem);
                            assert_ne!(ptr, 0, "continued service under faults");
                            oracle_insert(&mut live.lock().expect("oracle"), ptr, size);
                            tx.send(ptr).expect("consumer alive");
                        }
                    })
                })
                .collect();
            drop(tx);
            let consumer = scope.spawn(|| {
                let mut mem = Memory::new();
                for ptr in rx {
                    assert!(
                        live.lock().expect("oracle").remove(&ptr).is_some(),
                        "freeing {ptr:#x}, which was never handed out"
                    );
                    SyncVmAllocator::free(a, ptr, &mut mem);
                }
            });
            for h in producers {
                // An injected panic propagates to join; that is the
                // *intended* failure of the faulted thread — the suite
                // proves everyone else keeps going.
                if h.join().is_err() {
                    panicked += 1;
                }
            }
            consumer.join().expect("the consumer never panics");
        });
        // Whatever was handed out was freed; a panicked malloc handed
        // nothing out.
        assert!(live.lock().expect("oracle").is_empty(), "schedule {plan}: oracle drained");
        // Accounting is read while the chaos plan is still attached:
        // `injected_faults` is snapshotted from the live injector.
        let d = a.degrade_stats();
        assert_eq!(d.injected_faults, injector.fired(), "schedule {plan}: every fault counted");
        if injector.fired_at(FaultSite::RemoteQueue) > 0 {
            assert!(d.queue_overflows >= 1, "schedule {plan}: overflow counted: {d:?}");
        }
        if injector.fired_at(FaultSite::ShardPanic) > 0 {
            assert_eq!(panicked, injector.fired_at(FaultSite::ShardPanic));
            assert!(
                d.poisoned_recovered >= 1,
                "schedule {plan}: the poisoned lock was recovered, not wedged: {d:?}"
            );
        }
        let carve =
            injector.fired_at(FaultSite::VmmReserve) + injector.fired_at(FaultSite::ChunkAlloc);
        if carve > 0 {
            assert!(d.degraded_groups + d.degraded_shards >= 1, "schedule {plan}: {d:?}");
        }
        // The chaos window closes when the workers join: detach the plan so
        // a rate-based entry cannot fire inside the probe below and panic
        // the checking thread itself.
        owned.set_fault_injector(Arc::new(FaultInjector::new(FaultPlan::new(0))));
        let a = &owned;
        // Continued service after every fault: the main thread still gets
        // memory out of the surviving runtime.
        let mut mem = Memory::new();
        let mut gs = GroupState::new(2);
        gs.set(0);
        let p = SyncVmAllocator::malloc(a, 64, site(), &gs, &mut mem);
        assert_ne!(p, 0, "schedule {plan}: allocator serves after the chaos run");
        SyncVmAllocator::free(a, p, &mut mem);
        a.drain_remote(&mut mem);
        assert_eq!(a.remote_pending(), 0, "schedule {plan}: every queue drains");
        assert_eq!(a.live_bytes(), 0, "schedule {plan}: live bytes reach exactly zero");
        assert_eq!(a.live_objects(), 0);
    }
    println!("chaos verdict: zero leaks ({cases} multi-threaded schedules)");
}

#[test]
fn empty_plan_is_pointer_for_pointer_identical_to_no_injector() {
    // The byte-identity half of the acceptance bar, at the allocator
    // level: attaching an injector whose plan never fires must not change
    // a single returned address or counter.
    let drive = |a: &mut HaloGroupAllocator| -> Vec<u64> {
        let mut mem = Memory::new();
        let mut gs = GroupState::new(2);
        let mut rng = SplitMix64::new(42);
        let mut ptrs = Vec::new();
        let mut live = Vec::new();
        for i in 0..500u64 {
            gs.reset();
            gs.set((i % 2) as u16);
            let size = if i % 23 == 0 { 5000 } else { 16 + rng.next_below(12) * 16 };
            let p = a.malloc(size, site(), &gs, &mut mem);
            ptrs.push(p);
            live.push(p);
            if i % 3 == 0 {
                let victim = live.swap_remove((rng.next_below(live.len() as u64)) as usize);
                a.free(victim, &mut mem);
            }
        }
        for p in live {
            a.free(p, &mut mem);
        }
        ptrs
    };
    let mut plain = HaloGroupAllocator::new(small_config(), two_group_table());
    let mut injected = HaloGroupAllocator::new(small_config(), two_group_table());
    injected.set_fault_injector(Arc::new(FaultInjector::new(FaultPlan::new(7))));
    assert_eq!(drive(&mut plain), drive(&mut injected), "address streams diverge");
    assert_eq!(plain.stats(), injected.stats());
    assert_eq!(plain.live_bytes(), injected.live_bytes());
    assert!(!injected.degrade_stats().any(), "an empty plan never degrades");
    println!("chaos verdict: zero leaks (empty-plan identity)");
}
