//! Cross-thread stress for [`ShardedHaloAllocator`]: N producer threads
//! allocate, M consumer threads free pointers they never allocated, and
//! the whole stream must come out exact — no pointer handed out twice
//! while live, every remote-free queue drained, and aggregate live bytes
//! exactly zero after the join.
//!
//! The live-set oracle is the double-hand-out detector: a pointer is
//! inserted into a shared set the moment the allocator returns it (insert
//! must find it absent) and removed by the consumer *before* the free is
//! issued. A shard recycling an address whose free was never issued trips
//! the insert assertion; the remove-before-free ordering does leave a
//! small window (between the consumer's remove and its free completing)
//! in which a premature recycle would go unflagged — the price of never
//! false-positive-ing on the legitimate recycle-after-drain path.

use halo_mem::{
    AllocatorStats, GroupAllocConfig, GroupSelector, SelectorTable, ShardedHaloAllocator,
};
use halo_vm::{CallSite, FuncId, GroupState, Memory, SplitMix64, SyncVmAllocator};
use std::collections::HashSet;
use std::sync::mpsc;
use std::sync::Mutex;

const PRODUCERS: usize = 4;
const CONSUMERS: usize = 2;
const MALLOCS_PER_PRODUCER: u64 = 12_500; // ×4 producers ×(1 malloc + 1 free) = 100k ops

fn site() -> CallSite {
    CallSite::new(FuncId(0), 0)
}

fn two_group_table() -> SelectorTable {
    SelectorTable::new(
        vec![
            GroupSelector { group: 0, conjunctions: vec![vec![0]] },
            GroupSelector { group: 1, conjunctions: vec![vec![1]] },
        ],
        2,
    )
}

#[test]
fn producers_allocate_consumers_free_and_everything_drains() {
    let config = GroupAllocConfig {
        chunk_size: 65_536,
        slab_size: 65_536 * 64,
        ..GroupAllocConfig::default()
    };
    let alloc = ShardedHaloAllocator::new(4, config, two_group_table(), Vec::new());
    let live: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let freed = Mutex::new(0u64);

    std::thread::scope(|scope| {
        // Producer i feeds consumer i % CONSUMERS.
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..CONSUMERS).map(|_| mpsc::channel::<u64>()).unzip();
        for p in 0..PRODUCERS {
            let tx = senders[p % CONSUMERS].clone();
            let (alloc, live) = (&alloc, &live);
            scope.spawn(move || {
                let mut mem = Memory::new();
                let mut gs = GroupState::new(2);
                let mut rng = SplitMix64::new(p as u64 * 71 + 5);
                for i in 0..MALLOCS_PER_PRODUCER {
                    gs.reset();
                    gs.set((i % 2) as u16);
                    // Mostly grouped sizes, with a trickle of above-cap
                    // requests so the per-shard fallbacks shard too.
                    let size = if i % 97 == 0 { 5000 } else { 16 + rng.next_below(12) * 16 };
                    let ptr = alloc.malloc(size, site(), &gs, &mut mem);
                    assert!(
                        live.lock().expect("live set").insert(ptr),
                        "pointer {ptr:#x} handed out while still live (double hand-out)"
                    );
                    tx.send(ptr).expect("consumer alive");
                }
            });
        }
        drop(senders); // consumers stop when every producer has finished
        for rx in receivers {
            let (alloc, live, freed) = (&alloc, &live, &freed);
            scope.spawn(move || {
                let mut mem = Memory::new();
                let mut count = 0u64;
                for ptr in rx {
                    assert!(
                        live.lock().expect("live set").remove(&ptr),
                        "freeing a pointer that was never handed out"
                    );
                    alloc.free(ptr, &mut mem);
                    count += 1;
                }
                *freed.lock().expect("freed count") += count;
            });
        }
    });

    let total = PRODUCERS as u64 * MALLOCS_PER_PRODUCER;
    assert_eq!(*freed.lock().expect("freed count"), total, "every pointer was freed exactly once");
    assert!(live.lock().expect("live set").is_empty(), "no pointer remained live");

    // Frees routed to foreign shards rode the remote queues: with six
    // threads over four shards, each consumer serves at least one
    // producer mapped to another shard, whatever the slot assignment.
    let stats = alloc.sharded_stats();
    assert!(stats.remote_frees > 0, "cross-thread frees must take the remote path: {stats:?}");

    // Join-time flush: the owners apply whatever is still queued, after
    // which every queue is empty and nothing is live anywhere — grouped
    // pools and fallbacks alike.
    let mut mem = Memory::new();
    alloc.drain_remote(&mut mem);
    assert_eq!(alloc.remote_pending(), 0, "all remote-free queues drain");
    assert_eq!(alloc.live_grouped_bytes(), 0, "grouped live bytes reach exactly zero");
    assert_eq!(alloc.live_bytes(), 0, "aggregate live bytes reach exactly zero");
    assert_eq!(alloc.live_objects(), 0);

    let stats = alloc.sharded_stats();
    assert_eq!(stats.remote_drained, stats.remote_frees, "every queued free was applied");
    assert_eq!(stats.alloc.grouped_allocs + stats.alloc.fallback_allocs, total);
    assert_eq!(stats.alloc.grouped_frees + stats.alloc.fallback_frees, total);
}

#[test]
fn concurrent_engines_share_one_sharded_allocator() {
    // The Sync VM backend end to end: several OS threads each run their
    // own `Engine` (own program copy, own Memory) against one shared
    // allocator through the `&S: VmAllocator` bridge. Pointer streams
    // from different engines must never collide.
    use halo_vm::{Cond, Engine, ProgramBuilder, Reg, Width};
    fn burst_program() -> halo_vm::Program {
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        let r = Reg;
        // Hand-instrumented: group bit 0 stays set, so every malloc is
        // grouped and lands in the serving shard's group slabs.
        m.raw(halo_vm::Op::GroupSet(0));
        m.imm(r(9), 0);
        m.imm(r(10), 0);
        m.imm(r(11), 400);
        m.imm(r(0), 48);
        let top = m.label();
        let done = m.label();
        m.bind(top);
        m.branch(Cond::Ge, r(10), r(11), done);
        m.malloc(r(0), r(1));
        m.store(r(9), r(1), 0, Width::W8);
        m.mov(r(9), r(1));
        m.add_imm(r(10), r(10), 1);
        m.jump(top);
        m.bind(done);
        m.ret(Some(r(9)));
        let main = m.finish();
        pb.finish(main)
    }
    let config = GroupAllocConfig {
        chunk_size: 65_536,
        slab_size: 65_536 * 64,
        ..GroupAllocConfig::default()
    };
    let alloc = ShardedHaloAllocator::new(4, config, two_group_table(), Vec::new());
    let program = burst_program();
    let heads: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (alloc, program) = (&alloc, &program);
                scope.spawn(move || {
                    let mut handle = alloc;
                    let mut mon = halo_vm::NullMonitor;
                    let stats =
                        Engine::new(program).run(&mut handle, &mut mon).expect("engine runs");
                    stats.return_value.expect("list head") as u64
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("engine thread")).collect()
    });
    // Four engines, four distinct shards: list heads live in four
    // distinct shard group ranges.
    assert!(heads.iter().all(|&p| alloc.is_group_allocated(p)), "{heads:?}");
    let shards: HashSet<u64> =
        heads.iter().map(|&p| (p - config.base) / halo_mem::GROUP_SHARD_STRIDE).collect();
    assert_eq!(shards.len(), 4, "each engine thread was served by its own shard: {heads:?}");
    assert_eq!(alloc.live_objects(), 4 * 400);
}
