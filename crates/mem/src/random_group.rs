//! The Fig. 15 stress allocator: random assignment to four bump pools.
//!
//! "Figure 15 shows the results of running each benchmark under an allocator
//! that randomly allocates objects smaller than the page size from four
//! 'groups', much in the same way that a variant of HALO with an extremely
//! poor grouping algorithm might." Benchmarks sensitive to this extreme
//! policy are exactly the ones where layout matters — and where HALO helps.

use crate::bump::BumpAllocator;
use crate::stats::AllocatorStats;
use crate::SizeClassAllocator;
use halo_vm::{CallSite, GroupState, Memory, SplitMix64, VmAllocator, PAGE_SIZE};

/// Number of random pools, per the paper.
const POOLS: usize = 4;
/// Address span reserved per pool.
const POOL_SPAN: u64 = 1 << 34;

/// Routes small allocations to one of four bump pools uniformly at random;
/// page-sized and larger requests go to a jemalloc-style fallback.
#[derive(Debug)]
pub struct RandomGroupAllocator {
    pools: Vec<BumpAllocator>,
    pools_base: u64,
    rng: SplitMix64,
    fallback: SizeClassAllocator,
}

impl RandomGroupAllocator {
    /// Default base address for the pools.
    pub const DEFAULT_BASE: u64 = 0x90_0000_0000;

    /// Create the allocator with deterministic pool choice from `seed`.
    pub fn new(seed: u64) -> Self {
        let pools_base = Self::DEFAULT_BASE;
        RandomGroupAllocator {
            pools: (0..POOLS as u64)
                .map(|i| BumpAllocator::with_base(pools_base + i * POOL_SPAN))
                .collect(),
            pools_base,
            rng: SplitMix64::new(seed),
            fallback: SizeClassAllocator::with_base(pools_base + POOLS as u64 * POOL_SPAN),
        }
    }

    fn pool_of(&self, ptr: u64) -> Option<usize> {
        if ptr < self.pools_base {
            return None;
        }
        let idx = (ptr - self.pools_base) / POOL_SPAN;
        (idx < POOLS as u64).then_some(idx as usize)
    }
}

impl AllocatorStats for RandomGroupAllocator {
    fn live_bytes(&self) -> u64 {
        self.pools.iter().map(|p| p.live_bytes()).sum::<u64>() + self.fallback.live_bytes()
    }

    fn live_objects(&self) -> usize {
        self.pools.iter().map(|p| p.live_objects()).sum::<usize>() + self.fallback.live_objects()
    }
}

impl VmAllocator for RandomGroupAllocator {
    fn malloc(&mut self, size: u64, site: CallSite, gs: &GroupState, mem: &mut Memory) -> u64 {
        if size < PAGE_SIZE {
            let pool = self.rng.next_below(POOLS as u64) as usize;
            self.pools[pool].malloc(size, site, gs, mem)
        } else {
            self.fallback.malloc(size, site, gs, mem)
        }
    }

    fn free(&mut self, ptr: u64, mem: &mut Memory) {
        match self.pool_of(ptr) {
            Some(pool) => self.pools[pool].free(ptr, mem),
            None => self.fallback.free(ptr, mem),
        }
    }

    fn realloc(
        &mut self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        let old_size = match self.pool_of(ptr) {
            Some(pool) => self.pools[pool].size_of(ptr).unwrap_or(0),
            None => self.fallback.usable_size(ptr).unwrap_or(0),
        };
        let newp = self.malloc(size, site, gs, mem);
        mem.copy(newp, ptr, old_size.min(size));
        self.free(ptr, mem);
        newp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> CallSite {
        CallSite::new(halo_vm::FuncId(0), 0)
    }

    #[test]
    fn small_allocations_scatter_across_pools() {
        let mut a = RandomGroupAllocator::new(1);
        let gs = GroupState::default();
        let mut mem = Memory::new();
        let mut pools_hit = std::collections::HashSet::new();
        for _ in 0..64 {
            let p = a.malloc(32, site(), &gs, &mut mem);
            pools_hit.insert(a.pool_of(p).expect("small goes to a pool"));
        }
        assert_eq!(pools_hit.len(), POOLS, "all four pools used");
    }

    #[test]
    fn large_allocations_use_fallback() {
        let mut a = RandomGroupAllocator::new(1);
        let gs = GroupState::default();
        let mut mem = Memory::new();
        let p = a.malloc(PAGE_SIZE, site(), &gs, &mut mem);
        assert_eq!(a.pool_of(p), None);
        a.free(p, &mut mem);
        assert_eq!(a.live_objects(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let gs = GroupState::default();
        let run = |seed| {
            let mut a = RandomGroupAllocator::new(seed);
            let mut mem = Memory::new();
            (0..16).map(|_| a.malloc(16, site(), &gs, &mut mem)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn free_routes_to_owning_pool() {
        let mut a = RandomGroupAllocator::new(3);
        let gs = GroupState::default();
        let mut mem = Memory::new();
        let ptrs: Vec<u64> = (0..20).map(|_| a.malloc(64, site(), &gs, &mut mem)).collect();
        assert_eq!(a.live_objects(), 20);
        for p in ptrs {
            a.free(p, &mut mem);
        }
        assert_eq!(a.live_objects(), 0);
        assert_eq!(a.live_bytes(), 0);
    }
}
