//! A ptmalloc2/dlmalloc-style boundary-tag allocator.
//!
//! §5.1 notes that jemalloc "universally outperforms ptmalloc2 from glibc
//! 2.27, reducing L1 data-cache misses by as much as 32%", which the
//! `baseline_jemalloc_vs_ptmalloc` bench reproduces. The placement-relevant
//! properties of ptmalloc2 modelled here: a 16-byte inline chunk header
//! before every object (spacing same-size objects apart and dragging
//! metadata through the cache), best-fit allocation from a coalescing free
//! list, and wilderness extension at the top of an sbrk-style heap.

use crate::stats::AllocatorStats;
use crate::vmm::Vmm;
use halo_vm::{CallSite, GroupState, Memory, VmAllocator};
use std::collections::{BTreeMap, HashMap};

/// Inline header bytes preceding every allocated chunk.
const HEADER: u64 = 16;
/// Minimum chunk payload.
const MIN_PAYLOAD: u64 = 16;

/// The boundary-tag simulated allocator (see module docs).
#[derive(Debug)]
pub struct BoundaryTagAllocator {
    vmm: Vmm,
    /// Free chunks by base address → size (chunk includes its header span).
    free_by_addr: BTreeMap<u64, u64>,
    /// Live chunks: payload pointer → (chunk base, chunk size, requested).
    live: HashMap<u64, (u64, u64, u64)>,
    /// Top of the allocated heap (wilderness pointer).
    top: u64,
    heap_base: u64,
    live_bytes: u64,
}

impl BoundaryTagAllocator {
    /// Default base address for standalone use.
    pub const DEFAULT_BASE: u64 = 0x30_0000_0000;

    /// Create an allocator rooted at [`Self::DEFAULT_BASE`].
    pub fn new() -> Self {
        Self::with_base(Self::DEFAULT_BASE)
    }

    /// Create an allocator rooted at `base`.
    pub fn with_base(base: u64) -> Self {
        let mut vmm = Vmm::new(base, 1 << 38);
        let heap_base =
            vmm.reserve(0, 16).unwrap_or_else(|_| unreachable!("fresh span cannot be exhausted"));
        BoundaryTagAllocator {
            vmm,
            free_by_addr: BTreeMap::new(),
            live: HashMap::new(),
            top: heap_base,
            heap_base,
            live_bytes: 0,
        }
    }

    fn chunk_size_for(request: u64) -> u64 {
        (request.max(MIN_PAYLOAD) + HEADER + 15) & !15
    }

    /// Best-fit search: smallest free chunk that fits; ties by address.
    fn take_best_fit(&mut self, need: u64) -> Option<(u64, u64)> {
        let mut best: Option<(u64, u64)> = None;
        for (&addr, &size) in &self.free_by_addr {
            if size >= need && best.is_none_or(|(_, bs)| size < bs) {
                best = Some((addr, size));
            }
        }
        let (addr, size) = best?;
        self.free_by_addr.remove(&addr);
        Some((addr, size))
    }

    fn insert_free_coalescing(&mut self, mut addr: u64, mut size: u64) {
        // Merge with predecessor.
        if let Some((&paddr, &psize)) = self.free_by_addr.range(..addr).next_back() {
            if paddr + psize == addr {
                self.free_by_addr.remove(&paddr);
                addr = paddr;
                size += psize;
            }
        }
        // Merge with successor.
        if let Some(&ssize) = self.free_by_addr.get(&(addr + size)) {
            self.free_by_addr.remove(&(addr + size));
            size += ssize;
        }
        // Merge into the wilderness when touching the top.
        if addr + size == self.top {
            self.top = addr;
        } else {
            self.free_by_addr.insert(addr, size);
        }
    }

    /// Bytes consumed from the heap span (wilderness high-water mark).
    pub fn heap_extent(&self) -> u64 {
        self.top - self.heap_base
    }
}

impl Default for BoundaryTagAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl AllocatorStats for BoundaryTagAllocator {
    fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    fn live_objects(&self) -> usize {
        self.live.len()
    }
}

impl VmAllocator for BoundaryTagAllocator {
    fn malloc(&mut self, size: u64, _site: CallSite, _gs: &GroupState, mem: &mut Memory) -> u64 {
        let size = size.max(1);
        let need = Self::chunk_size_for(size);
        let (base, chunk) = match self.take_best_fit(need) {
            Some((base, have)) => {
                // Split the remainder when it can hold another chunk.
                if have - need >= HEADER + MIN_PAYLOAD {
                    self.free_by_addr.insert(base + need, have - need);
                    (base, need)
                } else {
                    (base, have)
                }
            }
            None => {
                let base = self.top;
                if self.vmm.reserve(need, 1).is_err() {
                    // Heap span exhausted: report allocation failure (null)
                    // rather than aliasing addresses past the span.
                    return 0;
                }
                self.top += need;
                (base, need)
            }
        };
        let payload = base + HEADER;
        // The inline header is real data traffic in ptmalloc: the allocator
        // writes size/flags words that share cache lines with the payload.
        mem.write(base, 8, chunk);
        mem.write(base + 8, 8, 1); // in-use flag
        self.live.insert(payload, (base, chunk, size));
        self.live_bytes += size;
        payload
    }

    fn free(&mut self, ptr: u64, mem: &mut Memory) {
        let Some((base, chunk, requested)) = self.live.remove(&ptr) else {
            debug_assert!(false, "free of unknown pointer {ptr:#x}");
            return;
        };
        self.live_bytes -= requested;
        mem.write(base + 8, 8, 0);
        self.insert_free_coalescing(base, chunk);
    }

    fn realloc(
        &mut self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        let Some(&(_, chunk, requested)) = self.live.get(&ptr) else {
            return self.malloc(size, site, gs, mem);
        };
        let size = size.max(1);
        if Self::chunk_size_for(size) <= chunk {
            self.live_bytes = self.live_bytes - requested + size;
            if let Some(entry) = self.live.get_mut(&ptr) {
                entry.2 = size;
            }
            return ptr;
        }
        let newp = self.malloc(size, site, gs, mem);
        mem.copy(newp, ptr, requested.min(size));
        self.free(ptr, mem);
        newp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> CallSite {
        CallSite::new(halo_vm::FuncId(0), 0)
    }

    fn setup() -> (BoundaryTagAllocator, GroupState, Memory) {
        (BoundaryTagAllocator::new(), GroupState::default(), Memory::new())
    }

    #[test]
    fn headers_space_objects_apart() {
        let (mut a, gs, mut mem) = setup();
        let p1 = a.malloc(16, site(), &gs, &mut mem);
        let p2 = a.malloc(16, site(), &gs, &mut mem);
        // 16 payload + 16 header = 32-byte stride (vs 16 under jemalloc).
        assert_eq!(p2 - p1, 32);
    }

    #[test]
    fn free_chunks_coalesce_and_are_reused() {
        let (mut a, gs, mut mem) = setup();
        let p1 = a.malloc(16, site(), &gs, &mut mem);
        let p2 = a.malloc(16, site(), &gs, &mut mem);
        let _p3 = a.malloc(16, site(), &gs, &mut mem);
        a.free(p1, &mut mem);
        a.free(p2, &mut mem);
        // p1+p2 coalesced into one 64-byte chunk; a 40-byte request fits it.
        let big = a.malloc(40, site(), &gs, &mut mem);
        assert_eq!(big, p1);
    }

    #[test]
    fn best_fit_prefers_snuggest_chunk() {
        let (mut a, gs, mut mem) = setup();
        let big = a.malloc(200, site(), &gs, &mut mem);
        let guard1 = a.malloc(16, site(), &gs, &mut mem);
        let small = a.malloc(24, site(), &gs, &mut mem);
        let guard2 = a.malloc(16, site(), &gs, &mut mem);
        let _ = (guard1, guard2);
        a.free(big, &mut mem);
        a.free(small, &mut mem);
        // A 24-byte request best-fits the small hole, not the big one.
        assert_eq!(a.malloc(24, site(), &gs, &mut mem), small);
    }

    #[test]
    fn top_chunk_absorbs_frees_at_the_end() {
        let (mut a, gs, mut mem) = setup();
        let p1 = a.malloc(64, site(), &gs, &mut mem);
        let extent_before = a.heap_extent();
        a.free(p1, &mut mem);
        assert!(a.heap_extent() < extent_before);
        // Reallocation grows from the same place.
        assert_eq!(a.malloc(64, site(), &gs, &mut mem), p1);
    }

    #[test]
    fn realloc_in_place_then_move() {
        let (mut a, gs, mut mem) = setup();
        let p = a.malloc(32, site(), &gs, &mut mem);
        let _guard = a.malloc(8, site(), &gs, &mut mem);
        mem.write(p, 8, 0x77);
        assert_eq!(a.realloc(p, 20, site(), &gs, &mut mem), p);
        let q = a.realloc(p, 500, site(), &gs, &mut mem);
        assert_ne!(q, p);
        assert_eq!(mem.read(q, 8), 0x77);
    }

    #[test]
    fn live_accounting() {
        let (mut a, gs, mut mem) = setup();
        let p = a.malloc(100, site(), &gs, &mut mem);
        assert_eq!(a.live_bytes(), 100);
        assert_eq!(a.live_objects(), 1);
        a.free(p, &mut mem);
        assert_eq!(a.live_bytes(), 0);
        assert_eq!(a.live_objects(), 0);
    }

    #[test]
    fn header_writes_touch_simulated_memory() {
        let (mut a, gs, mut mem) = setup();
        let p = a.malloc(16, site(), &gs, &mut mem);
        // The size field sits 16 bytes before the payload.
        assert_eq!(mem.read(p - 16, 8), 32);
        assert_eq!(mem.read(p - 8, 8), 1);
    }
}
