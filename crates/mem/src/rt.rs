//! A *native* group-pool allocator runtime implementing
//! [`std::alloc::GlobalAlloc`].
//!
//! Everything else in this crate runs against the simulated address space.
//! This module is the other half of the reproduction story: the specialised
//! allocator that HALO synthesises is, in the paper, a real shared library
//! interposed on `malloc`. Here the same design runs on real memory:
//!
//! * monitored-call-site bits live in a thread-local word, maintained by
//!   RAII [`SiteGuard`]s (standing in for the instructions BOLT inserts);
//! * [`GroupHeap`] bump-allocates grouped requests from chunk-aligned
//!   chunks obtained from the system allocator, locates chunk headers by
//!   pointer masking, counts `live_regions` per chunk, and recycles empty
//!   chunks;
//! * non-grouped requests forward to [`std::alloc::System`].
//!
//! The `global_alloc` example installs a `GroupHeap` as the program's
//! `#[global_allocator]` and demonstrates grouped co-location end to end.
//!
//! # Example
//!
//! ```
//! use halo_mem::rt::{enter_site, GroupHeap, NativeSelector};
//! use std::alloc::{GlobalAlloc, Layout};
//!
//! static SELECTORS: &[NativeSelector] =
//!     &[NativeSelector { group: 0, masks: &[0b1] }];
//! static HEAP: GroupHeap = GroupHeap::new(SELECTORS);
//!
//! let layout = Layout::from_size_align(24, 8).unwrap();
//! let _guard = enter_site(0); // control flow passed monitored site 0
//! let a = unsafe { HEAP.alloc(layout) };
//! let b = unsafe { HEAP.alloc(layout) };
//! assert_eq!(a as usize + 24, b as usize); // co-located in the group chunk
//! unsafe {
//!     HEAP.dealloc(a, layout);
//!     HEAP.dealloc(b, layout);
//! }
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Chunk size for the native heap (1 MiB, the paper's default).
pub const CHUNK_SIZE: usize = 1 << 20;
/// Requests at or above this size are never grouped (page size, §4.4).
pub const MAX_GROUPED_SIZE: usize = 4096;
/// Maximum simultaneously tracked chunks.
const MAX_CHUNKS: usize = 1024;
/// Maximum groups addressable by native selectors.
const MAX_GROUPS: usize = 64;
/// Bytes reserved at the start of each chunk for its header.
const CHUNK_HEADER: usize = 64;

thread_local! {
    static SITE_BITS: Cell<u64> = const { Cell::new(0) };
}

/// RAII guard marking "control flow is inside monitored call site `bit`".
///
/// In the paper this is a pair of instructions inserted by the BOLT pass;
/// native Rust programs (or generated shims) place guards instead. Dropping
/// the guard restores the previous state, which is strictly more robust
/// than the paper's single-bit set/unset under recursion.
#[derive(Debug)]
pub struct SiteGuard {
    bit: u8,
    was_set: bool,
}

/// Set monitored-site bit `bit` for the current thread until the returned
/// guard drops.
pub fn enter_site(bit: u8) -> SiteGuard {
    debug_assert!(bit < 64);
    let mask = 1u64 << bit;
    let was_set = SITE_BITS.with(|b| {
        let old = b.get();
        b.set(old | mask);
        old & mask != 0
    });
    SiteGuard { bit, was_set }
}

/// Current thread's monitored-site bits.
pub fn current_bits() -> u64 {
    SITE_BITS.with(Cell::get)
}

impl Drop for SiteGuard {
    fn drop(&mut self) {
        if !self.was_set {
            let mask = 1u64 << self.bit;
            SITE_BITS.with(|b| b.set(b.get() & !mask));
        }
    }
}

/// A native group selector: DNF over the thread-local site bits, with each
/// conjunction pre-compiled to a bit mask.
#[derive(Debug, Clone, Copy)]
pub struct NativeSelector {
    /// Group index (must be < 64).
    pub group: usize,
    /// The selector matches when `bits & mask == mask` for any mask.
    pub masks: &'static [u64],
}

impl NativeSelector {
    #[inline]
    fn matches(&self, bits: u64) -> bool {
        self.masks.iter().any(|&m| m & !bits == 0)
    }
}

#[derive(Debug, Clone, Copy)]
struct ChunkInfo {
    base: usize,
    group: usize,
    bump: usize,
    live_regions: usize,
}

struct HeapState {
    chunks: [Option<ChunkInfo>; MAX_CHUNKS],
    current: [Option<usize>; MAX_GROUPS], // index into `chunks` per group
}

/// The native group-pool heap. Safe to use as `#[global_allocator]`.
///
/// Grouped requests (size below [`MAX_GROUPED_SIZE`], matching selector)
/// are bump allocated from group-owned chunks; everything else forwards to
/// [`System`]. Deallocation classifies pointers by masking to the chunk
/// base and checking the chunk registry, exactly as §4.4 describes.
pub struct GroupHeap {
    selectors: &'static [NativeSelector],
    lock: AtomicBool,
    state: std::cell::UnsafeCell<Option<Box<HeapState>>>,
}

// SAFETY: all access to `state` happens under `lock` (a spin lock), and the
// boxed state is never handed out by reference beyond the critical section.
unsafe impl Sync for GroupHeap {}

impl GroupHeap {
    /// Create a heap with a static selector table (const-constructible so
    /// it can be a `static` / `#[global_allocator]`).
    pub const fn new(selectors: &'static [NativeSelector]) -> Self {
        GroupHeap {
            selectors,
            lock: AtomicBool::new(false),
            state: std::cell::UnsafeCell::new(None),
        }
    }

    fn with_state<R>(&self, f: impl FnOnce(&mut HeapState) -> R) -> R {
        while self
            .lock
            .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            std::hint::spin_loop();
        }
        // SAFETY: we hold the spin lock.
        let state = unsafe { &mut *self.state.get() };
        let state = state.get_or_insert_with(|| {
            Box::new(HeapState { chunks: [None; MAX_CHUNKS], current: [None; MAX_GROUPS] })
        });
        let r = f(state);
        self.lock.store(false, Ordering::Release);
        r
    }

    fn classify(&self, bits: u64) -> Option<usize> {
        self.selectors.iter().find(|s| s.matches(bits)).map(|s| s.group)
    }

    fn chunk_layout() -> Layout {
        // SAFETY: CHUNK_SIZE is a nonzero power of two.
        unsafe { Layout::from_size_align_unchecked(CHUNK_SIZE, CHUNK_SIZE) }
    }

    fn group_alloc(&self, group: usize, layout: Layout) -> *mut u8 {
        if group >= MAX_GROUPS {
            return std::ptr::null_mut();
        }
        self.with_state(|st| {
            let size = layout.size().max(1);
            let align = layout.align().max(8);
            // Try the group's current chunk.
            if let Some(ci) = st.current[group] {
                if let Some(chunk) = &mut st.chunks[ci] {
                    let ptr = (chunk.bump + align - 1) & !(align - 1);
                    if ptr + size <= chunk.base + CHUNK_SIZE {
                        chunk.bump = ptr + size;
                        chunk.live_regions += 1;
                        return ptr as *mut u8;
                    }
                }
            }
            // Need a fresh chunk.
            let Some(slot) = st.chunks.iter().position(Option::is_none) else {
                return std::ptr::null_mut();
            };
            // SAFETY: chunk_layout is valid; System returns null on failure.
            let base = unsafe { System.alloc(Self::chunk_layout()) };
            if base.is_null() {
                return std::ptr::null_mut();
            }
            let base = base as usize;
            debug_assert_eq!(base % CHUNK_SIZE, 0);
            let ptr = (base + CHUNK_HEADER + align - 1) & !(align - 1);
            st.chunks[slot] = Some(ChunkInfo { base, group, bump: ptr + size, live_regions: 1 });
            st.current[group] = Some(slot);
            ptr as *mut u8
        })
    }

    /// Try to free `ptr` as a group allocation; returns `false` when the
    /// pointer is not chunk-owned (caller should forward to the system).
    fn group_dealloc(&self, ptr: *mut u8) -> bool {
        let base = (ptr as usize) & !(CHUNK_SIZE - 1);
        self.with_state(|st| {
            let Some(slot) = st.chunks.iter().position(|c| c.is_some_and(|c| c.base == base))
            else {
                return false;
            };
            // Invariant, not a recoverable state: `position` just found
            // this exact slot occupied under the same lock.
            #[expect(clippy::expect_used, reason = "slot located occupied under this lock")]
            let chunk = st.chunks[slot].as_mut().expect("slot just found");
            chunk.live_regions -= 1;
            if chunk.live_regions == 0 {
                if st.current[chunk.group] == Some(slot) {
                    // Reset the current chunk in place.
                    chunk.bump = chunk.base + CHUNK_HEADER;
                } else {
                    #[expect(clippy::expect_used, reason = "slot located occupied under this lock")]
                    let chunk = st.chunks[slot].take().expect("present");
                    // SAFETY: `base` came from System.alloc(chunk_layout()).
                    unsafe { System.dealloc(chunk.base as *mut u8, Self::chunk_layout()) };
                }
            }
            true
        })
    }

    /// Number of live chunks (for tests and monitoring).
    pub fn chunk_count(&self) -> usize {
        self.with_state(|st| st.chunks.iter().filter(|c| c.is_some()).count())
    }
}

impl std::fmt::Debug for GroupHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupHeap")
            .field("selectors", &self.selectors.len())
            .finish_non_exhaustive()
    }
}

// SAFETY: alloc returns unique, live, suitably aligned blocks; dealloc
// releases exactly the block allocated for `ptr`. Grouped blocks come from
// private bump chunks; everything else is delegated to `System` unchanged.
unsafe impl GlobalAlloc for GroupHeap {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if layout.size() < MAX_GROUPED_SIZE && layout.align() <= CHUNK_HEADER {
            if let Some(group) = self.classify(current_bits()) {
                let p = self.group_alloc(group, layout);
                if !p.is_null() {
                    return p;
                }
            }
        }
        // SAFETY: forwarded verbatim.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        if !self.group_dealloc(ptr) {
            // SAFETY: `ptr` was returned by `System.alloc(layout)` above.
            unsafe { System.dealloc(ptr, layout) }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_SELECTORS: &[NativeSelector] =
        &[NativeSelector { group: 0, masks: &[0b01] }, NativeSelector { group: 1, masks: &[0b10] }];

    fn layout(n: usize) -> Layout {
        Layout::from_size_align(n, 8).unwrap()
    }

    #[test]
    fn site_guard_sets_and_restores_bits() {
        assert_eq!(current_bits() & 0b11, 0);
        {
            let _g0 = enter_site(0);
            assert_eq!(current_bits() & 0b11, 0b01);
            {
                let _g1 = enter_site(1);
                assert_eq!(current_bits() & 0b11, 0b11);
            }
            assert_eq!(current_bits() & 0b11, 0b01);
            // Re-entering an already-set bit must not clear it on drop.
            {
                let _g0b = enter_site(0);
            }
            assert_eq!(current_bits() & 0b11, 0b01);
        }
        assert_eq!(current_bits() & 0b11, 0);
    }

    #[test]
    fn grouped_allocations_are_colocated() {
        static HEAP: GroupHeap = GroupHeap::new(TEST_SELECTORS);
        let _g = enter_site(0);
        let a = unsafe { HEAP.alloc(layout(32)) };
        let b = unsafe { HEAP.alloc(layout(32)) };
        assert!(!a.is_null() && !b.is_null());
        assert_eq!(a as usize + 32, b as usize);
        unsafe {
            HEAP.dealloc(a, layout(32));
            HEAP.dealloc(b, layout(32));
        }
    }

    #[test]
    fn groups_use_distinct_chunks() {
        static HEAP: GroupHeap = GroupHeap::new(TEST_SELECTORS);
        let a = {
            let _g = enter_site(0);
            unsafe { HEAP.alloc(layout(16)) }
        };
        let b = {
            let _g = enter_site(1);
            unsafe { HEAP.alloc(layout(16)) }
        };
        assert_ne!((a as usize) & !(CHUNK_SIZE - 1), (b as usize) & !(CHUNK_SIZE - 1));
        unsafe {
            HEAP.dealloc(a, layout(16));
            HEAP.dealloc(b, layout(16));
        }
    }

    #[test]
    fn unmatched_bits_fall_through_to_system() {
        static HEAP: GroupHeap = GroupHeap::new(TEST_SELECTORS);
        // No guard: bits are zero, no selector matches.
        let p = unsafe { HEAP.alloc(layout(64)) };
        assert!(!p.is_null());
        assert_eq!(HEAP.chunk_count(), 0, "no group chunk was created");
        unsafe { HEAP.dealloc(p, layout(64)) };
    }

    #[test]
    fn large_requests_bypass_groups() {
        static HEAP: GroupHeap = GroupHeap::new(TEST_SELECTORS);
        let _g = enter_site(0);
        let p = unsafe { HEAP.alloc(layout(MAX_GROUPED_SIZE)) };
        assert!(!p.is_null());
        assert_eq!(HEAP.chunk_count(), 0);
        unsafe { HEAP.dealloc(p, layout(MAX_GROUPED_SIZE)) };
    }

    #[test]
    fn empty_noncurrent_chunks_are_released() {
        static HEAP: GroupHeap = GroupHeap::new(TEST_SELECTORS);
        let _g = enter_site(0);
        // Fill more than one chunk.
        let n = CHUNK_SIZE / 2048 + 4;
        let ptrs: Vec<*mut u8> = (0..n).map(|_| unsafe { HEAP.alloc(layout(2048)) }).collect();
        assert!(HEAP.chunk_count() >= 2);
        for p in ptrs {
            unsafe { HEAP.dealloc(p, layout(2048)) };
        }
        // The non-current chunk was returned to the system; the current one
        // is kept (reset in place).
        assert_eq!(HEAP.chunk_count(), 1);
    }

    #[test]
    fn zero_size_alloc_is_safe() {
        static HEAP: GroupHeap = GroupHeap::new(TEST_SELECTORS);
        let _g = enter_site(0);
        let l = Layout::from_size_align(0, 1).unwrap();
        let p = unsafe { HEAP.alloc(l) };
        assert!(!p.is_null());
        unsafe { HEAP.dealloc(p, l) };
    }
}
