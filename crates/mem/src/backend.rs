//! The allocator-side contract of the evaluation's backend registry.
//!
//! Every allocator a `BackendSpec` (in `halo_core`) can construct
//! implements [`BackendAllocator`]: the plain [`VmAllocator`] interface
//! plus uniform, optional access to the technique-specific diagnostics the
//! evaluation reports (fragmentation and group-allocator event counters).
//! Allocators without grouped pools simply report `None`, so the
//! evaluation loop needs no per-backend downcasting or special arms.

use crate::faults::{DegradeStats, FaultInjector, FaultPlan};
use crate::group_alloc::{FragReport, GroupAllocStats};
use crate::sharded::ShardedAllocStats;
use crate::{
    BoundaryTagAllocator, BumpAllocator, HaloGroupAllocator, RandomGroupAllocator,
    ShardedHaloAllocator, SizeClassAllocator,
};
use halo_vm::VmAllocator;

/// A [`VmAllocator`] measurable as an evaluation backend.
pub trait BackendAllocator: VmAllocator {
    /// Fragmentation of grouped data at peak (Table 1), if this allocator
    /// maintains grouped pools.
    fn backend_frag(&self) -> Option<FragReport> {
        None
    }

    /// Group-allocator event counters, if this allocator maintains grouped
    /// pools.
    fn backend_stats(&self) -> Option<GroupAllocStats> {
        None
    }

    /// Cross-shard remote-free pressure counters (queue pushes, drains,
    /// peak depth), if this allocator shards by thread.
    fn backend_sharded_stats(&self) -> Option<ShardedAllocStats> {
        None
    }

    /// Attach a fault injector replaying `plan` (chaos runs / `halo run
    /// --inject`). Returns whether this backend supports injection; the
    /// baselines do not — they predate the degradation ladder and are not
    /// what the robustness claim is about.
    fn backend_inject(&mut self, _plan: &FaultPlan) -> bool {
        false
    }

    /// Degradation-ladder counters, if this backend maintains them.
    fn backend_degrade(&self) -> Option<DegradeStats> {
        None
    }
}

impl BackendAllocator for SizeClassAllocator {}
impl BackendAllocator for BoundaryTagAllocator {}
impl BackendAllocator for BumpAllocator {}
impl BackendAllocator for RandomGroupAllocator {}

impl<F: VmAllocator> BackendAllocator for HaloGroupAllocator<F> {
    fn backend_frag(&self) -> Option<FragReport> {
        Some(self.frag_report())
    }

    fn backend_stats(&self) -> Option<GroupAllocStats> {
        Some(self.stats())
    }

    fn backend_inject(&mut self, plan: &FaultPlan) -> bool {
        self.set_fault_injector(std::sync::Arc::new(FaultInjector::new(plan.clone())));
        true
    }

    fn backend_degrade(&self) -> Option<DegradeStats> {
        Some(self.degrade_stats())
    }
}

impl BackendAllocator for ShardedHaloAllocator {
    fn backend_frag(&self) -> Option<FragReport> {
        Some(self.frag_report())
    }

    fn backend_stats(&self) -> Option<GroupAllocStats> {
        Some(self.stats())
    }

    fn backend_sharded_stats(&self) -> Option<ShardedAllocStats> {
        Some(self.sharded_stats())
    }

    fn backend_inject(&mut self, plan: &FaultPlan) -> bool {
        self.set_fault_injector(std::sync::Arc::new(FaultInjector::new(plan.clone())));
        true
    }

    fn backend_degrade(&self) -> Option<DegradeStats> {
        Some(self.degrade_stats())
    }
}
