//! Deterministic fault injection and the degradation counters it drives.
//!
//! The ROADMAP's production framing (a long-running host process serving
//! live traffic) demands that the allocator's failure mode be "lose the
//! optimisation", never "lose the process": HALO's own safety story is
//! that an ungrouped fallback path always exists (§4.4 forwards
//! non-groupable requests wholesale). This module supplies the machinery
//! to *prove* that property:
//!
//! * [`FaultPlan`] — a seeded, declarative schedule of faults. Whether a
//!   fault fires is a pure function of `(seed, site, count)`, so any run
//!   is replayable bit for bit from its seed (`halo run --inject
//!   seed=N,…`).
//! * [`FaultInjector`] — the thread-safe runtime form: per-site atomic
//!   occurrence counters evaluated against the plan. Allocators carry an
//!   `Option<Arc<FaultInjector>>`; `None` costs one branch on the hot
//!   path and guarantees byte-identical behaviour to a build without this
//!   module.
//! * [`DegradeStats`] — counters for every rung of the degradation ladder
//!   (fallback routes, queue overflows, poisoned-lock recoveries,
//!   degraded groups/shards), surfaced end to end through
//!   `ShardedAllocStats`/`ConfigResult` into `halo run --json`.
//!
//! The injectable sites mirror the real resource edges of the runtime:
//! VMM span exhaustion, chunk acquisition, remote-free queue capacity,
//! and a thread panicking while holding a shard lock.

use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

/// A place in the allocator stack where a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// `Vmm::reserve` for a group slab fails as if the span were
    /// exhausted ([`crate::ReserveError::SpanExhausted`]).
    VmmReserve,
    /// Chunk acquisition (fresh carve or pool reuse) fails at the Nth
    /// request, as if the chunk map could not grow.
    ChunkAlloc,
    /// A remote-free queue push is treated as hitting the queue bound,
    /// forcing the overflow path (a direct owner-lock free).
    RemoteQueue,
    /// The calling thread panics while holding its shard's allocator
    /// lock, poisoning it for every other thread.
    ShardPanic,
}

impl FaultSite {
    /// Every injectable site, in counter order.
    pub const ALL: [FaultSite; 4] = [
        FaultSite::VmmReserve,
        FaultSite::ChunkAlloc,
        FaultSite::RemoteQueue,
        FaultSite::ShardPanic,
    ];

    /// Stable short name (the `--inject` spelling).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::VmmReserve => "vmm",
            FaultSite::ChunkAlloc => "chunk",
            FaultSite::RemoteQueue => "queue",
            FaultSite::ShardPanic => "panic",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::VmmReserve => 0,
            FaultSite::ChunkAlloc => 1,
            FaultSite::RemoteQueue => 2,
            FaultSite::ShardPanic => 3,
        }
    }

    /// Per-site salt, so the same occurrence count at different sites
    /// draws independent pseudo-random decisions.
    fn salt(self) -> u64 {
        0x9e37_79b9_7f4a_7c15u64.wrapping_mul(self.index() as u64 + 1)
    }
}

impl FromStr for FaultSite {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        FaultSite::ALL
            .into_iter()
            .find(|site| site.name() == s)
            .ok_or_else(|| format!("unknown fault site '{s}' (vmm|chunk|queue|panic)"))
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mix, used to turn
/// `(seed, site, count)` into a reproducible decision.
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A declarative, seeded fault schedule.
///
/// Two kinds of entry compose:
/// * **exact** (`site@n`): the fault fires at exactly the `n`th occurrence
///   of the site (1-based), and at no other;
/// * **rate** (`site~p`): each occurrence fires independently with
///   probability `p`, decided by hashing `(seed, site, count)` — the same
///   seed always yields the same schedule, regardless of threading.
///
/// An empty plan (no entries) never fires and is the `Default`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The seed all rate-based decisions hash against.
    pub seed: u64,
    exact: Vec<(FaultSite, u64)>,
    rates: Vec<(FaultSite, f64)>,
}

impl FaultPlan {
    /// An empty plan with the given seed (fires nothing until entries are
    /// added with [`Self::at`] / [`Self::rate`]).
    pub fn new(seed: u64) -> Self {
        FaultPlan { seed, exact: Vec::new(), rates: Vec::new() }
    }

    /// Fire at exactly the `nth` occurrence (1-based) of `site`.
    #[must_use]
    pub fn at(mut self, site: FaultSite, nth: u64) -> Self {
        self.exact.push((site, nth));
        self
    }

    /// Fire each occurrence of `site` independently with probability
    /// `rate` (clamped to `[0, 1]`), seeded by [`Self::seed`].
    #[must_use]
    pub fn rate(mut self, site: FaultSite, rate: f64) -> Self {
        self.rates.push((site, rate.clamp(0.0, 1.0)));
        self
    }

    /// Whether the plan can ever fire.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty() && self.rates.iter().all(|&(_, r)| r <= 0.0)
    }

    /// The pure decision function: does occurrence `count` (1-based) of
    /// `site` fault under this plan?
    pub fn decides(&self, site: FaultSite, count: u64) -> bool {
        if self.exact.iter().any(|&(s, n)| s == site && n == count) {
            return true;
        }
        self.rates.iter().any(|&(s, r)| {
            // Map the hash to [0, 1) with 53 bits of precision.
            s == site
                && r > 0.0
                && (mix64(self.seed ^ site.salt() ^ count) >> 11) as f64 / ((1u64 << 53) as f64) < r
        })
    }

    /// Parse the `--inject` spec: comma-separated `seed=N`, `site@N`
    /// (exact occurrence), and `site~RATE` (per-occurrence probability)
    /// entries, e.g. `seed=7,vmm@3,queue~0.01`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed entries, unknown
    /// sites, or unparsable numbers.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            if let Some(v) = part.strip_prefix("seed=") {
                plan.seed =
                    v.parse().map_err(|_| format!("invalid fault seed '{v}' (an integer)"))?;
            } else if let Some((site, nth)) = part.split_once('@') {
                let site: FaultSite = site.parse()?;
                let nth: u64 = nth
                    .parse()
                    .map_err(|_| format!("invalid occurrence '{nth}' in '{part}' (an integer)"))?;
                if nth == 0 {
                    return Err(format!("occurrence in '{part}' is 1-based; use {site}@1"));
                }
                plan = plan.at(site, nth);
            } else if let Some((site, rate)) = part.split_once('~') {
                let site: FaultSite = site.parse()?;
                let rate: f64 = rate
                    .parse()
                    .map_err(|_| format!("invalid rate '{rate}' in '{part}' (a fraction)"))?;
                if !(0.0..=1.0).contains(&rate) {
                    return Err(format!("rate in '{part}' must be within [0, 1]"));
                }
                plan = plan.rate(site, rate);
            } else {
                return Err(format!(
                    "malformed fault entry '{part}' (expected seed=N, site@N, or site~RATE)"
                ));
            }
        }
        Ok(plan)
    }
}

impl std::fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for (site, nth) in &self.exact {
            write!(f, ",{site}@{nth}")?;
        }
        for (site, rate) in &self.rates {
            write!(f, ",{site}~{rate}")?;
        }
        Ok(())
    }
}

/// The thread-safe runtime form of a [`FaultPlan`]: per-site occurrence
/// counters (atomics) evaluated against the plan's pure decision
/// function. Shared by `Arc` between an allocator and its shards so one
/// schedule spans the whole runtime.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: FaultPlan,
    counts: [AtomicU64; 4],
    fired: [AtomicU64; 4],
}

impl FaultInjector {
    /// An injector replaying `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector { plan, counts: Default::default(), fired: Default::default() }
    }

    /// The plan this injector replays.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Record one occurrence of `site` and decide whether it faults.
    /// Thread-safe; each call consumes the next occurrence number.
    pub fn should_fail(&self, site: FaultSite) -> bool {
        if self.plan.is_empty() {
            return false;
        }
        let n = self.counts[site.index()].fetch_add(1, Ordering::Relaxed) + 1;
        let hit = self.plan.decides(site, n);
        if hit {
            self.fired[site.index()].fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Occurrences recorded at `site` so far.
    pub fn occurrences(&self, site: FaultSite) -> u64 {
        self.counts[site.index()].load(Ordering::Relaxed)
    }

    /// Faults fired at `site` so far.
    pub fn fired_at(&self, site: FaultSite) -> u64 {
        self.fired[site.index()].load(Ordering::Relaxed)
    }

    /// Faults fired across all sites.
    pub fn fired(&self) -> u64 {
        FaultSite::ALL.into_iter().map(|s| self.fired_at(s)).sum()
    }
}

/// Counters for the degradation ladder: every absorbed fault increments
/// exactly one of these, so "no crash" is observable rather than assumed.
/// Summed across shards and surfaced through `ShardedAllocStats` /
/// `ConfigResult` into the `degradation` section of `halo run --json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradeStats {
    /// Requests routed to the fallback allocator because their group (or
    /// whole shard) was degraded or chunk acquisition failed.
    pub fallback_routes: u64,
    /// Groups currently marked degraded (new requests bypass their
    /// chunks; live pointers keep working).
    pub degraded_groups: u64,
    /// Shards quarantined after a poisoned lock failed invariant
    /// re-validation (every group in the shard degraded).
    pub degraded_shards: u64,
    /// Remote-free queue pushes that hit the queue bound and fell back to
    /// a direct owner-lock free (backpressure, not unbounded growth).
    pub queue_overflows: u64,
    /// Poisoned locks recovered via `PoisonError::into_inner` after
    /// re-validation.
    pub poisoned_recovered: u64,
    /// Frees of pointers owned by no shard/region, absorbed as counted
    /// no-ops instead of panicking.
    pub invalid_frees: u64,
    /// Faults the injector actually fired (0 outside chaos runs).
    pub injected_faults: u64,
}

impl DegradeStats {
    /// Whether any counter is nonzero (gates the CLI's `degradation`
    /// output so fault-free runs stay byte-identical).
    pub fn any(&self) -> bool {
        *self != DegradeStats::default()
    }

    /// Field-wise sum. Fully destructured: a field added to
    /// [`DegradeStats`] must be accounted for here or this stops
    /// compiling (the same guard `ShardedHaloAllocator::stats` uses).
    pub fn merge(&mut self, other: DegradeStats) {
        let DegradeStats {
            fallback_routes,
            degraded_groups,
            degraded_shards,
            queue_overflows,
            poisoned_recovered,
            invalid_frees,
            injected_faults,
        } = other;
        self.fallback_routes += fallback_routes;
        self.degraded_groups += degraded_groups;
        self.degraded_shards += degraded_shards;
        self.queue_overflows += queue_overflows;
        self.poisoned_recovered += poisoned_recovered;
        self.invalid_frees += invalid_frees;
        self.injected_faults += injected_faults;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn empty_plan_never_fires() {
        let inj = FaultInjector::new(FaultPlan::default());
        for _ in 0..1000 {
            assert!(!inj.should_fail(FaultSite::VmmReserve));
        }
        assert_eq!(inj.fired(), 0);
        assert_eq!(inj.occurrences(FaultSite::VmmReserve), 0, "empty plans skip counting");
    }

    #[test]
    fn exact_entry_fires_at_its_occurrence_only() {
        let inj = FaultInjector::new(FaultPlan::new(1).at(FaultSite::ChunkAlloc, 3));
        let fired: Vec<bool> = (0..6).map(|_| inj.should_fail(FaultSite::ChunkAlloc)).collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        assert_eq!(inj.fired_at(FaultSite::ChunkAlloc), 1);
        // Other sites are untouched.
        assert!(!inj.should_fail(FaultSite::VmmReserve));
    }

    #[test]
    fn rate_decisions_are_a_pure_function_of_seed_site_count() {
        let plan = FaultPlan::new(42).rate(FaultSite::RemoteQueue, 0.25);
        let a: Vec<bool> = (1..=500).map(|n| plan.decides(FaultSite::RemoteQueue, n)).collect();
        let b: Vec<bool> = (1..=500).map(|n| plan.decides(FaultSite::RemoteQueue, n)).collect();
        assert_eq!(a, b, "replayable");
        let hits = a.iter().filter(|&&h| h).count();
        assert!((50..=200).contains(&hits), "rate 0.25 over 500 draws fired {hits} times");
        // A different seed draws a different schedule.
        let other = FaultPlan::new(43).rate(FaultSite::RemoteQueue, 0.25);
        let c: Vec<bool> = (1..=500).map(|n| other.decides(FaultSite::RemoteQueue, n)).collect();
        assert_ne!(a, c);
        // A different site draws independently under the same seed.
        let d: Vec<bool> = (1..=500).map(|n| plan.decides(FaultSite::ShardPanic, n)).collect();
        assert!(d.iter().all(|&h| !h), "no rate configured for that site");
    }

    #[test]
    fn injector_counts_are_thread_safe() {
        let inj = Arc::new(FaultInjector::new(FaultPlan::new(7).rate(FaultSite::VmmReserve, 0.5)));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let inj = Arc::clone(&inj);
                s.spawn(move || {
                    for _ in 0..250 {
                        inj.should_fail(FaultSite::VmmReserve);
                    }
                });
            }
        });
        assert_eq!(inj.occurrences(FaultSite::VmmReserve), 1000);
        assert!(inj.fired_at(FaultSite::VmmReserve) > 0);
    }

    #[test]
    fn parse_round_trips_and_rejects_malformed_specs() {
        let plan = FaultPlan::parse("seed=9,vmm@3,chunk@1,queue~0.125,panic@2").expect("parses");
        assert_eq!(plan.seed, 9);
        assert!(plan.decides(FaultSite::VmmReserve, 3));
        assert!(!plan.decides(FaultSite::VmmReserve, 2));
        assert!(plan.decides(FaultSite::ChunkAlloc, 1));
        assert!(plan.decides(FaultSite::ShardPanic, 2));
        let reparsed = FaultPlan::parse(&plan.to_string()).expect("display round-trips");
        assert_eq!(plan, reparsed);
        for bad in ["seed=x", "warp@1", "vmm@0", "vmm@z", "queue~2", "queue~x", "vmm"] {
            assert!(FaultPlan::parse(bad).is_err(), "'{bad}' must be rejected");
        }
        assert!(FaultPlan::parse("").expect("empty spec is the empty plan").is_empty());
    }
}
