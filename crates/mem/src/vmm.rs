//! Virtual-address reservation: the "OS" handing out `mmap`-style regions.

/// Why a reservation could not be granted. `mmap` returning `MAP_FAILED`
/// is a runtime condition in a long-running host process, not a setup
/// bug, so [`Vmm::reserve`] reports it as a typed error the allocator
/// stack can degrade on (route to the fallback path) instead of
/// asserting the process away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReserveError {
    /// The span has no room for `requested` more bytes.
    SpanExhausted {
        /// Bytes asked for (including alignment padding).
        requested: u64,
        /// Bytes still available at the requested alignment.
        available: u64,
    },
    /// The reservation arithmetic overflowed the 64-bit address space.
    Overflow,
}

impl std::fmt::Display for ReserveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReserveError::SpanExhausted { requested, available } => write!(
                f,
                "virtual address span exhausted ({requested} bytes requested, {available} available)"
            ),
            ReserveError::Overflow => write!(f, "reservation overflows the address space"),
        }
    }
}

impl std::error::Error for ReserveError {}

/// Hands out non-overlapping, aligned reservations from a private span of
/// the simulated 64-bit address space.
///
/// Each allocator instance owns one `Vmm` rooted at a distinct base so that
/// composed allocators (e.g. the group allocator plus its fallback) can
/// never collide. Reservation is pure bookkeeping — pages only materialise
/// when the program touches them (see [`halo_vm::Memory`]), which models
/// demand paging.
#[derive(Debug, Clone)]
pub struct Vmm {
    base: u64,
    next: u64,
    limit: u64,
}

impl Vmm {
    /// Create a reservation span `[base, base + span)`. A span that would
    /// overflow the address space is clamped to its end; the shortfall
    /// then surfaces as [`ReserveError::SpanExhausted`] from
    /// [`Self::reserve`], never as a panic.
    ///
    /// # Panics
    ///
    /// Panics if `base` is 0 — the null page must stay unmapped, and a
    /// zero base is a constructor bug, not a runtime condition.
    pub fn new(base: u64, span: u64) -> Self {
        assert!(base > 0, "null page must remain unreserved");
        Vmm { base, next: base, limit: base.saturating_add(span) }
    }

    /// Reserve `size` bytes aligned to `align` (a power of two).
    /// Returns the base address of the reservation.
    ///
    /// # Errors
    ///
    /// Returns [`ReserveError`] when the span is exhausted or the
    /// arithmetic overflows — the callers' cue to degrade (the group
    /// allocator routes the request to its fallback; the artefact's note
    /// about needing 16 GiB of mappable virtual memory is a real limit a
    /// production host can hit).
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two (a programmer error; no
    /// caller computes alignments from runtime data).
    pub fn reserve(&mut self, size: u64, align: u64) -> Result<u64, ReserveError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = self
            .next
            .checked_add(align - 1)
            .map(|a| a & !(align - 1))
            .ok_or(ReserveError::Overflow)?;
        let end = addr.checked_add(size.max(1)).ok_or(ReserveError::Overflow)?;
        if end > self.limit {
            return Err(ReserveError::SpanExhausted {
                requested: end - self.next,
                available: self.limit.saturating_sub(self.next),
            });
        }
        self.next = end;
        Ok(addr)
    }

    /// Bytes reserved so far (including alignment padding).
    pub fn reserved_bytes(&self) -> u64 {
        self.next - self.base
    }

    /// Whether `addr` falls inside any reservation made so far.
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.next).contains(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_do_not_overlap() {
        let mut v = Vmm::new(0x1000, 1 << 30);
        let a = v.reserve(100, 8).unwrap();
        let b = v.reserve(100, 8).unwrap();
        assert!(a + 100 <= b);
    }

    #[test]
    fn alignment_respected() {
        let mut v = Vmm::new(0x1000, 1 << 30);
        v.reserve(3, 8).unwrap();
        let b = v.reserve(64, 1 << 20).unwrap();
        assert_eq!(b % (1 << 20), 0);
    }

    #[test]
    fn contains_tracks_extent() {
        let mut v = Vmm::new(0x1000, 1 << 20);
        assert!(!v.contains(0x1000));
        let a = v.reserve(16, 8).unwrap();
        assert!(v.contains(a));
        assert!(v.contains(a + 15));
        assert!(!v.contains(a + 16));
    }

    #[test]
    fn exhaustion_returns_error() {
        let mut v = Vmm::new(0x1000, 100);
        let err = v.reserve(200, 8).unwrap_err();
        assert_eq!(err, ReserveError::SpanExhausted { requested: 200, available: 100 });
        assert!(err.to_string().contains("span exhausted"));
        // The failed reservation consumed nothing: a smaller request
        // still succeeds, so degradation is per request, not permanent.
        assert_eq!(v.reserved_bytes(), 0);
        assert!(v.reserve(64, 8).is_ok());
    }

    #[test]
    fn overflowing_arithmetic_returns_error() {
        // A span reaching the end of the address space clamps instead of
        // panicking in the constructor…
        let mut v = Vmm::new(u64::MAX - 100, u64::MAX);
        // …and a reservation whose end (or alignment rounding) would pass
        // u64::MAX reports Overflow instead of wrapping.
        assert_eq!(v.reserve(200, 8).unwrap_err(), ReserveError::Overflow);
        assert_eq!(v.reserve(50, 1 << 60).unwrap_err(), ReserveError::Overflow);
        // Within the clamped span, reservation still succeeds.
        assert!(v.reserve(50, 8).is_ok());
    }

    #[test]
    fn zero_size_reservation_still_advances() {
        let mut v = Vmm::new(0x1000, 1 << 20);
        let a = v.reserve(0, 8).unwrap();
        let b = v.reserve(0, 8).unwrap();
        assert_ne!(a, b);
    }
}
