//! Virtual-address reservation: the "OS" handing out `mmap`-style regions.

/// Hands out non-overlapping, aligned reservations from a private span of
/// the simulated 64-bit address space.
///
/// Each allocator instance owns one `Vmm` rooted at a distinct base so that
/// composed allocators (e.g. the group allocator plus its fallback) can
/// never collide. Reservation is pure bookkeeping — pages only materialise
/// when the program touches them (see [`halo_vm::Memory`]), which models
/// demand paging.
#[derive(Debug, Clone)]
pub struct Vmm {
    base: u64,
    next: u64,
    limit: u64,
}

impl Vmm {
    /// Create a reservation span `[base, base + span)`.
    ///
    /// # Panics
    ///
    /// Panics if `base` is 0 (the null page must stay unmapped) or the span
    /// overflows.
    pub fn new(base: u64, span: u64) -> Self {
        assert!(base > 0, "null page must remain unreserved");
        let limit = base.checked_add(span).expect("vmm span overflows");
        Vmm { base, next: base, limit }
    }

    /// Reserve `size` bytes aligned to `align` (a power of two).
    /// Returns the base address of the reservation.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two or the span is exhausted —
    /// reservation failure is an experiment-setup bug, not a runtime
    /// condition (the artefact's note about needing 16 GiB of mappable
    /// virtual memory applies here too).
    pub fn reserve(&mut self, size: u64, align: u64) -> u64 {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let addr = (self.next + align - 1) & !(align - 1);
        let end = addr.checked_add(size.max(1)).expect("reservation overflows");
        assert!(end <= self.limit, "virtual address span exhausted");
        self.next = end;
        addr
    }

    /// Bytes reserved so far (including alignment padding).
    pub fn reserved_bytes(&self) -> u64 {
        self.next - self.base
    }

    /// Whether `addr` falls inside any reservation made so far.
    pub fn contains(&self, addr: u64) -> bool {
        (self.base..self.next).contains(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reservations_do_not_overlap() {
        let mut v = Vmm::new(0x1000, 1 << 30);
        let a = v.reserve(100, 8);
        let b = v.reserve(100, 8);
        assert!(a + 100 <= b);
    }

    #[test]
    fn alignment_respected() {
        let mut v = Vmm::new(0x1000, 1 << 30);
        v.reserve(3, 8);
        let b = v.reserve(64, 1 << 20);
        assert_eq!(b % (1 << 20), 0);
    }

    #[test]
    fn contains_tracks_extent() {
        let mut v = Vmm::new(0x1000, 1 << 20);
        assert!(!v.contains(0x1000));
        let a = v.reserve(16, 8);
        assert!(v.contains(a));
        assert!(v.contains(a + 15));
        assert!(!v.contains(a + 16));
    }

    #[test]
    #[should_panic(expected = "span exhausted")]
    fn exhaustion_panics() {
        let mut v = Vmm::new(0x1000, 100);
        v.reserve(200, 8);
    }

    #[test]
    fn zero_size_reservation_still_advances() {
        let mut v = Vmm::new(0x1000, 1 << 20);
        let a = v.reserve(0, 8);
        let b = v.reserve(0, 8);
        assert_ne!(a, b);
    }
}
