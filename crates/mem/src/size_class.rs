//! A jemalloc-style size-segregated allocator — the paper's baseline.
//!
//! "Almost all contemporary general-purpose allocators — including
//! ptmalloc2, jemalloc, and tcmalloc — are based on size-segregated
//! allocation schemes … allocations are co-located based primarily on their
//! size and the order in which they're made" (§2.1, Fig. 1). This allocator
//! reproduces exactly that placement policy: spaced size classes, slab runs
//! per class, lowest-address-first slot reuse, and page-granular large
//! allocations.

use crate::stats::AllocatorStats;
use crate::vmm::Vmm;
use halo_vm::{CallSite, GroupState, Memory, VmAllocator, PAGE_SIZE};
use std::collections::{BTreeSet, HashMap};

/// Largest size served from the small size classes; larger requests are
/// page-rounded and reserved individually (jemalloc's "large" path).
pub const SMALL_MAX: u64 = 14336;

/// jemalloc 5.x-style size-class table: 8, 16, 32, 48, 64, then four
/// linearly spaced classes per power-of-two group up to [`SMALL_MAX`].
pub static SIZE_CLASSES: &[u64] = &[
    8, 16, 32, 48, 64, 80, 96, 112, 128, 160, 192, 224, 256, 320, 384, 448, 512, 640, 768, 896,
    1024, 1280, 1536, 1792, 2048, 2560, 3072, 3584, 4096, 5120, 6144, 7168, 8192, 10240, 12288,
    14336,
];

fn class_index(size: u64) -> Option<usize> {
    if size > SMALL_MAX {
        return None;
    }
    SIZE_CLASSES.iter().position(|&c| c >= size)
}

#[derive(Debug, Clone, Copy)]
enum SlotInfo {
    Small { class: usize, requested: u64 },
    Large { pages: u64, requested: u64 },
}

/// The size-segregated simulated allocator (see module docs).
#[derive(Debug)]
pub struct SizeClassAllocator {
    vmm: Vmm,
    /// Per class: lowest-address-first set of free slots.
    free_slots: Vec<BTreeSet<u64>>,
    /// Per class: bump cursor and end of the current run.
    runs: Vec<Option<(u64, u64)>>,
    slots: HashMap<u64, SlotInfo>,
    live_bytes: u64,
}

impl SizeClassAllocator {
    /// Default base address for standalone use.
    pub const DEFAULT_BASE: u64 = 0x10_0000_0000;

    /// Create an allocator rooted at [`Self::DEFAULT_BASE`].
    pub fn new() -> Self {
        Self::with_base(Self::DEFAULT_BASE)
    }

    /// Create an allocator rooted at `base` (for composition without
    /// address-range collisions).
    pub fn with_base(base: u64) -> Self {
        Self::with_base_span(base, 1 << 38)
    }

    /// Create an allocator rooted at `base` whose reservations must stay
    /// within `span` bytes. Tiled instances (one fallback per shard of a
    /// sharded allocator) use this so exceeding the tile is a loud
    /// reservation panic, never silent aliasing of a neighbour's range.
    pub fn with_base_span(base: u64, span: u64) -> Self {
        SizeClassAllocator {
            vmm: Vmm::new(base, span),
            free_slots: vec![BTreeSet::new(); SIZE_CLASSES.len()],
            runs: vec![None; SIZE_CLASSES.len()],
            slots: HashMap::new(),
            live_bytes: 0,
        }
    }

    /// The size class (rounded size) that a request of `size` bytes lands
    /// in, or `None` for the large path.
    pub fn class_of(size: u64) -> Option<u64> {
        class_index(size.max(1)).map(|i| SIZE_CLASSES[i])
    }

    fn alloc_small(&mut self, class: usize, requested: u64) -> u64 {
        if let Some(&slot) = self.free_slots[class].iter().next() {
            self.free_slots[class].remove(&slot);
            self.slots.insert(slot, SlotInfo::Small { class, requested });
            return slot;
        }
        let csize = SIZE_CLASSES[class];
        let ptr = match &mut self.runs[class] {
            Some((cursor, end)) if *cursor + csize <= *end => {
                let p = *cursor;
                *cursor += csize;
                p
            }
            run => {
                // New run: at least 16 KiB or 8 objects, page aligned.
                let run_bytes = (16 * 1024).max(csize * 8).div_ceil(PAGE_SIZE) * PAGE_SIZE;
                let Ok(base) = self.vmm.reserve(run_bytes, PAGE_SIZE) else {
                    return 0; // span exhausted: genuine OOM, reported as null
                };
                *run = Some((base + csize, base + run_bytes));
                base
            }
        };
        self.slots.insert(ptr, SlotInfo::Small { class, requested });
        ptr
    }

    fn alloc_large(&mut self, requested: u64) -> u64 {
        let pages = requested.div_ceil(PAGE_SIZE);
        let Ok(ptr) = self.vmm.reserve(pages * PAGE_SIZE, PAGE_SIZE) else {
            return 0; // span exhausted: genuine OOM, reported as null
        };
        self.slots.insert(ptr, SlotInfo::Large { pages, requested });
        ptr
    }

    /// The rounded (usable) size backing `ptr`, if live.
    pub fn usable_size(&self, ptr: u64) -> Option<u64> {
        self.slots.get(&ptr).map(|s| match s {
            SlotInfo::Small { class, .. } => SIZE_CLASSES[*class],
            SlotInfo::Large { pages, .. } => pages * PAGE_SIZE,
        })
    }
}

impl Default for SizeClassAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl AllocatorStats for SizeClassAllocator {
    fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    fn live_objects(&self) -> usize {
        self.slots.len()
    }
}

impl VmAllocator for SizeClassAllocator {
    fn malloc(&mut self, size: u64, _site: CallSite, _gs: &GroupState, _mem: &mut Memory) -> u64 {
        let size = size.max(1);
        let ptr = match class_index(size) {
            Some(class) => self.alloc_small(class, size),
            None => self.alloc_large(size),
        };
        if ptr == 0 {
            return 0; // allocation failed: no accounting for the null
        }
        self.live_bytes += size;
        ptr
    }

    fn free(&mut self, ptr: u64, _mem: &mut Memory) {
        match self.slots.remove(&ptr) {
            Some(SlotInfo::Small { class, requested }) => {
                self.live_bytes -= requested;
                self.free_slots[class].insert(ptr);
            }
            Some(SlotInfo::Large { requested, .. }) => {
                self.live_bytes -= requested;
                // Large extents are not recycled; reservation bookkeeping
                // only (the pages can be discarded by the caller if the
                // experiment models purging).
            }
            None => debug_assert!(false, "free of unknown pointer {ptr:#x}"),
        }
    }

    fn realloc(
        &mut self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        let Some(info) = self.slots.get(&ptr).copied() else {
            return self.malloc(size, site, gs, mem);
        };
        let (usable, old_requested) = match info {
            SlotInfo::Small { class, requested } => (SIZE_CLASSES[class], requested),
            SlotInfo::Large { pages, requested } => (pages * PAGE_SIZE, requested),
        };
        let size = size.max(1);
        if size <= usable && matches!(info, SlotInfo::Small { .. }) {
            // Same slot suffices: update requested-size accounting in place.
            self.live_bytes = self.live_bytes - old_requested + size;
            if let Some(SlotInfo::Small { requested, .. }) = self.slots.get_mut(&ptr) {
                *requested = size;
            }
            return ptr;
        }
        let newp = self.malloc(size, site, gs, mem);
        if newp == 0 {
            return 0; // growth failed: the old region stays live and intact
        }
        mem.copy(newp, ptr, old_requested.min(size));
        self.free(ptr, mem);
        newp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> CallSite {
        CallSite::new(halo_vm::FuncId(0), 0)
    }

    fn setup() -> (SizeClassAllocator, GroupState, Memory) {
        (SizeClassAllocator::new(), GroupState::default(), Memory::new())
    }

    #[test]
    fn size_class_table_is_sorted_and_capped() {
        assert!(SIZE_CLASSES.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*SIZE_CLASSES.last().unwrap(), SMALL_MAX);
        assert_eq!(SizeClassAllocator::class_of(1), Some(8));
        assert_eq!(SizeClassAllocator::class_of(9), Some(16));
        assert_eq!(SizeClassAllocator::class_of(128), Some(128));
        assert_eq!(SizeClassAllocator::class_of(129), Some(160));
        assert_eq!(SizeClassAllocator::class_of(SMALL_MAX + 1), None);
    }

    #[test]
    fn same_class_allocations_pack_contiguously() {
        let (mut a, gs, mut mem) = setup();
        // The Fig. 1 behaviour: same-size allocations land next to each
        // other regardless of what the program means by them.
        let p1 = a.malloc(4, site(), &gs, &mut mem);
        let p2 = a.malloc(4, site(), &gs, &mut mem);
        let p3 = a.malloc(4, site(), &gs, &mut mem);
        assert_eq!(p2, p1 + 8);
        assert_eq!(p3, p2 + 8);
    }

    #[test]
    fn different_classes_live_in_different_runs() {
        let (mut a, gs, mut mem) = setup();
        let small = a.malloc(8, site(), &gs, &mut mem);
        let big = a.malloc(1000, site(), &gs, &mut mem);
        // Different runs are at least a run apart.
        assert!(small.abs_diff(big) >= 16 * 1024);
    }

    #[test]
    fn freed_slot_is_reused_lowest_first() {
        let (mut a, gs, mut mem) = setup();
        let p1 = a.malloc(32, site(), &gs, &mut mem);
        let p2 = a.malloc(32, site(), &gs, &mut mem);
        let p3 = a.malloc(32, site(), &gs, &mut mem);
        a.free(p3, &mut mem);
        a.free(p1, &mut mem);
        a.free(p2, &mut mem);
        // Reuse picks the lowest address first.
        assert_eq!(a.malloc(32, site(), &gs, &mut mem), p1);
        assert_eq!(a.malloc(32, site(), &gs, &mut mem), p2);
        assert_eq!(a.malloc(32, site(), &gs, &mut mem), p3);
    }

    #[test]
    fn large_allocations_are_page_granular() {
        let (mut a, gs, mut mem) = setup();
        let p = a.malloc(SMALL_MAX + 1, site(), &gs, &mut mem);
        assert_eq!(p % PAGE_SIZE, 0);
        assert_eq!(a.usable_size(p), Some(PAGE_SIZE * 4));
    }

    #[test]
    fn live_accounting_tracks_requests() {
        let (mut a, gs, mut mem) = setup();
        let p1 = a.malloc(10, site(), &gs, &mut mem);
        let p2 = a.malloc(20000, site(), &gs, &mut mem);
        assert_eq!(a.live_bytes(), 20010);
        assert_eq!(a.live_objects(), 2);
        a.free(p1, &mut mem);
        a.free(p2, &mut mem);
        assert_eq!(a.live_bytes(), 0);
        assert_eq!(a.live_objects(), 0);
    }

    #[test]
    fn realloc_in_place_when_class_allows() {
        let (mut a, gs, mut mem) = setup();
        let p = a.malloc(100, site(), &gs, &mut mem); // class 112
        let q = a.realloc(p, 112, site(), &gs, &mut mem);
        assert_eq!(p, q);
        let r = a.realloc(q, 113, site(), &gs, &mut mem); // class 128: move
        assert_ne!(q, r);
        assert_eq!(a.live_objects(), 1);
    }

    #[test]
    fn realloc_moves_preserve_contents() {
        let (mut a, gs, mut mem) = setup();
        let p = a.malloc(16, site(), &gs, &mut mem);
        mem.write(p, 8, 0xabcd);
        mem.write(p + 8, 8, 0x1234);
        let q = a.realloc(p, 4096, site(), &gs, &mut mem);
        assert_eq!(mem.read(q, 8), 0xabcd);
        assert_eq!(mem.read(q + 8, 8), 0x1234);
    }

    #[test]
    fn interleaved_types_scatter_across_the_heap() {
        // The motivating pathology (Fig. 3a): A-B-C interleaving in one
        // class leaves unrelated objects adjacent.
        let (mut a, gs, mut mem) = setup();
        let mut a_ptrs = Vec::new();
        for i in 0..30 {
            let p = a.malloc(16, site(), &gs, &mut mem);
            if i % 3 != 2 {
                a_ptrs.push(p);
            }
        }
        // Hot objects (A/B) are NOT contiguous: every third slot is a C.
        let contiguous = a_ptrs.windows(2).filter(|w| w[1] == w[0] + 16).count();
        assert!(contiguous < a_ptrs.len() - 1);
    }
}
