//! Common allocator statistics.

/// Live-data accounting implemented by every simulated allocator, used by
/// tests and the fragmentation experiment (Table 1).
pub trait AllocatorStats {
    /// Bytes currently live (as requested by the program, before rounding).
    fn live_bytes(&self) -> u64;

    /// Number of live allocations.
    fn live_objects(&self) -> usize;
}
