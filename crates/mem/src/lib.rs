//! Allocators for the HALO reproduction: the baselines the paper measures
//! against and the specialised group allocator it contributes (§4.4).
//!
//! Everything here implements [`halo_vm::VmAllocator`], so any allocator can
//! be plugged under any simulated program:
//!
//! * [`SizeClassAllocator`] — a jemalloc-style size-segregated allocator;
//!   the paper's default/baseline allocator (jemalloc 5.1.0 in §5.1).
//! * [`BoundaryTagAllocator`] — a ptmalloc2/dlmalloc-style best-fit
//!   free-list allocator with inline chunk headers, for the §5.1
//!   jemalloc-vs-ptmalloc2 baseline comparison.
//! * [`BumpAllocator`] — trivial contiguous allocation, used by tests and
//!   as the building block of pool-based schemes.
//! * [`RandomGroupAllocator`] — the deliberately terrible allocator of
//!   Fig. 15: small objects go to one of four bump pools at random.
//! * [`HaloGroupAllocator`] — the paper's specialised allocator: group
//!   selectors evaluated against the shared group-state vector route
//!   allocations into group-owned, size-aligned chunks carved from large
//!   demand-paged slabs, with bump allocation inside chunks, a
//!   `live_regions` count in the chunk bookkeeping, and spare-chunk
//!   reuse/purging. Non-grouped requests forward to a fallback allocator.
//! * [`ShardedHaloAllocator`] — the thread-safe sharded runtime: N
//!   complete group allocators at disjoint address strides, thread-keyed
//!   shard selection, and mimalloc-style owner-shard remote-free queues,
//!   so the grouped layout survives a multi-threaded malloc/free stream.
//! * [`rt`] — a *native* (non-simulated) group-pool runtime implementing
//!   [`std::alloc::GlobalAlloc`], demonstrating the synthesised-allocator
//!   half of HALO on real memory.
//!
//! The [`SelectorTable`] type is the runtime form of the identification
//! stage's output (Fig. 10): per-group DNF formulae over group-state bits,
//! evaluated in group-popularity order with first match winning.
//!
//! Failure policy: this crate is the production-facing allocator runtime,
//! so non-test code must not `unwrap`/`expect` its way into a process
//! abort — resource edges degrade (typed errors, fallback routing,
//! [`DegradeStats`] counters; see DESIGN.md §12). The lint below enforces
//! it; the few remaining panics are genuine invariants and are
//! allow-listed at the call site with a justification.

#![warn(clippy::unwrap_used, clippy::expect_used)]

mod backend;
mod boundary_tag;
mod bump;
mod faults;
mod group_alloc;
mod random_group;
pub mod rt;
mod selector;
mod sharded;
mod size_class;
mod stats;
mod vmm;

pub use backend::BackendAllocator;
pub use boundary_tag::BoundaryTagAllocator;
pub use bump::BumpAllocator;
pub use faults::{DegradeStats, FaultInjector, FaultPlan, FaultSite};
pub use group_alloc::{FragReport, GroupAllocConfig, GroupAllocStats, HaloGroupAllocator};
/// Re-exported from `halo_graph`, where per-group layout plans live.
pub use halo_graph::ReusePolicy;
pub use random_group::RandomGroupAllocator;
pub use selector::{GroupSelector, SelectorTable};
pub use sharded::{ForeignPointer, ShardedAllocStats, ShardedHaloAllocator, GROUP_SHARD_STRIDE};
pub use size_class::{SizeClassAllocator, SIZE_CLASSES, SMALL_MAX};
pub use stats::AllocatorStats;
pub use vmm::{ReserveError, Vmm};
