//! A contiguous bump allocator.

use crate::stats::AllocatorStats;
use crate::vmm::Vmm;
use halo_vm::{CallSite, GroupState, Memory, VmAllocator};
use std::collections::HashMap;

/// Allocates by bumping a pointer through a reserved span; `free` releases
/// accounting but never reuses memory. The minimum alignment is 8 bytes,
/// as in the paper's group allocator (§4.4, citing SuperMalloc).
///
/// Used directly by tests, as the pool mechanism inside
/// [`crate::RandomGroupAllocator`], and as the "perfect contiguity"
/// reference layout in experiments.
#[derive(Debug)]
pub struct BumpAllocator {
    vmm: Vmm,
    sizes: HashMap<u64, u64>,
    live_bytes: u64,
}

impl BumpAllocator {
    /// Default base address for standalone use.
    pub const DEFAULT_BASE: u64 = 0x50_0000_0000;

    /// Create a bump allocator rooted at [`Self::DEFAULT_BASE`].
    pub fn new() -> Self {
        Self::with_base(Self::DEFAULT_BASE)
    }

    /// Create a bump allocator rooted at `base`.
    pub fn with_base(base: u64) -> Self {
        BumpAllocator { vmm: Vmm::new(base, 1 << 36), sizes: HashMap::new(), live_bytes: 0 }
    }

    /// Total bytes ever handed out (live + freed).
    pub fn high_water(&self) -> u64 {
        self.vmm.reserved_bytes()
    }

    /// Requested size of a live allocation, if `ptr` is one.
    pub fn size_of(&self, ptr: u64) -> Option<u64> {
        self.sizes.get(&ptr).copied()
    }
}

impl Default for BumpAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl AllocatorStats for BumpAllocator {
    fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    fn live_objects(&self) -> usize {
        self.sizes.len()
    }
}

impl VmAllocator for BumpAllocator {
    fn malloc(&mut self, size: u64, _site: CallSite, _gs: &GroupState, _mem: &mut Memory) -> u64 {
        let size = size.max(1);
        let Ok(ptr) = self.vmm.reserve(size, 8) else {
            return 0; // span exhausted: allocation failure, not a panic
        };
        self.sizes.insert(ptr, size);
        self.live_bytes += size;
        ptr
    }

    fn free(&mut self, ptr: u64, _mem: &mut Memory) {
        if let Some(sz) = self.sizes.remove(&ptr) {
            self.live_bytes -= sz;
        }
    }

    fn realloc(
        &mut self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        let old = self.sizes.get(&ptr).copied().unwrap_or(0);
        let newp = self.malloc(size, site, gs, mem);
        mem.copy(newp, ptr, old.min(size));
        self.free(ptr, mem);
        newp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site() -> CallSite {
        CallSite::new(halo_vm::FuncId(0), 0)
    }

    #[test]
    fn consecutive_allocations_are_contiguous_modulo_alignment() {
        let mut a = BumpAllocator::new();
        let gs = GroupState::default();
        let mut mem = Memory::new();
        let p1 = a.malloc(24, site(), &gs, &mut mem);
        let p2 = a.malloc(8, site(), &gs, &mut mem);
        assert_eq!(p2, p1 + 24);
        let p3 = a.malloc(5, site(), &gs, &mut mem);
        assert_eq!(p3 % 8, 0);
        assert_eq!(p3, p2 + 8);
    }

    #[test]
    fn free_updates_accounting_but_not_reuse() {
        let mut a = BumpAllocator::new();
        let gs = GroupState::default();
        let mut mem = Memory::new();
        let p1 = a.malloc(100, site(), &gs, &mut mem);
        assert_eq!(a.live_bytes(), 100);
        a.free(p1, &mut mem);
        assert_eq!(a.live_bytes(), 0);
        let p2 = a.malloc(100, site(), &gs, &mut mem);
        assert_ne!(p1, p2, "bump allocators never reuse");
    }

    #[test]
    fn realloc_copies_contents() {
        let mut a = BumpAllocator::new();
        let gs = GroupState::default();
        let mut mem = Memory::new();
        let p = a.malloc(16, site(), &gs, &mut mem);
        mem.write(p, 8, 0xfeed);
        let q = a.realloc(p, 64, site(), &gs, &mut mem);
        assert_eq!(mem.read(q, 8), 0xfeed);
        assert_eq!(a.live_objects(), 1);
    }
}
