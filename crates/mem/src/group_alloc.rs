//! HALO's specialised group allocator (§4.4, Fig. 11).
//!
//! Memory is reserved from the simulated OS in large demand-paged **slabs**
//! and managed in smaller group-owned **chunks** from which regions are bump
//! allocated with no per-object headers. Chunks are aligned to their size so
//! a region's chunk is located by masking the pointer. Each chunk counts its
//! `live_regions`; when the count reaches zero the chunk is empty and can be
//! reused or freed, subject to a spare-chunk policy that keeps up to
//! `max_spare_chunks` dirty chunks around before purging pages back to the
//! OS (as early jemalloc versions did, per §5.1).
//!
//! Allocations that are not grouped — selector mismatch or size at or above
//! the page-size cap — forward to the fallback allocator (the paper uses
//! `dlsym` to find the next allocator; composition plays that role here).

use crate::selector::SelectorTable;
use crate::stats::AllocatorStats;
use crate::vmm::Vmm;
use crate::SizeClassAllocator;
use halo_vm::{CallSite, GroupState, Memory, VmAllocator, PAGE_SIZE};
use std::collections::HashMap;

/// How freed regions inside group chunks are recycled.
///
/// The paper uses pure bump allocation and names its fragmentation
/// behaviour as the main avenue for improvement, suggesting "techniques
/// such as free list sharding [mimalloc] and meshing could be used in
/// place of bump allocation" (§6). [`ReusePolicy::ShardedFreeLists`]
/// implements the first suggestion: per-chunk, size-sharded free lists
/// that let a chunk recycle its own holes without any cross-chunk
/// bookkeeping, trading a little contiguity for much better practical
/// fragmentation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ReusePolicy {
    /// The paper's design: regions are never reused until their whole
    /// chunk empties.
    #[default]
    Bump,
    /// mimalloc-style sharding: freed regions go onto a per-chunk,
    /// per-size free list consulted before bumping.
    ShardedFreeLists,
}

/// Tunables of the group allocator, mirroring the artefact's flags
/// (`--chunk-size`, `--max-spare-chunks`, `--max-groups` lives in grouping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupAllocConfig {
    /// Chunk size in bytes; must be a power of two (chunks are aligned to
    /// their size for header-by-masking). Paper default: 1 MiB.
    pub chunk_size: u64,
    /// Dirty chunks kept for reuse before purging pages. Paper default: 1;
    /// omnetpp/xalanc run with 0; `usize::MAX` models the "always reuse"
    /// configuration.
    pub max_spare_chunks: usize,
    /// Requests of this size or larger are never grouped (§4.4 uses the
    /// page size; profiling uses a 4 KiB max grouped-object size).
    pub max_grouped_size: u64,
    /// Bytes reserved per slab. Paper: "large, demand-paged slabs".
    pub slab_size: u64,
    /// Base of the slab address span.
    pub base: u64,
    /// In-chunk recycling policy (the paper's future-work axis).
    pub reuse_policy: ReusePolicy,
}

impl Default for GroupAllocConfig {
    fn default() -> Self {
        GroupAllocConfig {
            chunk_size: 1 << 20,
            max_spare_chunks: 1,
            max_grouped_size: 4096,
            slab_size: 64 << 20,
            base: 0x70_0000_0000,
            reuse_policy: ReusePolicy::Bump,
        }
    }
}

/// Event counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupAllocStats {
    /// Allocations served from group chunks.
    pub grouped_allocs: u64,
    /// Allocations forwarded to the fallback allocator.
    pub fallback_allocs: u64,
    /// Frees of group-allocated regions.
    pub grouped_frees: u64,
    /// Frees forwarded to the fallback allocator.
    pub fallback_frees: u64,
    /// Chunks carved fresh from slabs.
    pub chunks_created: u64,
    /// Empty chunks reused (spare or purged pool, or in-place reset).
    pub chunks_reused: u64,
    /// Chunks whose pages were purged back to the OS.
    pub chunks_purged: u64,
}

/// Fragmentation at the peak, in the format of the paper's Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FragReport {
    /// Resident bytes of group chunks at the observed peak.
    pub peak_resident_bytes: u64,
    /// Live (requested) grouped bytes at that moment.
    pub live_at_peak_bytes: u64,
}

impl FragReport {
    /// Wasted bytes: resident but not live (Table 1 "Frag. (bytes)").
    pub fn wasted_bytes(&self) -> u64 {
        self.peak_resident_bytes.saturating_sub(self.live_at_peak_bytes)
    }

    /// Wasted fraction of resident memory (Table 1 "Frag. (%)"), in
    /// `[0, 1]`; 0 when nothing was ever resident.
    pub fn frag_fraction(&self) -> f64 {
        if self.peak_resident_bytes == 0 {
            0.0
        } else {
            self.wasted_bytes() as f64 / self.peak_resident_bytes as f64
        }
    }
}

#[derive(Debug)]
struct Chunk {
    group: usize,
    /// Next bump address.
    bump: u64,
    /// One past the last usable byte.
    end: u64,
    /// Regions allocated and not yet freed.
    live_regions: u64,
    /// Highest bump address ever reached (dirty extent).
    high_water: u64,
    /// Sharded free lists: rounded size → freed region addresses
    /// (only populated under [`ReusePolicy::ShardedFreeLists`]).
    shards: HashMap<u64, Vec<u64>>,
}

/// The specialised allocator synthesised by the HALO pipeline. Generic over
/// the fallback allocator `F` (defaults to the jemalloc-style baseline).
#[derive(Debug)]
pub struct HaloGroupAllocator<F = SizeClassAllocator> {
    config: GroupAllocConfig,
    selectors: SelectorTable,
    /// Immediate-call-site classification (the hot-data-streams comparison
    /// technique "utilise[s] the same specialised allocator as HALO, but
    /// with groups … identified at runtime using the immediate call site of
    /// the allocation procedure", §5.1). Empty in selector mode.
    site_groups: HashMap<CallSite, usize>,
    vmm: Vmm,
    /// Cursor into the current slab: `(next_chunk_base, slab_end)`.
    slab_cursor: Option<(u64, u64)>,
    /// End of the highest slab reserved so far; pointers below `config.base`
    /// or at/above this are fallback-owned.
    slabs_end: u64,
    /// In-use chunks by base address.
    chunks: HashMap<u64, Chunk>,
    /// Current chunk base per group.
    current: Vec<Option<u64>>,
    /// Empty-but-dirty chunks available for reuse.
    spare: Vec<(u64, u64)>, // (base, high_water)
    /// Purged (clean) chunk bases available for reuse.
    clean: Vec<u64>,
    /// Requested size per live grouped region. The real allocator needs no
    /// per-object metadata for `free` (only `live_regions`), but `realloc`
    /// must know how many bytes to copy; a native implementation gets this
    /// from the C library's usable-size machinery, which the simulation
    /// does not model, so it is kept out of band here.
    region_sizes: HashMap<u64, u64>,
    fallback: F,
    live_grouped_bytes: u64,
    resident_bytes: u64,
    frag: FragReport,
    stats: GroupAllocStats,
}

impl HaloGroupAllocator<SizeClassAllocator> {
    /// Create an allocator with the default jemalloc-style fallback.
    pub fn new(config: GroupAllocConfig, selectors: SelectorTable) -> Self {
        Self::with_fallback(config, selectors, SizeClassAllocator::new())
    }

    /// Create an allocator classifying by immediate call site (the
    /// hot-data-streams comparison) with the default fallback.
    pub fn with_site_groups(
        config: GroupAllocConfig,
        site_groups: HashMap<CallSite, usize>,
    ) -> Self {
        let mut a = Self::with_fallback(config, SelectorTable::empty(), SizeClassAllocator::new());
        let num_groups = site_groups.values().map(|&g| g + 1).max().unwrap_or(0);
        a.current = vec![None; num_groups];
        a.site_groups = site_groups;
        a
    }
}

impl<F: VmAllocator> HaloGroupAllocator<F> {
    /// Create an allocator forwarding non-grouped requests to `fallback`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is not a power of two or `slab_size` is not a
    /// multiple of it.
    pub fn with_fallback(config: GroupAllocConfig, selectors: SelectorTable, fallback: F) -> Self {
        assert!(config.chunk_size.is_power_of_two(), "chunk size must be a power of two");
        assert!(config.chunk_size >= PAGE_SIZE, "chunks must be at least a page");
        assert_eq!(config.slab_size % config.chunk_size, 0, "slabs must hold whole chunks");
        let num_groups = selectors.num_groups();
        HaloGroupAllocator {
            config,
            selectors,
            vmm: Vmm::new(config.base, 1 << 38),
            slab_cursor: None,
            slabs_end: config.base,
            chunks: HashMap::new(),
            current: vec![None; num_groups],
            site_groups: HashMap::new(),
            spare: Vec::new(),
            clean: Vec::new(),
            region_sizes: HashMap::new(),
            fallback,
            live_grouped_bytes: 0,
            resident_bytes: 0,
            frag: FragReport::default(),
            stats: GroupAllocStats::default(),
        }
    }

    /// Event counters.
    pub fn stats(&self) -> GroupAllocStats {
        self.stats
    }

    /// Fragmentation of grouped memory at the peak observed so far
    /// (Table 1's measurement).
    pub fn frag_report(&self) -> FragReport {
        self.frag
    }

    /// The fallback allocator (for its own statistics).
    pub fn fallback(&self) -> &F {
        &self.fallback
    }

    /// Whether `ptr` was group allocated (lies within a slab).
    pub fn is_group_allocated(&self, ptr: u64) -> bool {
        (self.config.base..self.slabs_end).contains(&ptr)
    }

    /// Bytes of grouped data currently live.
    pub fn live_grouped_bytes(&self) -> u64 {
        self.live_grouped_bytes
    }

    /// Resident bytes currently attributed to group chunks.
    pub fn resident_grouped_bytes(&self) -> u64 {
        self.resident_bytes
    }

    fn carve_chunk(&mut self) -> u64 {
        let cs = self.config.chunk_size;
        match self.slab_cursor {
            Some((next, end)) if next + cs <= end => {
                self.slab_cursor = Some((next + cs, end));
                next
            }
            _ => {
                let base = self.vmm.reserve(self.config.slab_size, cs);
                self.slabs_end = self.slabs_end.max(base + self.config.slab_size);
                self.slab_cursor = Some((base + cs, base + self.config.slab_size));
                base
            }
        }
    }

    fn acquire_chunk(&mut self, group: usize) -> u64 {
        let cs = self.config.chunk_size;
        let (base, high_water) = if let Some((base, hw)) = self.spare.pop() {
            self.stats.chunks_reused += 1;
            (base, hw)
        } else if let Some(base) = self.clean.pop() {
            self.stats.chunks_reused += 1;
            (base, base)
        } else {
            self.stats.chunks_created += 1;
            let base = self.carve_chunk();
            (base, base)
        };
        self.chunks.insert(
            base,
            Chunk {
                group,
                bump: base,
                end: base + cs,
                live_regions: 0,
                high_water,
                shards: HashMap::new(),
            },
        );
        self.current[group] = Some(base);
        base
    }

    fn group_malloc(&mut self, group: usize, size: u64) -> u64 {
        let cs = self.config.chunk_size;
        let rounded = (size.max(1) + 7) & !7;
        // Sharded reuse: recycle a freed same-size region from the group's
        // current chunk before bumping (mimalloc-style, §6 future work).
        if self.config.reuse_policy == ReusePolicy::ShardedFreeLists {
            if let Some(base) = self.current[group] {
                if let Some(chunk) = self.chunks.get_mut(&base) {
                    if let Some(list) = chunk.shards.get_mut(&rounded) {
                        if let Some(ptr) = list.pop() {
                            chunk.live_regions += 1;
                            self.region_sizes.insert(ptr, size);
                            self.live_grouped_bytes += size;
                            self.stats.grouped_allocs += 1;
                            self.note_usage();
                            return ptr;
                        }
                    }
                }
            }
        }
        let chunk_base = match self.current[group] {
            Some(base) => {
                let c = &self.chunks[&base];
                if c.bump + rounded <= c.end {
                    base
                } else {
                    self.acquire_chunk(group)
                }
            }
            None => self.acquire_chunk(group),
        };
        let c = self.chunks.get_mut(&chunk_base).expect("current chunk exists");
        let ptr = c.bump;
        c.bump += rounded;
        c.live_regions += 1;
        if c.bump > c.high_water {
            let old_dirty = (c.high_water - chunk_base).div_ceil(PAGE_SIZE) * PAGE_SIZE;
            c.high_water = c.bump;
            let new_dirty = (c.high_water - chunk_base).div_ceil(PAGE_SIZE) * PAGE_SIZE;
            self.resident_bytes += new_dirty - old_dirty;
        }
        self.region_sizes.insert(ptr, size);
        self.live_grouped_bytes += size;
        self.stats.grouped_allocs += 1;
        let _ = cs;
        self.note_usage();
        ptr
    }

    /// Maintain the Table 1 snapshot: at the peak resident footprint,
    /// record the *worst* (smallest) live size observed — a chunk pinned by
    /// a lone survivor shows up as fragmentation exactly as in the paper.
    fn note_usage(&mut self) {
        if self.resident_bytes > self.frag.peak_resident_bytes {
            self.frag.peak_resident_bytes = self.resident_bytes;
            self.frag.live_at_peak_bytes = self.live_grouped_bytes;
        } else if self.resident_bytes == self.frag.peak_resident_bytes
            && self.live_grouped_bytes < self.frag.live_at_peak_bytes
        {
            self.frag.live_at_peak_bytes = self.live_grouped_bytes;
        }
    }

    fn group_free(&mut self, ptr: u64, mem: &mut Memory) {
        let cs = self.config.chunk_size;
        let chunk_base = ptr & !(cs - 1);
        let size =
            self.region_sizes.remove(&ptr).expect("group free of pointer without live region");
        self.live_grouped_bytes -= size;
        self.stats.grouped_frees += 1;
        let sharded = self.config.reuse_policy == ReusePolicy::ShardedFreeLists;
        let chunk = self.chunks.get_mut(&chunk_base).expect("chunk header by masking");
        debug_assert!(chunk.live_regions > 0);
        chunk.live_regions -= 1;
        if chunk.live_regions > 0 {
            if sharded {
                let rounded = (size.max(1) + 7) & !7;
                chunk.shards.entry(rounded).or_default().push(ptr);
            }
            self.note_usage();
            return;
        }
        // Chunk is empty: reuse or free (§4.4).
        if self.current[chunk.group] == Some(chunk_base) {
            // Still the group's current chunk: reset the bump pointer and
            // keep using it in place (its pages stay dirty/resident).
            chunk.bump = chunk_base;
            chunk.shards.clear();
            self.stats.chunks_reused += 1;
            self.note_usage();
            return;
        }
        let chunk = self.chunks.remove(&chunk_base).expect("just observed");
        self.spare.push((chunk_base, chunk.high_water));
        while self.spare.len() > self.config.max_spare_chunks {
            let (base, hw) = self.spare.remove(0);
            let dirty = (hw - base).div_ceil(PAGE_SIZE) * PAGE_SIZE;
            self.resident_bytes -= dirty;
            mem.discard(base, cs);
            self.clean.push(base);
            self.stats.chunks_purged += 1;
        }
        self.note_usage();
    }
}

impl<F: VmAllocator> AllocatorStats for HaloGroupAllocator<F>
where
    F: AllocatorStats,
{
    fn live_bytes(&self) -> u64 {
        self.live_grouped_bytes + self.fallback.live_bytes()
    }

    fn live_objects(&self) -> usize {
        self.region_sizes.len() + self.fallback.live_objects()
    }
}

impl<F: VmAllocator> VmAllocator for HaloGroupAllocator<F> {
    fn malloc(&mut self, size: u64, site: CallSite, gs: &GroupState, mem: &mut Memory) -> u64 {
        // §4.4: the allocator "compares the size of the allocation with the
        // maximum grouped object size, and checks the contents of the group
        // state vector against the set of selectors". In site mode (the
        // hot-data-streams comparison) the immediate call site decides.
        if size < self.config.max_grouped_size {
            if let Some(group) =
                self.selectors.classify(gs).or_else(|| self.site_groups.get(&site).copied())
            {
                return self.group_malloc(group, size);
            }
        }
        self.stats.fallback_allocs += 1;
        self.fallback.malloc(size, site, gs, mem)
    }

    fn free(&mut self, ptr: u64, mem: &mut Memory) {
        if self.is_group_allocated(ptr) {
            self.group_free(ptr, mem);
        } else {
            self.stats.fallback_frees += 1;
            self.fallback.free(ptr, mem);
        }
    }

    fn realloc(
        &mut self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        if self.is_group_allocated(ptr) {
            let old_size = self.region_sizes.get(&ptr).copied().unwrap_or(0);
            let newp = self.malloc(size, site, gs, mem);
            mem.copy(newp, ptr, old_size.min(size));
            self.group_free(ptr, mem);
            newp
        } else {
            self.fallback.realloc(ptr, size, site, gs, mem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::GroupSelector;

    fn site() -> CallSite {
        CallSite::new(halo_vm::FuncId(0), 0)
    }

    /// Two groups: group 0 on bit 0, group 1 on bit 1.
    fn two_group_table() -> SelectorTable {
        SelectorTable::new(
            vec![
                GroupSelector { group: 0, conjunctions: vec![vec![0]] },
                GroupSelector { group: 1, conjunctions: vec![vec![1]] },
            ],
            2,
        )
    }

    fn small_config() -> GroupAllocConfig {
        GroupAllocConfig {
            chunk_size: 8192,
            max_spare_chunks: 1,
            max_grouped_size: 4096,
            slab_size: 8192 * 8,
            ..GroupAllocConfig::default()
        }
    }

    fn setup() -> (HaloGroupAllocator, GroupState, Memory) {
        (
            HaloGroupAllocator::new(small_config(), two_group_table()),
            GroupState::new(2),
            Memory::new(),
        )
    }

    #[test]
    fn grouped_allocations_bump_contiguously() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p1 = a.malloc(24, site(), &gs, &mut mem);
        let p2 = a.malloc(24, site(), &gs, &mut mem);
        let p3 = a.malloc(10, site(), &gs, &mut mem);
        assert_eq!(p2, p1 + 24);
        assert_eq!(p3, p2 + 24);
        assert_eq!(p3 % 8, 0, "minimum 8-byte alignment");
        assert_eq!(a.stats().grouped_allocs, 3);
    }

    #[test]
    fn groups_get_separate_chunks() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p0 = a.malloc(16, site(), &gs, &mut mem);
        gs.clear(0);
        gs.set(1);
        let p1 = a.malloc(16, site(), &gs, &mut mem);
        let cs = small_config().chunk_size;
        assert_ne!(p0 & !(cs - 1), p1 & !(cs - 1), "different chunks");
        // Interleaving keeps each group contiguous.
        gs.clear(1);
        gs.set(0);
        let p0b = a.malloc(16, site(), &gs, &mut mem);
        assert_eq!(p0b, p0 + 16);
    }

    #[test]
    fn unmatched_state_falls_back() {
        let (mut a, gs, mut mem) = setup();
        let p = a.malloc(16, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(p));
        assert_eq!(a.stats().fallback_allocs, 1);
        a.free(p, &mut mem);
        assert_eq!(a.stats().fallback_frees, 1);
    }

    #[test]
    fn large_requests_fall_back_even_when_selected() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p = a.malloc(4096, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(p));
        let q = a.malloc(4095, site(), &gs, &mut mem);
        assert!(a.is_group_allocated(q));
    }

    #[test]
    fn chunk_exhaustion_rolls_to_new_chunk() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        // 8192-byte chunks; 5 × 2048 forces a second chunk.
        let ptrs: Vec<u64> = (0..5).map(|_| a.malloc(2048, site(), &gs, &mut mem)).collect();
        let cs = small_config().chunk_size;
        let chunk0 = ptrs[0] & !(cs - 1);
        assert!(ptrs[..4].iter().all(|p| p & !(cs - 1) == chunk0));
        assert_ne!(ptrs[4] & !(cs - 1), chunk0);
        assert_eq!(a.stats().chunks_created, 2);
    }

    #[test]
    fn emptied_current_chunk_is_reset_in_place() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p1 = a.malloc(64, site(), &gs, &mut mem);
        let p2 = a.malloc(64, site(), &gs, &mut mem);
        a.free(p1, &mut mem);
        a.free(p2, &mut mem);
        // Bump pointer reset: next allocation reuses the same addresses.
        let p3 = a.malloc(64, site(), &gs, &mut mem);
        assert_eq!(p3, p1);
        assert_eq!(a.stats().chunks_created, 1);
    }

    #[test]
    fn emptied_non_current_chunk_goes_spare_then_purges() {
        let cfg = GroupAllocConfig { max_spare_chunks: 0, ..small_config() };
        let mut a = HaloGroupAllocator::new(cfg, two_group_table());
        let mut gs = GroupState::new(2);
        let mut mem = Memory::new();
        gs.set(0);
        // Fill chunk 1 fully, so chunk 2 becomes current.
        let big: Vec<u64> = (0..4).map(|_| a.malloc(2048, site(), &gs, &mut mem)).collect();
        let p_new = a.malloc(2048, site(), &gs, &mut mem);
        // Touch pages so residency is real, then empty the first chunk.
        for &p in &big {
            mem.write(p, 8, 1);
        }
        let resident_before = a.resident_grouped_bytes();
        for &p in &big {
            a.free(p, &mut mem);
        }
        // max_spare_chunks = 0 → immediate purge.
        assert_eq!(a.stats().chunks_purged, 1);
        assert!(a.resident_grouped_bytes() < resident_before);
        // Purged chunk returns zeroed when reused.
        let _ = p_new;
        assert_eq!(mem.read(big[0], 8), 0);
    }

    #[test]
    fn spare_chunk_is_reused_before_carving() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        // Fill chunk A, roll to chunk B, then empty chunk A → spare.
        let a_ptrs: Vec<u64> = (0..4).map(|_| a.malloc(2048, site(), &gs, &mut mem)).collect();
        let _b = a.malloc(2048, site(), &gs, &mut mem);
        for &p in &a_ptrs {
            a.free(p, &mut mem);
        }
        let created_before = a.stats().chunks_created;
        // Group 1 needs a chunk: the spare one is handed over.
        gs.clear(0);
        gs.set(1);
        let p = a.malloc(16, site(), &gs, &mut mem);
        assert_eq!(
            p & !(small_config().chunk_size - 1),
            a_ptrs[0] & !(small_config().chunk_size - 1)
        );
        assert_eq!(a.stats().chunks_created, created_before);
    }

    #[test]
    fn realloc_between_group_and_fallback() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p = a.malloc(64, site(), &gs, &mut mem);
        mem.write(p, 8, 0xbeef);
        // Growing past the grouped cap moves it to the fallback.
        let q = a.realloc(p, 100_000, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(q));
        assert_eq!(mem.read(q, 8), 0xbeef);
        // A fallback-owned region stays with the fallback on realloc
        // (§4.4: non-group requests are forwarded wholesale).
        let r = a.realloc(q, 64, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(r));
        assert_eq!(mem.read(r, 8), 0xbeef);
        // A still-grouped region realloc'd within the cap stays grouped.
        let g1 = a.malloc(64, site(), &gs, &mut mem);
        mem.write(g1, 8, 0xcafe);
        let g2 = a.realloc(g1, 128, site(), &gs, &mut mem);
        assert!(a.is_group_allocated(g2));
        assert_eq!(mem.read(g2, 8), 0xcafe);
    }

    #[test]
    fn fragmentation_report_tracks_worst_live_at_peak() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        // 16 × 256 B fill one 4 KiB page: peak resident 4096, live 4096.
        let ptrs: Vec<u64> = (0..16).map(|_| a.malloc(256, site(), &gs, &mut mem)).collect();
        assert_eq!(a.frag_report().peak_resident_bytes, 4096);
        // A lone survivor pins the page: the snapshot at the (unchanged)
        // peak degrades to the leela-style pathology of Table 1.
        for &p in &ptrs[1..] {
            a.free(p, &mut mem);
        }
        let rep = a.frag_report();
        assert_eq!(rep.peak_resident_bytes, 4096);
        assert_eq!(rep.live_at_peak_bytes, 256);
        assert_eq!(rep.wasted_bytes(), 3840);
        assert!((rep.frag_fraction() - 0.9375).abs() < 1e-9);
    }

    #[test]
    fn frag_report_zero_resident_is_all_zeroes() {
        // A run that never groups anything (or an allocator never used):
        // nothing resident, nothing live — every derived metric must be a
        // finite zero, not 0/0.
        let rep = FragReport::default();
        assert_eq!(rep.peak_resident_bytes, 0);
        assert_eq!(rep.wasted_bytes(), 0);
        assert_eq!(rep.frag_fraction(), 0.0);
        assert!(rep.frag_fraction().is_finite());
        // And straight off an untouched allocator.
        let (a, _, _) = setup();
        assert_eq!(a.frag_report(), FragReport::default());
    }

    #[test]
    fn frag_report_live_above_resident_saturates() {
        // live > resident cannot arise from the allocator's own accounting,
        // but FragReport is a plain data type consumed by harness code —
        // a hand-built (or future buggy) report must saturate at zero
        // waste, not underflow to u64::MAX wasted bytes.
        let rep = FragReport { peak_resident_bytes: 4096, live_at_peak_bytes: 5000 };
        assert_eq!(rep.wasted_bytes(), 0, "saturating_sub, not wrap");
        assert_eq!(rep.frag_fraction(), 0.0);
        assert!(rep.frag_fraction() >= 0.0 && rep.frag_fraction() <= 1.0);
    }

    #[test]
    fn sharded_reuse_recycles_holes_within_the_chunk() {
        let cfg =
            GroupAllocConfig { reuse_policy: ReusePolicy::ShardedFreeLists, ..small_config() };
        let mut a = HaloGroupAllocator::new(cfg, two_group_table());
        let mut gs = GroupState::new(2);
        let mut mem = Memory::new();
        gs.set(0);
        let p1 = a.malloc(64, site(), &gs, &mut mem);
        let p2 = a.malloc(64, site(), &gs, &mut mem);
        let p3 = a.malloc(24, site(), &gs, &mut mem);
        // Free the middle region: under bump it would be lost until the
        // chunk empties; sharded reuse hands it straight back.
        a.free(p2, &mut mem);
        let p4 = a.malloc(64, site(), &gs, &mut mem);
        assert_eq!(p4, p2, "same-size hole recycled");
        // A different size shard does not steal it.
        a.free(p4, &mut mem);
        let p5 = a.malloc(24, site(), &gs, &mut mem);
        assert_ne!(p5, p2, "different shard bumps instead");
        let _ = (p1, p3);
    }

    #[test]
    fn sharded_reuse_reduces_survivor_fragmentation() {
        // The leela scenario: allocate a burst, free all but one survivor,
        // allocate another burst. Bump marches on; sharding backfills.
        let run = |policy: ReusePolicy| {
            let cfg = GroupAllocConfig { reuse_policy: policy, ..small_config() };
            let mut a = HaloGroupAllocator::new(cfg, two_group_table());
            let mut gs = GroupState::new(2);
            let mut mem = Memory::new();
            gs.set(0);
            for _round in 0..4 {
                let ptrs: Vec<u64> = (0..32).map(|_| a.malloc(48, site(), &gs, &mut mem)).collect();
                for &p in &ptrs[1..] {
                    a.free(p, &mut mem);
                }
            }
            a.frag_report()
        };
        let bump = run(ReusePolicy::Bump);
        let sharded = run(ReusePolicy::ShardedFreeLists);
        assert!(
            sharded.peak_resident_bytes <= bump.peak_resident_bytes,
            "sharding must not grow the footprint"
        );
        assert!(
            sharded.wasted_bytes() <= bump.wasted_bytes(),
            "sharded {} vs bump {}",
            sharded.wasted_bytes(),
            bump.wasted_bytes()
        );
    }

    #[test]
    fn live_accounting_spans_group_and_fallback() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let g = a.malloc(100, site(), &gs, &mut mem);
        gs.clear(0);
        let f = a.malloc(200, site(), &gs, &mut mem);
        assert_eq!(a.live_bytes(), 300);
        assert_eq!(a.live_objects(), 2);
        a.free(g, &mut mem);
        a.free(f, &mut mem);
        assert_eq!(a.live_bytes(), 0);
    }
}
