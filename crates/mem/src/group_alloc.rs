//! HALO's specialised group allocator (§4.4, Fig. 11).
//!
//! Memory is reserved from the simulated OS in large demand-paged **slabs**
//! and managed in smaller group-owned **chunks** from which regions are bump
//! allocated with no per-object headers. Each chunk counts its
//! `live_regions`; when the count reaches zero the chunk is empty and can be
//! reused or freed, subject to a spare-chunk policy that keeps up to
//! `max_spare_chunks` dirty chunks around before purging pages back to the
//! OS (as early jemalloc versions did, per §5.1).
//!
//! The allocator honours **per-group configuration overrides**: each group
//! may run its own chunk size, spare-chunk budget, and in-chunk reuse
//! policy (bump vs mimalloc-style sharded free lists), so a per-group
//! layout plan — not one global decision — shapes the heap. Chunk sizes may
//! therefore differ per group; a freed pointer finds its chunk through an
//! ordered base-address index rather than pointer masking.
//!
//! Allocations that are not grouped — selector mismatch, size at or above
//! the page-size cap, or too large for the group's own chunks — forward to
//! the fallback allocator (the paper uses `dlsym` to find the next
//! allocator; composition plays that role here).

use crate::faults::{DegradeStats, FaultInjector, FaultSite};
use crate::selector::SelectorTable;
use crate::stats::AllocatorStats;
use crate::vmm::{ReserveError, Vmm};
use crate::SizeClassAllocator;
use halo_graph::ReusePolicy;
use halo_vm::{CallSite, GroupState, Memory, VmAllocator, PAGE_SIZE};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Tunables of the group allocator, mirroring the artefact's flags
/// (`--chunk-size`, `--max-spare-chunks`, `--max-groups` lives in grouping).
///
/// One value acts as the allocator-wide default; [`HaloGroupAllocator`]
/// additionally accepts per-group overrides, of which the **per-group**
/// fields are `chunk_size`, `max_spare_chunks`, and `reuse_policy` —
/// `max_grouped_size`, `slab_size`, and `base` remain allocator-global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupAllocConfig {
    /// Chunk size in bytes; must be a power of two of at least a page.
    /// Paper default: 1 MiB.
    pub chunk_size: u64,
    /// Dirty chunks a group may keep for reuse before purging pages. Paper
    /// default: 1; omnetpp/xalanc run with 0; `usize::MAX` models the
    /// "always reuse" configuration.
    pub max_spare_chunks: usize,
    /// Requests of this size or larger are never grouped (§4.4 uses the
    /// page size; profiling uses a 4 KiB max grouped-object size).
    /// Allocator-global (the check precedes group classification).
    pub max_grouped_size: u64,
    /// Bytes reserved per slab. Paper: "large, demand-paged slabs".
    /// Allocator-global.
    pub slab_size: u64,
    /// Base of the slab address span. Allocator-global.
    pub base: u64,
    /// In-chunk recycling policy (the paper's future-work axis; see
    /// [`ReusePolicy`]).
    pub reuse_policy: ReusePolicy,
}

impl Default for GroupAllocConfig {
    fn default() -> Self {
        GroupAllocConfig {
            chunk_size: 1 << 20,
            max_spare_chunks: 1,
            max_grouped_size: 4096,
            slab_size: 64 << 20,
            base: 0x70_0000_0000,
            reuse_policy: ReusePolicy::Bump,
        }
    }
}

/// Event counters exposed for experiments and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupAllocStats {
    /// Allocations served from group chunks.
    pub grouped_allocs: u64,
    /// Allocations forwarded to the fallback allocator.
    pub fallback_allocs: u64,
    /// Frees of group-allocated regions.
    pub grouped_frees: u64,
    /// Frees forwarded to the fallback allocator.
    pub fallback_frees: u64,
    /// Chunks carved fresh from slabs.
    pub chunks_created: u64,
    /// Empty chunks reused (spare or purged pool, or in-place reset).
    pub chunks_reused: u64,
    /// Chunks whose pages were purged back to the OS.
    pub chunks_purged: u64,
}

/// Fragmentation at the peak, in the format of the paper's Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FragReport {
    /// Resident bytes of group chunks at the observed peak.
    pub peak_resident_bytes: u64,
    /// Live (requested) grouped bytes at that moment.
    pub live_at_peak_bytes: u64,
}

impl FragReport {
    /// Wasted bytes: resident but not live (Table 1 "Frag. (bytes)").
    pub fn wasted_bytes(&self) -> u64 {
        self.peak_resident_bytes.saturating_sub(self.live_at_peak_bytes)
    }

    /// Wasted fraction of resident memory (Table 1 "Frag. (%)"), in
    /// `[0, 1]`; 0 when nothing was ever resident.
    pub fn frag_fraction(&self) -> f64 {
        if self.peak_resident_bytes == 0 {
            0.0
        } else {
            self.wasted_bytes() as f64 / self.peak_resident_bytes as f64
        }
    }
}

/// Running resident/live accounting for one pool (the whole allocator or a
/// single group), maintaining the Table 1 peak snapshot.
#[derive(Debug, Clone, Copy, Default)]
struct PoolUsage {
    resident: u64,
    live: u64,
    frag: FragReport,
}

impl PoolUsage {
    /// Maintain the Table 1 snapshot: at the peak resident footprint,
    /// record the *worst* (smallest) live size observed — a chunk pinned by
    /// a lone survivor shows up as fragmentation exactly as in the paper.
    fn note(&mut self) {
        if self.resident > self.frag.peak_resident_bytes {
            self.frag.peak_resident_bytes = self.resident;
            self.frag.live_at_peak_bytes = self.live;
        } else if self.resident == self.frag.peak_resident_bytes
            && self.live < self.frag.live_at_peak_bytes
        {
            self.frag.live_at_peak_bytes = self.live;
        }
    }
}

#[derive(Debug)]
struct Chunk {
    group: usize,
    /// Next bump address.
    bump: u64,
    /// One past the last usable byte.
    end: u64,
    /// Regions allocated and not yet freed.
    live_regions: u64,
    /// Highest bump address ever reached (dirty extent).
    high_water: u64,
    /// Sharded free lists: rounded size → freed region addresses
    /// (only populated under [`ReusePolicy::ShardedFreeLists`]).
    shards: HashMap<u64, Vec<u64>>,
}

/// An empty-but-dirty chunk waiting for reuse. Its pages stay resident and
/// are attributed to `owner` (the group that last used it) until the chunk
/// is purged or handed to another group.
#[derive(Debug, Clone, Copy)]
struct SpareChunk {
    base: u64,
    high_water: u64,
    size: u64,
    owner: usize,
}

/// The specialised allocator synthesised by the HALO pipeline. Generic over
/// the fallback allocator `F` (defaults to the jemalloc-style baseline).
#[derive(Debug)]
pub struct HaloGroupAllocator<F = SizeClassAllocator> {
    config: GroupAllocConfig,
    /// Effective configuration per group (the global `config` unless a
    /// per-group plan overrode it).
    group_cfg: Vec<GroupAllocConfig>,
    selectors: SelectorTable,
    /// Immediate-call-site classification (the hot-data-streams comparison
    /// technique "utilise[s] the same specialised allocator as HALO, but
    /// with groups … identified at runtime using the immediate call site of
    /// the allocation procedure", §5.1). Empty in selector mode.
    site_groups: HashMap<CallSite, usize>,
    vmm: Vmm,
    /// Cursor into the current slab: `(next_free_byte, slab_end)`.
    slab_cursor: Option<(u64, u64)>,
    /// End of the highest slab reserved so far; pointers below `config.base`
    /// or at/above this are fallback-owned.
    slabs_end: u64,
    /// In-use chunks, ordered by base address so a freed pointer locates
    /// its (possibly group-sized) chunk by predecessor lookup.
    chunks: BTreeMap<u64, Chunk>,
    /// Current chunk base per group.
    current: Vec<Option<u64>>,
    /// Empty-but-dirty chunks available for reuse, oldest first.
    spare: Vec<SpareChunk>,
    /// Purged (clean) chunks available for reuse: `(base, size)`.
    clean: Vec<(u64, u64)>,
    /// Requested size per live grouped region. The real allocator needs no
    /// per-object metadata for `free` (only `live_regions`), but `realloc`
    /// must know how many bytes to copy; a native implementation gets this
    /// from the C library's usable-size machinery, which the simulation
    /// does not model, so it is kept out of band here.
    region_sizes: HashMap<u64, u64>,
    fallback: F,
    /// Allocator-wide usage and Table 1 snapshot.
    usage: PoolUsage,
    /// Per-group usage and Table 1 snapshots (what the per-group `auto`
    /// reuse policy ranks groups by).
    group_usage: Vec<PoolUsage>,
    stats: GroupAllocStats,
    /// Groups whose chunk supply failed: new requests route wholesale to
    /// the fallback (the paper's ungrouped path), live pointers keep
    /// working. The optimisation is lost for the group, never the process.
    degraded: Vec<bool>,
    /// Degradation-ladder counters. `degraded_groups` and
    /// `injected_faults` are snapshots computed on read (see
    /// [`Self::degrade_stats`]); the rest accumulate here.
    degrade: DegradeStats,
    /// Fault injector for chaos runs; `None` in production costs one
    /// branch per resource edge and changes no behaviour.
    faults: Option<Arc<FaultInjector>>,
}

impl HaloGroupAllocator<SizeClassAllocator> {
    /// Create an allocator with the default jemalloc-style fallback.
    pub fn new(config: GroupAllocConfig, selectors: SelectorTable) -> Self {
        Self::build(config, selectors, Vec::new(), SizeClassAllocator::new())
    }

    /// Create an allocator whose group `g` runs under `overrides[g]`
    /// instead of `config` (missing entries inherit `config`). Only the
    /// per-group fields are honoured — see [`GroupAllocConfig`].
    ///
    /// # Panics
    ///
    /// Panics if any override's `chunk_size` is not a power of two of at
    /// least a page, or does not divide the global `slab_size`.
    pub fn with_group_configs(
        config: GroupAllocConfig,
        selectors: SelectorTable,
        overrides: Vec<GroupAllocConfig>,
    ) -> Self {
        Self::build(config, selectors, overrides, SizeClassAllocator::new())
    }

    /// Create an allocator classifying by immediate call site (the
    /// hot-data-streams comparison) with the default fallback.
    pub fn with_site_groups(
        config: GroupAllocConfig,
        site_groups: HashMap<CallSite, usize>,
    ) -> Self {
        let mut a =
            Self::build(config, SelectorTable::empty(), Vec::new(), SizeClassAllocator::new());
        let num_groups = site_groups.values().map(|&g| g + 1).max().unwrap_or(0);
        a.ensure_groups(num_groups);
        a.site_groups = site_groups;
        a
    }
}

impl<F: VmAllocator> HaloGroupAllocator<F> {
    /// Create an allocator forwarding non-grouped requests to `fallback`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is not a power of two or `slab_size` is not a
    /// multiple of it.
    pub fn with_fallback(config: GroupAllocConfig, selectors: SelectorTable, fallback: F) -> Self {
        Self::build(config, selectors, Vec::new(), fallback)
    }

    /// [`Self::with_group_configs`] with an explicit fallback — the shape
    /// [`crate::ShardedHaloAllocator`] needs: per-shard plans *and* a
    /// per-shard fallback rooted at a shard-private base address.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::with_group_configs`].
    pub fn with_group_configs_and_fallback(
        config: GroupAllocConfig,
        selectors: SelectorTable,
        overrides: Vec<GroupAllocConfig>,
        fallback: F,
    ) -> Self {
        Self::build(config, selectors, overrides, fallback)
    }

    fn build(
        config: GroupAllocConfig,
        selectors: SelectorTable,
        overrides: Vec<GroupAllocConfig>,
        fallback: F,
    ) -> Self {
        Self::validate_chunk(&config, config.chunk_size);
        let num_groups = selectors.num_groups().max(overrides.len());
        let mut group_cfg = vec![config; num_groups];
        for (g, over) in overrides.into_iter().enumerate() {
            Self::validate_chunk(&config, over.chunk_size);
            group_cfg[g] = over;
        }
        HaloGroupAllocator {
            config,
            group_cfg,
            selectors,
            vmm: Vmm::new(config.base, 1 << 38),
            slab_cursor: None,
            slabs_end: config.base,
            chunks: BTreeMap::new(),
            current: vec![None; num_groups],
            site_groups: HashMap::new(),
            spare: Vec::new(),
            clean: Vec::new(),
            region_sizes: HashMap::new(),
            fallback,
            usage: PoolUsage::default(),
            group_usage: vec![PoolUsage::default(); num_groups],
            stats: GroupAllocStats::default(),
            degraded: vec![false; num_groups],
            degrade: DegradeStats::default(),
            faults: None,
        }
    }

    pub(crate) fn validate_chunk(config: &GroupAllocConfig, chunk_size: u64) {
        assert!(chunk_size.is_power_of_two(), "chunk size must be a power of two");
        assert!(chunk_size >= PAGE_SIZE, "chunks must be at least a page");
        assert_eq!(config.slab_size % chunk_size, 0, "slabs must hold whole chunks");
    }

    /// Grow the per-group tables to at least `n` groups (new groups run
    /// under the global configuration).
    fn ensure_groups(&mut self, n: usize) {
        if n > self.current.len() {
            self.current.resize(n, None);
            self.group_cfg.resize(n, self.config);
            self.group_usage.resize(n, PoolUsage::default());
            self.degraded.resize(n, false);
        }
    }

    /// Event counters.
    pub fn stats(&self) -> GroupAllocStats {
        self.stats
    }

    /// Fragmentation of grouped memory at the peak observed so far
    /// (Table 1's measurement).
    pub fn frag_report(&self) -> FragReport {
        self.usage.frag
    }

    /// Per-group fragmentation snapshots (same rule as [`Self::frag_report`],
    /// scoped to each group's own chunks). Indexed by group.
    pub fn group_frag_reports(&self) -> Vec<FragReport> {
        self.group_usage.iter().map(|u| u.frag).collect()
    }

    /// The effective configuration of `group` (the global configuration
    /// unless overridden).
    pub fn group_config(&self, group: usize) -> GroupAllocConfig {
        self.group_cfg.get(group).copied().unwrap_or(self.config)
    }

    /// Hot-swap the allocator onto a new plan: replace the selector table
    /// and per-group configuration in place (DESIGN.md §15).
    ///
    /// The swap is *prospective*: it takes effect for freshly carved
    /// chunks only. A group whose effective configuration changed retires
    /// its open chunk (the next grouped allocation carves under the new
    /// configuration); a group whose configuration is unchanged keeps
    /// filling its current chunk, so swapping in an identical plan is
    /// observably a no-op. Live pointers never move — a free locates its
    /// chunk by address and recycles it under the configuration in force
    /// *at free time*, exactly as before the swap, and retired chunks
    /// drain through the normal free/spare/purge machinery. Groups parked
    /// by the degradation ladder stay parked: a plan change does not
    /// resurrect a group whose chunk supply already failed.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Self::with_group_configs`]
    /// (invalid override `chunk_size`) — validation happens before any
    /// state is touched, so a bad plan leaves the allocator unchanged.
    pub fn install_plan(&mut self, selectors: SelectorTable, overrides: Vec<GroupAllocConfig>) {
        for over in &overrides {
            Self::validate_chunk(&self.config, over.chunk_size);
        }
        let num_groups = selectors.num_groups().max(overrides.len());
        self.ensure_groups(num_groups);
        let mut new_cfg = vec![self.config; self.group_cfg.len()];
        for (g, over) in overrides.into_iter().enumerate() {
            new_cfg[g] = over;
        }
        for (g, cfg) in new_cfg.iter().enumerate() {
            if *cfg != self.group_cfg[g] {
                // Retire the open chunk; the next allocation for the
                // group carves fresh under the new configuration.
                self.current[g] = None;
            }
        }
        self.group_cfg = new_cfg;
        self.selectors = selectors;
    }

    /// The fallback allocator (for its own statistics).
    pub fn fallback(&self) -> &F {
        &self.fallback
    }

    /// Whether `ptr` was group allocated (lies within a slab).
    pub fn is_group_allocated(&self, ptr: u64) -> bool {
        (self.config.base..self.slabs_end).contains(&ptr)
    }

    /// Bytes of grouped data currently live.
    pub fn live_grouped_bytes(&self) -> u64 {
        self.usage.live
    }

    /// Resident bytes currently attributed to group chunks.
    pub fn resident_grouped_bytes(&self) -> u64 {
        self.usage.resident
    }

    /// Dirty (resident) bytes of a chunk whose bump high-water mark is
    /// `high_water`, in whole pages.
    fn dirty_bytes(base: u64, high_water: u64) -> u64 {
        (high_water - base).div_ceil(PAGE_SIZE) * PAGE_SIZE
    }

    fn carve_chunk(&mut self, cs: u64) -> Result<u64, ReserveError> {
        if let Some((next, end)) = self.slab_cursor {
            // Chunks of different groups may differ in size; align each to
            // its own size within the slab.
            let base = (next + cs - 1) & !(cs - 1);
            if base + cs <= end {
                self.slab_cursor = Some((base + cs, end));
                return Ok(base);
            }
        }
        if self.faults.as_ref().is_some_and(|f| f.should_fail(FaultSite::VmmReserve)) {
            return Err(ReserveError::SpanExhausted {
                requested: self.config.slab_size,
                available: 0,
            });
        }
        let slab = self.vmm.reserve(self.config.slab_size, cs)?;
        self.slabs_end = self.slabs_end.max(slab + self.config.slab_size);
        self.slab_cursor = Some((slab + cs, slab + self.config.slab_size));
        Ok(slab)
    }

    /// Supply a chunk for `group`, or `None` when the chunk map cannot
    /// grow or the slab span is exhausted — the caller's cue to degrade
    /// the group, never a panic.
    fn acquire_chunk(&mut self, group: usize) -> Option<u64> {
        if self.faults.as_ref().is_some_and(|f| f.should_fail(FaultSite::ChunkAlloc)) {
            return None;
        }
        let cs = self.group_cfg[group].chunk_size;
        // Reuse pools are shared between groups, but only a chunk of the
        // group's own size qualifies.
        let (base, high_water) = if let Some(i) = self.spare.iter().position(|s| s.size == cs) {
            let s = self.spare.remove(i);
            self.stats.chunks_reused += 1;
            let dirty = Self::dirty_bytes(s.base, s.high_water);
            if s.owner != group && dirty > 0 {
                // The dirty pages change hands with the chunk.
                self.group_usage[s.owner].resident -= dirty;
                self.group_usage[group].resident += dirty;
            }
            (s.base, s.high_water)
        } else if let Some(i) = self.clean.iter().position(|&(_, size)| size == cs) {
            let (base, _) = self.clean.remove(i);
            self.stats.chunks_reused += 1;
            (base, base)
        } else {
            let base = self.carve_chunk(cs).ok()?;
            self.stats.chunks_created += 1;
            (base, base)
        };
        self.chunks.insert(
            base,
            Chunk {
                group,
                bump: base,
                end: base + cs,
                live_regions: 0,
                high_water,
                shards: HashMap::new(),
            },
        );
        self.current[group] = Some(base);
        Some(base)
    }

    /// Serve a grouped request, or `None` when the group's chunk supply
    /// failed (the degradation path: the caller routes to the fallback).
    fn group_malloc(&mut self, group: usize, size: u64) -> Option<u64> {
        let cfg = self.group_cfg[group];
        let rounded = (size.max(1) + 7) & !7;
        // Sharded reuse: recycle a freed same-size region from the group's
        // current chunk before bumping (mimalloc-style, §6 future work).
        if cfg.reuse_policy == ReusePolicy::ShardedFreeLists {
            if let Some(base) = self.current[group] {
                if let Some(chunk) = self.chunks.get_mut(&base) {
                    if let Some(list) = chunk.shards.get_mut(&rounded) {
                        if let Some(ptr) = list.pop() {
                            chunk.live_regions += 1;
                            self.region_sizes.insert(ptr, size);
                            self.usage.live += size;
                            self.group_usage[group].live += size;
                            self.stats.grouped_allocs += 1;
                            self.note_usage(group);
                            return Some(ptr);
                        }
                    }
                }
            }
        }
        let chunk_base = match self.current[group] {
            Some(base) if self.chunks.get(&base).is_some_and(|c| c.bump + rounded <= c.end) => base,
            _ => self.acquire_chunk(group)?,
        };
        let c = self.chunks.get_mut(&chunk_base)?;
        let ptr = c.bump;
        c.bump += rounded;
        c.live_regions += 1;
        if c.bump > c.high_water {
            let old_dirty = Self::dirty_bytes(chunk_base, c.high_water);
            c.high_water = c.bump;
            let new_dirty = Self::dirty_bytes(chunk_base, c.high_water);
            self.usage.resident += new_dirty - old_dirty;
            self.group_usage[group].resident += new_dirty - old_dirty;
        }
        self.region_sizes.insert(ptr, size);
        self.usage.live += size;
        self.group_usage[group].live += size;
        self.stats.grouped_allocs += 1;
        self.note_usage(group);
        Some(ptr)
    }

    /// Refresh the global and per-group Table 1 snapshots.
    fn note_usage(&mut self, group: usize) {
        self.usage.note();
        self.group_usage[group].note();
    }

    fn group_free(&mut self, ptr: u64, mem: &mut Memory) {
        // A pointer in the slab range with no live region (double free,
        // free of an interior address) is absorbed as a counted no-op —
        // the invalid free must not corrupt accounting or take the
        // process down with it.
        let Some(&size) = self.region_sizes.get(&ptr) else {
            self.degrade.invalid_frees += 1;
            return;
        };
        // Chunk sizes vary per group: locate the containing chunk by
        // predecessor lookup on the ordered base index.
        let Some((&chunk_base, chunk)) =
            self.chunks.range_mut(..=ptr).next_back().filter(|(_, c)| ptr < c.end)
        else {
            self.degrade.invalid_frees += 1;
            return;
        };
        self.region_sizes.remove(&ptr);
        let group = chunk.group;
        let cfg = self.group_cfg[group];
        self.usage.live -= size;
        self.group_usage[group].live -= size;
        self.stats.grouped_frees += 1;
        debug_assert!(chunk.live_regions > 0);
        chunk.live_regions -= 1;
        if chunk.live_regions > 0 {
            if cfg.reuse_policy == ReusePolicy::ShardedFreeLists {
                let rounded = (size.max(1) + 7) & !7;
                chunk.shards.entry(rounded).or_default().push(ptr);
            }
            self.note_usage(group);
            return;
        }
        // Chunk is empty: reuse or free (§4.4).
        if self.current[group] == Some(chunk_base) {
            // Still the group's current chunk: reset the bump pointer and
            // keep using it in place (its pages stay dirty/resident).
            chunk.bump = chunk_base;
            chunk.shards.clear();
            self.stats.chunks_reused += 1;
            self.note_usage(group);
            return;
        }
        let Some(chunk) = self.chunks.remove(&chunk_base) else {
            return; // just observed above; nothing sane to do if gone
        };
        self.spare.push(SpareChunk {
            base: chunk_base,
            high_water: chunk.high_water,
            size: chunk.end - chunk_base,
            owner: group,
        });
        // Each group keeps at most its own spare-chunk budget in the pool;
        // the oldest excess donation is purged back to the OS. Under the
        // "always reuse" budget (usize::MAX) no donation can ever exceed
        // it, so skip the ownership scan entirely — the pool is unbounded
        // precisely in that configuration, and an O(pool) count per
        // emptied chunk would make teardown quadratic.
        while cfg.max_spare_chunks != usize::MAX
            && self.spare.iter().filter(|s| s.owner == group).count() > cfg.max_spare_chunks
        {
            let Some(i) = self.spare.iter().position(|s| s.owner == group) else {
                break; // counted above; bail rather than spin if gone
            };
            let s = self.spare.remove(i);
            let dirty = Self::dirty_bytes(s.base, s.high_water);
            self.usage.resident -= dirty;
            self.group_usage[s.owner].resident -= dirty;
            mem.discard(s.base, s.size);
            self.clean.push((s.base, s.size));
            self.stats.chunks_purged += 1;
        }
        self.note_usage(group);
    }

    /// Attach a fault injector (chaos runs). Shared by `Arc` so one
    /// schedule can span an allocator and its shards.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        self.faults = Some(injector);
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&Arc<FaultInjector>> {
        self.faults.as_ref()
    }

    /// Whether `group` has been degraded (its requests route to the
    /// fallback).
    pub fn is_degraded(&self, group: usize) -> bool {
        self.degraded.get(group).copied().unwrap_or(false)
    }

    /// Degrade `group`: new requests take the fallback path from now on.
    /// Live grouped pointers are unaffected — `free`/`realloc` still find
    /// their chunks.
    fn degrade_group(&mut self, group: usize) {
        if let Some(d) = self.degraded.get_mut(group) {
            *d = true;
        }
    }

    /// Degrade every group at once — the quarantine rung of the ladder,
    /// used when invariants can no longer be trusted (e.g. after a lock
    /// poisoning whose re-validation failed). The allocator keeps serving
    /// every request through the fallback.
    pub fn quarantine(&mut self) {
        for d in &mut self.degraded {
            *d = true;
        }
    }

    /// Degradation counters without the injected-fault count (the shard
    /// aggregation path fills that in exactly once from the shared
    /// injector, so per-shard sums do not multiply it).
    pub(crate) fn degrade_raw(&self) -> DegradeStats {
        DegradeStats {
            degraded_groups: self.degraded.iter().filter(|&&d| d).count() as u64,
            ..self.degrade
        }
    }

    /// Degradation-ladder counters, including faults fired by the
    /// attached injector.
    pub fn degrade_stats(&self) -> DegradeStats {
        let mut d = self.degrade_raw();
        if let Some(f) = &self.faults {
            d.injected_faults = f.fired();
        }
        d
    }

    /// Cheap structural self-check, run when recovering a poisoned lock:
    /// every chunk's bump/high-water within its span, the live-region
    /// count in agreement with the region-size table, and every current
    /// chunk present and owned by its group.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_invariants(&self) -> Result<(), &'static str> {
        let mut live_regions: u64 = 0;
        for (&base, c) in &self.chunks {
            if c.bump < base || c.bump > c.end {
                return Err("chunk bump pointer outside its span");
            }
            if c.high_water < base || c.high_water > c.end {
                return Err("chunk high-water mark outside its span");
            }
            live_regions += c.live_regions;
        }
        if live_regions != self.region_sizes.len() as u64 {
            return Err("live-region count disagrees with the region-size table");
        }
        for (g, cur) in self.current.iter().enumerate() {
            if let Some(base) = cur {
                match self.chunks.get(base) {
                    Some(c) if c.group == g => {}
                    _ => return Err("current chunk missing or owned by another group"),
                }
            }
        }
        Ok(())
    }
}

impl<F: VmAllocator> AllocatorStats for HaloGroupAllocator<F>
where
    F: AllocatorStats,
{
    fn live_bytes(&self) -> u64 {
        self.usage.live + self.fallback.live_bytes()
    }

    fn live_objects(&self) -> usize {
        self.region_sizes.len() + self.fallback.live_objects()
    }
}

impl<F: VmAllocator> VmAllocator for HaloGroupAllocator<F> {
    fn malloc(&mut self, size: u64, site: CallSite, gs: &GroupState, mem: &mut Memory) -> u64 {
        // §4.4: the allocator "compares the size of the allocation with the
        // maximum grouped object size, and checks the contents of the group
        // state vector against the set of selectors". In site mode (the
        // hot-data-streams comparison) the immediate call site decides.
        if size < self.config.max_grouped_size {
            if let Some(group) =
                self.selectors.classify(gs).or_else(|| self.site_groups.get(&site).copied())
            {
                // A request too large for the group's own (possibly
                // plan-shrunken) chunks forwards like any other
                // non-groupable request.
                let rounded = (size.max(1) + 7) & !7;
                if rounded <= self.group_cfg[group].chunk_size {
                    if self.is_degraded(group) {
                        // Degradation ladder: a group whose chunk supply
                        // failed serves from the fallback (the ungrouped
                        // path of §4.4) instead of crashing or refusing.
                        self.degrade.fallback_routes += 1;
                    } else if let Some(ptr) = self.group_malloc(group, size) {
                        return ptr;
                    } else {
                        self.degrade_group(group);
                        self.degrade.fallback_routes += 1;
                    }
                }
            }
        }
        self.stats.fallback_allocs += 1;
        self.fallback.malloc(size, site, gs, mem)
    }

    fn free(&mut self, ptr: u64, mem: &mut Memory) {
        if self.is_group_allocated(ptr) {
            self.group_free(ptr, mem);
        } else {
            self.stats.fallback_frees += 1;
            self.fallback.free(ptr, mem);
        }
    }

    fn realloc(
        &mut self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        if self.is_group_allocated(ptr) {
            let old_size = self.region_sizes.get(&ptr).copied().unwrap_or(0);
            let newp = self.malloc(size, site, gs, mem);
            mem.copy(newp, ptr, old_size.min(size));
            self.group_free(ptr, mem);
            newp
        } else {
            self.fallback.realloc(ptr, size, site, gs, mem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::GroupSelector;
    use halo_graph::GroupPlan;

    fn site() -> CallSite {
        CallSite::new(halo_vm::FuncId(0), 0)
    }

    /// Two groups: group 0 on bit 0, group 1 on bit 1.
    fn two_group_table() -> SelectorTable {
        SelectorTable::new(
            vec![
                GroupSelector { group: 0, conjunctions: vec![vec![0]] },
                GroupSelector { group: 1, conjunctions: vec![vec![1]] },
            ],
            2,
        )
    }

    fn small_config() -> GroupAllocConfig {
        GroupAllocConfig {
            chunk_size: 8192,
            max_spare_chunks: 1,
            max_grouped_size: 4096,
            slab_size: 8192 * 8,
            ..GroupAllocConfig::default()
        }
    }

    fn setup() -> (HaloGroupAllocator, GroupState, Memory) {
        (
            HaloGroupAllocator::new(small_config(), two_group_table()),
            GroupState::new(2),
            Memory::new(),
        )
    }

    #[test]
    fn grouped_allocations_bump_contiguously() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p1 = a.malloc(24, site(), &gs, &mut mem);
        let p2 = a.malloc(24, site(), &gs, &mut mem);
        let p3 = a.malloc(10, site(), &gs, &mut mem);
        assert_eq!(p2, p1 + 24);
        assert_eq!(p3, p2 + 24);
        assert_eq!(p3 % 8, 0, "minimum 8-byte alignment");
        assert_eq!(a.stats().grouped_allocs, 3);
    }

    #[test]
    fn groups_get_separate_chunks() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p0 = a.malloc(16, site(), &gs, &mut mem);
        gs.clear(0);
        gs.set(1);
        let p1 = a.malloc(16, site(), &gs, &mut mem);
        let cs = small_config().chunk_size;
        assert_ne!(p0 & !(cs - 1), p1 & !(cs - 1), "different chunks");
        // Interleaving keeps each group contiguous.
        gs.clear(1);
        gs.set(0);
        let p0b = a.malloc(16, site(), &gs, &mut mem);
        assert_eq!(p0b, p0 + 16);
    }

    #[test]
    fn unmatched_state_falls_back() {
        let (mut a, gs, mut mem) = setup();
        let p = a.malloc(16, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(p));
        assert_eq!(a.stats().fallback_allocs, 1);
        a.free(p, &mut mem);
        assert_eq!(a.stats().fallback_frees, 1);
    }

    #[test]
    fn large_requests_fall_back_even_when_selected() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p = a.malloc(4096, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(p));
        let q = a.malloc(4095, site(), &gs, &mut mem);
        assert!(a.is_group_allocated(q));
    }

    #[test]
    fn chunk_exhaustion_rolls_to_new_chunk() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        // 8192-byte chunks; 5 × 2048 forces a second chunk.
        let ptrs: Vec<u64> = (0..5).map(|_| a.malloc(2048, site(), &gs, &mut mem)).collect();
        let cs = small_config().chunk_size;
        let chunk0 = ptrs[0] & !(cs - 1);
        assert!(ptrs[..4].iter().all(|p| p & !(cs - 1) == chunk0));
        assert_ne!(ptrs[4] & !(cs - 1), chunk0);
        assert_eq!(a.stats().chunks_created, 2);
    }

    #[test]
    fn emptied_current_chunk_is_reset_in_place() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p1 = a.malloc(64, site(), &gs, &mut mem);
        let p2 = a.malloc(64, site(), &gs, &mut mem);
        a.free(p1, &mut mem);
        a.free(p2, &mut mem);
        // Bump pointer reset: next allocation reuses the same addresses.
        let p3 = a.malloc(64, site(), &gs, &mut mem);
        assert_eq!(p3, p1);
        assert_eq!(a.stats().chunks_created, 1);
    }

    #[test]
    fn emptied_non_current_chunk_goes_spare_then_purges() {
        let cfg = GroupAllocConfig { max_spare_chunks: 0, ..small_config() };
        let mut a = HaloGroupAllocator::new(cfg, two_group_table());
        let mut gs = GroupState::new(2);
        let mut mem = Memory::new();
        gs.set(0);
        // Fill chunk 1 fully, so chunk 2 becomes current.
        let big: Vec<u64> = (0..4).map(|_| a.malloc(2048, site(), &gs, &mut mem)).collect();
        let p_new = a.malloc(2048, site(), &gs, &mut mem);
        // Touch pages so residency is real, then empty the first chunk.
        for &p in &big {
            mem.write(p, 8, 1);
        }
        let resident_before = a.resident_grouped_bytes();
        for &p in &big {
            a.free(p, &mut mem);
        }
        // max_spare_chunks = 0 → immediate purge.
        assert_eq!(a.stats().chunks_purged, 1);
        assert!(a.resident_grouped_bytes() < resident_before);
        // Purged chunk returns zeroed when reused.
        let _ = p_new;
        assert_eq!(mem.read(big[0], 8), 0);
    }

    #[test]
    fn spare_chunk_is_reused_before_carving() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        // Fill chunk A, roll to chunk B, then empty chunk A → spare.
        let a_ptrs: Vec<u64> = (0..4).map(|_| a.malloc(2048, site(), &gs, &mut mem)).collect();
        let _b = a.malloc(2048, site(), &gs, &mut mem);
        for &p in &a_ptrs {
            a.free(p, &mut mem);
        }
        let created_before = a.stats().chunks_created;
        // Group 1 needs a chunk: the spare one is handed over.
        gs.clear(0);
        gs.set(1);
        let p = a.malloc(16, site(), &gs, &mut mem);
        assert_eq!(
            p & !(small_config().chunk_size - 1),
            a_ptrs[0] & !(small_config().chunk_size - 1)
        );
        assert_eq!(a.stats().chunks_created, created_before);
    }

    #[test]
    fn realloc_between_group_and_fallback() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p = a.malloc(64, site(), &gs, &mut mem);
        mem.write(p, 8, 0xbeef);
        // Growing past the grouped cap moves it to the fallback.
        let q = a.realloc(p, 100_000, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(q));
        assert_eq!(mem.read(q, 8), 0xbeef);
        // A fallback-owned region stays with the fallback on realloc
        // (§4.4: non-group requests are forwarded wholesale).
        let r = a.realloc(q, 64, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(r));
        assert_eq!(mem.read(r, 8), 0xbeef);
        // A still-grouped region realloc'd within the cap stays grouped.
        let g1 = a.malloc(64, site(), &gs, &mut mem);
        mem.write(g1, 8, 0xcafe);
        let g2 = a.realloc(g1, 128, site(), &gs, &mut mem);
        assert!(a.is_group_allocated(g2));
        assert_eq!(mem.read(g2, 8), 0xcafe);
    }

    #[test]
    fn fragmentation_report_tracks_worst_live_at_peak() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        // 16 × 256 B fill one 4 KiB page: peak resident 4096, live 4096.
        let ptrs: Vec<u64> = (0..16).map(|_| a.malloc(256, site(), &gs, &mut mem)).collect();
        assert_eq!(a.frag_report().peak_resident_bytes, 4096);
        // A lone survivor pins the page: the snapshot at the (unchanged)
        // peak degrades to the leela-style pathology of Table 1.
        for &p in &ptrs[1..] {
            a.free(p, &mut mem);
        }
        let rep = a.frag_report();
        assert_eq!(rep.peak_resident_bytes, 4096);
        assert_eq!(rep.live_at_peak_bytes, 256);
        assert_eq!(rep.wasted_bytes(), 3840);
        assert!((rep.frag_fraction() - 0.9375).abs() < 1e-9);
    }

    #[test]
    fn frag_report_zero_resident_is_all_zeroes() {
        // A run that never groups anything (or an allocator never used):
        // nothing resident, nothing live — every derived metric must be a
        // finite zero, not 0/0.
        let rep = FragReport::default();
        assert_eq!(rep.peak_resident_bytes, 0);
        assert_eq!(rep.wasted_bytes(), 0);
        assert_eq!(rep.frag_fraction(), 0.0);
        assert!(rep.frag_fraction().is_finite());
        // And straight off an untouched allocator.
        let (a, _, _) = setup();
        assert_eq!(a.frag_report(), FragReport::default());
    }

    #[test]
    fn frag_report_live_above_resident_saturates() {
        // live > resident cannot arise from the allocator's own accounting,
        // but FragReport is a plain data type consumed by harness code —
        // a hand-built (or future buggy) report must saturate at zero
        // waste, not underflow to u64::MAX wasted bytes.
        let rep = FragReport { peak_resident_bytes: 4096, live_at_peak_bytes: 5000 };
        assert_eq!(rep.wasted_bytes(), 0, "saturating_sub, not wrap");
        assert_eq!(rep.frag_fraction(), 0.0);
        assert!(rep.frag_fraction() >= 0.0 && rep.frag_fraction() <= 1.0);
    }

    #[test]
    fn sharded_reuse_recycles_holes_within_the_chunk() {
        let cfg =
            GroupAllocConfig { reuse_policy: ReusePolicy::ShardedFreeLists, ..small_config() };
        let mut a = HaloGroupAllocator::new(cfg, two_group_table());
        let mut gs = GroupState::new(2);
        let mut mem = Memory::new();
        gs.set(0);
        let p1 = a.malloc(64, site(), &gs, &mut mem);
        let p2 = a.malloc(64, site(), &gs, &mut mem);
        let p3 = a.malloc(24, site(), &gs, &mut mem);
        // Free the middle region: under bump it would be lost until the
        // chunk empties; sharded reuse hands it straight back.
        a.free(p2, &mut mem);
        let p4 = a.malloc(64, site(), &gs, &mut mem);
        assert_eq!(p4, p2, "same-size hole recycled");
        // A different size shard does not steal it.
        a.free(p4, &mut mem);
        let p5 = a.malloc(24, site(), &gs, &mut mem);
        assert_ne!(p5, p2, "different shard bumps instead");
        let _ = (p1, p3);
    }

    #[test]
    fn sharded_reuse_reduces_survivor_fragmentation() {
        // The leela scenario: allocate a burst, free all but one survivor,
        // allocate another burst. Bump marches on; sharding backfills.
        let run = |policy: ReusePolicy| {
            let cfg = GroupAllocConfig { reuse_policy: policy, ..small_config() };
            let mut a = HaloGroupAllocator::new(cfg, two_group_table());
            let mut gs = GroupState::new(2);
            let mut mem = Memory::new();
            gs.set(0);
            for _round in 0..4 {
                let ptrs: Vec<u64> = (0..32).map(|_| a.malloc(48, site(), &gs, &mut mem)).collect();
                for &p in &ptrs[1..] {
                    a.free(p, &mut mem);
                }
            }
            a.frag_report()
        };
        let bump = run(ReusePolicy::Bump);
        let sharded = run(ReusePolicy::ShardedFreeLists);
        assert!(
            sharded.peak_resident_bytes <= bump.peak_resident_bytes,
            "sharding must not grow the footprint"
        );
        assert!(
            sharded.wasted_bytes() <= bump.wasted_bytes(),
            "sharded {} vs bump {}",
            sharded.wasted_bytes(),
            bump.wasted_bytes()
        );
    }

    #[test]
    fn live_accounting_spans_group_and_fallback() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let g = a.malloc(100, site(), &gs, &mut mem);
        gs.clear(0);
        let f = a.malloc(200, site(), &gs, &mut mem);
        assert_eq!(a.live_bytes(), 300);
        assert_eq!(a.live_objects(), 2);
        a.free(g, &mut mem);
        a.free(f, &mut mem);
        assert_eq!(a.live_bytes(), 0);
    }

    // --- per-group configuration overrides -----------------------------

    /// Group 0 on 8 KiB chunks, group 1 on 16 KiB chunks.
    fn mixed_chunk_alloc() -> HaloGroupAllocator {
        let global = GroupAllocConfig { slab_size: 16384 * 8, ..small_config() };
        HaloGroupAllocator::with_group_configs(
            global,
            two_group_table(),
            vec![global, GroupAllocConfig { chunk_size: 16384, ..global }],
        )
    }

    #[test]
    fn per_group_chunk_sizes_coexist() {
        let mut a = mixed_chunk_alloc();
        let mut gs = GroupState::new(2);
        let mut mem = Memory::new();
        // Group 1's 16 KiB chunks hold eight 2 KiB regions where group 0's
        // 8 KiB chunks hold four.
        gs.set(1);
        let g1: Vec<u64> = (0..8).map(|_| a.malloc(2048, site(), &gs, &mut mem)).collect();
        assert!(g1.windows(2).all(|w| w[1] == w[0] + 2048), "one contiguous 16 KiB chunk");
        gs.clear(1);
        gs.set(0);
        let g0: Vec<u64> = (0..5).map(|_| a.malloc(2048, site(), &gs, &mut mem)).collect();
        // Chunks are aligned to their own size, so the 8 KiB mask finds
        // group 0's chunk boundaries: four regions per chunk, then roll.
        let m = |p: u64| p & !(8192 - 1);
        assert!(g0[..4].iter().all(|&p| m(p) == m(g0[0])), "first four share one 8 KiB chunk");
        assert_ne!(m(g0[4]), m(g0[0]), "group 0 rolls to a second chunk after four regions");
        // Frees locate the right chunk despite the mixed sizes.
        for &p in g1.iter().chain(&g0) {
            a.free(p, &mut mem);
        }
        assert_eq!(a.live_grouped_bytes(), 0);
    }

    #[test]
    fn per_group_reuse_policies_are_independent() {
        let global = small_config();
        let mut a = HaloGroupAllocator::with_group_configs(
            global,
            two_group_table(),
            vec![
                global, // group 0: bump
                GroupAllocConfig { reuse_policy: ReusePolicy::ShardedFreeLists, ..global },
            ],
        );
        let mut gs = GroupState::new(2);
        let mut mem = Memory::new();
        for group in [0u16, 1] {
            gs.reset();
            gs.set(group);
            let p1 = a.malloc(64, site(), &gs, &mut mem);
            let _p2 = a.malloc(64, site(), &gs, &mut mem);
            a.free(p1, &mut mem);
            let p3 = a.malloc(64, site(), &gs, &mut mem);
            if group == 1 {
                assert_eq!(p3, p1, "sharded group recycles the hole");
            } else {
                assert_ne!(p3, p1, "bump group never reuses until the chunk empties");
            }
        }
    }

    #[test]
    fn per_group_spare_budgets_are_independent() {
        let global = small_config(); // budget 1
        let mut a = HaloGroupAllocator::with_group_configs(
            global,
            two_group_table(),
            vec![GroupAllocConfig { max_spare_chunks: 0, ..global }, global],
        );
        let mut gs = GroupState::new(2);
        let mut mem = Memory::new();
        // For each group: fill a chunk, roll to the next, then empty the
        // first so it leaves the in-use set.
        fn cycle(a: &mut HaloGroupAllocator, gs: &mut GroupState, mem: &mut Memory, bit: u16) {
            gs.reset();
            gs.set(bit);
            let ptrs: Vec<u64> = (0..4).map(|_| a.malloc(2048, site(), gs, mem)).collect();
            let _keep = a.malloc(2048, site(), gs, mem);
            for &p in &ptrs {
                a.free(p, mem);
            }
        }
        cycle(&mut a, &mut gs, &mut mem, 0);
        assert_eq!(a.stats().chunks_purged, 1, "budget-0 group purges immediately");
        cycle(&mut a, &mut gs, &mut mem, 1);
        assert_eq!(a.stats().chunks_purged, 1, "budget-1 group keeps its spare");
    }

    #[test]
    fn oversized_for_group_chunk_falls_back() {
        // Global cap admits the request, but the group's plan shrank its
        // chunks below the request size: it must forward to the fallback
        // rather than overflow a chunk.
        let global =
            GroupAllocConfig { max_grouped_size: 16384, slab_size: 16384 * 8, ..small_config() };
        let mut a = HaloGroupAllocator::with_group_configs(
            global,
            two_group_table(),
            vec![GroupAllocConfig { chunk_size: 4096, ..global }],
        );
        let mut gs = GroupState::new(2);
        let mut mem = Memory::new();
        gs.set(0);
        let p = a.malloc(6000, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(p), "request larger than the group's chunk");
        assert_eq!(a.stats().fallback_allocs, 1);
        let q = a.malloc(4000, site(), &gs, &mut mem);
        assert!(a.is_group_allocated(q), "request fitting the group's chunk is grouped");
    }

    #[test]
    fn spare_chunks_only_serve_matching_sizes() {
        let mut a = mixed_chunk_alloc();
        let mut gs = GroupState::new(2);
        let mut mem = Memory::new();
        // Group 0 donates an 8 KiB spare.
        gs.set(0);
        let ptrs: Vec<u64> = (0..4).map(|_| a.malloc(2048, site(), &gs, &mut mem)).collect();
        let _keep = a.malloc(2048, site(), &gs, &mut mem);
        for &p in &ptrs {
            a.free(p, &mut mem);
        }
        let created = a.stats().chunks_created;
        // Group 1 needs a 16 KiB chunk: the 8 KiB spare must not serve it.
        gs.reset();
        gs.set(1);
        let p = a.malloc(2048, site(), &gs, &mut mem);
        assert_eq!(a.stats().chunks_created, created + 1, "fresh carve, spare size mismatch");
        assert!(a.is_group_allocated(p));
    }

    #[test]
    fn per_group_frag_reports_isolate_the_offender() {
        let global = small_config();
        let mut a = HaloGroupAllocator::new(global, two_group_table());
        let mut gs = GroupState::new(2);
        let mut mem = Memory::new();
        // Group 0: survivor pathology (free all but the first).
        gs.set(0);
        let ptrs: Vec<u64> = (0..16).map(|_| a.malloc(256, site(), &gs, &mut mem)).collect();
        for &p in &ptrs[1..] {
            a.free(p, &mut mem);
        }
        // Group 1: everything stays live (three pages' worth, so its peak
        // is hit mid-growth with most of the pool live).
        gs.reset();
        gs.set(1);
        for _ in 0..33 {
            a.malloc(256, site(), &gs, &mut mem);
        }
        let reports = a.group_frag_reports();
        assert_eq!(reports.len(), 2);
        assert!(reports[0].frag_fraction() > 0.9, "group 0 is the offender: {reports:?}");
        assert!(reports[1].frag_fraction() < 0.5, "group 1 is healthy: {reports:?}");
        // The global report spans both pools.
        assert_eq!(
            a.frag_report().peak_resident_bytes,
            reports.iter().map(|r| r.peak_resident_bytes).sum::<u64>()
        );
    }

    #[test]
    fn homogeneous_overrides_match_the_plain_constructor() {
        // with_group_configs with every entry equal to the global config
        // must behave exactly like new(): same pointers, same stats.
        let cfg = small_config();
        let mut plain = HaloGroupAllocator::new(cfg, two_group_table());
        let mut over =
            HaloGroupAllocator::with_group_configs(cfg, two_group_table(), vec![cfg, cfg]);
        let mut gs = GroupState::new(2);
        let mut mem_a = Memory::new();
        let mut mem_b = Memory::new();
        let mut ptrs_a = Vec::new();
        let mut ptrs_b = Vec::new();
        for i in 0..64u64 {
            gs.reset();
            gs.set((i % 2) as u16);
            let size = 32 + (i % 7) * 24;
            ptrs_a.push(plain.malloc(size, site(), &gs, &mut mem_a));
            ptrs_b.push(over.malloc(size, site(), &gs, &mut mem_b));
            if i % 3 == 0 {
                plain.free(ptrs_a.pop().unwrap(), &mut mem_a);
                over.free(ptrs_b.pop().unwrap(), &mut mem_b);
            }
        }
        assert_eq!(ptrs_a, ptrs_b);
        assert_eq!(plain.stats(), over.stats());
        assert_eq!(plain.frag_report(), over.frag_report());
    }

    #[test]
    fn group_plan_default_mirrors_alloc_config_default() {
        // GroupPlan::default (halo_graph) and GroupAllocConfig::default
        // (this crate) describe the same paper-default layout; if one
        // changes, the other — and this test — must follow.
        let plan = GroupPlan::default();
        let cfg = GroupAllocConfig::default();
        assert_eq!(plan.chunk_size, cfg.chunk_size);
        assert_eq!(plan.max_spare_chunks, cfg.max_spare_chunks);
        assert_eq!(plan.reuse, cfg.reuse_policy);
    }

    // --- fault injection and the degradation ladder ---------------------

    use crate::faults::{FaultInjector, FaultPlan, FaultSite};
    use std::sync::Arc;

    #[test]
    fn slab_exhaustion_degrades_the_group_not_the_process() {
        let (mut a, mut gs, mut mem) = setup();
        a.set_fault_injector(Arc::new(FaultInjector::new(
            FaultPlan::new(1).at(FaultSite::VmmReserve, 1),
        )));
        gs.set(0);
        // First grouped request needs a slab; the injected reservation
        // failure must degrade group 0 and serve from the fallback.
        let p = a.malloc(64, site(), &gs, &mut mem);
        assert_ne!(p, 0, "the request is still served");
        assert!(!a.is_group_allocated(p), "served by the fallback");
        assert!(a.is_degraded(0));
        let d = a.degrade_stats();
        assert_eq!(d.fallback_routes, 1);
        assert_eq!(d.degraded_groups, 1);
        assert_eq!(d.injected_faults, 1);
        // Later requests for the degraded group keep routing, no retry.
        let q = a.malloc(64, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(q));
        assert_eq!(a.degrade_stats().fallback_routes, 2);
        // The other group is untouched by group 0's degradation.
        gs.reset();
        gs.set(1);
        let r = a.malloc(64, site(), &gs, &mut mem);
        assert!(a.is_group_allocated(r));
        // Everything frees cleanly; nothing leaks across the ladder.
        a.free(p, &mut mem);
        a.free(q, &mut mem);
        a.free(r, &mut mem);
        assert_eq!(a.live_bytes(), 0);
        a.check_invariants().expect("invariants hold after degradation");
    }

    #[test]
    fn chunk_alloc_fault_degrades_identically() {
        let (mut a, mut gs, mut mem) = setup();
        a.set_fault_injector(Arc::new(FaultInjector::new(
            FaultPlan::new(1).at(FaultSite::ChunkAlloc, 2),
        )));
        gs.set(0);
        // Occurrence 1 (fresh chunk) succeeds; fill the chunk so the
        // second acquisition — which the plan fails — is needed.
        let ptrs: Vec<u64> = (0..4).map(|_| a.malloc(2048, site(), &gs, &mut mem)).collect();
        assert!(ptrs.iter().all(|&p| a.is_group_allocated(p)));
        let p = a.malloc(2048, site(), &gs, &mut mem);
        assert_ne!(p, 0);
        assert!(!a.is_group_allocated(p), "chunk-map failure routes to fallback");
        assert!(a.is_degraded(0));
        assert_eq!(a.degrade_stats().injected_faults, 1);
        // Live grouped pointers still free through their chunks.
        for &q in &ptrs {
            a.free(q, &mut mem);
        }
        a.free(p, &mut mem);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn invalid_group_free_is_a_counted_noop() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p = a.malloc(64, site(), &gs, &mut mem);
        let live = a.live_bytes();
        // An interior address inside the slab range: no live region.
        a.free(p + 8, &mut mem);
        assert_eq!(a.degrade_stats().invalid_frees, 1);
        assert_eq!(a.live_bytes(), live, "accounting untouched");
        // Double free of a real pointer is also absorbed.
        a.free(p, &mut mem);
        a.free(p, &mut mem);
        assert_eq!(a.degrade_stats().invalid_frees, 2);
        assert_eq!(a.live_bytes(), 0);
        a.check_invariants().expect("no-op frees leave a consistent state");
    }

    #[test]
    fn quarantine_routes_every_group_to_the_fallback() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let grouped = a.malloc(64, site(), &gs, &mut mem);
        assert!(a.is_group_allocated(grouped));
        a.quarantine();
        let p = a.malloc(64, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(p), "quarantined group falls back");
        assert_eq!(a.degrade_stats().degraded_groups, 2, "both groups degraded");
        // Pre-quarantine pointers still free through their chunks.
        a.free(grouped, &mut mem);
        a.free(p, &mut mem);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn no_injector_means_no_degradation_branch_taken() {
        let (mut a, mut gs, mut mem) = setup();
        gs.set(0);
        let p = a.malloc(64, site(), &gs, &mut mem);
        a.free(p, &mut mem);
        assert_eq!(a.degrade_stats(), crate::faults::DegradeStats::default());
        assert!(!a.degrade_stats().any());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn invalid_override_chunk_size_panics() {
        let cfg = small_config();
        let _ = HaloGroupAllocator::with_group_configs(
            cfg,
            two_group_table(),
            vec![GroupAllocConfig { chunk_size: 12288, ..cfg }],
        );
    }
}
