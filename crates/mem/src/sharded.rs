//! A thread-safe, sharded front for the HALO group allocator.
//!
//! The paper's specialised allocator ([`HaloGroupAllocator`]) is a
//! single-arena design: correct under one thread, a bottleneck (and a data
//! race) under many. Production allocators solve this with per-thread
//! arenas (jemalloc) or per-heap sharding with remote-free queues
//! (mimalloc); [`ShardedHaloAllocator`] brings that architecture to the
//! grouped allocator so HALO's layout optimisation survives a
//! multi-threaded malloc/free stream:
//!
//! * **N shards**, each a complete [`HaloGroupAllocator`] — same selector
//!   table, same per-group [`GroupAllocConfig`] overrides — behind its own
//!   mutex, rooted at a shard-private slice of the address space
//!   ([`GROUP_SHARD_STRIDE`] bytes of group slabs plus a private fallback
//!   range). Any pointer's owning shard is therefore pure address
//!   arithmetic, no lock required.
//! * **Thread-keyed shard selection.** Each OS thread is assigned a shard
//!   slot round-robin on first use (the moral equivalent of a TLS arena
//!   pointer; see the `tracking-allocator` thread-token pattern), and the
//!   simulated program's logical thread — delivered through
//!   [`halo_vm::VmAllocator::thread_switched`] — offsets it, which is how a
//!   single-threaded [`halo_vm::Engine`] drives a genuinely multi-threaded
//!   allocation stream deterministically.
//! * **Owner-shard remote-free queues.** `free(p)` from a thread mapped to
//!   a different shard than `p`'s owner never takes the owner's allocator
//!   lock (which its owning thread may be holding for a long grouped
//!   operation) and never takes any global lock: the pointer is pushed
//!   onto the owner's dedicated remote queue (its own small mutex), and
//!   the owner applies the queued frees the next time it enters its shard
//!   — mimalloc's deferred-free protocol.
//!
//! Aggregation (`frag_report`, `group_frag_reports`, `stats`) sums the
//! per-shard snapshots; DESIGN.md §10 explains why that preserves the
//! Table 1 peak-snapshot semantics per shard (each shard is an
//! independent arena, exactly as jemalloc's per-thread arenas are counted
//! in practice).

use crate::faults::{DegradeStats, FaultInjector, FaultSite};
use crate::group_alloc::{FragReport, GroupAllocConfig, GroupAllocStats};
use crate::selector::SelectorTable;
use crate::stats::AllocatorStats;
use crate::{HaloGroupAllocator, SizeClassAllocator};
use halo_vm::{CallSite, GroupState, Memory, SyncVmAllocator, VmAllocator};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;

/// A pointer handed to `free`/`realloc` that no shard of this allocator
/// owns. The documented typed form of what used to be a panic: callers on
/// the [`SyncVmAllocator`] face get it from
/// [`ShardedHaloAllocator::try_free`]; the infallible `free` absorbs it as
/// a counted no-op ([`DegradeStats::invalid_frees`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForeignPointer {
    /// The offending pointer.
    pub ptr: u64,
}

impl std::fmt::Display for ForeignPointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pointer {:#x} belongs to no shard of this allocator", self.ptr)
    }
}

impl std::error::Error for ForeignPointer {}

/// Group-slab address space per shard. Matches the [`HaloGroupAllocator`]
/// reservation span exactly, so shard group regions tile with no gaps:
/// `owner = (ptr - base) / GROUP_SHARD_STRIDE`.
pub const GROUP_SHARD_STRIDE: u64 = 1 << 38;

/// Fallback address space per shard (16 GiB — orders of magnitude above
/// any simulated workload; exceeding it is a loud `Vmm` panic, not
/// aliasing).
const FALLBACK_SHARD_STRIDE: u64 = 1 << 34;

/// Process-unique ids so the per-thread shard-slot cache can tell
/// allocator instances apart.
static NEXT_ALLOC_ID: AtomicUsize = AtomicUsize::new(0);

#[derive(Debug, Clone, Copy)]
struct ThreadState {
    /// Round-robin slot assigned to the OS thread on first use.
    slot: usize,
    /// Logical (simulated) thread last announced via `thread_switched`.
    logical: u16,
}

thread_local! {
    /// Last-used (allocator id, thread state): makes shard selection
    /// lock-free in the steady state. `usize::MAX` never collides with a
    /// real allocator id.
    static THREAD_CACHE: Cell<(usize, ThreadState)> =
        const { Cell::new((usize::MAX, ThreadState { slot: 0, logical: 0 })) };
}

#[derive(Debug, Default)]
struct ThreadRegistry {
    slots: HashMap<ThreadId, ThreadState>,
    next_slot: usize,
}

#[derive(Debug)]
struct Shard {
    inner: Mutex<HaloGroupAllocator<SizeClassAllocator>>,
    /// Pointers freed by threads mapped to other shards, waiting for this
    /// shard to apply them ("remote frees").
    remote: Mutex<Vec<u64>>,
    /// Lock-free view of the remote queue's length, written while the
    /// queue lock is held: lets the hot path skip the queue mutex
    /// entirely when nothing is pending (mimalloc's deferred-free flag).
    /// A stale zero read merely defers draining to the next shard entry.
    pending: AtomicUsize,
    /// Set when a poisoned-lock recovery found the shard's invariants
    /// violated and quarantined it (every group degraded, all traffic on
    /// the fallback). Feeds [`DegradeStats::degraded_shards`].
    degraded: AtomicBool,
}

/// Cross-shard event counters, alongside the summed per-shard
/// [`GroupAllocStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardedAllocStats {
    /// Per-shard group-allocator counters, summed.
    pub alloc: GroupAllocStats,
    /// Frees enqueued onto a foreign shard's remote queue.
    pub remote_frees: u64,
    /// Queued remote frees applied by their owner shard so far.
    pub remote_drained: u64,
    /// High-water mark of any single shard's remote queue (entries
    /// observed at push time) — the queue-pressure signal `halo run
    /// --json` reports: a depth that keeps growing means some owner shard
    /// is never entered and its memory is only reclaimed by the join-time
    /// flush.
    pub remote_peak_queue: u64,
    /// Degradation-ladder counters, summed across shards plus the
    /// sharded runtime's own rungs (queue overflows, poisoned-lock
    /// recoveries, invalid frees).
    pub degrade: DegradeStats,
}

/// The thread-safe sharded HALO runtime (see module docs).
#[derive(Debug)]
pub struct ShardedHaloAllocator {
    id: usize,
    /// The shard-0 configuration (shard `i` runs the same knobs at base
    /// `base + i * GROUP_SHARD_STRIDE`).
    config: GroupAllocConfig,
    fallback_base: u64,
    shards: Vec<Shard>,
    threads: Mutex<ThreadRegistry>,
    remote_frees: AtomicU64,
    remote_drained: AtomicU64,
    remote_peak_queue: AtomicU64,
    /// Bound on each shard's remote-free queue; a push that would exceed
    /// it falls back to a direct owner-lock free (backpressure instead of
    /// unbounded growth under a free-storm). Atomic so an operator (or
    /// the serve loop) can retune it mid-run through a shared reference.
    remote_queue_cap: AtomicUsize,
    queue_overflows: AtomicU64,
    poisoned_recovered: AtomicU64,
    invalid_frees: AtomicU64,
    /// Number of plan hot-swaps applied so far ([`Self::swap_plans`]);
    /// `0` means the construction-time plan is still in force.
    plan_epoch: AtomicU64,
    /// Fault injector for chaos runs, shared with every shard's inner
    /// allocator; `None` in production.
    faults: Option<Arc<FaultInjector>>,
}

impl ShardedHaloAllocator {
    /// Create an allocator with `shards` shards, each a full
    /// [`HaloGroupAllocator`] with the given selector table and per-group
    /// configuration overrides (the translated [`halo_graph::GroupPlan`]s;
    /// empty for all-default groups).
    ///
    /// With `shards == 1` the allocator degenerates to exactly the plain
    /// single-arena allocator: same bases, same placement, pointer for
    /// pointer (the differential identity the property tests pin).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero, if the per-shard fallback ranges would
    /// reach `config.base` (with the default base that allows up to 24
    /// shards), or under the same override conditions as
    /// [`HaloGroupAllocator::with_group_configs`].
    pub fn new(
        shards: usize,
        config: GroupAllocConfig,
        selectors: SelectorTable,
        overrides: Vec<GroupAllocConfig>,
    ) -> Self {
        assert!(shards >= 1, "a sharded allocator needs at least one shard");
        let fallback_base = SizeClassAllocator::DEFAULT_BASE;
        assert!(
            shards <= Self::max_shards(&config),
            "address layout: {shards} shards of fallback space would reach the group base \
             {:#x} (at most {} fit); lower the shard count or raise the base",
            config.base,
            Self::max_shards(&config)
        );
        let shards = (0..shards)
            .map(|i| {
                let base = config.base + i as u64 * GROUP_SHARD_STRIDE;
                let shard_cfg = GroupAllocConfig { base, ..config };
                let shard_overrides =
                    overrides.iter().map(|o| GroupAllocConfig { base, ..*o }).collect();
                let fallback = SizeClassAllocator::with_base_span(
                    fallback_base + i as u64 * FALLBACK_SHARD_STRIDE,
                    FALLBACK_SHARD_STRIDE,
                );
                Shard {
                    inner: Mutex::new(HaloGroupAllocator::with_group_configs_and_fallback(
                        shard_cfg,
                        selectors.clone(),
                        shard_overrides,
                        fallback,
                    )),
                    remote: Mutex::new(Vec::new()),
                    pending: AtomicUsize::new(0),
                    degraded: AtomicBool::new(false),
                }
            })
            .collect();
        ShardedHaloAllocator {
            id: NEXT_ALLOC_ID.fetch_add(1, Ordering::Relaxed),
            config,
            fallback_base,
            shards,
            threads: Mutex::new(ThreadRegistry::default()),
            remote_frees: AtomicU64::new(0),
            remote_drained: AtomicU64::new(0),
            remote_peak_queue: AtomicU64::new(0),
            remote_queue_cap: AtomicUsize::new(Self::DEFAULT_REMOTE_QUEUE_CAP),
            queue_overflows: AtomicU64::new(0),
            poisoned_recovered: AtomicU64::new(0),
            invalid_frees: AtomicU64::new(0),
            plan_epoch: AtomicU64::new(0),
            faults: None,
        }
    }

    /// The number of plan hot-swaps applied so far; epoch `0` is the
    /// construction-time plan. Serve mode stamps its per-epoch report
    /// rows with this.
    pub fn plan_epoch(&self) -> u64 {
        self.plan_epoch.load(Ordering::Acquire)
    }

    /// Hot-swap every shard onto a new plan (DESIGN.md §15): replace the
    /// selector table and per-group configuration, then advance the plan
    /// epoch. Overrides are expressed against the shard-0 base exactly as
    /// in [`Self::new`] and rebased per shard here.
    ///
    /// All shard locks are taken in index order and held across the
    /// installation, so the swap is atomic with respect to allocation: no
    /// thread can observe shard `i` on the new plan while shard `j` still
    /// serves the old one. No other path acquires two shard locks at
    /// once, so the ordered sweep cannot deadlock, and
    /// [`Self::lock_shard`]'s poisoning recovery applies — a swap never
    /// wedges on a shard whose previous holder panicked.
    ///
    /// The swap is prospective, exactly as
    /// [`HaloGroupAllocator::install_plan`]: changed groups start fresh
    /// chunks, unchanged groups keep filling their current ones (an
    /// identical plan is observably a no-op apart from the epoch bump),
    /// live pointers never move, and retired chunks drain through the
    /// ordinary free and remote-queue machinery.
    ///
    /// # Panics
    ///
    /// Panics under the same override conditions as [`Self::new`];
    /// validation runs before any shard is touched, so a bad plan leaves
    /// every shard unchanged.
    pub fn swap_plans(&self, selectors: SelectorTable, overrides: Vec<GroupAllocConfig>) -> u64 {
        for over in &overrides {
            HaloGroupAllocator::<SizeClassAllocator>::validate_chunk(&self.config, over.chunk_size);
        }
        let mut guards: Vec<_> = (0..self.shards.len()).map(|s| self.lock_shard(s)).collect();
        for (i, guard) in guards.iter_mut().enumerate() {
            let base = self.config.base + i as u64 * GROUP_SHARD_STRIDE;
            let shard_overrides =
                overrides.iter().map(|o| GroupAllocConfig { base, ..*o }).collect();
            guard.install_plan(selectors.clone(), shard_overrides);
        }
        let epoch = self.plan_epoch.fetch_add(1, Ordering::AcqRel) + 1;
        drop(guards);
        epoch
    }

    /// Default bound on each shard's remote-free queue: generous enough
    /// that no measured workload ever hits it (the mt models peak in the
    /// thousands), so default-configuration runs are byte-identical to
    /// the unbounded-queue behaviour — while a runaway producer is still
    /// capped at ~512 KiB of queued pointers per shard instead of
    /// unbounded growth.
    pub const DEFAULT_REMOTE_QUEUE_CAP: usize = 65_536;

    /// Bound each shard's remote-free queue at `cap` entries; a push that
    /// would exceed it frees directly under the owner's allocator lock
    /// instead. `0` disables queueing entirely (every foreign free goes
    /// direct). Takes `&self`: the cap may be retuned mid-run while
    /// worker threads allocate through the same shared allocator —
    /// in-flight pushes see either the old or the new bound, never a torn
    /// one, and overflow accounting is unaffected.
    pub fn set_remote_queue_cap(&self, cap: usize) {
        self.remote_queue_cap.store(cap, Ordering::Relaxed);
    }

    /// Attach a fault injector (chaos runs): the sharded runtime draws
    /// its queue/panic faults from it and every shard's inner allocator
    /// draws its reservation/chunk faults from the same schedule.
    pub fn set_fault_injector(&mut self, injector: Arc<FaultInjector>) {
        for s in 0..self.shards.len() {
            self.lock_shard(s).set_fault_injector(Arc::clone(&injector));
        }
        self.faults = Some(injector);
    }

    /// Degradation-ladder counters: per-shard rungs summed, the sharded
    /// runtime's own rungs added, and the injected-fault count taken from
    /// the shared injector exactly once (per-shard sums would multiply
    /// it).
    pub fn degrade_stats(&self) -> DegradeStats {
        let mut d = DegradeStats::default();
        for s in 0..self.shards.len() {
            d.merge(self.lock_shard(s).degrade_raw());
        }
        d.queue_overflows += self.queue_overflows.load(Ordering::Relaxed);
        d.poisoned_recovered += self.poisoned_recovered.load(Ordering::Relaxed);
        d.invalid_frees += self.invalid_frees.load(Ordering::Relaxed);
        d.degraded_shards =
            self.shards.iter().filter(|s| s.degraded.load(Ordering::Relaxed)).count() as u64;
        if let Some(f) = &self.faults {
            d.injected_faults = f.fired();
        }
        d
    }

    /// Take shard `s`'s allocator lock, recovering from poisoning: a
    /// panicking holder leaves the data intact more often than not, so
    /// recovery is `PoisonError::into_inner` plus an invariant re-check.
    /// If the structures cannot be trusted the shard is quarantined —
    /// every group degraded, all its traffic on the fallback — and
    /// counted in [`DegradeStats::degraded_shards`]. Either way, other
    /// threads are never wedged.
    fn lock_shard(&self, s: usize) -> MutexGuard<'_, HaloGroupAllocator<SizeClassAllocator>> {
        match self.shards[s].inner.lock() {
            Ok(inner) => inner,
            Err(poisoned) => {
                self.poisoned_recovered.fetch_add(1, Ordering::Relaxed);
                let mut inner = poisoned.into_inner();
                if inner.check_invariants().is_err() {
                    inner.quarantine();
                    self.shards[s].degraded.store(true, Ordering::Relaxed);
                }
                self.shards[s].inner.clear_poison();
                inner
            }
        }
    }

    /// Take shard `s`'s remote-queue lock, recovering from poisoning. The
    /// queue is a plain list of pointers — there is no partial state a
    /// panicking pusher could leave behind — so recovery keeps the
    /// contents.
    fn lock_remote(&self, s: usize) -> MutexGuard<'_, Vec<u64>> {
        match self.shards[s].remote.lock() {
            Ok(queue) => queue,
            Err(poisoned) => {
                self.poisoned_recovered.fetch_add(1, Ordering::Relaxed);
                self.shards[s].remote.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Take the thread-registry lock, recovering from poisoning (slot
    /// assignments are monotonic inserts; a torn update is impossible).
    fn lock_registry(&self) -> MutexGuard<'_, ThreadRegistry> {
        match self.threads.lock() {
            Ok(reg) => reg,
            Err(poisoned) => {
                self.poisoned_recovered.fetch_add(1, Ordering::Relaxed);
                self.threads.clear_poison();
                poisoned.into_inner()
            }
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Largest shard count the address layout supports for `config`: the
    /// per-shard fallback tiles must all fit below the group base.
    /// Callers validating user input (the CLI's `--shards`) check this
    /// bound up front; [`Self::new`] asserts it.
    pub fn max_shards(config: &GroupAllocConfig) -> usize {
        (config.base.saturating_sub(SizeClassAllocator::DEFAULT_BASE) / FALLBACK_SHARD_STRIDE)
            as usize
    }

    /// The calling thread's state, consulting the registry only on a
    /// cache miss (first touch, or after using a different allocator).
    fn thread_state(&self) -> ThreadState {
        THREAD_CACHE.with(|cache| {
            let (id, state) = cache.get();
            if id == self.id {
                return state;
            }
            let state = self.registry_state(None);
            cache.set((self.id, state));
            state
        })
    }

    /// Look up (or create) the calling thread's registry entry, optionally
    /// recording a logical-thread switch.
    fn registry_state(&self, set_logical: Option<u16>) -> ThreadState {
        let tid = std::thread::current().id();
        let mut reg = self.lock_registry();
        let next = reg.next_slot;
        let known = reg.slots.len();
        let entry = reg.slots.entry(tid).or_insert(ThreadState { slot: next, logical: 0 });
        if let Some(logical) = set_logical {
            entry.logical = logical;
        }
        let state = *entry;
        if reg.slots.len() > known {
            reg.next_slot = next + 1;
        }
        state
    }

    fn set_logical(&self, logical: u16) {
        let state = self.registry_state(Some(logical));
        THREAD_CACHE.with(|cache| cache.set((self.id, state)));
    }

    /// The shard serving the calling (OS, logical) thread pair.
    fn current_shard(&self) -> usize {
        let state = self.thread_state();
        (state.slot + state.logical as usize) % self.shards.len()
    }

    /// The shard owning `ptr`, by address arithmetic alone.
    ///
    /// # Errors
    ///
    /// Returns [`ForeignPointer`] when no shard's address range contains
    /// `ptr` — a caller bug (wild or already-unmapped pointer), reported
    /// as data instead of a panic so the runtime can absorb it.
    fn owner_of(&self, ptr: u64) -> Result<usize, ForeignPointer> {
        let n = self.shards.len() as u64;
        if ptr >= self.config.base && ptr < self.config.base + n * GROUP_SHARD_STRIDE {
            Ok(((ptr - self.config.base) / GROUP_SHARD_STRIDE) as usize)
        } else if ptr >= self.fallback_base && ptr < self.fallback_base + n * FALLBACK_SHARD_STRIDE
        {
            Ok(((ptr - self.fallback_base) / FALLBACK_SHARD_STRIDE) as usize)
        } else {
            Err(ForeignPointer { ptr })
        }
    }

    /// Take shard `s`'s queued remote frees. The hot path (`force` off)
    /// reads the lock-free pending flag first and skips the queue mutex
    /// when it shows empty; `drain_remote` forces the lock so the
    /// join-time flush is authoritative even against a racing push.
    fn take_remote(&self, s: usize, force: bool) -> Vec<u64> {
        let shard = &self.shards[s];
        if !force && shard.pending.load(Ordering::Acquire) == 0 {
            return Vec::new();
        }
        let mut queue = self.lock_remote(s);
        shard.pending.store(0, Ordering::Release);
        std::mem::take(&mut *queue)
    }

    /// Enter shard `s`: apply its queued remote frees (the owner services
    /// its queue on every entry, so queues drain as long as the shard
    /// stays active), then return the held allocator lock.
    ///
    /// Lock discipline: the remote queue's mutex and the allocator's mutex
    /// are taken strictly one after the other, never nested, and no
    /// operation ever holds two shards' allocator locks — so there is no
    /// ordering to violate.
    fn service_shard(
        &self,
        s: usize,
        mem: &mut Memory,
        force: bool,
    ) -> MutexGuard<'_, HaloGroupAllocator<SizeClassAllocator>> {
        let pending = self.take_remote(s, force);
        let mut inner = self.lock_shard(s);
        if !pending.is_empty() {
            self.remote_drained.fetch_add(pending.len() as u64, Ordering::Relaxed);
            for ptr in pending {
                inner.free(ptr, mem);
            }
        }
        inner
    }

    fn malloc_impl(&self, size: u64, site: CallSite, gs: &GroupState, mem: &mut Memory) -> u64 {
        let s = self.current_shard();
        let inner = self.service_shard(s, mem, false);
        if self.faults.as_ref().is_some_and(|f| f.should_fail(FaultSite::ShardPanic)) {
            // The injected mid-operation panic: this thread dies holding
            // the shard's allocator lock, poisoning it for everyone else.
            // No structure has been touched yet, so the invariant re-check
            // in `lock_shard` will pass and recovery is clean.
            panic!("injected fault: thread panicked holding shard {s}'s allocator lock");
        }
        let mut inner = inner;
        inner.malloc(size, site, gs, mem)
    }

    /// Free `ptr`, reporting — rather than absorbing — a pointer no shard
    /// owns. The allocator's state is untouched on the error path: no
    /// counter moves, nothing is queued, later operations are unaffected.
    ///
    /// # Errors
    ///
    /// Returns [`ForeignPointer`] when `ptr` lies outside every shard's
    /// address ranges.
    pub fn try_free(&self, ptr: u64, mem: &mut Memory) -> Result<(), ForeignPointer> {
        let owner = self.owner_of(ptr)?;
        if owner == self.current_shard() {
            let mut inner = self.service_shard(owner, mem, false);
            inner.free(ptr, mem);
            return Ok(());
        }
        let shard = &self.shards[owner];
        {
            let mut queue = self.lock_remote(owner);
            let forced_overflow =
                self.faults.as_ref().is_some_and(|f| f.should_fail(FaultSite::RemoteQueue));
            if !forced_overflow && queue.len() < self.remote_queue_cap.load(Ordering::Relaxed) {
                // Count before queueing so a concurrent drain can never
                // observe more frees applied than were ever queued.
                self.remote_frees.fetch_add(1, Ordering::Relaxed);
                queue.push(ptr);
                shard.pending.store(queue.len(), Ordering::Release);
                // Depth is read under the queue lock, so the max over all
                // pushes is exact per shard; across shards it is the
                // deepest queue ever observed, the pressure signal wanted.
                self.remote_peak_queue.fetch_max(queue.len() as u64, Ordering::Relaxed);
                return Ok(());
            }
        }
        // Queue at capacity (or a fault says it is): backpressure. Drop
        // the queue lock and free directly under the owner's allocator
        // lock — slower (it contends with the owner) but bounded.
        self.queue_overflows.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.service_shard(owner, mem, false);
        inner.free(ptr, mem);
        Ok(())
    }

    fn free_impl(&self, ptr: u64, mem: &mut Memory) {
        if self.try_free(ptr, mem).is_err() {
            // The infallible face absorbs the invalid free as a counted
            // no-op (see DESIGN.md §12) — matching `libc::free`, which has
            // no error channel either.
            self.invalid_frees.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn realloc_impl(
        &self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        // The whole operation runs on the owning shard (which knows the
        // old region's size); ownership of the object stays with its
        // original shard even when a foreign thread grows it.
        let Ok(owner) = self.owner_of(ptr) else {
            // realloc of a pointer no shard owns: serve a fresh block
            // (there is nothing to copy or free) and count the anomaly.
            self.invalid_frees.fetch_add(1, Ordering::Relaxed);
            return self.malloc_impl(size, site, gs, mem);
        };
        let mut inner = self.service_shard(owner, mem, false);
        inner.realloc(ptr, size, site, gs, mem)
    }

    /// Apply every queued remote free on every shard — the join-time
    /// flush (a shard left idle forever would otherwise never service its
    /// queue). [`halo_vm::Engine`] invokes this automatically when an
    /// execution completes (via `run_finished`), so measured runs report
    /// exact free counters; call it directly after joining native driver
    /// threads.
    pub fn drain_remote(&self, mem: &mut Memory) {
        for s in 0..self.shards.len() {
            drop(self.service_shard(s, mem, true));
        }
    }

    /// Remote frees queued and not yet applied, across all shards.
    pub fn remote_pending(&self) -> usize {
        (0..self.shards.len()).map(|s| self.lock_remote(s).len()).sum()
    }

    /// Summed per-shard event counters plus the remote-free counters.
    pub fn sharded_stats(&self) -> ShardedAllocStats {
        // Load drained before queued: a queue+drain racing between the
        // two loads then inflates `remote_frees`, never `remote_drained`,
        // so a snapshot can never show more frees applied than queued.
        let remote_drained = self.remote_drained.load(Ordering::Acquire);
        let remote_frees = self.remote_frees.load(Ordering::Acquire);
        let remote_peak_queue = self.remote_peak_queue.load(Ordering::Relaxed);
        ShardedAllocStats {
            alloc: self.stats(),
            remote_frees,
            remote_drained,
            remote_peak_queue,
            degrade: self.degrade_stats(),
        }
    }

    /// Per-shard group-allocator counters, summed across shards.
    pub fn stats(&self) -> GroupAllocStats {
        let mut total = GroupAllocStats::default();
        for s in 0..self.shards.len() {
            // Full destructuring (no `..`): a field added to
            // GroupAllocStats must show up here or this stops compiling —
            // a silently-unsummed counter would poison every aggregate.
            let GroupAllocStats {
                grouped_allocs,
                fallback_allocs,
                grouped_frees,
                fallback_frees,
                chunks_created,
                chunks_reused,
                chunks_purged,
            } = self.lock_shard(s).stats();
            total.grouped_allocs += grouped_allocs;
            total.fallback_allocs += fallback_allocs;
            total.grouped_frees += grouped_frees;
            total.fallback_frees += fallback_frees;
            total.chunks_created += chunks_created;
            total.chunks_reused += chunks_reused;
            total.chunks_purged += chunks_purged;
        }
        total
    }

    /// Aggregate Table 1 snapshot: the field-wise sum of each shard's own
    /// peak snapshot. Each shard is an independent arena, so its snapshot
    /// keeps the paper's semantics exactly; the sum is the standard
    /// per-arena accounting (see DESIGN.md §10).
    pub fn frag_report(&self) -> FragReport {
        let mut total = FragReport::default();
        for s in 0..self.shards.len() {
            let r = self.lock_shard(s).frag_report();
            Self::accumulate_frag(&mut total, r);
        }
        total
    }

    /// Per-group fragmentation snapshots summed across shards (group `g`'s
    /// report aggregates every shard's group-`g` pool).
    pub fn group_frag_reports(&self) -> Vec<FragReport> {
        let mut totals: Vec<FragReport> = Vec::new();
        for s in 0..self.shards.len() {
            let reports = self.lock_shard(s).group_frag_reports();
            if reports.len() > totals.len() {
                totals.resize(reports.len(), FragReport::default());
            }
            for (total, r) in totals.iter_mut().zip(reports) {
                Self::accumulate_frag(total, r);
            }
        }
        totals
    }

    /// Field-wise snapshot sum, fully destructured like [`Self::stats`]:
    /// a field added to [`FragReport`] must be accounted for here or this
    /// stops compiling.
    fn accumulate_frag(total: &mut FragReport, r: FragReport) {
        let FragReport { peak_resident_bytes, live_at_peak_bytes } = r;
        total.peak_resident_bytes += peak_resident_bytes;
        total.live_at_peak_bytes += live_at_peak_bytes;
    }

    /// Bytes of grouped data currently live, across all shards. Remote
    /// frees still queued count as live — they have not been applied yet.
    pub fn live_grouped_bytes(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.lock_shard(s).live_grouped_bytes()).sum()
    }

    /// Resident bytes attributed to group chunks, across all shards.
    pub fn resident_grouped_bytes(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.lock_shard(s).resident_grouped_bytes()).sum()
    }

    /// Whether `ptr` lies in any shard's group slabs.
    pub fn is_group_allocated(&self, ptr: u64) -> bool {
        let n = self.shards.len() as u64;
        if !(self.config.base..self.config.base + n * GROUP_SHARD_STRIDE).contains(&ptr) {
            return false;
        }
        let owner = ((ptr - self.config.base) / GROUP_SHARD_STRIDE) as usize;
        self.lock_shard(owner).is_group_allocated(ptr)
    }
}

impl SyncVmAllocator for ShardedHaloAllocator {
    fn malloc(&self, size: u64, site: CallSite, gs: &GroupState, mem: &mut Memory) -> u64 {
        self.malloc_impl(size, site, gs, mem)
    }

    fn free(&self, ptr: u64, mem: &mut Memory) {
        self.free_impl(ptr, mem)
    }

    fn realloc(
        &self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        self.realloc_impl(ptr, size, site, gs, mem)
    }

    fn thread_switched(&self, thread: u16) {
        self.set_logical(thread)
    }

    fn run_finished(&self, mem: &mut Memory) {
        self.drain_remote(mem);
        // Process-exit semantics: the finished program's last
        // ThreadSwitch must not leak into a later run on this OS thread
        // (placement would silently differ from a fresh first run).
        self.set_logical(0);
    }
}

/// The exclusive-access face, so the sharded runtime plugs into every
/// existing single-threaded harness (`measure`, the backend registry)
/// unchanged.
impl VmAllocator for ShardedHaloAllocator {
    fn malloc(&mut self, size: u64, site: CallSite, gs: &GroupState, mem: &mut Memory) -> u64 {
        self.malloc_impl(size, site, gs, mem)
    }

    fn free(&mut self, ptr: u64, mem: &mut Memory) {
        self.free_impl(ptr, mem)
    }

    fn realloc(
        &mut self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        self.realloc_impl(ptr, size, site, gs, mem)
    }

    fn thread_switched(&mut self, thread: u16) {
        self.set_logical(thread)
    }

    fn run_finished(&mut self, mem: &mut Memory) {
        SyncVmAllocator::run_finished(&*self, mem)
    }
}

impl AllocatorStats for ShardedHaloAllocator {
    fn live_bytes(&self) -> u64 {
        (0..self.shards.len()).map(|s| self.lock_shard(s).live_bytes()).sum()
    }

    fn live_objects(&self) -> usize {
        (0..self.shards.len()).map(|s| self.lock_shard(s).live_objects()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::selector::GroupSelector;

    fn site() -> CallSite {
        CallSite::new(halo_vm::FuncId(0), 0)
    }

    fn two_group_table() -> SelectorTable {
        SelectorTable::new(
            vec![
                GroupSelector { group: 0, conjunctions: vec![vec![0]] },
                GroupSelector { group: 1, conjunctions: vec![vec![1]] },
            ],
            2,
        )
    }

    fn small_config() -> GroupAllocConfig {
        GroupAllocConfig {
            chunk_size: 8192,
            max_spare_chunks: 1,
            max_grouped_size: 4096,
            slab_size: 8192 * 8,
            ..GroupAllocConfig::default()
        }
    }

    fn sharded(n: usize) -> (ShardedHaloAllocator, GroupState, Memory) {
        (
            ShardedHaloAllocator::new(n, small_config(), two_group_table(), Vec::new()),
            GroupState::new(2),
            Memory::new(),
        )
    }

    #[test]
    fn logical_threads_land_on_distinct_shards() {
        let (a, mut gs, mut mem) = sharded(2);
        gs.set(0);
        SyncVmAllocator::thread_switched(&a, 0);
        let p0 = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        SyncVmAllocator::thread_switched(&a, 1);
        let p1 = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        assert!(a.is_group_allocated(p0) && a.is_group_allocated(p1));
        assert_ne!(a.owner_of(p0), a.owner_of(p1), "thread key picks the shard");
        // Same logical thread → same shard, contiguous bumping resumes.
        let p1b = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        assert_eq!(p1b, p1 + 64);
    }

    #[test]
    fn foreign_free_queues_then_owner_drains() {
        let (a, mut gs, mut mem) = sharded(2);
        gs.set(0);
        SyncVmAllocator::thread_switched(&a, 0);
        let p = SyncVmAllocator::malloc(&a, 128, site(), &gs, &mut mem);
        let live_before = a.live_grouped_bytes();
        // A different logical thread frees the pointer: deferred, not lost.
        SyncVmAllocator::thread_switched(&a, 1);
        SyncVmAllocator::free(&a, p, &mut mem);
        assert_eq!(a.remote_pending(), 1, "foreign free is queued");
        assert_eq!(a.live_grouped_bytes(), live_before, "not applied yet");
        assert_eq!(a.sharded_stats().remote_frees, 1);
        // The owner re-enters its shard: queue drains before allocating.
        SyncVmAllocator::thread_switched(&a, 0);
        let q = SyncVmAllocator::malloc(&a, 128, site(), &gs, &mut mem);
        assert_eq!(a.remote_pending(), 0);
        assert_eq!(q, p, "freed region was recycled by the in-place chunk reset");
        assert_eq!(a.sharded_stats().remote_drained, 1);
    }

    #[test]
    fn drain_remote_flushes_idle_shards() {
        let (a, mut gs, mut mem) = sharded(4);
        gs.set(1);
        for t in 0..4u16 {
            SyncVmAllocator::thread_switched(&a, t);
            let p = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
            // Free everything from logical thread (t + 1): always foreign.
            SyncVmAllocator::thread_switched(&a, t + 1);
            SyncVmAllocator::free(&a, p, &mut mem);
        }
        assert_eq!(a.remote_pending(), 4);
        assert!(a.live_grouped_bytes() > 0);
        a.drain_remote(&mut mem);
        assert_eq!(a.remote_pending(), 0);
        assert_eq!(a.live_grouped_bytes(), 0);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn remote_peak_queue_is_a_high_water_mark() {
        let (a, mut gs, mut mem) = sharded(2);
        gs.set(0);
        SyncVmAllocator::thread_switched(&a, 0);
        let ptrs: Vec<u64> =
            (0..3).map(|_| SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem)).collect();
        assert_eq!(a.sharded_stats().remote_peak_queue, 0, "no remote traffic yet");
        // Thread 1 frees all three: shard 0's queue grows to depth 3.
        SyncVmAllocator::thread_switched(&a, 1);
        for p in ptrs {
            SyncVmAllocator::free(&a, p, &mut mem);
        }
        assert_eq!(a.sharded_stats().remote_peak_queue, 3);
        a.drain_remote(&mut mem);
        let s = a.sharded_stats();
        assert_eq!(s.remote_peak_queue, 3, "the peak survives the drain");
        assert_eq!((s.remote_frees, s.remote_drained), (3, 3));
    }

    #[test]
    fn run_finished_resets_the_logical_thread() {
        let (a, mut gs, mut mem) = sharded(2);
        gs.set(0);
        SyncVmAllocator::thread_switched(&a, 0);
        let base_run = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        SyncVmAllocator::thread_switched(&a, 1);
        let foreign = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        SyncVmAllocator::run_finished(&a, &mut mem);
        // A later run on this OS thread must start from its base shard
        // again, not wherever the previous program's last ThreadSwitch
        // left it — otherwise reusing an allocator across engine runs
        // places differently than a fresh first run.
        let next_run = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        assert_eq!(a.owner_of(next_run), a.owner_of(base_run));
        assert_ne!(a.owner_of(next_run), a.owner_of(foreign));
    }

    #[test]
    fn fallback_pointers_route_home_too() {
        let (a, gs, mut mem) = sharded(2);
        // No group bits set: everything falls back, per shard.
        SyncVmAllocator::thread_switched(&a, 0);
        let p0 = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        SyncVmAllocator::thread_switched(&a, 1);
        let p1 = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        assert!(!a.is_group_allocated(p0) && !a.is_group_allocated(p1));
        assert_ne!(a.owner_of(p0), a.owner_of(p1), "per-shard fallbacks");
        // Cross-thread fallback free defers like a grouped one.
        SyncVmAllocator::free(&a, p0, &mut mem);
        assert_eq!(a.remote_pending(), 1);
        a.drain_remote(&mut mem);
        SyncVmAllocator::thread_switched(&a, 1);
        SyncVmAllocator::free(&a, p1, &mut mem);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn aggregates_sum_over_shards_and_groups() {
        let (a, mut gs, mut mem) = sharded(2);
        for (t, bit) in [(0u16, 0u16), (1, 1)] {
            SyncVmAllocator::thread_switched(&a, t);
            gs.reset();
            gs.set(bit);
            for _ in 0..16 {
                let p = SyncVmAllocator::malloc(&a, 256, site(), &gs, &mut mem);
                mem.write(p, 8, 1);
            }
        }
        let stats = a.stats();
        assert_eq!(stats.grouped_allocs, 32);
        let frag = a.frag_report();
        assert!(frag.peak_resident_bytes >= 2 * 4096, "both shards contribute");
        let groups = a.group_frag_reports();
        assert_eq!(groups.len(), 2);
        assert!(groups[0].peak_resident_bytes > 0 && groups[1].peak_resident_bytes > 0);
        assert_eq!(
            groups.iter().map(|r| r.peak_resident_bytes).sum::<u64>(),
            frag.peak_resident_bytes
        );
    }

    #[test]
    fn os_threads_get_round_robin_slots() {
        let (a, mut gs, mut mem) = sharded(2);
        gs.set(0);
        let here = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        let there = std::thread::scope(|s| {
            s.spawn(|| {
                let mut mem = Memory::new();
                let mut gs = GroupState::new(2);
                gs.set(0);
                SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem)
            })
            .join()
            .expect("worker thread")
        });
        assert_ne!(a.owner_of(here), a.owner_of(there), "second OS thread gets the next shard");
    }

    #[test]
    fn shards_one_matches_the_plain_allocator_addresses() {
        // The differential identity in miniature (the property test in
        // tests/property_invariants.rs replays randomized traces).
        let (a, mut gs, mut mem_a) = sharded(1);
        let mut plain = HaloGroupAllocator::new(small_config(), two_group_table());
        let mut mem_b = Memory::new();
        gs.set(0);
        for i in 0..32u64 {
            let size = 16 + (i % 5) * 24;
            let pa = SyncVmAllocator::malloc(&a, size, site(), &gs, &mut mem_a);
            let pb = plain.malloc(size, site(), &gs, &mut mem_b);
            assert_eq!(pa, pb);
        }
        assert_eq!(a.stats(), plain.stats());
        assert_eq!(a.frag_report(), plain.frag_report());
    }

    // --- faults, bounded queues, and the degradation ladder -------------

    use crate::faults::{FaultPlan, FaultSite};

    #[test]
    fn foreign_pointer_free_is_a_typed_error_and_leaves_state_untouched() {
        let (a, mut gs, mut mem) = sharded(2);
        gs.set(0);
        let p = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        let stats_before = a.sharded_stats();
        let live_before = a.live_bytes();
        // An address below every shard range: owned by nobody.
        let err = a.try_free(0x10, &mut mem).unwrap_err();
        assert_eq!(err, ForeignPointer { ptr: 0x10 });
        assert_eq!(
            err.to_string(),
            "pointer 0x10 belongs to no shard of this allocator",
            "the old panic message, now data"
        );
        // try_free's error path touches nothing: same counters, same live
        // set, and the allocator keeps serving.
        assert_eq!(a.sharded_stats(), stats_before);
        assert_eq!(a.live_bytes(), live_before);
        assert_eq!(a.remote_pending(), 0);
        // The infallible face absorbs it as a counted no-op instead.
        SyncVmAllocator::free(&a, 0x10, &mut mem);
        assert_eq!(a.degrade_stats().invalid_frees, 1);
        SyncVmAllocator::free(&a, p, &mut mem);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn realloc_of_foreign_pointer_serves_fresh_and_counts() {
        let (a, gs, mut mem) = sharded(2);
        let q = SyncVmAllocator::realloc(&a, 0x10, 64, site(), &gs, &mut mem);
        assert_ne!(q, 0, "request still served");
        assert_eq!(a.degrade_stats().invalid_frees, 1);
        SyncVmAllocator::free(&a, q, &mut mem);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn remote_queue_bound_applies_backpressure() {
        let (a, mut gs, _) = sharded(2);
        a.set_remote_queue_cap(2); // interior: no &mut needed
        let mut mem = Memory::new();
        gs.set(0);
        SyncVmAllocator::thread_switched(&a, 0);
        let ptrs: Vec<u64> =
            (0..4).map(|_| SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem)).collect();
        SyncVmAllocator::thread_switched(&a, 1);
        for &p in &ptrs {
            SyncVmAllocator::free(&a, p, &mut mem);
        }
        // Frees 1–2 queue; free 3 hits the cap and goes direct — which
        // services the owner shard, draining the two queued entries on
        // the way — and free 4 starts a fresh queue.
        assert_eq!(a.remote_pending(), 1, "the queue never exceeds its cap");
        let d = a.degrade_stats();
        assert_eq!(d.queue_overflows, 1);
        let s = a.sharded_stats();
        assert_eq!(s.remote_frees, 3, "only queued frees count as remote");
        assert_eq!(s.remote_drained, 2, "the overflow's direct free drained the backlog");
        a.drain_remote(&mut mem);
        assert_eq!(a.sharded_stats().remote_drained, 3);
        assert_eq!(a.live_bytes(), 0, "overflowed frees were applied directly");
    }

    #[test]
    fn remote_queue_cap_can_change_mid_run() {
        let (a, mut gs, _) = sharded(2);
        let mut mem = Memory::new();
        gs.set(0);
        SyncVmAllocator::thread_switched(&a, 0);
        let ptrs: Vec<u64> =
            (0..6).map(|_| SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem)).collect();
        SyncVmAllocator::thread_switched(&a, 1);
        // Default cap: the first two foreign frees queue without overflow.
        SyncVmAllocator::free(&a, ptrs[0], &mut mem);
        SyncVmAllocator::free(&a, ptrs[1], &mut mem);
        assert_eq!(a.remote_pending(), 2);
        assert_eq!(a.degrade_stats().queue_overflows, 0);
        // Tighten the cap *through a shared reference, mid-run*, below the
        // current backlog: the very next push must take the overflow
        // fallback (which drains the backlog as a side effect of
        // servicing the owner shard under its lock).
        a.set_remote_queue_cap(1);
        SyncVmAllocator::free(&a, ptrs[2], &mut mem);
        assert_eq!(a.remote_pending(), 0, "overflow free serviced the owner and drained");
        assert_eq!(a.degrade_stats().queue_overflows, 1);
        // Loosening applies just as immediately.
        a.set_remote_queue_cap(ShardedHaloAllocator::DEFAULT_REMOTE_QUEUE_CAP);
        for &p in &ptrs[3..] {
            SyncVmAllocator::free(&a, p, &mut mem);
        }
        assert_eq!(a.remote_pending(), 3, "restored cap queues again");
        assert_eq!(a.degrade_stats().queue_overflows, 1, "no further overflow counted");
        let s = a.sharded_stats();
        assert_eq!(s.remote_frees, 5, "only queued frees count as remote");
        a.drain_remote(&mut mem);
        assert_eq!(a.live_bytes(), 0, "every path applied its free exactly once");
    }

    #[test]
    fn injected_queue_fault_forces_the_overflow_path() {
        let (mut a, mut gs, _) = sharded(2);
        a.set_fault_injector(Arc::new(FaultInjector::new(
            FaultPlan::new(5).at(FaultSite::RemoteQueue, 1),
        )));
        let a = a;
        let mut mem = Memory::new();
        gs.set(0);
        SyncVmAllocator::thread_switched(&a, 0);
        let p = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        SyncVmAllocator::thread_switched(&a, 1);
        SyncVmAllocator::free(&a, p, &mut mem);
        assert_eq!(a.remote_pending(), 0, "fault skipped the queue");
        let d = a.degrade_stats();
        assert_eq!(d.queue_overflows, 1);
        assert_eq!(d.injected_faults, 1);
        assert_eq!(a.live_bytes(), 0, "freed directly under the owner lock");
    }

    #[test]
    fn poisoned_shard_lock_recovers_without_wedging_other_threads() {
        let mut owned = ShardedHaloAllocator::new(1, small_config(), two_group_table(), Vec::new());
        owned.set_fault_injector(Arc::new(FaultInjector::new(
            FaultPlan::new(9).at(FaultSite::ShardPanic, 1),
        )));
        let a = &owned;
        // A worker thread hits the injected panic while holding shard 0's
        // allocator lock (the only shard — every thread maps to it).
        let joined = std::thread::scope(|s| {
            s.spawn(|| {
                let mut mem = Memory::new();
                let mut gs = GroupState::new(2);
                gs.set(0);
                SyncVmAllocator::malloc(a, 64, site(), &gs, &mut mem)
            })
            .join()
        });
        assert!(joined.is_err(), "the injected panic propagated to join");
        // This thread must not be wedged: the poisoned lock is recovered,
        // invariants re-validated (they hold — the panic preceded any
        // mutation), and service continues on the grouped path.
        let mut mem = Memory::new();
        let mut gs = GroupState::new(2);
        gs.set(0);
        let p = SyncVmAllocator::malloc(a, 64, site(), &gs, &mut mem);
        assert_ne!(p, 0);
        assert!(a.is_group_allocated(p), "no quarantine: the grouped path survives");
        let d = a.degrade_stats();
        assert!(d.poisoned_recovered >= 1, "the recovery was counted: {d:?}");
        assert_eq!(d.degraded_shards, 0, "invariants held, no shard degraded");
        assert_eq!(d.injected_faults, 1);
        SyncVmAllocator::free(a, p, &mut mem);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    fn shard_degradation_aggregates_without_double_counting_injections() {
        let mut owned = ShardedHaloAllocator::new(2, small_config(), two_group_table(), Vec::new());
        owned.set_fault_injector(Arc::new(FaultInjector::new(
            FaultPlan::new(2).at(FaultSite::VmmReserve, 1),
        )));
        let a = owned;
        let mut mem = Memory::new();
        let mut gs = GroupState::new(2);
        gs.set(0);
        // First slab reservation (whichever shard gets there) fails: that
        // shard's group 0 degrades; the request is still served.
        SyncVmAllocator::thread_switched(&a, 0);
        let p = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        assert_ne!(p, 0);
        let d = a.degrade_stats();
        assert_eq!(d.fallback_routes, 1);
        assert_eq!(d.degraded_groups, 1, "one group on one shard");
        assert_eq!(d.injected_faults, 1, "shared injector counted once, not per shard");
        // The other shard's group 0 is independent and still groups.
        SyncVmAllocator::thread_switched(&a, 1);
        let q = SyncVmAllocator::malloc(&a, 64, site(), &gs, &mut mem);
        assert!(a.is_group_allocated(q));
        SyncVmAllocator::free(&a, q, &mut mem);
        SyncVmAllocator::thread_switched(&a, 0);
        SyncVmAllocator::free(&a, p, &mut mem);
        a.drain_remote(&mut mem);
        assert_eq!(a.live_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = ShardedHaloAllocator::new(0, small_config(), two_group_table(), Vec::new());
    }

    #[test]
    #[should_panic(expected = "address layout")]
    fn absurd_shard_counts_trip_the_layout_guard() {
        let _ = ShardedHaloAllocator::new(64, small_config(), two_group_table(), Vec::new());
    }
}
