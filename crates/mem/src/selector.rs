//! Runtime form of group selectors (§4.3).
//!
//! Identification produces, per group, a logical expression in disjunctive
//! normal form over monitored call sites. After the rewriter assigns each
//! monitored site a bit in the shared group-state vector, a selector becomes
//! a DNF formula over bits. The allocator evaluates selectors in group
//! popularity order; the first match decides group membership.

use halo_vm::GroupState;

/// One group's membership formula: an OR over AND-lists of group-state bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSelector {
    /// Index of the group this selector identifies.
    pub group: usize,
    /// DNF: the selector matches when *any* conjunction has *all* its bits
    /// set. An empty conjunction is always true; an empty list never
    /// matches.
    pub conjunctions: Vec<Vec<u16>>,
}

impl GroupSelector {
    /// Evaluate against the current group state.
    #[inline]
    pub fn matches(&self, gs: &GroupState) -> bool {
        self.conjunctions.iter().any(|c| gs.test_all(c))
    }
}

/// All selectors of a synthesised allocator, in evaluation (popularity)
/// order, plus the number of group-state bits they reference.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectorTable {
    selectors: Vec<GroupSelector>,
    num_bits: u16,
    num_groups: usize,
}

impl SelectorTable {
    /// Build a table from selectors already sorted by group popularity.
    pub fn new(selectors: Vec<GroupSelector>, num_bits: u16) -> Self {
        let num_groups = selectors.iter().map(|s| s.group + 1).max().unwrap_or(0);
        SelectorTable { selectors, num_bits, num_groups }
    }

    /// A table with no groups: every allocation falls through to the
    /// default allocator.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of group-state bits referenced (the rewriter must provide at
    /// least this many).
    pub fn num_bits(&self) -> u16 {
        self.num_bits
    }

    /// Largest group index + 1.
    pub fn num_groups(&self) -> usize {
        self.num_groups
    }

    /// The selectors in evaluation order.
    pub fn selectors(&self) -> &[GroupSelector] {
        &self.selectors
    }

    /// Decide group membership for the current state: the first matching
    /// selector (most popular group first) wins.
    #[inline]
    pub fn classify(&self, gs: &GroupState) -> Option<usize> {
        self.selectors.iter().find(|s| s.matches(gs)).map(|s| s.group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dnf_semantics() {
        let sel = GroupSelector { group: 0, conjunctions: vec![vec![1, 2], vec![5]] };
        let mut gs = GroupState::new(8);
        assert!(!sel.matches(&gs));
        gs.set(1);
        assert!(!sel.matches(&gs), "partial conjunction must not match");
        gs.set(2);
        assert!(sel.matches(&gs));
        gs.reset();
        gs.set(5);
        assert!(sel.matches(&gs), "second disjunct suffices");
    }

    #[test]
    fn empty_conjunction_always_true_empty_selector_never() {
        let always = GroupSelector { group: 0, conjunctions: vec![vec![]] };
        let never = GroupSelector { group: 1, conjunctions: vec![] };
        let gs = GroupState::new(8);
        assert!(always.matches(&gs));
        assert!(!never.matches(&gs));
    }

    #[test]
    fn classify_first_match_wins() {
        let table = SelectorTable::new(
            vec![
                GroupSelector { group: 2, conjunctions: vec![vec![0]] },
                GroupSelector { group: 1, conjunctions: vec![vec![0, 1]] },
            ],
            2,
        );
        let mut gs = GroupState::new(2);
        gs.set(0);
        gs.set(1);
        // Both match; the more popular (listed first) group 2 wins.
        assert_eq!(table.classify(&gs), Some(2));
        gs.clear(0);
        assert_eq!(table.classify(&gs), None);
        assert_eq!(table.num_groups(), 3);
    }

    #[test]
    fn empty_table_classifies_nothing() {
        let gs = GroupState::new(8);
        assert_eq!(SelectorTable::empty().classify(&gs), None);
        assert_eq!(SelectorTable::empty().num_groups(), 0);
    }
}
