//! Disassembly: human-readable listings of simulated binaries.
//!
//! Primarily a debugging aid for the rewriting pass — `halo-rewrite`'s
//! inserted `gset`/`gclr` instructions and fixed-up branch targets are
//! easiest to audit in a listing. [`Program::disassemble`] renders the
//! whole binary; [`Op`] implements [`std::fmt::Display`] for single
//! instructions.

use crate::ids::Cond;
use crate::op::Op;
use crate::program::{Function, Program};
use std::fmt;

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Imm(d, v) => write!(f, "imm   {d}, {v}"),
            Op::Mov(d, s) => write!(f, "mov   {d}, {s}"),
            Op::Add(d, a, b) => write!(f, "add   {d}, {a}, {b}"),
            Op::AddImm(d, a, v) => write!(f, "addi  {d}, {a}, {v}"),
            Op::Sub(d, a, b) => write!(f, "sub   {d}, {a}, {b}"),
            Op::Mul(d, a, b) => write!(f, "mul   {d}, {a}, {b}"),
            Op::MulImm(d, a, v) => write!(f, "muli  {d}, {a}, {v}"),
            Op::Div(d, a, b) => write!(f, "div   {d}, {a}, {b}"),
            Op::Rem(d, a, b) => write!(f, "rem   {d}, {a}, {b}"),
            Op::And(d, a, b) => write!(f, "and   {d}, {a}, {b}"),
            Op::Or(d, a, b) => write!(f, "or    {d}, {a}, {b}"),
            Op::Xor(d, a, b) => write!(f, "xor   {d}, {a}, {b}"),
            Op::Load { dst, base, offset, width } => {
                write!(f, "ld{}   {dst}, [{base}{offset:+}]", width.bytes())
            }
            Op::Store { src, base, offset, width } => {
                write!(f, "st{}   {src}, [{base}{offset:+}]", width.bytes())
            }
            Op::Call { func, args, dst } => {
                write!(f, "call  {func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
                if let Some(d) = dst {
                    write!(f, " -> {d}")?;
                }
                Ok(())
            }
            Op::CallIndirect { target, args, dst } => {
                write!(f, "calli [{target}](")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
                if let Some(d) = dst {
                    write!(f, " -> {d}")?;
                }
                Ok(())
            }
            Op::Malloc { size, dst } => write!(f, "mallc {dst}, {size}"),
            Op::Calloc { count, size, dst } => write!(f, "callc {dst}, {count}, {size}"),
            Op::Realloc { ptr, size, dst } => write!(f, "reall {dst}, {ptr}, {size}"),
            Op::Free { ptr } => write!(f, "free  {ptr}"),
            Op::Jump(t) => write!(f, "jmp   @{t}"),
            Op::Branch { cond, a, b, target } => write!(f, "b.{cond}  {a}, {b}, @{target}"),
            Op::Compute(n) => write!(f, "work  {n}"),
            Op::Rand { dst, bound } => write!(f, "rand  {dst}, {bound}"),
            Op::Ret(Some(r)) => write!(f, "ret   {r}"),
            Op::Ret(None) => write!(f, "ret"),
            Op::ThreadSwitch(t) => write!(f, "tswch #{t}"),
            Op::GroupSet(b) => write!(f, "gset  #{b}"),
            Op::GroupClear(b) => write!(f, "gclr  #{b}"),
            Op::Nop => write!(f, "nop"),
        }
    }
}

impl Function {
    /// Render this function as an assembly-style listing.
    pub fn disassemble(&self, out: &mut String) {
        use fmt::Write;
        let tag = if self.external { " [external]" } else { "" };
        let _ = writeln!(out, "{}({} args){}:", self.name, self.argc, tag);
        for (pc, op) in self.code.iter().enumerate() {
            let _ = writeln!(out, "  {pc:>4}: {op}");
        }
    }
}

impl Program {
    /// Render the whole binary as an assembly-style listing.
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        for (i, func) in self.functions.iter().enumerate() {
            if i > 0 {
                out.push('\n');
            }
            func.disassemble(&mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ids::{Reg, Width};

    #[test]
    fn listing_contains_every_instruction_form() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("callee");
        let mut m = pb.function("main");
        let r = Reg;
        m.imm(r(0), 42);
        m.malloc(r(0), r(1));
        m.store(r(0), r(1), 8, Width::W4);
        m.load(r(2), r(1), 8, Width::W4);
        m.call(callee, &[r(2)], Some(r(3)));
        m.free(r(1));
        let top = m.label();
        m.bind(top);
        m.branch(crate::ids::Cond::Lt, r(3), r(0), top);
        m.compute(7);
        m.raw(Op::GroupSet(5));
        m.ret(Some(r(3)));
        let main = m.finish();
        let mut c = pb.define(callee);
        c.argc(1).ret(Some(r(0)));
        c.finish();
        let p = pb.finish(main);

        let listing = p.disassemble();
        for needle in [
            "main(0 args):",
            "callee(1 args):",
            "imm   r0, 42",
            "mallc r1, r0",
            "st4   r0, [r1+8]",
            "ld4   r2, [r1+8]",
            "call  fn#0(r2) -> r3",
            "free  r1",
            "b.lt  r3, r0, @6",
            "work  7",
            "gset  #5",
            "ret   r3",
        ] {
            assert!(listing.contains(needle), "missing {needle:?} in:\n{listing}");
        }
    }

    #[test]
    fn external_functions_are_marked() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("operator_new");
        f.external().ret(None);
        let id = f.finish();
        let p = pb.finish(id);
        assert!(p.disassemble().contains("[external]"));
    }

    #[test]
    fn rewritten_binaries_show_instrumentation() {
        // The primary use case: auditing the rewriter's output.
        let mut pb = ProgramBuilder::new();
        let mut m = pb.function("main");
        m.imm(Reg(0), 8);
        let site = m.malloc(Reg(0), Reg(1));
        m.ret(None);
        let main = m.finish();
        let p = pb.finish(main);
        let mut before = p.clone();
        before.functions[0].code.insert(site.pc as usize, Op::GroupSet(3));
        before.functions[0].code.insert(site.pc as usize + 2, Op::GroupClear(3));
        let listing = before.disassemble();
        let gset_line = listing.lines().position(|l| l.contains("gset")).unwrap();
        let mallc_line = listing.lines().position(|l| l.contains("mallc")).unwrap();
        let gclr_line = listing.lines().position(|l| l.contains("gclr")).unwrap();
        assert!(gset_line < mallc_line && mallc_line < gclr_line);
    }
}
