//! Simulated "binary" substrate for the HALO reproduction.
//!
//! The HALO paper ([Savage & Jones, CGO 2020]) operates on x86-64 ELF
//! binaries: it profiles them under Intel Pin, rewrites them with LLVM-BOLT,
//! and interposes on their allocation routines at runtime. None of those
//! substrates observe anything about a program beyond its *calls and
//! returns*, its *allocation-routine invocations*, and its *load/store
//! addresses*. This crate provides a compact bytecode program format and an
//! interpreter that exposes exactly those events, so that the rest of the
//! pipeline (profiler, grouper, identifier, rewriter, allocators, cache
//! simulator) can be built faithfully on top of it.
//!
//! The key pieces are:
//!
//! * [`Program`] / [`Function`] / [`Op`] — the binary format. Functions are
//!   sequences of register-machine instructions with direct and indirect
//!   calls, loads and stores into a 64-bit byte-addressed address space, and
//!   dedicated allocation instructions ([`Op::Malloc`] and friends) standing
//!   in for calls to the POSIX.1 memory-management routines.
//! * [`ProgramBuilder`] / [`FunctionBuilder`] — an assembler with labels,
//!   used by `halo-workloads` to express benchmark programs.
//! * [`Memory`] — a demand-paged simulated memory holding real bytes, so
//!   programs can build genuine pointer-linked data structures.
//! * [`Engine`] — the interpreter. It is generic over a [`VmAllocator`]
//!   (which decides where heap objects live) and a [`Monitor`] (which
//!   observes the event stream; the profiler and the cache simulator are
//!   monitors).
//! * [`GroupState`] — the shared group-state bit vector that HALO's rewritten
//!   binaries maintain via [`Op::GroupSet`] / [`Op::GroupClear`] and that the
//!   specialised allocator inspects on every request.
//!
//! # Example
//!
//! ```
//! use halo_vm::{Engine, MallocOnlyAllocator, NullMonitor, ProgramBuilder, Reg};
//!
//! # fn main() -> Result<(), halo_vm::VmError> {
//! let mut pb = ProgramBuilder::new();
//! let mut f = pb.function("main");
//! let r0 = Reg(0);
//! let r1 = Reg(1);
//! f.imm(r0, 16);
//! f.malloc(r0, r1); // r1 = malloc(16)
//! f.imm(r0, 42);
//! f.store(r0, r1, 0, halo_vm::Width::W8); // *r1 = 42
//! f.load(r0, r1, 0, halo_vm::Width::W8); // r0 = *r1
//! f.ret(Some(r0));
//! let main = f.finish();
//! let program = pb.finish(main);
//!
//! let mut alloc = MallocOnlyAllocator::new();
//! let mut monitor = NullMonitor;
//! let exit = Engine::new(&program).run(&mut alloc, &mut monitor)?;
//! assert_eq!(exit.return_value, Some(42));
//! # Ok(())
//! # }
//! ```
//!
//! [Savage & Jones, CGO 2020]: https://doi.org/10.1145/3368826.3377914

mod builder;
mod disasm;
mod engine;
mod group_state;
mod ids;
mod memory;
mod op;
mod program;
mod rng;

pub use builder::{FunctionBuilder, Label, ProgramBuilder};
pub use engine::{
    AccessBatch, AllocKind, Engine, EngineLimits, ExitStats, MallocOnlyAllocator, Monitor,
    NullMonitor, SyncVmAllocator, VmAllocator, VmError,
};
pub use group_state::GroupState;
pub use ids::{CallSite, Cond, FuncId, Reg, Width};
pub use memory::{Memory, PAGE_SIZE};
pub use op::Op;
pub use program::{Function, Program};
pub use rng::SplitMix64;
