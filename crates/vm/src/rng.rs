//! Deterministic pseudo-random number generation for workloads.
//!
//! Benchmarks in the paper are measured over repeated trials of real
//! programs; our simulated runs are deterministic instead (see DESIGN.md).
//! Workload programs still need *internal* randomness (e.g. which token type
//! povray's scanner sees next), which the [`crate::Op::Rand`] instruction
//! draws from this generator, seeded per run.

/// SplitMix64: a tiny, high-quality, seedable PRNG (Steele et al., 2014).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "rand bound must be positive");
        // Multiply-shift bounded generation (Lemire); bias is negligible for
        // the small bounds used by workloads and, crucially, deterministic.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[r.next_below(4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "rand bound must be positive")]
    fn next_below_zero_panics() {
        SplitMix64::new(0).next_below(0);
    }
}
