//! Programs and functions: the simulated binary image.

use crate::ids::{CallSite, FuncId};
use crate::op::Op;

/// Number of virtual registers per stack frame.
pub const NUM_REGS: usize = 32;

/// A function in the simulated binary.
#[derive(Debug, Clone)]
pub struct Function {
    /// Human-readable name (used in reports and the Fig. 9 group listing).
    pub name: String,
    /// Whether this function lives in a *library*, i.e. is **not**
    /// statically linked into the main binary. The profiler's shadow stack
    /// skips library frames and traces call sites inside them back to their
    /// nearest point of origin in the main executable (§4.1).
    pub external: bool,
    /// Number of arguments expected in `r0..argc`.
    pub argc: u8,
    /// Instruction stream.
    pub code: Vec<Op>,
}

impl Function {
    /// All call sites (direct, indirect, and allocation-routine) in this
    /// function, as `(pc, op)` pairs.
    pub fn call_sites(&self) -> impl Iterator<Item = (u32, &Op)> {
        self.code
            .iter()
            .enumerate()
            .filter(|(_, op)| op.is_call_site())
            .map(|(pc, op)| (pc as u32, op))
    }
}

/// A complete simulated binary: a table of functions plus an entry point.
#[derive(Debug, Clone)]
pub struct Program {
    /// Function table; a [`FuncId`] indexes into it.
    pub functions: Vec<Function>,
    /// Entry function, invoked with no arguments.
    pub entry: FuncId,
}

/// A structural validation problem found by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// The entry function id is out of range.
    BadEntry(FuncId),
    /// A direct call names a function id out of range.
    BadCallTarget {
        /// Where the offending call lives.
        site: CallSite,
        /// The out-of-range callee.
        target: FuncId,
    },
    /// A jump or branch targets an instruction index outside its function.
    BadBranchTarget {
        /// Function containing the branch.
        func: FuncId,
        /// Instruction index of the branch.
        pc: u32,
        /// The out-of-range target.
        target: u32,
    },
    /// A function's last instruction can fall off the end (it is not a
    /// `Ret`, `Jump`, or trap).
    MissingReturn(FuncId),
    /// An instruction names a register outside `r0..r31`.
    BadRegister {
        /// Function containing the instruction.
        func: FuncId,
        /// Instruction index.
        pc: u32,
    },
}

impl std::fmt::Display for ValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidationError::BadEntry(id) => write!(f, "entry function {id} out of range"),
            ValidationError::BadCallTarget { site, target } => {
                write!(f, "call at {site} targets out-of-range function {target}")
            }
            ValidationError::BadBranchTarget { func, pc, target } => {
                write!(f, "branch at {func}+{pc} targets out-of-range index {target}")
            }
            ValidationError::MissingReturn(id) => {
                write!(f, "function {id} can fall off the end of its code")
            }
            ValidationError::BadRegister { func, pc } => {
                write!(f, "instruction at {func}+{pc} names an out-of-range register")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

impl Program {
    /// Look up a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; validated programs never do this.
    #[inline]
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Total instruction count across all functions (a proxy for binary
    /// size; used to report rewriting growth).
    pub fn code_size(&self) -> usize {
        self.functions.iter().map(|f| f.code.len()).sum()
    }

    /// Find a function id by name. Names are not required to be unique;
    /// the first match wins.
    pub fn find_function(&self, name: &str) -> Option<FuncId> {
        self.functions.iter().position(|f| f.name == name).map(|i| FuncId(i as u32))
    }

    /// Enumerate every call site in the program.
    pub fn call_sites(&self) -> Vec<CallSite> {
        let mut out = Vec::new();
        for (fi, func) in self.functions.iter().enumerate() {
            for (pc, _) in func.call_sites() {
                out.push(CallSite::new(FuncId(fi as u32), pc));
            }
        }
        out
    }

    /// Structurally validate the program: every call target and branch
    /// target must be in range, registers in `r0..r31`, and no function may
    /// fall off the end of its code.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidationError`] found.
    pub fn validate(&self) -> Result<(), ValidationError> {
        if self.entry.index() >= self.functions.len() {
            return Err(ValidationError::BadEntry(self.entry));
        }
        for (fi, func) in self.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            let len = func.code.len() as u32;
            match func.code.last() {
                Some(Op::Ret(_)) | Some(Op::Jump(_)) => {}
                _ => return Err(ValidationError::MissingReturn(fid)),
            }
            for (pc, op) in func.code.iter().enumerate() {
                let pc = pc as u32;
                if let Some(target) = op.branch_target() {
                    if target >= len {
                        return Err(ValidationError::BadBranchTarget { func: fid, pc, target });
                    }
                }
                if let Op::Call { func: callee, .. } = op {
                    if callee.index() >= self.functions.len() {
                        return Err(ValidationError::BadCallTarget {
                            site: CallSite::new(fid, pc),
                            target: *callee,
                        });
                    }
                }
                if !regs_in_range(op) {
                    return Err(ValidationError::BadRegister { func: fid, pc });
                }
            }
        }
        Ok(())
    }
}

fn regs_in_range(op: &Op) -> bool {
    let ok = |r: &crate::ids::Reg| (r.0 as usize) < NUM_REGS;
    match op {
        Op::Imm(a, _) => ok(a),
        Op::Mov(a, b) => ok(a) && ok(b),
        Op::Add(a, b, c)
        | Op::Sub(a, b, c)
        | Op::Mul(a, b, c)
        | Op::Div(a, b, c)
        | Op::Rem(a, b, c)
        | Op::And(a, b, c)
        | Op::Or(a, b, c)
        | Op::Xor(a, b, c) => ok(a) && ok(b) && ok(c),
        Op::AddImm(a, b, _) | Op::MulImm(a, b, _) => ok(a) && ok(b),
        Op::Load { dst, base, .. } => ok(dst) && ok(base),
        Op::Store { src, base, .. } => ok(src) && ok(base),
        Op::Call { args, dst, .. } => {
            args.len() <= NUM_REGS && args.iter().all(ok) && dst.as_ref().is_none_or(ok)
        }
        Op::CallIndirect { target, args, dst } => {
            ok(target)
                && args.len() <= NUM_REGS
                && args.iter().all(ok)
                && dst.as_ref().is_none_or(ok)
        }
        Op::Malloc { size, dst } => ok(size) && ok(dst),
        Op::Calloc { count, size, dst } => ok(count) && ok(size) && ok(dst),
        Op::Realloc { ptr, size, dst } => ok(ptr) && ok(size) && ok(dst),
        Op::Free { ptr } => ok(ptr),
        Op::Rand { dst, bound } => ok(dst) && ok(bound),
        Op::Branch { a, b, .. } => ok(a) && ok(b),
        Op::Ret(r) => r.as_ref().is_none_or(ok),
        Op::Jump(_)
        | Op::Compute(_)
        | Op::ThreadSwitch(_)
        | Op::GroupSet(_)
        | Op::GroupClear(_)
        | Op::Nop => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Reg;

    fn ret_fn(name: &str) -> Function {
        Function { name: name.into(), external: false, argc: 0, code: vec![Op::Ret(None)] }
    }

    #[test]
    fn validate_accepts_minimal_program() {
        let p = Program { functions: vec![ret_fn("main")], entry: FuncId(0) };
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_entry() {
        let p = Program { functions: vec![ret_fn("main")], entry: FuncId(7) };
        assert_eq!(p.validate(), Err(ValidationError::BadEntry(FuncId(7))));
    }

    #[test]
    fn validate_rejects_fallthrough() {
        let f = Function { name: "f".into(), external: false, argc: 0, code: vec![Op::Nop] };
        let p = Program { functions: vec![f], entry: FuncId(0) };
        assert_eq!(p.validate(), Err(ValidationError::MissingReturn(FuncId(0))));
    }

    #[test]
    fn validate_rejects_bad_branch_target() {
        let f = Function {
            name: "f".into(),
            external: false,
            argc: 0,
            code: vec![Op::Jump(9), Op::Ret(None)],
        };
        let p = Program { functions: vec![f], entry: FuncId(0) };
        assert_eq!(
            p.validate(),
            Err(ValidationError::BadBranchTarget { func: FuncId(0), pc: 0, target: 9 })
        );
    }

    #[test]
    fn validate_rejects_bad_call_target() {
        let f = Function {
            name: "f".into(),
            external: false,
            argc: 0,
            code: vec![Op::Call { func: FuncId(4), args: vec![], dst: None }, Op::Ret(None)],
        };
        let p = Program { functions: vec![f], entry: FuncId(0) };
        assert!(matches!(p.validate(), Err(ValidationError::BadCallTarget { .. })));
    }

    #[test]
    fn validate_rejects_bad_register() {
        let f = Function {
            name: "f".into(),
            external: false,
            argc: 0,
            code: vec![Op::Imm(Reg(200), 1), Op::Ret(None)],
        };
        let p = Program { functions: vec![f], entry: FuncId(0) };
        assert!(matches!(p.validate(), Err(ValidationError::BadRegister { .. })));
    }

    #[test]
    fn call_sites_enumeration() {
        let f = Function {
            name: "f".into(),
            external: false,
            argc: 0,
            code: vec![
                Op::Malloc { size: Reg(0), dst: Reg(1) },
                Op::Nop,
                Op::Free { ptr: Reg(1) },
                Op::Ret(None),
            ],
        };
        let p = Program { functions: vec![f], entry: FuncId(0) };
        let sites = p.call_sites();
        assert_eq!(sites, vec![CallSite::new(FuncId(0), 0), CallSite::new(FuncId(0), 2)]);
    }

    #[test]
    fn find_function_by_name() {
        let p = Program { functions: vec![ret_fn("a"), ret_fn("b")], entry: FuncId(0) };
        assert_eq!(p.find_function("b"), Some(FuncId(1)));
        assert_eq!(p.find_function("zzz"), None);
    }
}
