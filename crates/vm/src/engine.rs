//! The interpreter: executes a [`Program`] against a pluggable allocator
//! while streaming events to a [`Monitor`].

use crate::group_state::GroupState;
use crate::ids::{CallSite, FuncId, Reg};
use crate::memory::Memory;
use crate::op::Op;
use crate::program::{Program, NUM_REGS};
use crate::rng::SplitMix64;

/// Which allocation routine an [`Monitor::on_alloc`] event came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocKind {
    /// `malloc(size)`
    Malloc,
    /// `calloc(count, size)`
    Calloc,
    /// `realloc(ptr, size)`
    Realloc,
}

/// A fixed-capacity structure-of-arrays buffer of pending data accesses.
///
/// The engine batches `Load`/`Store` events here instead of firing
/// [`Monitor::on_access`] per instruction, and delivers the buffer through
/// [`Monitor::on_access_batch`] when it fills or when any *other* monitor
/// event (call, return, alloc, free, compute, thread switch) or an engine
/// exit is about to happen. Those flush points mean a batch never crosses
/// a non-access event: relative order between accesses and every other
/// event kind is exactly what a per-access monitor observed before
/// batching existed. The one deliberate exception is
/// [`Monitor::on_instruction`], which keeps firing per retired op and is
/// therefore *not* ordered against buffered accesses.
///
/// Parallel arrays rather than an array-of-structs so a consumer's hot
/// loop reads three dense streams (the cache model walks `addrs` while
/// barely touching `stores`).
#[derive(Debug, Clone)]
pub struct AccessBatch {
    addrs: [u64; AccessBatch::CAPACITY],
    widths: [u8; AccessBatch::CAPACITY],
    stores: [bool; AccessBatch::CAPACITY],
    len: usize,
}

impl AccessBatch {
    /// Accesses buffered before a forced flush. Sized so the buffer (≈2.5
    /// KiB) stays resident in the host L1 while still amortising the
    /// virtual dispatch over a useful stretch of straight-line code.
    pub const CAPACITY: usize = 256;

    /// An empty batch.
    pub fn new() -> Self {
        AccessBatch {
            addrs: [0; Self::CAPACITY],
            widths: [0; Self::CAPACITY],
            stores: [false; Self::CAPACITY],
            len: 0,
        }
    }

    /// Number of buffered accesses.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is buffered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Byte addresses of the buffered accesses, oldest first.
    #[inline]
    pub fn addrs(&self) -> &[u64] {
        &self.addrs[..self.len]
    }

    /// Access widths in bytes, parallel to [`Self::addrs`].
    #[inline]
    pub fn widths(&self) -> &[u8] {
        &self.widths[..self.len]
    }

    /// Store flags (`true` = write), parallel to [`Self::addrs`].
    #[inline]
    pub fn stores(&self) -> &[bool] {
        &self.stores[..self.len]
    }

    /// Append one access; returns `true` when the batch is now full and
    /// must be flushed before the next push.
    #[inline]
    fn push(&mut self, addr: u64, width: u8, store: bool) -> bool {
        let i = self.len;
        self.addrs[i] = addr;
        self.widths[i] = width;
        self.stores[i] = store;
        self.len = i + 1;
        self.len == Self::CAPACITY
    }

    /// Drop all buffered accesses.
    #[inline]
    fn clear(&mut self) {
        self.len = 0;
    }
}

impl Default for AccessBatch {
    fn default() -> Self {
        Self::new()
    }
}

/// Receives the event stream of an execution. This is the role Intel Pin
/// plays in the paper: the profiler, the cache simulator, and test oracles
/// are all monitors.
///
/// All methods default to no-ops so monitors implement only what they need.
pub trait Monitor {
    /// A call instruction at `site` is transferring control to `callee`.
    /// Fired for direct and indirect calls, before the callee's first
    /// instruction.
    fn on_call(&mut self, site: CallSite, callee: FuncId) {
        let _ = (site, callee);
    }

    /// `callee` is returning to its caller.
    fn on_return(&mut self, callee: FuncId) {
        let _ = callee;
    }

    /// An allocation routine was invoked at `site` and returned `ptr`.
    /// For `realloc`, `old_ptr` is the original pointer (0 otherwise).
    fn on_alloc(&mut self, kind: AllocKind, site: CallSite, size: u64, ptr: u64, old_ptr: u64) {
        let _ = (kind, site, size, ptr, old_ptr);
    }

    /// `free(ptr)` was invoked at `site` (`ptr != 0`).
    fn on_free(&mut self, site: CallSite, ptr: u64) {
        let _ = (site, ptr);
    }

    /// A data access of `width` bytes at `addr`; `store` distinguishes
    /// writes from reads. The access is issued by the current logical
    /// thread: the engine announces every change of thread through
    /// [`on_thread_switch`](Self::on_thread_switch) *before* the accesses
    /// that follow it, so thread-aware monitors (e.g. the coherent cache
    /// model) track the identity themselves and attribute each access to
    /// the most recently announced thread (0 until the first switch).
    fn on_access(&mut self, addr: u64, width: u8, store: bool) {
        let _ = (addr, width, store);
    }

    /// A batch of buffered data accesses, oldest first. The engine flushes
    /// the batch before every other monitor event and before exiting (see
    /// [`AccessBatch`] for the exact ordering contract), so overriding
    /// this instead of [`on_access`](Self::on_access) observes the same
    /// stream with one virtual call per up to
    /// [`AccessBatch::CAPACITY`] accesses.
    ///
    /// The default delivers each buffered access, in order, through
    /// [`on_access`](Self::on_access), so per-access monitors keep working
    /// unchanged.
    fn on_access_batch(&mut self, batch: &AccessBatch) {
        for i in 0..batch.len() {
            self.on_access(batch.addrs[i], batch.widths[i], batch.stores[i]);
        }
    }

    /// `amount` instructions of non-memory work.
    fn on_compute(&mut self, amount: u64) {
        let _ = amount;
    }

    /// The program switched to logical thread `thread` (see
    /// [`crate::Op::ThreadSwitch`]).
    fn on_thread_switch(&mut self, thread: u16) {
        let _ = thread;
    }

    /// One instruction retired (fired for every executed op, including the
    /// ops that also fire a more specific event).
    fn on_instruction(&mut self) {}
}

/// A monitor that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullMonitor;

impl Monitor for NullMonitor {}

/// The allocator plugged into the engine — the runtime half of HALO, and
/// of every baseline it is compared against.
///
/// `site` is the static call site of the allocation instruction (the
/// "immediate call site" used by the hot-data-streams comparison) and `gs`
/// is the shared group-state vector maintained by rewritten binaries
/// (all-zero when running unrewritten programs).
pub trait VmAllocator {
    /// Allocate `size` bytes and return the address (never 0 on success).
    fn malloc(&mut self, size: u64, site: CallSite, gs: &GroupState, mem: &mut Memory) -> u64;

    /// Release a pointer previously returned by this allocator. Never
    /// called with 0.
    fn free(&mut self, ptr: u64, mem: &mut Memory);

    /// Resize an allocation, moving it if necessary, and return the new
    /// address. Called with `ptr != 0` and `size > 0`.
    fn realloc(
        &mut self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64;

    /// Allocate and zero `count * size` bytes. The default forwards to
    /// [`VmAllocator::malloc`] and zeroes the region.
    fn calloc(
        &mut self,
        count: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        let total = count.saturating_mul(size);
        let ptr = self.malloc(total, site, gs, mem);
        if ptr != 0 {
            mem.zero(ptr, total);
        }
        ptr
    }

    /// The executing program switched to logical thread `thread`
    /// ([`crate::Op::ThreadSwitch`]). This is the simulated stand-in for
    /// the TLS read a native allocator performs on every request:
    /// thread-aware allocators key their arena/shard selection off it.
    /// The default ignores it — single-arena allocators are oblivious to
    /// threading.
    fn thread_switched(&mut self, thread: u16) {
        let _ = thread;
    }

    /// The execution driving this allocator completed normally — the
    /// process-exit moment. Allocators with deferred work (queued remote
    /// frees, lazy purges) apply it here so post-run diagnostics (live
    /// bytes, free counters, fragmentation) reflect the whole stream.
    /// The default does nothing.
    fn run_finished(&mut self, mem: &mut Memory) {
        let _ = mem;
    }
}

/// A thread-safe allocator: the same operations as [`VmAllocator`], but
/// through a shared reference, so one allocator instance can serve
/// engines (or native driver threads) running concurrently on many OS
/// threads. Implementors synchronise internally — per-shard locks,
/// remote-free queues — rather than relying on `&mut` exclusivity.
///
/// Any `&S` where `S: SyncVmAllocator` is itself a [`VmAllocator`], so a
/// shared allocator plugs into [`Engine::run`] unchanged: each thread
/// holds its own `&S` handle (and its own [`Memory`]) while the allocator
/// state is shared.
pub trait SyncVmAllocator: Sync {
    /// Allocate `size` bytes and return the address (never 0 on success).
    fn malloc(&self, size: u64, site: CallSite, gs: &GroupState, mem: &mut Memory) -> u64;

    /// Release a pointer previously returned by this allocator. May be
    /// called from a different thread than the allocating one.
    fn free(&self, ptr: u64, mem: &mut Memory);

    /// Resize an allocation, moving it if necessary.
    fn realloc(
        &self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64;

    /// Allocate and zero `count * size` bytes (defaults to malloc+zero).
    fn calloc(
        &self,
        count: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        let total = count.saturating_mul(size);
        let ptr = self.malloc(total, site, gs, mem);
        if ptr != 0 {
            mem.zero(ptr, total);
        }
        ptr
    }

    /// The calling OS thread's program switched to logical thread
    /// `thread` (see [`VmAllocator::thread_switched`]).
    fn thread_switched(&self, thread: u16) {
        let _ = thread;
    }

    /// An execution driving this allocator completed normally (see
    /// [`VmAllocator::run_finished`]). With several engines sharing the
    /// allocator this fires once per engine, so implementations must
    /// tolerate concurrent and repeated calls.
    fn run_finished(&self, mem: &mut Memory) {
        let _ = mem;
    }
}

/// Shared references to thread-safe allocators run anywhere a plain
/// [`VmAllocator`] is expected — this is the bridge that lets one
/// allocator serve many engines.
impl<A: SyncVmAllocator> VmAllocator for &A {
    fn malloc(&mut self, size: u64, site: CallSite, gs: &GroupState, mem: &mut Memory) -> u64 {
        SyncVmAllocator::malloc(*self, size, site, gs, mem)
    }

    fn free(&mut self, ptr: u64, mem: &mut Memory) {
        SyncVmAllocator::free(*self, ptr, mem)
    }

    fn realloc(
        &mut self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        SyncVmAllocator::realloc(*self, ptr, size, site, gs, mem)
    }

    fn calloc(
        &mut self,
        count: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        SyncVmAllocator::calloc(*self, count, size, site, gs, mem)
    }

    fn thread_switched(&mut self, thread: u16) {
        SyncVmAllocator::thread_switched(*self, thread)
    }

    fn run_finished(&mut self, mem: &mut Memory) {
        SyncVmAllocator::run_finished(*self, mem)
    }
}

/// Boxed (possibly trait-object) allocators forward wholesale, so harness
/// code can hold heterogeneous backends as `Box<dyn …>` and still hand
/// them to the engine.
impl<A: VmAllocator + ?Sized> VmAllocator for Box<A> {
    fn malloc(&mut self, size: u64, site: CallSite, gs: &GroupState, mem: &mut Memory) -> u64 {
        (**self).malloc(size, site, gs, mem)
    }

    fn free(&mut self, ptr: u64, mem: &mut Memory) {
        (**self).free(ptr, mem)
    }

    fn realloc(
        &mut self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        (**self).realloc(ptr, size, site, gs, mem)
    }

    fn calloc(
        &mut self,
        count: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        (**self).calloc(count, size, site, gs, mem)
    }

    fn thread_switched(&mut self, thread: u16) {
        (**self).thread_switched(thread)
    }

    fn run_finished(&mut self, mem: &mut Memory) {
        (**self).run_finished(mem)
    }
}

/// Execution limits protecting against runaway workloads.
#[derive(Debug, Clone, Copy)]
pub struct EngineLimits {
    /// Maximum number of retired instructions before [`VmError::FuelExhausted`].
    pub max_instructions: u64,
    /// Maximum call depth before [`VmError::CallDepthExceeded`].
    pub max_call_depth: usize,
}

impl Default for EngineLimits {
    fn default() -> Self {
        EngineLimits { max_instructions: 50_000_000_000, max_call_depth: 4096 }
    }
}

/// Why an execution failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// `Div`/`Rem` with a zero divisor.
    DivisionByZero {
        /// Location of the faulting instruction.
        at: CallSite,
    },
    /// An indirect call through a register that does not hold a valid
    /// function id.
    BadIndirectTarget {
        /// Location of the faulting instruction.
        at: CallSite,
        /// The register value that failed to resolve.
        value: i64,
    },
    /// The call stack exceeded [`EngineLimits::max_call_depth`].
    CallDepthExceeded,
    /// More instructions retired than [`EngineLimits::max_instructions`].
    FuelExhausted,
    /// The allocator returned 0 for an allocation request.
    ///
    /// The HALO backends' degradation ladder (DESIGN.md §12) keeps
    /// resource exhaustion away from this error: an exhausted or
    /// degraded group routes to the fallback allocator instead of
    /// returning 0, so under them this error means the *fallback* ran
    /// out of address span — a genuine OOM, not a lost optimisation.
    AllocationFailed {
        /// Location of the faulting allocation.
        at: CallSite,
        /// Requested size in bytes.
        size: u64,
    },
    /// `Rand` with a non-positive bound.
    BadRandBound {
        /// Location of the faulting instruction.
        at: CallSite,
    },
}

impl std::fmt::Display for VmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VmError::DivisionByZero { at } => write!(f, "division by zero at {at}"),
            VmError::BadIndirectTarget { at, value } => {
                write!(f, "indirect call at {at} through invalid target {value}")
            }
            VmError::CallDepthExceeded => write!(f, "call depth limit exceeded"),
            VmError::FuelExhausted => write!(f, "instruction limit exceeded"),
            VmError::AllocationFailed { at, size } => {
                write!(f, "allocation of {size} bytes failed at {at}")
            }
            VmError::BadRandBound { at } => write!(f, "rand with non-positive bound at {at}"),
        }
    }
}

impl std::error::Error for VmError {}

/// Summary counters for a completed execution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExitStats {
    /// Instructions retired (`Compute(n)` counts as `n`).
    pub instructions: u64,
    /// Value returned by the entry function, if any.
    pub return_value: Option<i64>,
    /// Deepest call stack observed.
    pub max_depth: usize,
    /// malloc + calloc + realloc invocations.
    pub allocs: u64,
    /// free invocations (with non-null pointers).
    pub frees: u64,
    /// Load instructions executed.
    pub loads: u64,
    /// Store instructions executed.
    pub stores: u64,
    /// [`Op::ThreadSwitch`] instructions executed (zero for any
    /// single-threaded program — the thread-aware cache model keys its
    /// single-thread identity guarantee on this staying zero).
    pub thread_switches: u64,
}

struct Frame {
    func: FuncId,
    pc: u32,
    regs: [i64; NUM_REGS],
    ret_dst: Option<Reg>,
}

/// The interpreter for simulated binaries. See the [crate docs](crate) for
/// an end-to-end example.
pub struct Engine<'p> {
    program: &'p Program,
    limits: EngineLimits,
    seed: u64,
    entry_arg: i64,
    memory: Memory,
    group_state: GroupState,
}

impl<'p> Engine<'p> {
    /// Create an engine for `program` with default limits and seed 0.
    pub fn new(program: &'p Program) -> Self {
        let max_bit = program
            .functions
            .iter()
            .flat_map(|f| f.code.iter())
            .filter_map(|op| match op {
                Op::GroupSet(b) | Op::GroupClear(b) => Some(*b),
                _ => None,
            })
            .max()
            .map(|b| b as usize + 1)
            .unwrap_or(64);
        Engine {
            program,
            limits: EngineLimits::default(),
            seed: 0,
            entry_arg: 0,
            memory: Memory::new(),
            group_state: GroupState::new(max_bit),
        }
    }

    /// Set the seed feeding [`Op::Rand`].
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Pass a scale argument to the entry function in `r0` (how workloads
    /// distinguish *train* from *ref* inputs without changing the binary).
    pub fn with_entry_arg(mut self, arg: i64) -> Self {
        self.entry_arg = arg;
        self
    }

    /// Override the execution limits.
    pub fn with_limits(mut self, limits: EngineLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The simulated memory (inspectable after a run).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// The group-state vector (inspectable after a run).
    pub fn group_state(&self) -> &GroupState {
        &self.group_state
    }

    /// Run the program to completion.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] if the program traps or exceeds a limit.
    pub fn run<A: VmAllocator, M: Monitor>(
        &mut self,
        alloc: &mut A,
        monitor: &mut M,
    ) -> Result<ExitStats, VmError> {
        let mut rng = SplitMix64::new(self.seed);
        let mut stats = ExitStats::default();
        let mut stack: Vec<Frame> = Vec::with_capacity(64);
        let mut entry_regs = [0i64; NUM_REGS];
        entry_regs[0] = self.entry_arg;
        stack.push(Frame { func: self.program.entry, pc: 0, regs: entry_regs, ret_dst: None });
        stats.max_depth = 1;

        // Pending Load/Store events. Flushed before every non-access
        // monitor event and before every exit from this function, so
        // monitors observe the pre-batching event order exactly (see
        // `AccessBatch`).
        let mut batch = AccessBatch::new();
        macro_rules! flush_accesses {
            () => {
                if !batch.is_empty() {
                    monitor.on_access_batch(&batch);
                    batch.clear();
                }
            };
        }

        'outer: loop {
            let frame = stack.last_mut().expect("non-empty stack");
            let func = self.program.function(frame.func);
            let op = &func.code[frame.pc as usize];
            let here = CallSite::new(frame.func, frame.pc);

            stats.instructions += 1;
            monitor.on_instruction();
            if stats.instructions > self.limits.max_instructions {
                flush_accesses!();
                return Err(VmError::FuelExhausted);
            }

            let mut next_pc = frame.pc + 1;
            match op {
                Op::Imm(d, v) => frame.regs[d.0 as usize] = *v,
                Op::Mov(d, s) => frame.regs[d.0 as usize] = frame.regs[s.0 as usize],
                Op::Add(d, a, b) => {
                    frame.regs[d.0 as usize] =
                        frame.regs[a.0 as usize].wrapping_add(frame.regs[b.0 as usize])
                }
                Op::AddImm(d, a, v) => {
                    frame.regs[d.0 as usize] = frame.regs[a.0 as usize].wrapping_add(*v)
                }
                Op::Sub(d, a, b) => {
                    frame.regs[d.0 as usize] =
                        frame.regs[a.0 as usize].wrapping_sub(frame.regs[b.0 as usize])
                }
                Op::Mul(d, a, b) => {
                    frame.regs[d.0 as usize] =
                        frame.regs[a.0 as usize].wrapping_mul(frame.regs[b.0 as usize])
                }
                Op::MulImm(d, a, v) => {
                    frame.regs[d.0 as usize] = frame.regs[a.0 as usize].wrapping_mul(*v)
                }
                Op::Div(d, a, b) => {
                    let bv = frame.regs[b.0 as usize];
                    if bv == 0 {
                        flush_accesses!();
                        return Err(VmError::DivisionByZero { at: here });
                    }
                    frame.regs[d.0 as usize] = frame.regs[a.0 as usize].wrapping_div(bv);
                }
                Op::Rem(d, a, b) => {
                    let bv = frame.regs[b.0 as usize];
                    if bv == 0 {
                        flush_accesses!();
                        return Err(VmError::DivisionByZero { at: here });
                    }
                    frame.regs[d.0 as usize] = frame.regs[a.0 as usize].wrapping_rem(bv);
                }
                Op::And(d, a, b) => {
                    frame.regs[d.0 as usize] = frame.regs[a.0 as usize] & frame.regs[b.0 as usize]
                }
                Op::Or(d, a, b) => {
                    frame.regs[d.0 as usize] = frame.regs[a.0 as usize] | frame.regs[b.0 as usize]
                }
                Op::Xor(d, a, b) => {
                    frame.regs[d.0 as usize] = frame.regs[a.0 as usize] ^ frame.regs[b.0 as usize]
                }
                Op::Load { dst, base, offset, width } => {
                    let addr = (frame.regs[base.0 as usize].wrapping_add(*offset)) as u64;
                    let v = self.memory.read(addr, width.bytes());
                    frame.regs[dst.0 as usize] = v as i64;
                    stats.loads += 1;
                    if batch.push(addr, width.bytes() as u8, false) {
                        flush_accesses!();
                    }
                }
                Op::Store { src, base, offset, width } => {
                    let addr = (frame.regs[base.0 as usize].wrapping_add(*offset)) as u64;
                    self.memory.write(addr, width.bytes(), frame.regs[src.0 as usize] as u64);
                    stats.stores += 1;
                    if batch.push(addr, width.bytes() as u8, true) {
                        flush_accesses!();
                    }
                }
                Op::Call { func: callee, args, dst } => {
                    let mut regs = [0i64; NUM_REGS];
                    for (i, a) in args.iter().enumerate() {
                        regs[i] = frame.regs[a.0 as usize];
                    }
                    frame.pc = next_pc;
                    let ret_dst = *dst;
                    flush_accesses!();
                    monitor.on_call(here, *callee);
                    stack.push(Frame { func: *callee, pc: 0, regs, ret_dst });
                    stats.max_depth = stats.max_depth.max(stack.len());
                    if stack.len() > self.limits.max_call_depth {
                        return Err(VmError::CallDepthExceeded);
                    }
                    continue 'outer;
                }
                Op::CallIndirect { target, args, dst } => {
                    let tv = frame.regs[target.0 as usize];
                    if tv < 0 || tv as usize >= self.program.functions.len() {
                        flush_accesses!();
                        return Err(VmError::BadIndirectTarget { at: here, value: tv });
                    }
                    let callee = FuncId(tv as u32);
                    let mut regs = [0i64; NUM_REGS];
                    for (i, a) in args.iter().enumerate() {
                        regs[i] = frame.regs[a.0 as usize];
                    }
                    frame.pc = next_pc;
                    let ret_dst = *dst;
                    flush_accesses!();
                    monitor.on_call(here, callee);
                    stack.push(Frame { func: callee, pc: 0, regs, ret_dst });
                    stats.max_depth = stats.max_depth.max(stack.len());
                    if stack.len() > self.limits.max_call_depth {
                        return Err(VmError::CallDepthExceeded);
                    }
                    continue 'outer;
                }
                Op::Malloc { size, dst } => {
                    let sz = frame.regs[size.0 as usize] as u64;
                    flush_accesses!();
                    let ptr = alloc.malloc(sz, here, &self.group_state, &mut self.memory);
                    if ptr == 0 {
                        return Err(VmError::AllocationFailed { at: here, size: sz });
                    }
                    frame.regs[dst.0 as usize] = ptr as i64;
                    stats.allocs += 1;
                    monitor.on_alloc(AllocKind::Malloc, here, sz, ptr, 0);
                }
                Op::Calloc { count, size, dst } => {
                    let c = frame.regs[count.0 as usize] as u64;
                    let sz = frame.regs[size.0 as usize] as u64;
                    let total = c.saturating_mul(sz);
                    flush_accesses!();
                    let ptr = alloc.calloc(c, sz, here, &self.group_state, &mut self.memory);
                    if ptr == 0 {
                        return Err(VmError::AllocationFailed { at: here, size: total });
                    }
                    frame.regs[dst.0 as usize] = ptr as i64;
                    stats.allocs += 1;
                    monitor.on_alloc(AllocKind::Calloc, here, total, ptr, 0);
                }
                Op::Realloc { ptr, size, dst } => {
                    let old = frame.regs[ptr.0 as usize] as u64;
                    let sz = frame.regs[size.0 as usize] as u64;
                    flush_accesses!();
                    let newp = if old == 0 {
                        alloc.malloc(sz, here, &self.group_state, &mut self.memory)
                    } else {
                        alloc.realloc(old, sz, here, &self.group_state, &mut self.memory)
                    };
                    if newp == 0 {
                        return Err(VmError::AllocationFailed { at: here, size: sz });
                    }
                    frame.regs[dst.0 as usize] = newp as i64;
                    stats.allocs += 1;
                    monitor.on_alloc(AllocKind::Realloc, here, sz, newp, old);
                }
                Op::Free { ptr } => {
                    let p = frame.regs[ptr.0 as usize] as u64;
                    if p != 0 {
                        flush_accesses!();
                        monitor.on_free(here, p);
                        alloc.free(p, &mut self.memory);
                        stats.frees += 1;
                    }
                }
                Op::Jump(t) => next_pc = *t,
                Op::Branch { cond, a, b, target } => {
                    if cond.eval(frame.regs[a.0 as usize], frame.regs[b.0 as usize]) {
                        next_pc = *target;
                    }
                }
                Op::Compute(n) => {
                    // One instruction was already counted for the op itself;
                    // account for the remaining n-1 modelled instructions.
                    stats.instructions += n.saturating_sub(1);
                    flush_accesses!();
                    monitor.on_compute(*n);
                    if stats.instructions > self.limits.max_instructions {
                        return Err(VmError::FuelExhausted);
                    }
                }
                Op::Rand { dst, bound } => {
                    let b = frame.regs[bound.0 as usize];
                    if b <= 0 {
                        flush_accesses!();
                        return Err(VmError::BadRandBound { at: here });
                    }
                    frame.regs[dst.0 as usize] = rng.next_below(b as u64) as i64;
                }
                Op::Ret(v) => {
                    let value = v.map(|r| frame.regs[r.0 as usize]);
                    let returning = frame.func;
                    let ret_dst = frame.ret_dst;
                    stack.pop();
                    flush_accesses!();
                    monitor.on_return(returning);
                    match stack.last_mut() {
                        Some(caller) => {
                            if let (Some(dst), Some(val)) = (ret_dst, value) {
                                caller.regs[dst.0 as usize] = val;
                            }
                            continue 'outer;
                        }
                        None => {
                            stats.return_value = value;
                            // The process-exit moment: let the allocator
                            // apply deferred work (e.g. queued remote
                            // frees) so post-run diagnostics see the
                            // whole stream.
                            alloc.run_finished(&mut self.memory);
                            return Ok(stats);
                        }
                    }
                }
                Op::ThreadSwitch(t) => {
                    stats.thread_switches += 1;
                    alloc.thread_switched(*t);
                    // The flush precedes the announcement so the buffered
                    // accesses are still attributed to the old thread.
                    flush_accesses!();
                    monitor.on_thread_switch(*t);
                }
                Op::GroupSet(b) => self.group_state.set(*b),
                Op::GroupClear(b) => self.group_state.clear(*b),
                Op::Nop => {}
            }
            frame.pc = next_pc;
        }
    }
}

/// A trivial bump allocator with `realloc` support, for tests, doctests,
/// and semantics-preservation oracles. It never reuses memory.
#[derive(Debug)]
pub struct MallocOnlyAllocator {
    next: u64,
    sizes: std::collections::HashMap<u64, u64>,
}

impl MallocOnlyAllocator {
    /// Heap base address used by this allocator.
    pub const BASE: u64 = 0x1000_0000;

    /// Create an allocator bumping from [`Self::BASE`].
    pub fn new() -> Self {
        MallocOnlyAllocator { next: Self::BASE, sizes: std::collections::HashMap::new() }
    }

    /// Total bytes handed out.
    pub fn allocated_bytes(&self) -> u64 {
        self.next - Self::BASE
    }
}

impl Default for MallocOnlyAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl VmAllocator for MallocOnlyAllocator {
    fn malloc(&mut self, size: u64, _site: CallSite, _gs: &GroupState, _mem: &mut Memory) -> u64 {
        let size = size.max(1);
        let ptr = self.next;
        self.next += (size + 7) & !7;
        self.sizes.insert(ptr, size);
        ptr
    }

    fn free(&mut self, ptr: u64, _mem: &mut Memory) {
        self.sizes.remove(&ptr);
    }

    fn realloc(
        &mut self,
        ptr: u64,
        size: u64,
        site: CallSite,
        gs: &GroupState,
        mem: &mut Memory,
    ) -> u64 {
        let old_size = self.sizes.get(&ptr).copied().unwrap_or(0);
        let newp = self.malloc(size, site, gs, mem);
        mem.copy(newp, ptr, old_size.min(size));
        self.sizes.remove(&ptr);
        newp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::ids::{Cond, Width};

    fn r(n: u8) -> Reg {
        Reg(n)
    }

    /// Records the full event stream for oracle comparisons.
    #[derive(Debug, Default, PartialEq, Eq, Clone)]
    pub struct RecordingMonitor {
        pub events: Vec<String>,
    }

    impl Monitor for RecordingMonitor {
        fn on_call(&mut self, site: CallSite, callee: FuncId) {
            self.events.push(format!("call {site} -> {callee}"));
        }
        fn on_return(&mut self, callee: FuncId) {
            self.events.push(format!("ret {callee}"));
        }
        fn on_alloc(&mut self, kind: AllocKind, site: CallSite, size: u64, ptr: u64, old: u64) {
            self.events.push(format!("alloc {kind:?} {site} {size} -> {ptr} (old {old})"));
        }
        fn on_free(&mut self, site: CallSite, ptr: u64) {
            self.events.push(format!("free {site} {ptr}"));
        }
        fn on_access(&mut self, addr: u64, width: u8, store: bool) {
            self.events.push(format!("access {addr} w{width} store={store}"));
        }
    }

    fn run_program(p: &Program) -> (ExitStats, RecordingMonitor) {
        let mut alloc = MallocOnlyAllocator::new();
        let mut mon = RecordingMonitor::default();
        let stats = Engine::new(p).run(&mut alloc, &mut mon).expect("run ok");
        (stats, mon)
    }

    #[test]
    fn arithmetic_and_return_value() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 21).imm(r(1), 2).mul(r(2), r(0), r(1)).ret(Some(r(2)));
        let main = f.finish();
        let p = pb.finish(main);
        let (stats, _) = run_program(&p);
        assert_eq!(stats.return_value, Some(42));
        assert_eq!(stats.instructions, 4);
    }

    #[test]
    fn loops_branches_and_fuel_accounting() {
        // Sum 0..10 with a loop.
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let top = f.label();
        let done = f.label();
        f.imm(r(0), 0).imm(r(1), 0).imm(r(2), 10);
        f.bind(top);
        f.branch(Cond::Ge, r(1), r(2), done);
        f.add(r(0), r(0), r(1));
        f.add_imm(r(1), r(1), 1);
        f.jump(top);
        f.bind(done);
        f.ret(Some(r(0)));
        let main = f.finish();
        let p = pb.finish(main);
        let (stats, _) = run_program(&p);
        assert_eq!(stats.return_value, Some(45));
    }

    #[test]
    fn calls_pass_args_and_return_values() {
        let mut pb = ProgramBuilder::new();
        let add2 = pb.declare("add2");
        let mut f = pb.function("main");
        f.imm(r(0), 40).imm(r(1), 2);
        f.call(add2, &[r(0), r(1)], Some(r(5)));
        f.ret(Some(r(5)));
        let main = f.finish();
        let mut g = pb.define(add2);
        g.argc(2);
        g.add(r(2), r(0), r(1));
        g.ret(Some(r(2)));
        g.finish();
        let p = pb.finish(main);
        let (stats, mon) = run_program(&p);
        assert_eq!(stats.return_value, Some(42));
        // add2 was declared first, so it is fn#0 and main is fn#1.
        assert!(mon.events.iter().any(|e| e.starts_with("call fn#1+2 -> fn#0")));
        assert!(mon.events.iter().any(|e| e == "ret fn#0"));
    }

    #[test]
    fn recursion_until_depth_limit_errors() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let self_id = f.id();
        f.call(self_id, &[], None);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let mut alloc = MallocOnlyAllocator::new();
        let mut mon = NullMonitor;
        let err = Engine::new(&p)
            .with_limits(EngineLimits { max_instructions: 1_000_000, max_call_depth: 32 })
            .run(&mut alloc, &mut mon)
            .unwrap_err();
        assert_eq!(err, VmError::CallDepthExceeded);
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        let top = f.label();
        f.bind(top);
        f.jump(top);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let mut alloc = MallocOnlyAllocator::new();
        let err = Engine::new(&p)
            .with_limits(EngineLimits { max_instructions: 1000, max_call_depth: 16 })
            .run(&mut alloc, &mut NullMonitor)
            .unwrap_err();
        assert_eq!(err, VmError::FuelExhausted);
    }

    #[test]
    fn division_by_zero_traps_with_location() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 1).imm(r(1), 0).div(r(2), r(0), r(1)).ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let mut alloc = MallocOnlyAllocator::new();
        let err = Engine::new(&p).run(&mut alloc, &mut NullMonitor).unwrap_err();
        assert_eq!(err, VmError::DivisionByZero { at: CallSite::new(main, 2) });
    }

    #[test]
    fn heap_roundtrip_through_memory() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 64);
        f.malloc(r(0), r(1));
        f.imm(r(2), 7);
        f.store(r(2), r(1), 16, Width::W4);
        f.load(r(3), r(1), 16, Width::W4);
        f.free(r(1));
        f.ret(Some(r(3)));
        let main = f.finish();
        let p = pb.finish(main);
        let (stats, mon) = run_program(&p);
        assert_eq!(stats.return_value, Some(7));
        assert_eq!(stats.allocs, 1);
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.loads, 1);
        assert_eq!(stats.stores, 1);
        assert_eq!(mon.events.iter().filter(|e| e.starts_with("access")).count(), 2);
    }

    #[test]
    fn calloc_zeroes_memory() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 4).imm(r(1), 8);
        f.calloc(r(0), r(1), r(2));
        f.load(r(3), r(2), 24, Width::W8);
        f.ret(Some(r(3)));
        let main = f.finish();
        let p = pb.finish(main);
        let (stats, _) = run_program(&p);
        assert_eq!(stats.return_value, Some(0));
    }

    #[test]
    fn realloc_preserves_contents() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 8);
        f.malloc(r(0), r(1));
        f.imm(r(2), 0x1234);
        f.store(r(2), r(1), 0, Width::W8);
        f.imm(r(0), 128);
        f.realloc(r(1), r(0), r(4));
        f.load(r(5), r(4), 0, Width::W8);
        f.ret(Some(r(5)));
        let main = f.finish();
        let p = pb.finish(main);
        let (stats, _) = run_program(&p);
        assert_eq!(stats.return_value, Some(0x1234));
    }

    #[test]
    fn realloc_of_null_acts_as_malloc() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 16).imm(r(1), 0);
        f.realloc(r(1), r(0), r(2));
        f.ret(Some(r(2)));
        let main = f.finish();
        let p = pb.finish(main);
        let (stats, _) = run_program(&p);
        assert!(stats.return_value.unwrap() >= MallocOnlyAllocator::BASE as i64);
    }

    #[test]
    fn free_null_is_noop() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 0);
        f.free(r(0));
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let (stats, mon) = run_program(&p);
        assert_eq!(stats.frees, 0);
        assert!(!mon.events.iter().any(|e| e.starts_with("free")));
    }

    #[test]
    fn indirect_call_resolves_function_ids() {
        let mut pb = ProgramBuilder::new();
        let a = pb.declare("a");
        let b = pb.declare("b");
        let mut f = pb.function("main");
        // Call b through a register.
        f.imm(r(0), b.0 as i64);
        f.call_indirect(r(0), &[], Some(r(1)));
        f.ret(Some(r(1)));
        let main = f.finish();
        let mut fa = pb.define(a);
        fa.imm(r(0), 1).ret(Some(r(0)));
        fa.finish();
        let mut fb = pb.define(b);
        fb.imm(r(0), 2).ret(Some(r(0)));
        fb.finish();
        let p = pb.finish(main);
        let (stats, _) = run_program(&p);
        assert_eq!(stats.return_value, Some(2));
    }

    #[test]
    fn indirect_call_to_garbage_traps() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 999);
        f.call_indirect(r(0), &[], None);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let mut alloc = MallocOnlyAllocator::new();
        let err = Engine::new(&p).run(&mut alloc, &mut NullMonitor).unwrap_err();
        assert!(matches!(err, VmError::BadIndirectTarget { value: 999, .. }));
    }

    #[test]
    fn group_set_clear_visible_in_state() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.raw(Op::GroupSet(3));
        f.raw(Op::GroupSet(9));
        f.raw(Op::GroupClear(3));
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let mut alloc = MallocOnlyAllocator::new();
        let mut engine = Engine::new(&p);
        engine.run(&mut alloc, &mut NullMonitor).unwrap();
        assert!(!engine.group_state().test(3));
        assert!(engine.group_state().test(9));
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 1000);
        f.rand(r(1), r(0));
        f.ret(Some(r(1)));
        let main = f.finish();
        let p = pb.finish(main);
        let run = |seed| {
            let mut alloc = MallocOnlyAllocator::new();
            Engine::new(&p).with_seed(seed).run(&mut alloc, &mut NullMonitor).unwrap().return_value
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn thread_switch_reaches_allocator_and_monitor() {
        struct ThreadAware {
            inner: MallocOnlyAllocator,
            switches: Vec<u16>,
            finishes: u32,
        }
        impl VmAllocator for ThreadAware {
            fn malloc(&mut self, size: u64, s: CallSite, g: &GroupState, m: &mut Memory) -> u64 {
                self.inner.malloc(size, s, g, m)
            }
            fn free(&mut self, ptr: u64, m: &mut Memory) {
                self.inner.free(ptr, m)
            }
            fn realloc(
                &mut self,
                p: u64,
                s: u64,
                site: CallSite,
                g: &GroupState,
                m: &mut Memory,
            ) -> u64 {
                self.inner.realloc(p, s, site, g, m)
            }
            fn thread_switched(&mut self, thread: u16) {
                self.switches.push(thread);
            }
            fn run_finished(&mut self, _mem: &mut Memory) {
                self.finishes += 1;
            }
        }
        struct ThreadMonitor(Vec<u16>);
        impl Monitor for ThreadMonitor {
            fn on_thread_switch(&mut self, thread: u16) {
                self.0.push(thread);
            }
        }
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.thread_switch(2);
        f.imm(r(0), 8);
        f.malloc(r(0), r(1));
        f.thread_switch(0);
        f.free(r(1));
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let mut alloc =
            ThreadAware { inner: MallocOnlyAllocator::new(), switches: Vec::new(), finishes: 0 };
        let mut mon = ThreadMonitor(Vec::new());
        Engine::new(&p).run(&mut alloc, &mut mon).expect("runs");
        assert_eq!(alloc.switches, vec![2, 0]);
        assert_eq!(mon.0, vec![2, 0]);
        assert_eq!(alloc.finishes, 1, "run_finished fires exactly once on normal exit");
        // Oblivious allocators and monitors ignore the op entirely.
        let mut plain = MallocOnlyAllocator::new();
        let stats = Engine::new(&p).run(&mut plain, &mut NullMonitor).expect("runs");
        assert_eq!(stats.allocs, 1);
    }

    #[test]
    fn shared_reference_to_sync_allocator_is_a_vm_allocator() {
        // A Mutex-wrapped bump allocator exercises the &S bridge: two
        // engines (each with its own Memory) share one allocator.
        struct Locked(std::sync::Mutex<MallocOnlyAllocator>);
        impl SyncVmAllocator for Locked {
            fn malloc(&self, size: u64, s: CallSite, g: &GroupState, m: &mut Memory) -> u64 {
                self.0.lock().unwrap().malloc(size, s, g, m)
            }
            fn free(&self, ptr: u64, m: &mut Memory) {
                self.0.lock().unwrap().free(ptr, m)
            }
            fn realloc(
                &self,
                p: u64,
                s: u64,
                site: CallSite,
                g: &GroupState,
                m: &mut Memory,
            ) -> u64 {
                self.0.lock().unwrap().realloc(p, s, site, g, m)
            }
        }
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 32);
        f.malloc(r(0), r(1));
        f.ret(Some(r(1)));
        let main = f.finish();
        let p = pb.finish(main);
        let shared = Locked(std::sync::Mutex::new(MallocOnlyAllocator::new()));
        let mut h1 = &shared;
        let mut h2 = &shared;
        let a = Engine::new(&p).run(&mut h1, &mut NullMonitor).unwrap().return_value.unwrap();
        let b = Engine::new(&p).run(&mut h2, &mut NullMonitor).unwrap().return_value.unwrap();
        assert_ne!(a, b, "one shared heap: the second run bumps past the first");
    }

    #[test]
    fn compute_counts_instructions() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.compute(100);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let (stats, _) = run_program(&p);
        // Compute(100) = 100 instructions, plus the Ret.
        assert_eq!(stats.instructions, 101);
    }

    /// Consumes the batched access stream directly, remembering how the
    /// engine chunked it.
    #[derive(Debug, Default)]
    struct BatchProbe {
        accesses: Vec<(u64, u8, bool)>,
        batches: Vec<usize>,
    }

    impl Monitor for BatchProbe {
        fn on_access_batch(&mut self, batch: &AccessBatch) {
            self.batches.push(batch.len());
            for i in 0..batch.len() {
                self.accesses.push((batch.addrs()[i], batch.widths()[i], batch.stores()[i]));
            }
        }
    }

    /// A long run of straight-line accesses with no intervening events
    /// must arrive in capacity-sized chunks, in order, none dropped.
    #[test]
    fn batches_fill_to_capacity_and_flush_on_exit() {
        let n: i64 = AccessBatch::CAPACITY as i64 * 2 + 5;
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 64);
        f.malloc(r(0), r(1));
        f.imm(r(2), 0);
        f.imm(r(3), n);
        let top = f.label();
        let done = f.label();
        f.bind(top);
        f.branch(Cond::Ge, r(2), r(3), done);
        f.load(r(4), r(1), 0, Width::W8);
        f.add_imm(r(2), r(2), 1);
        f.jump(top);
        f.bind(done);
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let mut alloc = MallocOnlyAllocator::new();
        let mut probe = BatchProbe::default();
        Engine::new(&p).run(&mut alloc, &mut probe).expect("runs");
        assert_eq!(probe.accesses.len(), n as usize);
        assert!(probe.accesses.iter().all(|&(_, w, s)| w == 8 && !s));
        // Two full batches, then the remainder flushed before on_return.
        assert_eq!(probe.batches, vec![AccessBatch::CAPACITY, AccessBatch::CAPACITY, 5]);
    }

    /// Batching must not reorder accesses against any other monitor
    /// event: the flush barriers make a per-access monitor's stream
    /// identical to the pre-batching engine.
    #[test]
    fn batched_delivery_preserves_event_order() {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper");
        let mut f = pb.function("main");
        f.imm(r(0), 64);
        f.malloc(r(0), r(1));
        f.imm(r(2), 7);
        f.store(r(2), r(1), 0, Width::W8);
        f.call(helper, &[r(1)], None);
        f.free(r(1));
        f.ret(None);
        let main = f.finish();
        let mut g = pb.define(helper);
        g.argc(1);
        g.load(r(2), r(0), 0, Width::W8);
        g.ret(None);
        g.finish();
        let p = pb.finish(main);
        let (_, mon) = run_program(&p);
        let kinds: Vec<&str> =
            mon.events.iter().map(|e| e.split_whitespace().next().unwrap()).collect();
        // The store is delivered before on_call, the helper's load before
        // on_return — exactly the per-access order.
        assert_eq!(kinds, vec!["alloc", "access", "call", "access", "ret", "free", "ret"]);
    }

    /// Buffered accesses are delivered even when the run dies on a trap.
    #[test]
    fn error_exits_flush_pending_accesses() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main");
        f.imm(r(0), 64);
        f.malloc(r(0), r(1));
        f.load(r(2), r(1), 0, Width::W8);
        f.imm(r(3), 0);
        f.div(r(4), r(2), r(3));
        f.ret(None);
        let main = f.finish();
        let p = pb.finish(main);
        let mut alloc = MallocOnlyAllocator::new();
        let mut probe = BatchProbe::default();
        let err = Engine::new(&p).run(&mut alloc, &mut probe).unwrap_err();
        assert!(matches!(err, VmError::DivisionByZero { .. }));
        assert_eq!(probe.accesses.len(), 1, "the load preceding the trap is not lost");
    }
}
