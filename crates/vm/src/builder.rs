//! An assembler for building simulated binaries with labels and forward
//! references.

use crate::ids::{CallSite, Cond, FuncId, Reg, Width};
use crate::op::Op;
use crate::program::{Function, Program};

/// A forward-referenceable branch target inside a single function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(u32);

/// Builds a [`Program`] out of [`FunctionBuilder`]s.
///
/// Functions may be declared ahead of definition so that mutually recursive
/// call graphs can be assembled:
///
/// ```
/// use halo_vm::{ProgramBuilder, Reg};
///
/// let mut pb = ProgramBuilder::new();
/// let helper = pb.declare("helper");
/// let mut main = pb.function("main");
/// main.call(helper, &[], None);
/// main.ret(None);
/// let main = main.finish();
/// let mut h = pb.define(helper);
/// h.ret(None);
/// h.finish();
/// let program = pb.finish(main);
/// assert_eq!(program.functions.len(), 2);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    functions: Vec<Option<Function>>,
    names: Vec<String>,
}

impl ProgramBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a function without defining it yet.
    pub fn declare(&mut self, name: &str) -> FuncId {
        let id = FuncId(self.functions.len() as u32);
        self.functions.push(None);
        self.names.push(name.to_string());
        id
    }

    /// Declare and immediately begin defining a function.
    pub fn function(&mut self, name: &str) -> FunctionBuilder<'_> {
        let id = self.declare(name);
        self.define(id)
    }

    /// Begin defining a previously declared function.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not declared or is already defined.
    pub fn define(&mut self, id: FuncId) -> FunctionBuilder<'_> {
        assert!(id.index() < self.functions.len(), "function {id} was never declared");
        assert!(self.functions[id.index()].is_none(), "function {id} is already defined");
        FunctionBuilder {
            parent: self,
            id,
            external: false,
            argc: 0,
            code: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
        }
    }

    /// Number of functions declared so far.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether no functions have been declared.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }

    /// Seal the program with `entry` as the entry point.
    ///
    /// # Panics
    ///
    /// Panics if any declared function was never defined, or if the
    /// assembled program fails [`Program::validate`] — both are programming
    /// errors in the workload, not runtime conditions.
    pub fn finish(self, entry: FuncId) -> Program {
        let functions: Vec<Function> = self
            .functions
            .into_iter()
            .enumerate()
            .map(|(i, f)| {
                f.unwrap_or_else(|| {
                    panic!("function '{}' declared but never defined", self.names[i])
                })
            })
            .collect();
        let program = Program { functions, entry };
        if let Err(e) = program.validate() {
            panic!("assembled program is invalid: {e}");
        }
        program
    }
}

/// Builds one [`Function`]; created by [`ProgramBuilder::function`] or
/// [`ProgramBuilder::define`].
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    parent: &'a mut ProgramBuilder,
    id: FuncId,
    external: bool,
    argc: u8,
    code: Vec<Op>,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, Label)>,
}

impl FunctionBuilder<'_> {
    /// The id this function will occupy.
    pub fn id(&self) -> FuncId {
        self.id
    }

    /// Current instruction index (where the next emitted op will land).
    pub fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    /// Mark the function as a library function (not statically linked into
    /// the main binary); the profiler's shadow stack skips such frames.
    pub fn external(&mut self) -> &mut Self {
        self.external = true;
        self
    }

    /// Set the declared argument count (`r0..argc` receive arguments).
    pub fn argc(&mut self, n: u8) -> &mut Self {
        self.argc = n;
        self
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() as u32 - 1)
    }

    /// Bind `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.code.len() as u32);
    }

    fn emit(&mut self, op: Op) -> u32 {
        let pc = self.code.len() as u32;
        self.code.push(op);
        pc
    }

    /// `dst = imm`
    pub fn imm(&mut self, dst: Reg, v: i64) -> &mut Self {
        self.emit(Op::Imm(dst, v));
        self
    }

    /// `dst = src`
    pub fn mov(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.emit(Op::Mov(dst, src));
        self
    }

    /// `dst = a + b`
    pub fn add(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Op::Add(dst, a, b));
        self
    }

    /// `dst = a + imm`
    pub fn add_imm(&mut self, dst: Reg, a: Reg, v: i64) -> &mut Self {
        self.emit(Op::AddImm(dst, a, v));
        self
    }

    /// `dst = a - b`
    pub fn sub(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Op::Sub(dst, a, b));
        self
    }

    /// `dst = a * b`
    pub fn mul(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Op::Mul(dst, a, b));
        self
    }

    /// `dst = a * imm`
    pub fn mul_imm(&mut self, dst: Reg, a: Reg, v: i64) -> &mut Self {
        self.emit(Op::MulImm(dst, a, v));
        self
    }

    /// `dst = a / b`
    pub fn div(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Op::Div(dst, a, b));
        self
    }

    /// `dst = a % b`
    pub fn rem(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Op::Rem(dst, a, b));
        self
    }

    /// `dst = a & b`
    pub fn and(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Op::And(dst, a, b));
        self
    }

    /// `dst = a | b`
    pub fn or(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Op::Or(dst, a, b));
        self
    }

    /// `dst = a ^ b`
    pub fn xor(&mut self, dst: Reg, a: Reg, b: Reg) -> &mut Self {
        self.emit(Op::Xor(dst, a, b));
        self
    }

    /// `dst = *(base + offset)`
    pub fn load(&mut self, dst: Reg, base: Reg, offset: i64, width: Width) -> &mut Self {
        self.emit(Op::Load { dst, base, offset, width });
        self
    }

    /// `*(base + offset) = src`
    pub fn store(&mut self, src: Reg, base: Reg, offset: i64, width: Width) -> &mut Self {
        self.emit(Op::Store { src, base, offset, width });
        self
    }

    /// Direct call; returns the call site for use in tests and assertions.
    pub fn call(&mut self, func: FuncId, args: &[Reg], dst: Option<Reg>) -> CallSite {
        let pc = self.emit(Op::Call { func, args: args.to_vec(), dst });
        CallSite::new(self.id, pc)
    }

    /// Indirect call through `target`; returns the call site.
    pub fn call_indirect(&mut self, target: Reg, args: &[Reg], dst: Option<Reg>) -> CallSite {
        let pc = self.emit(Op::CallIndirect { target, args: args.to_vec(), dst });
        CallSite::new(self.id, pc)
    }

    /// `dst = malloc(size)`; returns the allocation call site.
    pub fn malloc(&mut self, size: Reg, dst: Reg) -> CallSite {
        let pc = self.emit(Op::Malloc { size, dst });
        CallSite::new(self.id, pc)
    }

    /// `dst = calloc(count, size)`; returns the allocation call site.
    pub fn calloc(&mut self, count: Reg, size: Reg, dst: Reg) -> CallSite {
        let pc = self.emit(Op::Calloc { count, size, dst });
        CallSite::new(self.id, pc)
    }

    /// `dst = realloc(ptr, size)`; returns the allocation call site.
    pub fn realloc(&mut self, ptr: Reg, size: Reg, dst: Reg) -> CallSite {
        let pc = self.emit(Op::Realloc { ptr, size, dst });
        CallSite::new(self.id, pc)
    }

    /// `free(ptr)`; returns the call site.
    pub fn free(&mut self, ptr: Reg) -> CallSite {
        let pc = self.emit(Op::Free { ptr });
        CallSite::new(self.id, pc)
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) -> &mut Self {
        let pc = self.emit(Op::Jump(u32::MAX));
        self.patches.push((pc as usize, label));
        self
    }

    /// Branch to `label` when `cond(a, b)` holds.
    pub fn branch(&mut self, cond: Cond, a: Reg, b: Reg, label: Label) -> &mut Self {
        let pc = self.emit(Op::Branch { cond, a, b, target: u32::MAX });
        self.patches.push((pc as usize, label));
        self
    }

    /// `amount` instructions of non-memory work.
    pub fn compute(&mut self, amount: u64) -> &mut Self {
        self.emit(Op::Compute(amount));
        self
    }

    /// `dst = uniform in [0, bound)`.
    pub fn rand(&mut self, dst: Reg, bound: Reg) -> &mut Self {
        self.emit(Op::Rand { dst, bound });
        self
    }

    /// Return, optionally with a value.
    pub fn ret(&mut self, value: Option<Reg>) -> &mut Self {
        self.emit(Op::Ret(value));
        self
    }

    /// Mark the following instructions as executing on logical thread
    /// `thread` (how single-threaded workload models encode a
    /// multi-threaded malloc/free stream).
    pub fn thread_switch(&mut self, thread: u16) -> &mut Self {
        self.emit(Op::ThreadSwitch(thread));
        self
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.emit(Op::Nop);
        self
    }

    /// Emit a raw op (escape hatch for tests).
    pub fn raw(&mut self, op: Op) -> u32 {
        self.emit(op)
    }

    /// Seal the function, resolving labels, and install it.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label is unbound.
    pub fn finish(self) -> FuncId {
        let FunctionBuilder { parent, id, external, argc, mut code, labels, patches } = self;
        for (pc, label) in patches {
            let target = labels[label.0 as usize].unwrap_or_else(|| {
                panic!("unbound label in function '{}'", parent.names[id.index()])
            });
            code[pc].map_branch_target(|_| target);
        }
        parent.functions[id.index()] =
            Some(Function { name: parent.names[id.index()].clone(), external, argc, code });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("f");
        let top = f.label();
        let out = f.label();
        f.bind(top);
        f.branch(Cond::Eq, Reg(0), Reg(0), out); // forward
        f.jump(top); // backward
        f.bind(out);
        f.ret(None);
        let id = f.finish();
        let p = pb.finish(id);
        assert_eq!(p.functions[0].code[0].branch_target(), Some(2));
        assert_eq!(p.functions[0].code[1].branch_target(), Some(0));
    }

    #[test]
    #[should_panic(expected = "declared but never defined")]
    fn undefined_declaration_panics() {
        let mut pb = ProgramBuilder::new();
        let ghost = pb.declare("ghost");
        let mut f = pb.function("main");
        f.ret(None);
        let main = f.finish();
        let _ = ghost;
        pb.finish(main);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("f");
        let l = f.label();
        f.jump(l);
        f.ret(None);
        f.finish();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("f");
        let l = f.label();
        f.bind(l);
        f.bind(l);
    }

    #[test]
    fn call_sites_reported_with_correct_pcs() {
        let mut pb = ProgramBuilder::new();
        let callee = pb.declare("callee");
        let mut f = pb.function("main");
        f.imm(Reg(0), 8);
        let m = f.malloc(Reg(0), Reg(1));
        let c = f.call(callee, &[Reg(1)], None);
        f.ret(None);
        let main = f.finish();
        let mut cb = pb.define(callee);
        cb.argc(1).ret(None);
        cb.finish();
        let p = pb.finish(main);
        assert_eq!(m.pc, 1);
        assert_eq!(c.pc, 2);
        assert_eq!(p.call_sites(), vec![m, c]);
    }

    #[test]
    fn external_flag_and_argc_recorded() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("libfn");
        f.external().argc(2).ret(None);
        let id = f.finish();
        let p = pb.finish(id);
        assert!(p.functions[0].external);
        assert_eq!(p.functions[0].argc, 2);
    }
}
