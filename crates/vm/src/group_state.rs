//! The shared group-state bit vector (§4.3).
//!
//! HALO's rewriting pass inserts instructions "setting and then unsetting a
//! single bit in a shared 'group state' bit vector to indicate whether the
//! flow of control has passed through this point". The specialised allocator
//! then evaluates group selectors against this vector on every allocation.

/// A fixed-capacity bit vector indexed by monitored-call-site bit number.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GroupState {
    words: Vec<u64>,
}

impl GroupState {
    /// Create a state vector able to hold at least `bits` bits, all clear.
    pub fn new(bits: usize) -> Self {
        GroupState { words: vec![0; bits.div_ceil(64).max(1)] }
    }

    /// Capacity in bits.
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Set bit `bit`. Out-of-range bits grow the vector (the rewriter sizes
    /// it up front; growth only happens in hand-built tests).
    #[inline]
    pub fn set(&mut self, bit: u16) {
        let w = bit as usize / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1u64 << (bit % 64);
    }

    /// Clear bit `bit` (no-op when out of range).
    #[inline]
    pub fn clear(&mut self, bit: u16) {
        let w = bit as usize / 64;
        if let Some(word) = self.words.get_mut(w) {
            *word &= !(1u64 << (bit % 64));
        }
    }

    /// Test bit `bit` (out-of-range bits read as clear).
    #[inline]
    pub fn test(&self, bit: u16) -> bool {
        let w = bit as usize / 64;
        self.words.get(w).is_some_and(|word| word & (1u64 << (bit % 64)) != 0)
    }

    /// Whether every bit in `mask` (a list of bit indices) is set. This is
    /// the conjunctive-expression evaluation used by group selectors.
    #[inline]
    pub fn test_all(&self, mask: &[u16]) -> bool {
        mask.iter().all(|&b| self.test(b))
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Clear every bit.
    pub fn reset(&mut self) {
        self.words.fill(0);
    }
}

impl Default for GroupState {
    fn default() -> Self {
        GroupState::new(64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_test_clear() {
        let mut g = GroupState::new(128);
        assert!(!g.test(5));
        g.set(5);
        assert!(g.test(5));
        g.clear(5);
        assert!(!g.test(5));
    }

    #[test]
    fn bits_are_independent_across_words() {
        let mut g = GroupState::new(128);
        g.set(0);
        g.set(63);
        g.set(64);
        g.set(127);
        assert_eq!(g.count_ones(), 4);
        g.clear(64);
        assert!(g.test(63));
        assert!(!g.test(64));
        assert_eq!(g.count_ones(), 3);
    }

    #[test]
    fn test_all_is_conjunction() {
        let mut g = GroupState::new(64);
        g.set(1);
        g.set(2);
        assert!(g.test_all(&[1, 2]));
        assert!(!g.test_all(&[1, 2, 3]));
        assert!(g.test_all(&[])); // empty conjunction is true
    }

    #[test]
    fn out_of_range_grows_on_set_and_reads_clear() {
        let mut g = GroupState::new(1);
        assert!(!g.test(300));
        g.set(300);
        assert!(g.test(300));
        g.reset();
        assert_eq!(g.count_ones(), 0);
    }
}
